#!/usr/bin/env bash
# Bench-trajectory collector for the city-scale batch runner: runs
# bench_city_scale in JSON mode and appends one record per timed run
# (tagged with the current commit) plus a derived speedup/throughput
# record to BENCH_city.json at the repo root, mirroring
# collect_bench_kernels.sh (ROADMAP trajectory item).
#
# Usage: scripts/collect_bench_city.sh [build-dir]   (default: build)

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-build}"
bench="$repo_root/$build_dir/bench/bench_city_scale"
out="$repo_root/BENCH_city.json"

if [[ ! -x "$bench" ]]; then
    echo "error: $bench not built" >&2
    exit 1
fi

commit="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)"
raw_path="$(mktemp)"
trap 'rm -f "$raw_path"' EXIT

"$bench" --json "$raw_path"

RAW_PATH="$raw_path" COMMIT="$commit" OUT_PATH="$out" python3 - <<'PY'
import json
import os

with open(os.environ["RAW_PATH"]) as f:
    raw = json.load(f)
commit = os.environ["COMMIT"]
out_path = os.environ["OUT_PATH"]

records = []
if os.path.exists(out_path):
    with open(out_path) as f:
        records = json.load(f)
prior = len(records)

by_name = {}
for b in raw:
    rec = {
        "commit": commit,
        "name": b["name"],
        "wall_ms": b["wall_ms"],
        "roofs": b["iterations"],
        "roofs_per_sec": 1000.0 * b["iterations"] / b["wall_ms"]
            if b["wall_ms"] > 0 else None,
        "threads": b["threads"],
    }
    by_name[b["name"]] = rec
    records.append(rec)

shared = by_name.get("city/shared_sky")
per_roof = by_name.get("city/per_roof_sky")
if shared and per_roof and shared["wall_ms"] > 0:
    speedup = per_roof["wall_ms"] / shared["wall_ms"]
    records.append({
        "commit": commit,
        "name": "city/shared_sky_speedup",
        "speedup": speedup,
        "threads": shared["threads"],
    })
    print(f"shared-sky batch speedup: {speedup:.2f}x "
          f"({shared['roofs_per_sec']:.1f} roofs/sec shared, "
          f"{per_roof['roofs_per_sec']:.1f} per-roof)")

# "city/shared_horizon" is the *warm* pass (resident gis::HorizonCache
# planes, the steady-state re-rank workload); the populating pass is
# recorded separately as "city/shared_horizon_cold".
horizon = by_name.get("city/shared_horizon")
if shared and horizon and horizon["wall_ms"] > 0:
    speedup = shared["wall_ms"] / horizon["wall_ms"]
    records.append({
        "commit": commit,
        "name": "city/shared_horizon_speedup",
        "speedup": speedup,
        "threads": horizon["threads"],
    })
    print(f"shared-horizon warm speedup: {speedup:.2f}x "
          f"({horizon['roofs_per_sec']:.1f} roofs/sec warm, "
          f"{shared['roofs_per_sec']:.1f} cold)")

with open(out_path, "w") as f:
    json.dump(records, f, indent=1)
    f.write("\n")
print(f"appended {len(records) - prior} records at {commit} -> {out_path}")
PY

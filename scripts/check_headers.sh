#!/usr/bin/env bash
# Every public header must compile standalone: catches missing #includes
# (e.g. C++20 <span>) that transitive inclusion would mask.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

cxx="${CXX:-g++}"
fail=0
while IFS= read -r header; do
    # Compile a stub that includes the header (rather than the header
    # itself) so `#pragma once` does not warn about a main file.
    if ! echo "#include \"${header#src/}\"" | \
            "$cxx" -std=c++20 -fsyntax-only -Wall -Wextra -Isrc \
                   -x c++ -; then
        echo "FAIL: $header does not compile standalone" >&2
        fail=1
    fi
done < <(find src/pvfp -name '*.hpp' | sort)

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "all headers compile standalone"

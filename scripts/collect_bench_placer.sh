#!/usr/bin/env bash
# Bench-trajectory collector for the placement plane: runs
# bench_placer_speedup (full re-evaluation vs incremental deltas) and
# bench_table1_production (the paper's Table I campaign) in JSON mode
# and appends one record per timed section (tagged with the current
# commit) plus a derived full-vs-incremental speedup record to
# BENCH_placer.json at the repo root, mirroring collect_bench_serve.sh
# (ROADMAP "extend to placer_speedup/table1" trajectory item).
#
# Usage: scripts/collect_bench_placer.sh [build-dir]   (default: build)

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-build}"
placer="$repo_root/$build_dir/bench/bench_placer_speedup"
table1="$repo_root/$build_dir/bench/bench_table1_production"
out="$repo_root/BENCH_placer.json"

for bench in "$placer" "$table1"; do
    if [[ ! -x "$bench" ]]; then
        echo "error: $bench not built" >&2
        exit 1
    fi
done

commit="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)"
placer_raw="$(mktemp)"
table1_raw="$(mktemp)"
trap 'rm -f "$placer_raw" "$table1_raw"' EXIT

"$placer" --json "$placer_raw" >/dev/null
"$table1" --json "$table1_raw" >/dev/null

PLACER_PATH="$placer_raw" TABLE1_PATH="$table1_raw" COMMIT="$commit" \
OUT_PATH="$out" python3 - <<'PY'
import json
import os

raw = []
for key in ("PLACER_PATH", "TABLE1_PATH"):
    with open(os.environ[key]) as f:
        raw.extend(json.load(f))
commit = os.environ["COMMIT"]
out_path = os.environ["OUT_PATH"]

records = []
if os.path.exists(out_path):
    with open(out_path) as f:
        records = json.load(f)

by_name = {}
for b in raw:
    rec = {
        "commit": commit,
        "name": b["name"],
        "wall_ms": b["wall_ms"],
        "iterations": b["iterations"],
        "threads": b["threads"],
    }
    by_name[b["name"]] = rec
    records.append(rec)

full = by_name.get("placer_speedup/full_reeval")
inc = by_name.get("placer_speedup/incremental")
extra = 0
if full and inc and inc["wall_ms"] > 0:
    speedup = full["wall_ms"] / inc["wall_ms"]
    records.append({
        "commit": commit,
        "name": "placer_speedup/speedup",
        "speedup": speedup,
        "threads": full["threads"],
    })
    extra = 1
    print(f"placer speedup (incremental vs full): {speedup:.1f}x "
          f"({full['wall_ms']:.0f} ms full, {inc['wall_ms']:.0f} ms "
          f"incremental)")

with open(out_path, "w") as f:
    json.dump(records, f, indent=1)
    f.write("\n")
print(f"appended {len(by_name) + extra} records at {commit} -> {out_path}")
PY

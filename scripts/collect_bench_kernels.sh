#!/usr/bin/env bash
# Bench-trajectory collector for the batched irradiance kernels: runs
# bench_micro_kernels' irradiance/anchor-series benchmarks in JSON mode
# and appends one record per benchmark (tagged with the current commit)
# to BENCH_kernels.json at the repo root, so speedup-vs-PR can be
# tracked across the project's history (ROADMAP trajectory item).
#
# Usage: scripts/collect_bench_kernels.sh [build-dir]   (default: build)

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-build}"
bench="$repo_root/$build_dir/bench/bench_micro_kernels"
out="$repo_root/BENCH_kernels.json"

if [[ ! -x "$bench" ]]; then
    echo "error: $bench not built (google-benchmark required)" >&2
    exit 1
fi

commit="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)"

raw="$("$bench" --benchmark_filter='Irradiance|AnchorSeries|Daylight|SharedSky|Footprint|HorizonMap' \
                --benchmark_format=json --benchmark_min_time=0.2 \
                2>/dev/null)"

RAW_JSON="$raw" COMMIT="$commit" OUT_PATH="$out" python3 - <<'PY'
import json
import os

raw = json.loads(os.environ["RAW_JSON"])
commit = os.environ["COMMIT"]
out_path = os.environ["OUT_PATH"]

records = []
if os.path.exists(out_path):
    with open(out_path) as f:
        records = json.load(f)

by_name = {}
for b in raw.get("benchmarks", []):
    rec = {
        "commit": commit,
        "name": b["name"],
        "real_time_ns": b["real_time"],
        "items_per_second": b.get("items_per_second"),
    }
    by_name[b["name"]] = rec
    records.append(rec)

with open(out_path, "w") as f:
    json.dump(records, f, indent=1)
    f.write("\n")

def speedup(base, kernel):
    a, b = by_name.get(base), by_name.get(kernel)
    if a and b and b["real_time_ns"] > 0:
        return a["real_time_ns"] / b["real_time_ns"]
    return None

print(f"appended {len(by_name)} records at {commit} -> {out_path}")
for base, kernel, label in [
    ("BM_IrradianceRowScalarCells", "BM_IrradianceRowKernel/0",
     "row kernel (scalar batch) vs per-cell scalar"),
    ("BM_IrradianceRowScalarCells", "BM_IrradianceRowKernel/1",
     "row kernel (avx2) vs per-cell scalar"),
    ("BM_IrradianceRowScalarCells", "BM_IrradianceRowKernel/2",
     "row kernel (avx512) vs per-cell scalar"),
    ("BM_IrradianceSeriesScalarCells", "BM_IrradianceSeriesKernel/0",
     "series kernel (scalar batch) vs per-cell scalar"),
    ("BM_IrradianceSeriesScalarCells", "BM_IrradianceSeriesKernel/1",
     "series kernel (avx2) vs per-cell scalar"),
    ("BM_IrradianceSeriesScalarCells", "BM_IrradianceSeriesKernel/2",
     "series kernel (avx512) vs per-cell scalar"),
    ("BM_DaylightSeriesGather/1", "BM_DaylightSeriesPacked/1",
     "daylight series packed-vs-gather (avx2)"),
    ("BM_DaylightSeriesGather/2", "BM_DaylightSeriesPacked/2",
     "daylight series packed-vs-gather (avx512)"),
    ("BM_SharedSkyPrepareReference", "BM_SharedSkyPrepare/1",
     "shared-sky prepare batched-vs-reference (avx2)"),
    ("BM_SharedSkyPrepareReference", "BM_SharedSkyPrepare/2",
     "shared-sky prepare batched-vs-reference (avx512)"),
    ("BM_FootprintMaskPerCell/10000", "BM_FootprintMaskScanline/10000",
     "footprint mask scanline-vs-per-cell (10^4 vertices)"),
    ("BM_HorizonMapReference", "BM_HorizonMapBatched/0",
     "horizon build (scalar batch) vs per-cell oracle"),
    ("BM_HorizonMapReference", "BM_HorizonMapBatched/1",
     "horizon build (avx2) vs per-cell oracle"),
    ("BM_HorizonMapReference", "BM_HorizonMapBatched/2",
     "horizon build (avx512) vs per-cell oracle"),
]:
    s = speedup(base, kernel)
    if s is not None:
        print(f"  {label}: {s:.1f}x")
PY

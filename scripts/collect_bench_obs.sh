#!/usr/bin/env bash
# Telemetry-overhead collector: runs the pvfp_city ranking pass over a
# synthetic fixture with telemetry off and then with metrics + tracing
# on (--metrics-out/--trace-out), checks the ranked JSONL is
# byte-identical either way, and appends wall-time records plus a
# derived overhead record to BENCH_city.json at the repo root —
# mirroring collect_bench_city.sh so bench_regress.py/bench_plot.py
# track the overhead as a trajectory.  The obs acceptance bar is < 3%
# overhead; the trajectory makes a creeping regression visible.
#
# Usage: scripts/collect_bench_obs.sh [build-dir] [roofs]
#        (defaults: build, 60)

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-build}"
roofs="${2:-60}"
city="$repo_root/$build_dir/examples/example_pvfp_city"
out="$repo_root/BENCH_city.json"

if [[ ! -x "$city" ]]; then
    echo "error: $city not built" >&2
    exit 1
fi

commit="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

"$city" --gen-fixture "$work/city" --roofs "$roofs" > /dev/null

# Wall-clock milliseconds of one command (ns resolution via date).
time_ms() {
    local t0 t1
    t0="$(date +%s%N)"
    "$@" > /dev/null
    t1="$(date +%s%N)"
    echo $(( (t1 - t0) / 1000000 ))
}

run_city() {
    local tag="$1"
    shift
    PVFP_THREADS="${PVFP_THREADS:-8}" "$city" \
        --tiles "$work/city" --index "$work/city/index.csv" \
        --out "$work/$tag.jsonl" --minutes 60 --sectors 24 "$@"
}

# Warm-up pass so the OS page cache does not bias the off/on split,
# then one timed pass each way.
run_city warm > /dev/null
off_ms="$(time_ms run_city off)"
on_ms="$(time_ms run_city on \
    --metrics-out "$work/metrics.json" --trace-out "$work/trace.json")"

# The telemetry-invariance contract, enforced here too: same bytes.
cmp "$work/off.jsonl" "$work/on.jsonl"

OFF_MS="$off_ms" ON_MS="$on_ms" ROOFS="$roofs" COMMIT="$commit" \
    OUT_PATH="$out" THREADS="${PVFP_THREADS:-8}" python3 - <<'PY'
import json
import os

commit = os.environ["COMMIT"]
out_path = os.environ["OUT_PATH"]
off_ms = float(os.environ["OFF_MS"])
on_ms = float(os.environ["ON_MS"])
roofs = int(os.environ["ROOFS"])
threads = int(os.environ["THREADS"])

records = []
if os.path.exists(out_path):
    with open(out_path) as f:
        records = json.load(f)
prior = len(records)

for name, wall_ms in (("city/obs_off", off_ms), ("city/obs_on", on_ms)):
    records.append({
        "commit": commit,
        "name": name,
        "wall_ms": wall_ms,
        "roofs": roofs,
        "roofs_per_sec": 1000.0 * roofs / wall_ms if wall_ms > 0 else None,
        "threads": threads,
    })
if on_ms > 0:
    # speedup > 1 means telemetry-on was FASTER (noise); the regression
    # alert fires when telemetry overhead pushes this below 1/threshold.
    records.append({
        "commit": commit,
        "name": "city/obs_overhead",
        "speedup": off_ms / on_ms,
        "threads": threads,
    })
    overhead = (on_ms - off_ms) / off_ms if off_ms > 0 else float("nan")
    print(f"telemetry overhead: {overhead:+.1%} "
          f"({off_ms:.0f} ms off, {on_ms:.0f} ms on)")

with open(out_path, "w") as f:
    json.dump(records, f, indent=1)
    f.write("\n")
print(f"appended {len(records) - prior} records at {commit} -> {out_path}")
PY

#!/usr/bin/env python3
"""Render the BENCH_*.json trajectories to SVG (stdlib only).

The collectors (scripts/collect_bench_kernels.sh,
scripts/collect_bench_city.sh) append one record per benchmark per
commit, so each file holds a trajectory of the project's perf-counter
history.  The ROADMAP's "plot the curves" item: this script turns those
trajectories into small self-contained SVG line charts, one chart per
metric family, under bench/plots/.

  scripts/bench_plot.py [--out DIR] [FILE.json ...]

With no files it reads BENCH_kernels.json and BENCH_city.json from the
repo root (missing files are skipped).  The x axis is the append order
of distinct commits (the PR sequence); every benchmark name becomes one
polyline.  Metric families:

  BENCH_kernels.json -> kernels_ns.svg        (real_time_ns, log y)
  BENCH_city.json    -> city_roofs_per_sec.svg, city_speedup.svg

Charts are informational — CI uploads them as artifacts but never gates
on them.
"""

import argparse
import json
import math
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_names import normalize  # noqa: E402

PALETTE = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b",
    "#e377c2", "#7f7f7f", "#bcbd22", "#17becf", "#aec7e8", "#ffbb78",
    "#98df8a", "#ff9896", "#c5b0d5", "#c49c94",
]

WIDTH, HEIGHT = 960, 480
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 70, 250, 40, 50


def esc(text):
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def load_records(path):
    with open(path) as f:
        records = json.load(f)
    if not isinstance(records, list):
        raise ValueError(f"{path}: expected a JSON array of records")
    return records


def series_by_name(records, value_key):
    """name -> [(commit_index, value)], x = first-appearance order of
    each commit across the whole file (the PR sequence).  Names go
    through bench_names.normalize() so a modifier-suffix change between
    commits (`/real_time` appearing or vanishing) keeps one polyline
    instead of silently forking the series."""
    commits = []
    commit_index = {}
    for rec in records:
        commit = rec.get("commit", "unknown")
        if commit not in commit_index:
            commit_index[commit] = len(commits)
            commits.append(commit)
    series = {}
    for rec in records:
        value = rec.get(value_key)
        if value is None or not isinstance(value, (int, float)):
            continue
        if not math.isfinite(value) or value <= 0:
            continue
        name = normalize(rec.get("name", "?"))
        series.setdefault(name, []).append(
            (commit_index[rec.get("commit", "unknown")], float(value)))
    # Keep one point per (name, commit): the last append wins, matching
    # "re-collect on the same commit overwrites the reading".
    for name, points in series.items():
        dedup = {}
        for x, v in points:
            dedup[x] = v
        series[name] = sorted(dedup.items())
    return commits, series


def nice_ticks(lo, hi, n=5):
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    step = 10 ** math.floor(math.log10(span / max(n, 1)))
    for mult in (1, 2, 5, 10):
        if span / (step * mult) <= n:
            step *= mult
            break
    start = math.ceil(lo / step) * step
    ticks = []
    t = start
    while t <= hi + 1e-12 * span:
        ticks.append(t)
        t += step
    return ticks


def fmt_tick(v):
    if v == 0:
        return "0"
    if abs(v) >= 1e6 or abs(v) < 1e-3:
        return f"{v:.0e}"
    if abs(v) >= 100:
        return f"{v:.0f}"
    return f"{v:g}"


def render_chart(path, title, y_label, commits, series, log_y=False):
    if not series:
        return False
    plot_w = WIDTH - MARGIN_L - MARGIN_R
    plot_h = HEIGHT - MARGIN_T - MARGIN_B

    xs = [x for pts in series.values() for x, _ in pts]
    vals = [v for pts in series.values() for _, v in pts]
    x_min, x_max = min(xs), max(xs)
    if x_max == x_min:
        x_max = x_min + 1
    tr = math.log10 if log_y else (lambda v: v)
    y_min, y_max = min(tr(v) for v in vals), max(tr(v) for v in vals)
    if y_max == y_min:
        y_max = y_min + 1.0
    pad = 0.05 * (y_max - y_min)
    y_min -= pad
    y_max += pad

    def px(x):
        return MARGIN_L + plot_w * (x - x_min) / (x_max - x_min)

    def py(v):
        return (MARGIN_T + plot_h -
                plot_h * (tr(v) - y_min) / (y_max - y_min))

    out = []
    out.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" '
        f'font-family="monospace" font-size="12">')
    out.append(f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>')
    out.append(
        f'<text x="{MARGIN_L}" y="{MARGIN_T - 16}" font-size="15" '
        f'font-weight="bold">{esc(title)}</text>')

    # Axes + y grid.
    if log_y:
        lo_e = math.floor(y_min)
        hi_e = math.ceil(y_max)
        y_ticks = [(10.0 ** e, f"1e{e}") for e in range(lo_e, hi_e + 1)
                   if y_min <= e <= y_max]
    else:
        y_ticks = [(t, fmt_tick(t)) for t in nice_ticks(y_min, y_max)]
    for val, label in y_ticks:
        y = py(10 ** math.log10(val)) if log_y else py(val)
        out.append(
            f'<line x1="{MARGIN_L}" y1="{y:.1f}" '
            f'x2="{MARGIN_L + plot_w}" y2="{y:.1f}" stroke="#dddddd"/>')
        out.append(
            f'<text x="{MARGIN_L - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{esc(label)}</text>')
    out.append(
        f'<text x="16" y="{MARGIN_T + plot_h / 2:.1f}" '
        f'transform="rotate(-90 16 {MARGIN_T + plot_h / 2:.1f})" '
        f'text-anchor="middle">{esc(y_label)}</text>')

    # X axis: one tick per commit.
    for i in range(x_min, x_max + 1):
        x = px(i)
        out.append(
            f'<line x1="{x:.1f}" y1="{MARGIN_T + plot_h}" '
            f'x2="{x:.1f}" y2="{MARGIN_T + plot_h + 4}" stroke="black"/>')
        label = commits[i] if i < len(commits) else str(i)
        out.append(
            f'<text x="{x:.1f}" y="{MARGIN_T + plot_h + 18}" '
            f'text-anchor="middle">{esc(label)}</text>')
    out.append(
        f'<text x="{MARGIN_L + plot_w / 2:.1f}" y="{HEIGHT - 12}" '
        f'text-anchor="middle">commit (append order)</text>')
    out.append(
        f'<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="black"/>')

    # One polyline + legend row per benchmark name.
    for k, (name, points) in enumerate(sorted(series.items())):
        color = PALETTE[k % len(PALETTE)]
        coords = " ".join(f"{px(x):.1f},{py(v):.1f}" for x, v in points)
        if len(points) > 1:
            out.append(
                f'<polyline points="{coords}" fill="none" '
                f'stroke="{color}" stroke-width="1.5"/>')
        for x, v in points:
            out.append(
                f'<circle cx="{px(x):.1f}" cy="{py(v):.1f}" r="3" '
                f'fill="{color}"/>')
        ly = MARGIN_T + 14 * k
        lx = MARGIN_L + plot_w + 12
        out.append(
            f'<line x1="{lx}" y1="{ly + 4}" x2="{lx + 18}" y2="{ly + 4}" '
            f'stroke="{color}" stroke-width="3"/>')
        out.append(f'<text x="{lx + 24}" y="{ly + 8}">{esc(name)}</text>')

    out.append("</svg>")
    with open(path, "w") as f:
        f.write("\n".join(out) + "\n")
    return True


def plot_file(json_path, out_dir):
    base = os.path.basename(json_path)
    records = load_records(json_path)
    written = []

    def emit(svg_name, title, y_label, value_key, names=None,
             log_y=False):
        commits, series = series_by_name(records, value_key)
        if names is not None:
            series = {n: p for n, p in series.items() if n in names}
        out_path = os.path.join(out_dir, svg_name)
        if render_chart(out_path, title, y_label, commits, series,
                        log_y=log_y):
            written.append(out_path)

    if base == "BENCH_city.json":
        emit("city_roofs_per_sec.svg",
             "City batch throughput (bench_city_scale)",
             "roofs / sec", "roofs_per_sec")
        emit("city_speedup.svg",
             "City batch derived speedups", "speedup (x)", "speedup")
    else:
        stem = base[len("BENCH_"):-len(".json")] \
            if base.startswith("BENCH_") and base.endswith(".json") \
            else os.path.splitext(base)[0]
        emit(f"{stem}_ns.svg",
             f"Kernel micro-bench times ({base})",
             "real time [ns, log]", "real_time_ns", log_y=True)
    return written


def main(argv):
    parser = argparse.ArgumentParser(
        description="Render BENCH_*.json trajectories to SVG.")
    parser.add_argument("files", nargs="*",
                        help="BENCH json files (default: repo-root "
                             "BENCH_kernels.json + BENCH_city.json)")
    parser.add_argument("--out", default=None,
                        help="output directory (default: bench/plots "
                             "next to the first input)")
    args = parser.parse_args(argv)

    repo_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    files = args.files or [
        os.path.join(repo_root, "BENCH_kernels.json"),
        os.path.join(repo_root, "BENCH_city.json"),
    ]
    files = [f for f in files if os.path.exists(f)]
    if not files:
        print("bench_plot: no BENCH_*.json inputs found", file=sys.stderr)
        return 1

    out_dir = args.out or os.path.join(repo_root, "bench", "plots")
    os.makedirs(out_dir, exist_ok=True)

    written = []
    for path in files:
        written += plot_file(path, out_dir)
    for path in written:
        print(f"wrote {path}")
    return 0 if written else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

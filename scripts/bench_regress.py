#!/usr/bin/env python3
"""Perf-trajectory regression alert over the BENCH_*.json records.

Each collect_bench_*.sh run appends one record per bench name, tagged
with the commit it ran at.  This script compares, per bench name in each
BENCH_*.json, the latest record against the most recent record from an
*earlier* commit (the previous trajectory point) and flags deviations
past a threshold (default +/-25%) on the record's primary metric:

  wall_ms / real_time_ns   lower is better (regression = slower)
  speedup / items_per_second  higher is better (regression = smaller)

Exit status is nonzero when any comparison deviates past the threshold
in either direction — a slowdown is a regression, and a silent 25%
"improvement" usually means the workload changed and the trajectory
needs re-baselining.  CI runs this as an informational step (the job
reports, but is not required to pass), so the perf trajectory has an
alert instead of just a log.

Usage: scripts/bench_regress.py [--threshold 0.25] [files...]
       (default files: BENCH_*.json at the repo root)
"""

import argparse
import glob
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_names import normalize  # noqa: E402

# Metric name -> True when higher is better.
METRICS = [
    ("wall_ms", False),
    ("real_time_ns", False),
    ("speedup", True),
    ("items_per_second", True),
]


def primary_metric(record):
    for key, higher_better in METRICS:
        value = record.get(key)
        if isinstance(value, (int, float)) and value > 0:
            return key, float(value), higher_better
    return None


def latest_vs_previous(records):
    """Pairs (name, latest_record, previous_record) where `previous` is
    the newest record of the same name from an earlier commit.  Names
    are matched through bench_names.normalize() so google-benchmark
    modifier suffixes (`/real_time`, `/threads:8`, `_mean`, ...) that
    come and go between commits don't silently split a trajectory."""
    by_name = {}
    for rec in records:  # file order is append order = chronological
        by_name.setdefault(normalize(rec.get("name")), []).append(rec)
    for name, recs in sorted(by_name.items()):
        latest = recs[-1]
        previous = None
        for rec in reversed(recs[:-1]):
            if rec.get("commit") != latest.get("commit"):
                previous = rec
                break
        if previous is not None:
            yield name, latest, previous


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative deviation that trips the alert "
                             "(default 0.25 = +/-25%%)")
    parser.add_argument("files", nargs="*",
                        help="BENCH_*.json files (default: repo root)")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = args.files or sorted(glob.glob(
        os.path.join(repo_root, "BENCH_*.json")))
    if not files:
        print("bench_regress: no BENCH_*.json files found")
        return 0

    alerts = 0
    comparisons = 0
    for path in files:
        try:
            with open(path) as f:
                records = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_regress: cannot read {path}: {err}")
            alerts += 1
            continue
        for name, latest, previous in latest_vs_previous(records):
            metric = primary_metric(latest)
            prev_metric = primary_metric(previous)
            if metric is None or prev_metric is None:
                continue
            key, value, higher_better = metric
            prev_key, prev_value, _ = prev_metric
            if key != prev_key:
                continue  # metric shape changed; nothing comparable
            comparisons += 1
            change = value / prev_value - 1.0
            # Express as "regression fraction": positive = worse.
            worse = -change if higher_better else change
            flag = abs(change) > args.threshold
            if flag or os.environ.get("BENCH_REGRESS_VERBOSE"):
                direction = "REGRESSION" if worse > 0 else "improvement"
                marker = f"ALERT {direction}" if flag else "ok"
                print(f"[{marker}] {os.path.basename(path)} {name}: "
                      f"{key} {prev_value:.4g} ({previous.get('commit')}) "
                      f"-> {value:.4g} ({latest.get('commit')}), "
                      f"{change:+.1%}")
            if flag:
                alerts += 1

    print(f"bench_regress: {comparisons} comparisons, {alerts} past "
          f"the +/-{args.threshold:.0%} threshold")
    return 1 if alerts else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Tier-1 verify, exactly as CI runs it: configure -> build -> ctest ->
# one smoke example.  Exits nonzero on the first failure.
#
# Usage: scripts/check.sh [build-dir]   (default: build)

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-build}"

cd "$repo_root"

echo "== configure =="
cmake -B "$build_dir" -S .

jobs="$(nproc 2>/dev/null || echo 2)"

echo "== build =="
cmake --build "$build_dir" -j "$jobs"

echo "== ctest =="
# An explicit job count: bare `ctest -j` means *unbounded* parallelism
# before CMake 3.29.
(cd "$build_dir" && ctest --output-on-failure -j "$jobs")

echo "== smoke example (quickstart) =="
"$build_dir/examples/example_quickstart" > /dev/null

echo "== all checks passed =="

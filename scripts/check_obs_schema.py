#!/usr/bin/env python3
"""Validate pvfp observability artifacts against their schemas.

CI runs pvfp_city/pvfp_serve with --metrics-out/--trace-out and feeds
the artifacts through this checker, so a codec regression (key renamed,
bucket array length drifting from bounds, non-finite gauge, trace event
missing a field) fails the `obs` job instead of silently producing
files Perfetto or the bench tooling can't read.

  scripts/check_obs_schema.py --metrics M.json [--trace T.json ...]

Schema for a metrics snapshot (src/pvfp/obs/metrics.cpp to_json):
  {"counters": {name: uint, ...},            # names sorted
   "gauges": {name: finite number, ...},     # names sorted
   "histograms": {name: {"count": uint, "sum": uint,
                         "bounds": [uint...],   # strictly increasing
                         "buckets": [uint...]}, # len(bounds) + 1
                  ...}}                      # names sorted

Schema for a trace (src/pvfp/obs/trace.cpp chrome_trace_json): the
Chrome trace-event JSON object format —
  {"displayTimeUnit": "ms", "pvfp_dropped_spans": uint,
   "traceEvents": [{"name": str, "ph": "X", "pid": 1, "tid": uint,
                    "ts": number >= 0, "dur": number >= 0}, ...]}
"""

import argparse
import json
import math
import sys


class SchemaError(Exception):
    pass


def fail(path, message):
    raise SchemaError(f"{path}: {message}")


def check_uint(path, where, value):
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        fail(path, f"{where}: expected a non-negative integer, "
                   f"got {value!r}")


def check_sorted_names(path, where, mapping):
    names = list(mapping.keys())
    if names != sorted(names):
        fail(path, f"{where}: names not sorted ({names})")
    for name in names:
        if not name or not isinstance(name, str):
            fail(path, f"{where}: bad metric name {name!r}")


def check_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if list(doc.keys()) != ["counters", "gauges", "histograms"]:
        fail(path, f"top-level keys {list(doc.keys())}, want "
                   f"['counters', 'gauges', 'histograms'] in that order")

    check_sorted_names(path, "counters", doc["counters"])
    for name, value in doc["counters"].items():
        check_uint(path, f"counters[{name}]", value)

    check_sorted_names(path, "gauges", doc["gauges"])
    for name, value in doc["gauges"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or not math.isfinite(value):
            fail(path, f"gauges[{name}]: expected a finite number, "
                       f"got {value!r}")

    check_sorted_names(path, "histograms", doc["histograms"])
    for name, hist in doc["histograms"].items():
        where = f"histograms[{name}]"
        if not isinstance(hist, dict):
            fail(path, f"{where}: not an object")
        if list(hist.keys()) != ["count", "sum", "bounds", "buckets"]:
            fail(path, f"{where}: keys {list(hist.keys())}, want "
                       f"['count', 'sum', 'bounds', 'buckets']")
        check_uint(path, f"{where}.count", hist["count"])
        check_uint(path, f"{where}.sum", hist["sum"])
        bounds, buckets = hist["bounds"], hist["buckets"]
        if not isinstance(bounds, list) or not isinstance(buckets, list):
            fail(path, f"{where}: bounds/buckets must be arrays")
        for i, b in enumerate(bounds):
            check_uint(path, f"{where}.bounds[{i}]", b)
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            fail(path, f"{where}.bounds not strictly increasing")
        if len(buckets) != len(bounds) + 1:
            fail(path, f"{where}: {len(buckets)} buckets for "
                       f"{len(bounds)} bounds (want bounds + 1)")
        for i, b in enumerate(buckets):
            check_uint(path, f"{where}.buckets[{i}]", b)
        if sum(buckets) != hist["count"]:
            fail(path, f"{where}: bucket sum {sum(buckets)} != count "
                       f"{hist['count']}")
    counts = (len(doc["counters"]), len(doc["gauges"]),
              len(doc["histograms"]))
    print(f"{path}: ok ({counts[0]} counters, {counts[1]} gauges, "
          f"{counts[2]} histograms)")


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    for key in ("displayTimeUnit", "pvfp_dropped_spans", "traceEvents"):
        if key not in doc:
            fail(path, f"missing key {key!r}")
    if doc["displayTimeUnit"] != "ms":
        fail(path, f"displayTimeUnit {doc['displayTimeUnit']!r}, want 'ms'")
    check_uint(path, "pvfp_dropped_spans", doc["pvfp_dropped_spans"])
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(path, "traceEvents is not an array")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(path, f"{where}: not an object")
        for key in ("name", "ph", "pid", "tid", "ts", "dur"):
            if key not in ev:
                fail(path, f"{where}: missing key {key!r}")
        if not isinstance(ev["name"], str) or not ev["name"]:
            fail(path, f"{where}.name: bad span name {ev['name']!r}")
        if ev["ph"] != "X":
            fail(path, f"{where}.ph: {ev['ph']!r}, want 'X' "
                       f"(complete event)")
        if ev["pid"] != 1:
            fail(path, f"{where}.pid: {ev['pid']!r}, want 1")
        check_uint(path, f"{where}.tid", ev["tid"])
        for key in ("ts", "dur"):
            v = ev[key]
            if not isinstance(v, (int, float)) or isinstance(v, bool) \
                    or not math.isfinite(v) or v < 0:
                fail(path, f"{where}.{key}: expected a non-negative "
                           f"number, got {v!r}")
    print(f"{path}: ok ({len(events)} trace events, "
          f"{doc['pvfp_dropped_spans']} dropped)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", action="append", default=[],
                        help="metrics snapshot JSON to validate "
                             "(repeatable)")
    parser.add_argument("--trace", action="append", default=[],
                        help="Chrome trace-event JSON to validate "
                             "(repeatable)")
    args = parser.parse_args()
    if not args.metrics and not args.trace:
        parser.error("nothing to check: pass --metrics and/or --trace")
    try:
        for path in args.metrics:
            check_metrics(path)
        for path in args.trace:
            check_trace(path)
    except (OSError, json.JSONDecodeError, SchemaError) as err:
        print(f"check_obs_schema: FAIL {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Bench-trajectory collector for the serving plane: runs
# bench_serve_latency in JSON mode and appends one record per timed
# section (tagged with the current commit) plus a derived cold-vs-warm
# speedup record to BENCH_serve.json at the repo root, mirroring
# collect_bench_city.sh (ROADMAP trajectory item).
#
# Usage: scripts/collect_bench_serve.sh [build-dir]   (default: build)

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-build}"
bench="$repo_root/$build_dir/bench/bench_serve_latency"
out="$repo_root/BENCH_serve.json"

if [[ ! -x "$bench" ]]; then
    echo "error: $bench not built" >&2
    exit 1
fi

commit="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)"
raw_path="$(mktemp)"
trap 'rm -f "$raw_path"' EXIT

"$bench" --json "$raw_path"

RAW_PATH="$raw_path" COMMIT="$commit" OUT_PATH="$out" python3 - <<'PY'
import json
import os

with open(os.environ["RAW_PATH"]) as f:
    raw = json.load(f)
commit = os.environ["COMMIT"]
out_path = os.environ["OUT_PATH"]

records = []
if os.path.exists(out_path):
    with open(out_path) as f:
        records = json.load(f)

by_name = {}
for b in raw:
    rec = {
        "commit": commit,
        "name": b["name"],
        "wall_ms": b["wall_ms"],
        "requests": b["iterations"],
        "threads": b["threads"],
    }
    by_name[b["name"]] = rec
    records.append(rec)

cold = by_name.get("serve/cold_plan_ms")
warm = by_name.get("serve/warm_plan_ms")
extra = 0
if cold and warm and warm["wall_ms"] > 0:
    speedup = cold["wall_ms"] / warm["wall_ms"]
    records.append({
        "commit": commit,
        "name": "serve/cold_warm_speedup",
        "speedup": speedup,
        "threads": cold["threads"],
    })
    extra = 1
    print(f"cold/warm plan speedup: {speedup:.1f}x "
          f"({cold['wall_ms']:.1f} ms cold, {warm['wall_ms']:.2f} ms warm)")

with open(out_path, "w") as f:
    json.dump(records, f, indent=1)
    f.write("\n")
print(f"appended {len(by_name) + extra} records at {commit} -> {out_path}")
PY

#!/usr/bin/env python3
"""Canonical benchmark-name matching for the BENCH_*.json trajectories.

The collectors record whatever `name` the bench harness emits.  Google-
benchmark appends modifier suffixes to that name — `/real_time`,
`/process_time`, `/threads:8`, `/repeats:3`, and statistic suffixes like
`_mean` — and whether they appear depends on how the bench was invoked
at that commit.  bench_regress.py and bench_plot.py used to group
records by the raw string, so a record written as
`kernels/sky_prep/real_time` at one commit and `kernels/sky_prep` at the
next landed in different groups and the comparison was *silently
skipped*: no alert, no trajectory line, no hint.

normalize() strips exactly the modifier decorations and nothing else:
repo-style path names (`city/shared_sky`) and numeric workload levels
(`horizon/march/512`) are workload identity and survive untouched.

Run `scripts/bench_names.py --self-test` (registered in ctest) to check
the matcher against the cases above.
"""

import sys

# Statistic suffixes google-benchmark appends after aggregate runs.
_STAT_SUFFIXES = ("_mean", "_median", "_stddev", "_cv", "_min", "_max")

# Whole path segments that are run modifiers, not workload identity.
_MODIFIER_SEGMENTS = {"real_time", "process_time", "manual_time"}

# Segments of the form "key:value" that are run modifiers.
_MODIFIER_KEYS = {"threads", "repeats", "iterations", "min_time",
                  "min_warmup_time"}


def normalize(name):
    """Strip google-benchmark modifier decorations from a bench name.

    Keeps: path-style names, numeric workload levels, anything that is
    not a recognized modifier.  Returns non-strings unchanged.
    """
    if not isinstance(name, str):
        return name
    for suffix in _STAT_SUFFIXES:
        if name.endswith(suffix):
            name = name[: -len(suffix)]
            break
    segments = []
    for segment in name.split("/"):
        if segment in _MODIFIER_SEGMENTS:
            continue
        key, sep, _ = segment.partition(":")
        if sep and key in _MODIFIER_KEYS:
            continue
        segments.append(segment)
    return "/".join(segments)


_SELF_TEST_CASES = [
    # Repo-style names are workload identity: untouched.
    ("city/shared_sky", "city/shared_sky"),
    ("city/shared_horizon_speedup", "city/shared_horizon_speedup"),
    # Numeric workload levels survive.
    ("horizon/march/512", "horizon/march/512"),
    ("BM_sky_prep/64", "BM_sky_prep/64"),
    # google-benchmark modifier suffixes are stripped...
    ("BM_sky_prep/64/real_time", "BM_sky_prep/64"),
    ("BM_sky_prep/64/process_time", "BM_sky_prep/64"),
    ("BM_rank/threads:8", "BM_rank"),
    ("BM_rank/64/threads:8/real_time", "BM_rank/64"),
    ("BM_rank/repeats:3", "BM_rank"),
    ("BM_rank/min_time:2.5", "BM_rank"),
    # ...including aggregate-statistic suffixes.
    ("BM_rank/64_mean", "BM_rank/64"),
    ("BM_rank/64/real_time_stddev", "BM_rank/64"),
    ("BM_rank_cv", "BM_rank"),
    # The suffix mismatch that used to split trajectories: both sides
    # normalize to the same key.
    ("kernels/sky_prep/real_time", "kernels/sky_prep"),
    ("kernels/sky_prep", "kernels/sky_prep"),
    # Colon segments that are NOT modifiers stay (workload identity).
    ("serve/op:rank", "serve/op:rank"),
    # Non-strings pass through.
    (None, None),
]


def self_test():
    failures = 0
    for raw, want in _SELF_TEST_CASES:
        got = normalize(raw)
        if got != want:
            print(f"FAIL normalize({raw!r}) = {got!r}, want {want!r}")
            failures += 1
    # Idempotence over every case.
    for raw, _ in _SELF_TEST_CASES:
        once = normalize(raw)
        if normalize(once) != once:
            print(f"FAIL normalize not idempotent on {raw!r}")
            failures += 1
    total = len(_SELF_TEST_CASES)
    print(f"bench_names: {total - failures}/{total} cases pass")
    return 1 if failures else 0


if __name__ == "__main__":
    if "--self-test" in sys.argv[1:]:
        sys.exit(self_test())
    for arg in sys.argv[1:]:
        print(normalize(arg))

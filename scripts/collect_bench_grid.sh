#!/usr/bin/env bash
# Bench-trajectory collector for grid-aware placement: runs
# bench_grid_plan in JSON mode and appends one record per timed section
# (tagged with the current commit) plus a derived incremental-vs-brute-
# force speedup record to BENCH_grid.json at the repo root, mirroring
# collect_bench_serve.sh (ROADMAP trajectory item).
#
# Usage: scripts/collect_bench_grid.sh [build-dir]   (default: build)

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-build}"
bench="$repo_root/$build_dir/bench/bench_grid_plan"
out="$repo_root/BENCH_grid.json"

if [[ ! -x "$bench" ]]; then
    echo "error: $bench not built" >&2
    exit 1
fi

commit="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)"
raw_path="$(mktemp)"
trap 'rm -f "$raw_path"' EXIT

"$bench" --json "$raw_path"

RAW_PATH="$raw_path" COMMIT="$commit" OUT_PATH="$out" python3 - <<'PY'
import json
import os

with open(os.environ["RAW_PATH"]) as f:
    raw = json.load(f)
commit = os.environ["COMMIT"]
out_path = os.environ["OUT_PATH"]

records = []
if os.path.exists(out_path):
    with open(out_path) as f:
        records = json.load(f)

by_name = {}
for b in raw:
    rec = {
        "commit": commit,
        "name": b["name"],
        "wall_ms": b["wall_ms"],
        "placements": b["iterations"],
        "threads": b["threads"],
    }
    by_name[b["name"]] = rec
    records.append(rec)

incremental = by_name.get("grid/sequential_place_ms")
brute = by_name.get("grid/brute_force_ms")
extra = 0
if incremental and brute and incremental["wall_ms"] > 0:
    speedup = brute["wall_ms"] / incremental["wall_ms"]
    records.append({
        "commit": commit,
        "name": "grid/incremental_speedup",
        "speedup": speedup,
        "threads": incremental["threads"],
    })
    extra = 1
    print(f"incremental/brute-force speedup: {speedup:.1f}x "
          f"({brute['wall_ms']:.1f} ms brute, "
          f"{incremental['wall_ms']:.2f} ms incremental)")

with open(out_path, "w") as f:
    json.dump(records, f, indent=1)
    f.write("\n")
print(f"appended {len(by_name) + extra} records at {commit} -> {out_path}")
PY

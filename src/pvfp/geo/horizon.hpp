#pragma once
/// \file horizon.hpp
/// Per-cell horizon maps over a DSM window: the core of the shadow engine.
///
/// For every cell of a rectangular window the builder ray-marches the DSM
/// in a fixed number of azimuth sectors and records the maximum elevation
/// angle of terrain/obstacles in each direction (the "horizon").  A cell is
/// in shadow at time t iff the sun's elevation is below the horizon at the
/// sun's azimuth — an O(1) test per (cell, time), which makes a full-year
/// 15-minute simulation over ~10^4 cells tractable (the paper's
/// infrastructure does the equivalent with GRASS-style shadow maps).
///
/// The same horizon data yields the sky-view factor used to attenuate
/// diffuse irradiance for cells next to obstructions.

#include <vector>

#include "pvfp/geo/raster.hpp"

namespace pvfp::geo {

/// Parameters for horizon construction.
struct HorizonOptions {
    /// Number of azimuth sectors (evenly spaced over 360 deg).
    int azimuth_sectors = 72;
    /// Maximum marching distance [m]; obstructions further away are
    /// ignored (an 80 m radius covers multi-story neighbors at low sun).
    double max_distance = 80.0;
    /// Initial marching step as a fraction of the raster cell size.
    double step_factor = 1.0;
    /// Geometric growth of the step with distance (1.0 = uniform steps).
    /// Mild growth trades negligible angular error for a large speedup.
    double step_growth = 1.03;
    /// Cap on the step as a multiple of the cell size, so that growth
    /// never steps over thin obstacles (a 2-cell-wide wall is always
    /// sampled at least once with the default cap of 2).
    double max_step_factor = 2.0;
    /// Observer height above the DSM surface [m]; a small positive value
    /// prevents a cell from shading itself through raster quantization.
    double observer_offset = 0.05;
};

/// A rectangular window of cells for which horizons were computed.
class HorizonMap {
public:
    /// Build horizons for the window with top-left cell (x0, y0) and size
    /// win_w x win_h (in cells) of \p dsm.  The whole raster participates
    /// as potential obstruction.  The window must lie inside the raster.
    /// Runs the batched row-march kernels (geo/horizon_kernels.hpp),
    /// bitwise-identical to the per-cell oracle horizon_map_reference().
    HorizonMap(const Raster& dsm, int x0, int y0, int win_w, int win_h,
               const HorizonOptions& options = {});

    /// Assemble a map from precomputed planes: \p angles is sector-major
    /// (sectors * win_w * win_h floats, see angles_data()), \p svf is
    /// row-major (win_w * win_h floats).  Used by the shared horizon
    /// cache (gis/horizon_cache) to hand out window views into cached
    /// macro-tile planes, and by the reference builder.
    static HorizonMap from_planes(int x0, int y0, int win_w, int win_h,
                                  int sectors, std::vector<float> angles,
                                  std::vector<float> svf);

    int window_x0() const { return x0_; }
    int window_y0() const { return y0_; }
    int window_width() const { return win_w_; }
    int window_height() const { return win_h_; }
    int sectors() const { return sectors_; }

    /// Horizon elevation angle [rad] for window cell (wx, wy) (relative to
    /// the window origin) in sector \p s.
    double horizon(int wx, int wy, int s) const;

    /// Horizon elevation [rad] at an arbitrary azimuth [rad, clockwise from
    /// North], linearly interpolated between adjacent sectors.
    double horizon_at(int wx, int wy, double azimuth_rad) const;

    /// True when the sun at (azimuth, elevation) [rad] does not reach the
    /// cell: elevation below the interpolated horizon (or below 0).
    bool is_shaded(int wx, int wy, double azimuth_rad,
                   double elevation_rad) const;

    /// Isotropic sky-view factor of the cell in [0,1]:
    /// SVF = mean over sectors of cos^2(horizon).
    double sky_view_factor(int wx, int wy) const;

    /// Unchecked fast paths of horizon_at / is_shaded / sky_view_factor
    /// for inner loops whose cell domain is validated once at the
    /// boundary (the irradiance field).  Precondition (debug-asserted):
    /// (wx, wy) inside the window.
    double horizon_at_unchecked(int wx, int wy, double azimuth_rad) const;
    bool is_shaded_unchecked(int wx, int wy, double azimuth_rad,
                             double elevation_rad) const;
    double sky_view_factor_unchecked(int wx, int wy) const;

    /// Number of window cells (= width * height): the stride between two
    /// consecutive sector planes of angles_data().
    long cell_count() const {
        return static_cast<long>(win_w_) * win_h_;
    }

    /// Raw horizon storage for the batched irradiance kernels.  Layout is
    /// *sector-major* (structure-of-arrays): plane s is cell_count()
    /// consecutive floats, one per window cell in row-major order, so the
    /// angle of cell (wx, wy) in sector s sits at
    /// angles_data()[s * cell_count() + wy * window_width() + wx].  A
    /// fixed time step pins (s0, s1, frac) of the horizon interpolation,
    /// turning a row sweep into two unit-stride plane loads.
    const float* angles_data() const { return angles_.data(); }

    /// Raw per-cell sky-view factors, row-major over the window.
    const float* svf_data() const { return svf_.data(); }

private:
    HorizonMap() = default;

    std::size_t cell_index(int wx, int wy) const;

    int x0_ = 0;
    int y0_ = 0;
    int win_w_ = 0;
    int win_h_ = 0;
    int sectors_ = 0;
    /// Sector-major horizon angles [rad]: see angles_data().
    std::vector<float> angles_;
    std::vector<float> svf_;
};

/// Retained per-cell reference builder: marches every (cell, sector) with
/// the original scalar loop.  The differential oracle the batched kernels
/// are pinned against (tests/geo/test_horizon_kernels) — bitwise equal to
/// the HorizonMap ctor at every SIMD level.
HorizonMap horizon_map_reference(const Raster& dsm, int x0, int y0,
                                 int win_w, int win_h,
                                 const HorizonOptions& options = {});

/// Reference implementation: march the DSM directly for a single cell and
/// azimuth with *uniform* steps; used by tests to validate HorizonMap and
/// by the brute-force shadow raster.
double brute_force_horizon(const Raster& dsm, int x, int y,
                           double azimuth_rad,
                           const HorizonOptions& options = {});

}  // namespace pvfp::geo

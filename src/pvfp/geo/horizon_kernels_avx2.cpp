/// \file horizon_kernels_avx2.cpp
/// Hand-written AVX2 twin of the batched horizon row marcher.  Compiled
/// with a per-function target("avx2") attribute so the library binary
/// stays portable; only ever called after runtime dispatch (util/simd)
/// has confirmed CPU support.
///
/// Bitwise contract: four window cells march in double lanes with the
/// exact scalar operation sequence — the add for lx, the divide/clamp/
/// trunc of the bilinear x half, mul+add lerps (never FMA), the ratio
/// divide — and the rare atan2 evaluations drop to scalar libm on the
/// lanes whose ratio reaches the running max, preserving the per-cell
/// marcher's running-max semantics exactly (see horizon_kernels.hpp).

#include "pvfp/geo/horizon_kernels.hpp"

#if (defined(__x86_64__) || defined(__amd64__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define PVFP_HORIZON_AVX2 1
#include <immintrin.h>

#include <cmath>
#else
#define PVFP_HORIZON_AVX2 0
#endif

namespace pvfp::geo::detail {

bool horizon_avx2_compiled() { return PVFP_HORIZON_AVX2 != 0; }

#if PVFP_HORIZON_AVX2

__attribute__((target("avx2"))) void march_row_avx2(
    const HorizonRowArgs& a) {
    const __m256d zero = _mm256_setzero_pd();
    const __m256d half = _mm256_set1_pd(0.5);
    const __m256d cs_v = _mm256_set1_pd(a.cs);
    const __m256d wm_v = _mm256_set1_pd(a.width_m);
    const __m256d wm1_v = _mm256_set1_pd(static_cast<double>(a.gw - 1));
    const __m256d band_v = _mm256_set1_pd(1.0 - 1e-9);
    const __m128i wm1_i = _mm_set1_epi32(a.gw - 1);
    const __m128i one_i = _mm_set1_epi32(1);

    int i = 0;
    for (; i + 4 <= a.n; i += 4) {
        const __m256d lx0_v = _mm256_loadu_pd(a.lx0 + i);
        const __m256d h0_v = _mm256_loadu_pd(a.h0 + i);
        __m256d rmax_v = zero;
        // All-ones compare mask: lanes deactivate permanently once their
        // lx leaves the raster (lx is monotone in k).
        __m256d active = _mm256_cmp_pd(zero, zero, _CMP_EQ_OQ);
        a.best[i] = 0.0;
        a.best[i + 1] = 0.0;
        a.best[i + 2] = 0.0;
        a.best[i + 3] = 0.0;
        for (int k = 0; k < a.ksteps; ++k) {
            const __m256d lx =
                _mm256_add_pd(lx0_v, _mm256_set1_pd(a.xoff[k]));
            const __m256d inb =
                _mm256_and_pd(_mm256_cmp_pd(lx, zero, _CMP_GE_OQ),
                              _mm256_cmp_pd(lx, wm_v, _CMP_LT_OQ));
            active = _mm256_and_pd(active, inb);
            if (_mm256_movemask_pd(active) == 0) break;

            // Bilinear x half; inactive lanes clamp into the raster, so
            // their gathers stay in bounds and their results are masked
            // off below.
            const __m256d cx =
                _mm256_sub_pd(_mm256_div_pd(lx, cs_v), half);
            const __m256d fx =
                _mm256_min_pd(_mm256_max_pd(cx, zero), wm1_v);
            __m128i x0 = _mm256_cvttpd_epi32(fx);
            x0 = _mm_min_epi32(x0, wm1_i);
            const __m128i x1 =
                _mm_min_epi32(_mm_add_epi32(x0, one_i), wm1_i);
            const __m256d tx =
                _mm256_sub_pd(fx, _mm256_cvtepi32_pd(x0));
            const double* r0 = a.grid + a.row0[k];
            const double* r1 = a.grid + a.row1[k];
            const __m256d g00 = _mm256_i32gather_pd(r0, x0, 8);
            const __m256d g10 = _mm256_i32gather_pd(r0, x1, 8);
            const __m256d g01 = _mm256_i32gather_pd(r1, x0, 8);
            const __m256d g11 = _mm256_i32gather_pd(r1, x1, 8);
            const __m256d top = _mm256_add_pd(
                g00, _mm256_mul_pd(_mm256_sub_pd(g10, g00), tx));
            const __m256d bot = _mm256_add_pd(
                g01, _mm256_mul_pd(_mm256_sub_pd(g11, g01), tx));
            const __m256d h = _mm256_add_pd(
                top, _mm256_mul_pd(_mm256_sub_pd(bot, top),
                                   _mm256_set1_pd(a.ty[k])));

            const __m256d d = _mm256_sub_pd(h, h0_v);
            const __m256d pos = _mm256_and_pd(
                active, _mm256_cmp_pd(d, zero, _CMP_GT_OQ));
            if (_mm256_movemask_pd(pos) == 0) continue;
            const __m256d r =
                _mm256_div_pd(d, _mm256_set1_pd(a.t[k]));
            const __m256d guard = _mm256_and_pd(
                pos, _mm256_cmp_pd(r, _mm256_mul_pd(rmax_v, band_v),
                                   _CMP_GE_OQ));
            const int gm = _mm256_movemask_pd(guard);
            if (gm != 0) {
                alignas(32) double dd[4];
                _mm256_store_pd(dd, d);
                for (int lane = 0; lane < 4; ++lane) {
                    if ((gm & (1 << lane)) == 0) continue;
                    const double ang = std::atan2(dd[lane], a.t[k]);
                    if (ang > a.best[i + lane]) a.best[i + lane] = ang;
                }
            }
            // Positive lanes fold their (positive) ratio into the max;
            // masked lanes contribute +0.0, a no-op against rmax >= 0.
            rmax_v = _mm256_max_pd(rmax_v, _mm256_and_pd(pos, r));
        }
    }
    if (i < a.n) {
        HorizonRowArgs tail = a;
        tail.lx0 = a.lx0 + i;
        tail.h0 = a.h0 + i;
        tail.best = a.best + i;
        tail.n = a.n - i;
        march_row_scalar(tail);
    }
}

#else  // !PVFP_HORIZON_AVX2

void march_row_avx2(const HorizonRowArgs& a) { march_row_scalar(a); }

#endif  // PVFP_HORIZON_AVX2

}  // namespace pvfp::geo::detail

#include "pvfp/geo/raster.hpp"

#include <cmath>

#include "pvfp/util/error.hpp"
#include "pvfp/util/math.hpp"

namespace pvfp::geo {

Raster::Raster(int width, int height, double cell_size, double fill,
               double origin_x, double origin_y)
    : grid_(width, height, fill),
      cell_size_(cell_size),
      origin_x_(origin_x),
      origin_y_(origin_y) {
    check_arg(cell_size > 0.0, "Raster: cell_size must be positive");
}

int Raster::col_of(double wx) const {
    return static_cast<int>(std::floor((wx - origin_x_) / cell_size_));
}

int Raster::row_of(double wy) const {
    return static_cast<int>(std::floor((origin_y_ - wy) / cell_size_));
}

double Raster::sample_bilinear_local(double lx, double ly) const {
    check_arg(width() > 0 && height() > 0,
              "Raster::sample_bilinear_local: empty");
    // Continuous cell-center coordinates.
    const double cx = lx / cell_size_ - 0.5;
    const double cy = ly / cell_size_ - 0.5;
    const double fx = std::clamp(cx, 0.0, static_cast<double>(width() - 1));
    const double fy = std::clamp(cy, 0.0, static_cast<double>(height() - 1));
    const int x0 = std::min(static_cast<int>(fx), width() - 1);
    const int y0 = std::min(static_cast<int>(fy), height() - 1);
    const int x1 = std::min(x0 + 1, width() - 1);
    const int y1 = std::min(y0 + 1, height() - 1);
    const double tx = fx - x0;
    const double ty = fy - y0;
    const double top = lerp(grid_(x0, y0), grid_(x1, y0), tx);
    const double bot = lerp(grid_(x0, y1), grid_(x1, y1), tx);
    return lerp(top, bot, ty);
}

NormalMap NormalMap::from_dsm(const Raster& dsm, int x0, int y0, int w,
                              int h) {
    check_arg(x0 >= 0 && y0 >= 0 && w > 0 && h > 0 &&
                  x0 + w <= dsm.width() && y0 + h <= dsm.height(),
              "NormalMap: window outside raster");
    NormalMap out;
    out.east = pvfp::Grid2D<float>(w, h, 0.0f);
    out.north = pvfp::Grid2D<float>(w, h, 0.0f);
    out.up = pvfp::Grid2D<float>(w, h, 1.0f);
    const double cs = dsm.cell_size();
    for (int wy = 0; wy < h; ++wy) {
        for (int wx = 0; wx < w; ++wx) {
            const int x = x0 + wx;
            const int y = y0 + wy;
            const int xm = std::max(x - 1, 0);
            const int xp = std::min(x + 1, dsm.width() - 1);
            const int ym = std::max(y - 1, 0);
            const int yp = std::min(y + 1, dsm.height() - 1);
            const double dzdx = (dsm(xp, y) - dsm(xm, y)) / ((xp - xm) * cs);
            const double dzdy = (dsm(x, yp) - dsm(x, ym)) / ((yp - ym) * cs);
            // Row index grows south: d(height)/d(north) = -dzdy.
            const double e = -dzdx;
            const double n = dzdy;
            const double norm = std::sqrt(e * e + n * n + 1.0);
            out.east(wx, wy) = static_cast<float>(e / norm);
            out.north(wx, wy) = static_cast<float>(n / norm);
            out.up(wx, wy) = static_cast<float>(1.0 / norm);
        }
    }
    return out;
}

pvfp::Grid2D<double> slope_map(const Raster& dsm) {
    check_arg(dsm.width() >= 2 && dsm.height() >= 2,
              "slope_map: raster too small");
    pvfp::Grid2D<double> out(dsm.width(), dsm.height(), 0.0);
    const double cs = dsm.cell_size();
    for (int y = 0; y < dsm.height(); ++y) {
        for (int x = 0; x < dsm.width(); ++x) {
            const int xm = std::max(x - 1, 0);
            const int xp = std::min(x + 1, dsm.width() - 1);
            const int ym = std::max(y - 1, 0);
            const int yp = std::min(y + 1, dsm.height() - 1);
            const double dzdx = (dsm(xp, y) - dsm(xm, y)) / ((xp - xm) * cs);
            const double dzdy = (dsm(x, yp) - dsm(x, ym)) / ((yp - ym) * cs);
            out(x, y) = std::atan(std::hypot(dzdx, dzdy));
        }
    }
    return out;
}

pvfp::Grid2D<double> aspect_map(const Raster& dsm) {
    check_arg(dsm.width() >= 2 && dsm.height() >= 2,
              "aspect_map: raster too small");
    pvfp::Grid2D<double> out(dsm.width(), dsm.height(), 0.0);
    const double cs = dsm.cell_size();
    for (int y = 0; y < dsm.height(); ++y) {
        for (int x = 0; x < dsm.width(); ++x) {
            const int xm = std::max(x - 1, 0);
            const int xp = std::min(x + 1, dsm.width() - 1);
            const int ym = std::max(y - 1, 0);
            const int yp = std::min(y + 1, dsm.height() - 1);
            const double dzdx = (dsm(xp, y) - dsm(xm, y)) / ((xp - xm) * cs);
            const double dzdy = (dsm(x, yp) - dsm(x, ym)) / ((yp - ym) * cs);
            if (dzdx == 0.0 && dzdy == 0.0) {
                out(x, y) = std::nan("");
                continue;
            }
            // Downslope direction in world coords: (-dzdx, -dzdy) with +y
            // pointing south.  Azimuth measured clockwise from North:
            // az = atan2(east_component, north_component).
            const double east = -dzdx;
            const double north = dzdy;  // +y is south, so north = -(-dzdy)
            out(x, y) = wrap_two_pi(std::atan2(east, north));
        }
    }
    return out;
}

}  // namespace pvfp::geo

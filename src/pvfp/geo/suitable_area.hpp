#pragma once
/// \file suitable_area.hpp
/// Suitable-area extraction (paper Section IV): from a DSM and a roof plane
/// description, identify the grid cells where PV modules may be placed —
/// excluding encumbrances (chimneys, dormers, pipes...) detected as
/// height residuals above the ideal roof plane — and align the result to
/// the virtual placement grid of side s (= the DSM cell size here).
///
/// Output is a PlacementArea: the W x H grid of the paper's Section III-A
/// with its Ng valid cells, plus the roof plane orientation the solar code
/// needs for transposition.

#include "pvfp/geo/raster.hpp"
#include "pvfp/geo/scene.hpp"
#include "pvfp/util/grid2d.hpp"

namespace pvfp::geo {

/// Tunables for encumbrance detection.
struct SuitableAreaOptions {
    /// A cell is an obstacle when DSM height exceeds the ideal roof plane
    /// by more than this [m].  The default accommodates realistic roof
    /// surface structure (undulation/sagging, LiDAR noise: up to ~2 dm)
    /// while still catching real encumbrances (>= 0.4 m).
    double obstacle_tolerance = 0.2;
    /// Keep-out distance around detected obstacles [m] (maintenance access
    /// and mounting-hardware clearance).
    double clearance = 0.4;
    /// Margin from the roof plan rectangle's edges [m].
    double edge_margin = 0.2;
    /// When true, keep only the largest 4-connected valid region (panels
    /// are normally not split across disconnected patches... but the paper
    /// does allow sparse placements, so the default keeps all patches).
    bool keep_largest_component = false;
};

/// The placement domain handed to the floorplanner.
struct PlacementArea {
    /// Bounding-box size in grid cells (the paper's W x H, Table I).
    int width = 0;
    int height = 0;
    /// Validity mask (1 = module area may cover this cell).
    pvfp::Grid2D<unsigned char> valid;
    /// Top-left cell of the bounding box inside the source DSM raster.
    int origin_col = 0;
    int origin_row = 0;
    /// Grid pitch s [m] (equals the DSM cell size).
    double cell_size = 0.2;
    /// Roof plane orientation (for transposition and module temperature).
    double tilt_rad = 0.0;
    double azimuth_rad = 0.0;  ///< downslope azimuth, clockwise from North
    /// Number of valid cells (the paper's Ng).
    int valid_count = 0;

    /// True when (x,y) is inside the bounding box and valid.
    bool is_valid(int x, int y) const {
        return valid.in_bounds(x, y) && valid(x, y) != 0;
    }
};

/// Extract the placement area of roof \p roof_index from \p dsm.
/// The DSM must come from (or be georeferenced like) \p scene so that cell
/// centers map to the same local coordinates.  Cells equal to the DSM's
/// NODATA value are never valid (measured mosaics may have gaps; the
/// scene rasterizer never emits NODATA).  \p mask, when non-null, must
/// have the DSM's dimensions; cells holding 0 are excluded on top of the
/// roof-rectangle test (GIS footprint polygons) but do *not* repel as
/// obstacles in the clearance dilation.  Throws Infeasible when no valid
/// cell remains.
PlacementArea extract_placement_area(const Raster& dsm,
                                     const SceneBuilder& scene,
                                     int roof_index,
                                     const SuitableAreaOptions& options = {},
                                     const pvfp::Grid2D<unsigned char>* mask =
                                         nullptr);

/// Dilate the zero (invalid) cells of \p valid by a Euclidean disc of
/// \p radius_cells cells: any valid cell within the disc of an invalid one
/// becomes invalid.  Exposed for testing.
pvfp::Grid2D<unsigned char> dilate_invalid(
    const pvfp::Grid2D<unsigned char>& valid, double radius_cells);

/// Keep only the largest 4-connected component of nonzero cells; ties are
/// broken toward the first-found component.  Exposed for testing.
pvfp::Grid2D<unsigned char> largest_component(
    const pvfp::Grid2D<unsigned char>& valid);

}  // namespace pvfp::geo

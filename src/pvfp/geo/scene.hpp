#pragma once
/// \file scene.hpp
/// Procedural 3D scene description rasterized into a DSM.
///
/// The paper consumes LiDAR-derived Digital Surface Models of real
/// industrial roofs; those data are proprietary, so this module builds the
/// closest synthetic equivalent: parametric scenes made of pitched roof
/// planes and the encumbrances the paper names (chimneys, dormers, pipes,
/// HVAC boxes, antennas) plus external shading sources (neighbor buildings,
/// trees).  Rasterizing a scene produces exactly the input the rest of the
/// pipeline expects from a real DSM, and the analytic surface lets tests
/// validate the raster path against closed-form heights.
///
/// Local plan frame: x in meters growing east, y in meters growing south,
/// (0,0) at the scene's NW corner.  Azimuths are degrees clockwise from
/// North (S = 180, SW = 225).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pvfp/geo/raster.hpp"

namespace pvfp::geo {

/// Reference level for an obstacle's height.
enum class HeightRef {
    Ground,   ///< absolute: ground level + height
    Surface,  ///< relative: sits on whatever surface is below (e.g. a roof)
};

/// A rectangular single-pitch ("lean-to") roof plane, the roof type of the
/// paper's three case studies (Section V-A: ~49x12 m, 26 deg, facing S/SW).
struct MonopitchRoof {
    std::string name;
    double x = 0.0;       ///< NW corner, local meters
    double y = 0.0;
    double w = 10.0;      ///< extent east-west [m]
    double d = 6.0;       ///< extent north-south [m]
    double eave_height = 3.0;  ///< height of the *lowest* edge [m]
    double tilt_deg = 26.0;    ///< inclination from horizontal
    double azimuth_deg = 180.0;  ///< downslope direction (S = 180)
};

/// Box obstacle: chimney, dormer body, HVAC unit, parapet segment...
struct BoxObstacle {
    double x = 0.0, y = 0.0;  ///< NW corner
    double w = 1.0, d = 1.0;
    double height = 1.0;      ///< above the reference level
    HeightRef ref = HeightRef::Surface;
};

/// A raised linear run (service pipes on industrial roofs — the main
/// encumbrance of the paper's Roof 1).
struct PipeRun {
    double x0 = 0.0, y0 = 0.0;  ///< start point (centerline)
    double x1 = 1.0, y1 = 0.0;  ///< end point
    double width = 0.4;         ///< total width [m]
    double height = 0.5;        ///< above the surface it crosses
};

/// A tree with a conical canopy standing on the ground.
struct Tree {
    double x = 0.0, y = 0.0;  ///< trunk position
    double radius = 2.0;      ///< canopy radius at the base [m]
    double height = 8.0;      ///< total height [m]
};

/// A neighbouring flat-roof building (external shading source).
struct Building {
    double x = 0.0, y = 0.0;
    double w = 10.0, d = 10.0;
    double height = 6.0;
};

/// Fine-scale structure of a roof surface, added on top of the ideal
/// plane.  Real LiDAR DSMs of industrial roofs are not planar: decades of
/// sagging between trusses and mounting irregularities produce decimeter
/// undulation whose local normals modulate the incident beam cell by cell
/// — the source of the broad 75th-percentile irradiance variation visible
/// in the paper's Fig. 6(b).  Amplitudes should stay below the
/// suitable-area obstacle tolerance so texture is not mistaken for
/// encumbrance.
struct RoofTexture {
    /// Sinusoidal undulation along x (east-west): sagging between trusses.
    double undulation_amp_x = 0.0;    ///< [m]
    double undulation_period_x = 5.5; ///< [m]
    /// Undulation along y (north-south): purlin-scale waviness.
    double undulation_amp_y = 0.0;    ///< [m]
    double undulation_period_y = 8.0; ///< [m]
    /// Smooth pseudo-random bumps (value noise on a coarse lattice).
    double noise_amp = 0.0;           ///< [m]
    double noise_scale = 2.5;         ///< lattice spacing [m]
    std::uint32_t seed = 1;
};

/// Scene description + analytic height evaluation + rasterization.
class SceneBuilder {
public:
    /// \p extent_x, \p extent_y: plan size of the modeled area in meters.
    SceneBuilder(double extent_x, double extent_y, double ground_height = 0.0);

    /// Add a roof plane; returns its index (used by suitable-area
    /// extraction and by roof-relative queries).
    int add_roof(MonopitchRoof roof);
    /// Convenience: add a gable roof as two opposite monopitch planes
    /// sharing a ridge along the east-west axis at plan depth-center.
    /// Returns the index of the *south-facing* plane (the second is +1).
    int add_gable_roof(const std::string& name, double x, double y, double w,
                       double d, double eave_height, double tilt_deg);

    void add_box(BoxObstacle box);
    void add_pipe(PipeRun pipe);
    void add_tree(Tree tree);
    void add_building(Building building);

    /// Attach fine-scale surface texture to roof \p roof_index (replaces
    /// any previous texture for that roof).
    void set_roof_texture(int roof_index, const RoofTexture& texture);

    double extent_x() const { return extent_x_; }
    double extent_y() const { return extent_y_; }
    double ground_height() const { return ground_height_; }

    int roof_count() const { return static_cast<int>(roofs_.size()); }
    const MonopitchRoof& roof(int index) const;

    /// Height of roof plane \p index at local (lx, ly), ignoring the plan
    /// rectangle bounds (pure plane equation, *without* texture).  Used by
    /// suitable-area extraction to detect encumbrances as DSM-minus-plane
    /// residuals — texture must stay within the obstacle tolerance.
    double roof_plane_height(int index, double lx, double ly) const;

    /// Texture displacement of roof \p index at (lx, ly); 0 when the roof
    /// has no texture.
    double roof_texture_height(int index, double lx, double ly) const;

    /// True when (lx, ly) lies inside roof \p index's plan rectangle.
    bool inside_roof(int index, double lx, double ly) const;

    /// Analytic surface height at local (lx, ly): the max over ground,
    /// buildings, roof planes, and all obstacles.
    double surface_height(double lx, double ly) const;

    /// Rasterize the surface into a DSM with square cells of \p cell_size.
    /// Cell (0,0) is the NW corner of the scene; heights are sampled at
    /// cell centers.
    Raster rasterize(double cell_size) const;

private:
    /// Height of the base surface (ground, buildings, roofs) only.
    double base_height(double lx, double ly) const;

    double extent_x_;
    double extent_y_;
    double ground_height_;
    std::vector<MonopitchRoof> roofs_;
    std::vector<std::optional<RoofTexture>> textures_;  // aligned to roofs_
    std::vector<BoxObstacle> boxes_;
    std::vector<PipeRun> pipes_;
    std::vector<Tree> trees_;
    std::vector<Building> buildings_;
};

}  // namespace pvfp::geo

#include "pvfp/geo/asc_grid.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>

#include "pvfp/util/error.hpp"

namespace pvfp::geo {
namespace {

std::string lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

/// Mark a header key as seen; a second occurrence is corruption (e.g.
/// two concatenated files) and must not silently win.
void mark_seen(bool& seen, const std::string& key) {
    check_io(!seen, "asc_grid: duplicate header key '" + key + "'");
    seen = true;
}

}  // namespace

AscHeader read_asc_header(std::istream& is) {
    // Header: key/value pairs in flexible order until the first row of
    // numbers.  ncols/nrows/cellsize are mandatory.  operator>> treats
    // '\r' as whitespace, so CRLF (and lone-CR) files parse unchanged.
    long ncols = -1;
    long nrows = -1;
    double xll = 0.0;
    double yll = 0.0;
    bool x_centered = false;  // xllcenter variant (per-axis, ESRI spec)
    bool y_centered = false;
    double cellsize = -1.0;
    double nodata = kDefaultNoData;
    bool seen_ncols = false;
    bool seen_nrows = false;
    bool seen_xll = false;
    bool seen_yll = false;
    bool seen_cellsize = false;
    bool seen_nodata = false;

    std::string token;
    for (;;) {
        const auto pos = is.tellg();
        if (!(is >> token)) throw IoError("asc_grid: truncated header");
        const std::string key = lower(token);
        if (key == "ncols") {
            mark_seen(seen_ncols, key);
            check_io(static_cast<bool>(is >> ncols), "asc_grid: bad ncols");
        } else if (key == "nrows") {
            mark_seen(seen_nrows, key);
            check_io(static_cast<bool>(is >> nrows), "asc_grid: bad nrows");
        } else if (key == "xllcorner" || key == "xllcenter") {
            mark_seen(seen_xll, "xllcorner/xllcenter");
            check_io(static_cast<bool>(is >> xll), "asc_grid: bad " + key);
            x_centered = (key == "xllcenter");
        } else if (key == "yllcorner" || key == "yllcenter") {
            mark_seen(seen_yll, "yllcorner/yllcenter");
            check_io(static_cast<bool>(is >> yll), "asc_grid: bad " + key);
            y_centered = (key == "yllcenter");
        } else if (key == "cellsize") {
            mark_seen(seen_cellsize, key);
            check_io(static_cast<bool>(is >> cellsize),
                     "asc_grid: bad cellsize");
        } else if (key == "nodata_value") {
            mark_seen(seen_nodata, key);
            check_io(static_cast<bool>(is >> nodata),
                     "asc_grid: bad NODATA_value");
        } else {
            // First data token: rewind and stop header parsing.
            is.clear();
            is.seekg(pos);
            break;
        }
    }

    check_io(ncols > 0 && nrows > 0, "asc_grid: missing/invalid ncols/nrows");
    check_io(cellsize > 0.0, "asc_grid: missing/invalid cellsize");
    check_io(ncols * nrows <=
                 static_cast<long>(std::numeric_limits<int>::max()),
             "asc_grid: grid too large");

    AscHeader header;
    header.ncols = ncols;
    header.nrows = nrows;
    // Normalize the center variants to the corner convention, per axis.
    header.xllcorner = x_centered ? xll - 0.5 * cellsize : xll;
    header.yllcorner = y_centered ? yll - 0.5 * cellsize : yll;
    header.cellsize = cellsize;
    header.nodata = nodata;
    return header;
}

AscHeader read_asc_header_file(const std::string& path) {
    std::ifstream is(path);
    check_io(is.good(), "asc_grid: cannot open '" + path + "'");
    return read_asc_header(is);
}

Raster read_asc_grid(std::istream& is) {
    const AscHeader header = read_asc_header(is);

    // Raster origin is the top-left (NW) corner; the header gives the
    // bottom-left (SW) corner, nrows*cellsize further south.
    const double origin_x = header.xllcorner;
    const double origin_y =
        header.yllcorner + static_cast<double>(header.nrows) * header.cellsize;
    Raster raster(static_cast<int>(header.ncols),
                  static_cast<int>(header.nrows), header.cellsize, 0.0,
                  origin_x, origin_y);
    raster.set_nodata(header.nodata);

    for (int y = 0; y < raster.height(); ++y) {
        for (int x = 0; x < raster.width(); ++x) {
            double v = 0.0;
            check_io(static_cast<bool>(is >> v),
                     "asc_grid: truncated data section");
            raster(x, y) = v;
        }
    }
    return raster;
}

Raster read_asc_grid_file(const std::string& path) {
    std::ifstream is(path);
    check_io(is.good(), "asc_grid: cannot open '" + path + "'");
    return read_asc_grid(is);
}

void write_asc_grid(const Raster& raster, std::ostream& os) {
    // Georeferencing must survive the text round trip exactly enough for
    // lattice-alignment checks (UTM eastings/northings have 6-7 integer
    // digits); the default 6 significant digits would truncate them.
    const std::streamsize saved_precision = os.precision(12);
    os << "ncols " << raster.width() << '\n';
    os << "nrows " << raster.height() << '\n';
    os << "xllcorner " << raster.origin_x() << '\n';
    os << "yllcorner "
       << raster.origin_y() - raster.height() * raster.cell_size() << '\n';
    os << "cellsize " << raster.cell_size() << '\n';
    os << "NODATA_value " << raster.nodata() << '\n';
    os.precision(6);
    for (int y = 0; y < raster.height(); ++y) {
        for (int x = 0; x < raster.width(); ++x) {
            if (x) os << ' ';
            os << raster(x, y);
        }
        os << '\n';
    }
    os.precision(saved_precision);
}

void write_asc_grid_file(const Raster& raster, const std::string& path) {
    std::ofstream os(path);
    check_io(os.good(), "asc_grid: cannot open '" + path + "' for writing");
    write_asc_grid(raster, os);
    check_io(os.good(), "asc_grid: write to '" + path + "' failed");
}

}  // namespace pvfp::geo

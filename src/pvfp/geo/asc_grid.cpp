#include "pvfp/geo/asc_grid.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>

#include "pvfp/util/error.hpp"

namespace pvfp::geo {
namespace {

std::string lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

}  // namespace

Raster read_asc_grid(std::istream& is) {
    // Header: key/value pairs in flexible order until the first row of
    // numbers.  ncols/nrows/cellsize are mandatory.
    long ncols = -1;
    long nrows = -1;
    double xll = 0.0;
    double yll = 0.0;
    bool centered = false;  // xllcenter/yllcenter variant
    double cellsize = -1.0;
    double nodata = kDefaultNoData;

    std::string token;
    // Read header keys.
    for (;;) {
        const auto pos = is.tellg();
        if (!(is >> token)) throw IoError("asc_grid: truncated header");
        const std::string key = lower(token);
        if (key == "ncols") {
            check_io(static_cast<bool>(is >> ncols), "asc_grid: bad ncols");
        } else if (key == "nrows") {
            check_io(static_cast<bool>(is >> nrows), "asc_grid: bad nrows");
        } else if (key == "xllcorner" || key == "xllcenter") {
            check_io(static_cast<bool>(is >> xll), "asc_grid: bad xllcorner");
            centered = (key == "xllcenter");
        } else if (key == "yllcorner" || key == "yllcenter") {
            check_io(static_cast<bool>(is >> yll), "asc_grid: bad yllcorner");
        } else if (key == "cellsize") {
            check_io(static_cast<bool>(is >> cellsize),
                     "asc_grid: bad cellsize");
        } else if (key == "nodata_value") {
            check_io(static_cast<bool>(is >> nodata),
                     "asc_grid: bad NODATA_value");
        } else {
            // First data token: rewind and stop header parsing.
            is.clear();
            is.seekg(pos);
            break;
        }
    }

    check_io(ncols > 0 && nrows > 0, "asc_grid: missing/invalid ncols/nrows");
    check_io(cellsize > 0.0, "asc_grid: missing/invalid cellsize");
    check_io(ncols * nrows <=
                 static_cast<long>(std::numeric_limits<int>::max()),
             "asc_grid: grid too large");

    const double half = centered ? 0.5 * cellsize : 0.0;
    // Raster origin is the top-left (NW) corner; the header gives the
    // bottom-left (SW) corner, nrows*cellsize further south.
    const double origin_x = xll - half;
    const double origin_y = (yll - half) + static_cast<double>(nrows) * cellsize;
    Raster raster(static_cast<int>(ncols), static_cast<int>(nrows), cellsize,
                  0.0, origin_x, origin_y);
    raster.set_nodata(nodata);

    for (int y = 0; y < raster.height(); ++y) {
        for (int x = 0; x < raster.width(); ++x) {
            double v = 0.0;
            check_io(static_cast<bool>(is >> v),
                     "asc_grid: truncated data section");
            raster(x, y) = v;
        }
    }
    return raster;
}

Raster read_asc_grid_file(const std::string& path) {
    std::ifstream is(path);
    check_io(is.good(), "asc_grid: cannot open '" + path + "'");
    return read_asc_grid(is);
}

void write_asc_grid(const Raster& raster, std::ostream& os) {
    os << "ncols " << raster.width() << '\n';
    os << "nrows " << raster.height() << '\n';
    os << "xllcorner " << raster.origin_x() << '\n';
    os << "yllcorner "
       << raster.origin_y() - raster.height() * raster.cell_size() << '\n';
    os << "cellsize " << raster.cell_size() << '\n';
    os << "NODATA_value " << raster.nodata() << '\n';
    os.precision(6);
    for (int y = 0; y < raster.height(); ++y) {
        for (int x = 0; x < raster.width(); ++x) {
            if (x) os << ' ';
            os << raster(x, y);
        }
        os << '\n';
    }
}

void write_asc_grid_file(const Raster& raster, const std::string& path) {
    std::ofstream os(path);
    check_io(os.good(), "asc_grid: cannot open '" + path + "' for writing");
    write_asc_grid(raster, os);
    check_io(os.good(), "asc_grid: write to '" + path + "' failed");
}

}  // namespace pvfp::geo

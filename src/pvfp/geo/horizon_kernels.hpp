#pragma once
/// \file horizon_kernels.hpp
/// Batched ray-march kernels behind HorizonMap: all cells of a window row
/// march one azimuth sector together.
///
/// The per-cell marcher (geo/horizon.cpp) recomputes, for every cell, the
/// same step schedule (the t_k sequence is cell-independent), the same
/// direction offsets (t_k * dir is cell-independent), and the same
/// y-half of the bilinear DSM sample (all cells of a window row share
/// ly = ly0 + t_k * diry, hence the same source rows and y-fraction), and
/// calls scalar atan2 at every step that sees terrain above the observer.
/// The batched engine hoists all of that:
///
///   * HorizonSchedule precomputes the t_k sequence and, per sector, the
///     rounded offsets fl(t_k * dirx) / fl(t_k * diry) once per build;
///   * horizon_row_batched precomputes the shared y-interpolation plan
///     (source row offsets + y-fraction) once per (sector, row);
///   * the row kernels keep only the per-lane x-half of the bilinear
///     sample plus a running max of the elevation *ratio* per lane, and
///     defer atan2 to the rare steps whose ratio reaches the running max
///     (a 1e-9 relative guard band keeps every step that could win under
///     rounding) — O(log steps) libm calls per (cell, sector) instead of
///     O(steps);
///   * AVX2/AVX-512 twins vectorize the per-lane work across window
///     cells (runtime dispatch via util/simd, same contract as the
///     irradiance kernels).
///
/// Bitwise contract: every level — scalar batched, AVX2, AVX-512 —
/// produces horizon angles bitwise-identical to the retained per-cell
/// oracle (horizon_map_reference), because each step's lx/ly/bilinear/
/// atan2 arithmetic is the exact scalar operation sequence (mul+add,
/// never FMA; the build sets -ffp-contract=off) and the running max of
/// atan2 evaluations provably equals the per-step running max.
/// tests/geo/test_horizon_kernels pins this differentially.

#include <cstddef>
#include <vector>

#include "pvfp/geo/horizon.hpp"
#include "pvfp/geo/raster.hpp"

namespace pvfp::geo {

/// Cell-independent part of the march for one (HorizonOptions, cell size)
/// pair: the step distances and the per-sector direction offsets, rounded
/// exactly as the per-cell marcher rounds them.
struct HorizonSchedule {
    int sectors = 0;
    int steps = 0;
    /// Step distances t_k [m], ascending; the exact accumulation sequence
    /// of the per-cell marcher (t += dt; dt = min(dt*growth, max_step)).
    std::vector<double> t;
    /// Per-sector sample offsets, sector-major: xoff[s*steps + k] is
    /// fl(t_k * sin(az_s)); yoff likewise with -cos(az_s).
    std::vector<double> xoff;
    std::vector<double> yoff;
};

/// Build the schedule for \p options over a raster with \p cell_size.
/// Preconditions mirror the HorizonMap ctor (validated there).
HorizonSchedule make_horizon_schedule(const HorizonOptions& options,
                                      double cell_size);

/// March one window row (cells (x0..x0+win_w-1, y) of \p dsm) through all
/// sectors of \p sched and write the results:
///   angles_row[s*plane_stride + i] = float horizon angle of cell i in
///   sector s; svf_row[i] = float sky-view factor.
/// Dispatches on pvfp::simd_level(); every level is bitwise-identical to
/// the per-cell oracle.
void horizon_row_batched(const Raster& dsm, int x0, int y, int win_w,
                         const HorizonSchedule& sched, double observer_offset,
                         float* angles_row, std::size_t plane_stride,
                         float* svf_row);

namespace detail {

/// One (sector, row) march, fully precomputed: the kernels only run the
/// per-lane x-half of the bilinear sample and the ratio-max/atan2 logic.
struct HorizonRowArgs {
    const double* grid = nullptr;  ///< DSM heights, row-major.
    int gw = 0;                    ///< Raster width [cells].
    double cs = 0.0;               ///< Cell size [m].
    double width_m = 0.0;          ///< Raster width [m] (gw * cs).
    const double* lx0 = nullptr;   ///< Per-lane local x of cell centers [n].
    const double* h0 = nullptr;    ///< Per-lane observer heights [n].
    int n = 0;                     ///< Lanes (window row width).
    const double* t = nullptr;     ///< Step distances [ksteps].
    const double* xoff = nullptr;  ///< Per-step x offsets [ksteps].
    const std::size_t* row0 = nullptr;  ///< Bilinear top-row offsets [ksteps].
    const std::size_t* row1 = nullptr;  ///< Bilinear bottom-row offsets.
    const double* ty = nullptr;    ///< Bilinear y fractions [ksteps].
    int ksteps = 0;                ///< Steps before the shared ly exits.
    double* best = nullptr;        ///< Out: per-lane horizon angle [n].
};

void march_row_scalar(const HorizonRowArgs& a);
void march_row_avx2(const HorizonRowArgs& a);
void march_row_avx512(const HorizonRowArgs& a);

/// True when the translation unit carrying the AVX2/AVX-512 twin was
/// compiled with real intrinsics (x86-64 + GCC/Clang); otherwise the twin
/// is a stub that delegates to the scalar kernel.
bool horizon_avx2_compiled();
bool horizon_avx512_compiled();

}  // namespace detail

}  // namespace pvfp::geo

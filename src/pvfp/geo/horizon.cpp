#include "pvfp/geo/horizon.hpp"

#include <cassert>
#include <cmath>
#include <utility>

#include "pvfp/geo/horizon_kernels.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/math.hpp"
#include "pvfp/util/parallel.hpp"

namespace pvfp::geo {
namespace {

/// March from the center of cell (x,y) along \p azimuth and return the
/// maximum elevation angle seen.  \p growth >= 1 controls step growth.
double march(const Raster& dsm, int x, int y, double azimuth_rad,
             double max_distance, double step, double growth,
             double max_step, double observer_offset) {
    const double lx0 = dsm.local_x(x);
    const double ly0 = dsm.local_y(y);
    const double h0 = dsm(x, y) + observer_offset;
    // Local frame: x east, y south; azimuth clockwise from North.
    const double dirx = std::sin(azimuth_rad);
    const double diry = -std::cos(azimuth_rad);

    const double width_m = dsm.width() * dsm.cell_size();
    const double height_m = dsm.height() * dsm.cell_size();

    double best = 0.0;  // horizons below the horizontal do not shade
    double t = step;
    double dt = step;
    while (t <= max_distance) {
        const double lx = lx0 + t * dirx;
        const double ly = ly0 + t * diry;
        if (lx < 0.0 || ly < 0.0 || lx >= width_m || ly >= height_m) break;
        const double h = dsm.sample_bilinear_local(lx, ly);
        if (h > h0) {
            const double ang = std::atan2(h - h0, t);
            if (ang > best) best = ang;
        }
        dt = std::min(dt * growth, max_step);
        t += dt;
    }
    return best;
}

void validate_build(const Raster& dsm, int x0, int y0, int win_w, int win_h,
                    const HorizonOptions& options) {
    check_arg(win_w > 0 && win_h > 0, "HorizonMap: empty window");
    check_arg(x0 >= 0 && y0 >= 0 && x0 + win_w <= dsm.width() &&
                  y0 + win_h <= dsm.height(),
              "HorizonMap: window outside raster");
    check_arg(options.azimuth_sectors >= 4,
              "HorizonMap: need at least 4 azimuth sectors");
    check_arg(std::isfinite(options.max_distance) &&
                  std::isfinite(options.step_factor) &&
                  std::isfinite(options.step_growth) &&
                  std::isfinite(options.max_step_factor) &&
                  std::isfinite(options.observer_offset),
              "HorizonMap: non-finite marching parameter");
    check_arg(options.max_distance > 0.0 && options.step_factor > 0.0 &&
                  options.step_growth >= 1.0 &&
                  options.max_step_factor >= options.step_factor,
              "HorizonMap: invalid marching parameters");
    check_arg(options.observer_offset >= 0.0,
              "HorizonMap: observer_offset must be >= 0");
}

}  // namespace

HorizonMap::HorizonMap(const Raster& dsm, int x0, int y0, int win_w,
                       int win_h, const HorizonOptions& options)
    : x0_(x0), y0_(y0), win_w_(win_w), win_h_(win_h),
      sectors_(options.azimuth_sectors) {
    validate_build(dsm, x0, y0, win_w, win_h, options);

    angles_.resize(static_cast<std::size_t>(win_w) * win_h * sectors_);
    svf_.resize(static_cast<std::size_t>(win_w) * win_h);

    // The win_h x win_w x sectors ray sweep is the prepare-time
    // bottleneck.  The batched engine marches all cells of a window row
    // through one sector together (shared step schedule and direction
    // offsets, shared bilinear y half, SIMD lanes across cells — see
    // horizon_kernels.hpp); rows are independent (each writes its own
    // angles_/svf_ slice), so parallelize over window rows.  One row per
    // chunk keeps the grid thread-count independent, hence deterministic.
    const HorizonSchedule sched =
        make_horizon_schedule(options, dsm.cell_size());
    const std::size_t ncells = static_cast<std::size_t>(cell_count());
    parallel_for(0, win_h, 1, [&](long row_begin, long row_end) {
        for (long wy = row_begin; wy < row_end; ++wy) {
            const std::size_t ri = static_cast<std::size_t>(wy) * win_w;
            horizon_row_batched(dsm, x0, y0 + static_cast<int>(wy), win_w,
                                sched, options.observer_offset,
                                angles_.data() + ri, ncells,
                                svf_.data() + ri);
        }
    });
}

HorizonMap HorizonMap::from_planes(int x0, int y0, int win_w, int win_h,
                                   int sectors, std::vector<float> angles,
                                   std::vector<float> svf) {
    check_arg(win_w > 0 && win_h > 0, "HorizonMap::from_planes: empty window");
    check_arg(sectors >= 4,
              "HorizonMap::from_planes: need at least 4 azimuth sectors");
    const std::size_t ncells = static_cast<std::size_t>(win_w) * win_h;
    check_arg(angles.size() == ncells * static_cast<std::size_t>(sectors),
              "HorizonMap::from_planes: angle plane size mismatch");
    check_arg(svf.size() == ncells,
              "HorizonMap::from_planes: svf plane size mismatch");
    HorizonMap map;
    map.x0_ = x0;
    map.y0_ = y0;
    map.win_w_ = win_w;
    map.win_h_ = win_h;
    map.sectors_ = sectors;
    map.angles_ = std::move(angles);
    map.svf_ = std::move(svf);
    return map;
}

std::size_t HorizonMap::cell_index(int wx, int wy) const {
    // Internal hot path: every public entry (horizon, horizon_at,
    // sky_view_factor) validates its bounds first, so only a debug
    // assert remains here.
    assert(wx >= 0 && wx < win_w_ && wy >= 0 && wy < win_h_);
    return static_cast<std::size_t>(wy) * win_w_ +
           static_cast<std::size_t>(wx);
}

double HorizonMap::horizon(int wx, int wy, int s) const {
    check_arg(wx >= 0 && wx < win_w_ && wy >= 0 && wy < win_h_,
              "HorizonMap: window cell out of range");
    check_arg(s >= 0 && s < sectors_, "HorizonMap::horizon: bad sector");
    return angles_[static_cast<std::size_t>(s) *
                       static_cast<std::size_t>(cell_count()) +
                   cell_index(wx, wy)];
}

double HorizonMap::horizon_at(int wx, int wy, double azimuth_rad) const {
    check_arg(wx >= 0 && wx < win_w_ && wy >= 0 && wy < win_h_,
              "HorizonMap: window cell out of range");
    return horizon_at_unchecked(wx, wy, azimuth_rad);
}

bool HorizonMap::is_shaded(int wx, int wy, double azimuth_rad,
                           double elevation_rad) const {
    check_arg(wx >= 0 && wx < win_w_ && wy >= 0 && wy < win_h_,
              "HorizonMap: window cell out of range");
    return is_shaded_unchecked(wx, wy, azimuth_rad, elevation_rad);
}

double HorizonMap::sky_view_factor(int wx, int wy) const {
    check_arg(wx >= 0 && wx < win_w_ && wy >= 0 && wy < win_h_,
              "HorizonMap: window cell out of range");
    return sky_view_factor_unchecked(wx, wy);
}

double HorizonMap::horizon_at_unchecked(int wx, int wy,
                                        double azimuth_rad) const {
    const std::size_t ci = cell_index(wx, wy);
    const std::size_t ncells = static_cast<std::size_t>(cell_count());
    const double pos = wrap_two_pi(azimuth_rad) / kTwoPi * sectors_;
    const int s0 = static_cast<int>(pos) % sectors_;
    const int s1 = (s0 + 1) % sectors_;
    const double frac = pos - std::floor(pos);
    const double a0 = angles_[static_cast<std::size_t>(s0) * ncells + ci];
    const double a1 = angles_[static_cast<std::size_t>(s1) * ncells + ci];
    return lerp(a0, a1, frac);
}

bool HorizonMap::is_shaded_unchecked(int wx, int wy, double azimuth_rad,
                                     double elevation_rad) const {
    if (elevation_rad <= 0.0) return true;
    return elevation_rad < horizon_at_unchecked(wx, wy, azimuth_rad);
}

double HorizonMap::sky_view_factor_unchecked(int wx, int wy) const {
    return svf_[cell_index(wx, wy)];
}

HorizonMap horizon_map_reference(const Raster& dsm, int x0, int y0,
                                 int win_w, int win_h,
                                 const HorizonOptions& options) {
    validate_build(dsm, x0, y0, win_w, win_h, options);
    const int sectors = options.azimuth_sectors;
    const double step = options.step_factor * dsm.cell_size();
    const std::size_t ncells = static_cast<std::size_t>(win_w) * win_h;
    std::vector<float> angles(ncells * static_cast<std::size_t>(sectors));
    std::vector<float> svf(ncells);

    // The original per-cell build loop, retained verbatim as the
    // differential oracle for the batched kernels.
    parallel_for(0, win_h, 1, [&](long row_begin, long row_end) {
        for (long wy = row_begin; wy < row_end; ++wy) {
            for (int wx = 0; wx < win_w; ++wx) {
                const std::size_t ci =
                    static_cast<std::size_t>(wy) * win_w + wx;
                double svf_acc = 0.0;
                for (int s = 0; s < sectors; ++s) {
                    const double az = kTwoPi * s / sectors;
                    const double ang = march(
                        dsm, x0 + wx, y0 + static_cast<int>(wy), az,
                        options.max_distance, step, options.step_growth,
                        options.max_step_factor * dsm.cell_size(),
                        options.observer_offset);
                    angles[static_cast<std::size_t>(s) * ncells + ci] =
                        static_cast<float>(ang);
                    const double c = std::cos(ang);
                    svf_acc += c * c;
                }
                svf[ci] = static_cast<float>(svf_acc / sectors);
            }
        }
    });
    return HorizonMap::from_planes(x0, y0, win_w, win_h, sectors,
                                   std::move(angles), std::move(svf));
}

double brute_force_horizon(const Raster& dsm, int x, int y,
                           double azimuth_rad,
                           const HorizonOptions& options) {
    check_arg(dsm.in_bounds(x, y), "brute_force_horizon: cell out of bounds");
    const double step = options.step_factor * dsm.cell_size();
    return march(dsm, x, y, azimuth_rad, options.max_distance, step,
                 /*growth=*/1.0, /*max_step=*/step,
                 options.observer_offset);
}

}  // namespace pvfp::geo

#pragma once
/// \file shadow.hpp
/// Whole-raster shadow maps for a given sun position.
///
/// The production path tests shading through HorizonMap (O(1) per cell and
/// time step); this module provides the direct, brute-force computation of
/// a binary shadow raster for one sun position.  It serves three purposes:
/// validation target for the horizon method in tests, visualization of
/// shading patterns (examples), and small one-off queries.

#include "pvfp/geo/horizon.hpp"
#include "pvfp/geo/raster.hpp"
#include "pvfp/util/grid2d.hpp"

namespace pvfp::geo {

/// True when cell (x,y) of \p dsm is shaded for a sun at
/// (azimuth, elevation) [rad]: some obstruction along the sun azimuth rises
/// above the ray to the sun.  Sun at or below the horizon shades everything.
bool is_shaded_brute_force(const Raster& dsm, int x, int y,
                           double sun_azimuth_rad, double sun_elevation_rad,
                           const HorizonOptions& options = {});

/// Binary shadow map over the full raster: 1 = shaded, 0 = sunlit.
pvfp::Grid2D<unsigned char> shadow_map(const Raster& dsm,
                                       double sun_azimuth_rad,
                                       double sun_elevation_rad,
                                       const HorizonOptions& options = {});

/// Fraction of daylight shading per cell accumulated over a set of sun
/// positions (used to visualize yearly shading patterns): for each cell,
/// the fraction of the provided positions in which it is shaded.  Sun
/// positions with elevation <= 0 are skipped.
struct SunPosition {
    double azimuth_rad = 0.0;
    double elevation_rad = 0.0;
};

pvfp::Grid2D<double> shading_fraction_map(
    const Raster& dsm, const std::vector<SunPosition>& positions,
    const HorizonOptions& options = {});

}  // namespace pvfp::geo

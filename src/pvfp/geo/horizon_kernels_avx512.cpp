/// \file horizon_kernels_avx512.cpp
/// AVX-512 twin of the batched horizon row marcher: eight double lanes
/// with masked loads, so the window-row remainder runs masked instead of
/// falling back to a scalar tail loop.  Same bitwise contract and
/// dispatch rules as the AVX2 twin (see horizon_kernels_avx2.cpp).

#include "pvfp/geo/horizon_kernels.hpp"

#if (defined(__x86_64__) || defined(__amd64__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define PVFP_HORIZON_AVX512 1
#include <immintrin.h>

#include <cmath>
#else
#define PVFP_HORIZON_AVX512 0
#endif

namespace pvfp::geo::detail {

bool horizon_avx512_compiled() { return PVFP_HORIZON_AVX512 != 0; }

#if PVFP_HORIZON_AVX512

__attribute__((target("avx512f,avx512vl"))) void march_row_avx512(
    const HorizonRowArgs& a) {
    const __m512d zero = _mm512_setzero_pd();
    const __m512d half = _mm512_set1_pd(0.5);
    const __m512d cs_v = _mm512_set1_pd(a.cs);
    const __m512d wm_v = _mm512_set1_pd(a.width_m);
    const __m512d wm1_v = _mm512_set1_pd(static_cast<double>(a.gw - 1));
    const __m512d band_v = _mm512_set1_pd(1.0 - 1e-9);
    const __m256i wm1_i = _mm256_set1_epi32(a.gw - 1);
    const __m256i one_i = _mm256_set1_epi32(1);

    for (int i = 0; i < a.n; i += 8) {
        const int rem = a.n - i;
        const __mmask8 lanes =
            rem >= 8 ? static_cast<__mmask8>(0xff)
                     : static_cast<__mmask8>((1u << rem) - 1u);
        // Masked loads: dead lanes read as 0.0 and never escape `lanes`.
        const __m512d lx0_v = _mm512_maskz_loadu_pd(lanes, a.lx0 + i);
        const __m512d h0_v = _mm512_maskz_loadu_pd(lanes, a.h0 + i);
        __m512d rmax_v = zero;
        __mmask8 active = lanes;
        const int nlanes = rem >= 8 ? 8 : rem;
        for (int lane = 0; lane < nlanes; ++lane) a.best[i + lane] = 0.0;
        for (int k = 0; k < a.ksteps; ++k) {
            const __m512d lx =
                _mm512_add_pd(lx0_v, _mm512_set1_pd(a.xoff[k]));
            const __mmask8 inb =
                _mm512_cmp_pd_mask(lx, zero, _CMP_GE_OQ) &
                _mm512_cmp_pd_mask(lx, wm_v, _CMP_LT_OQ);
            active &= inb;
            if (active == 0) break;

            const __m512d cx =
                _mm512_sub_pd(_mm512_div_pd(lx, cs_v), half);
            const __m512d fx =
                _mm512_min_pd(_mm512_max_pd(cx, zero), wm1_v);
            __m256i x0 = _mm512_cvttpd_epi32(fx);
            x0 = _mm256_min_epi32(x0, wm1_i);
            const __m256i x1 =
                _mm256_min_epi32(_mm256_add_epi32(x0, one_i), wm1_i);
            const __m512d tx =
                _mm512_sub_pd(fx, _mm512_cvtepi32_pd(x0));
            const double* r0 = a.grid + a.row0[k];
            const double* r1 = a.grid + a.row1[k];
            const __m512d g00 = _mm512_i32gather_pd(x0, r0, 8);
            const __m512d g10 = _mm512_i32gather_pd(x1, r0, 8);
            const __m512d g01 = _mm512_i32gather_pd(x0, r1, 8);
            const __m512d g11 = _mm512_i32gather_pd(x1, r1, 8);
            const __m512d top = _mm512_add_pd(
                g00, _mm512_mul_pd(_mm512_sub_pd(g10, g00), tx));
            const __m512d bot = _mm512_add_pd(
                g01, _mm512_mul_pd(_mm512_sub_pd(g11, g01), tx));
            const __m512d h = _mm512_add_pd(
                top, _mm512_mul_pd(_mm512_sub_pd(bot, top),
                                   _mm512_set1_pd(a.ty[k])));

            const __m512d d = _mm512_sub_pd(h, h0_v);
            const __mmask8 pos =
                active & _mm512_cmp_pd_mask(d, zero, _CMP_GT_OQ);
            if (pos == 0) continue;
            const __m512d r =
                _mm512_div_pd(d, _mm512_set1_pd(a.t[k]));
            const __mmask8 guard =
                pos & _mm512_cmp_pd_mask(
                          r, _mm512_mul_pd(rmax_v, band_v), _CMP_GE_OQ);
            if (guard != 0) {
                alignas(64) double dd[8];
                _mm512_store_pd(dd, d);
                for (int lane = 0; lane < 8; ++lane) {
                    if ((guard & (1 << lane)) == 0) continue;
                    const double ang = std::atan2(dd[lane], a.t[k]);
                    if (ang > a.best[i + lane]) a.best[i + lane] = ang;
                }
            }
            rmax_v = _mm512_mask_max_pd(rmax_v, pos, rmax_v, r);
        }
    }
}

#else  // !PVFP_HORIZON_AVX512

void march_row_avx512(const HorizonRowArgs& a) { march_row_scalar(a); }

#endif  // PVFP_HORIZON_AVX512

}  // namespace pvfp::geo::detail

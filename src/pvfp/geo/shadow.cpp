#include "pvfp/geo/shadow.hpp"

#include "pvfp/util/error.hpp"

namespace pvfp::geo {

bool is_shaded_brute_force(const Raster& dsm, int x, int y,
                           double sun_azimuth_rad, double sun_elevation_rad,
                           const HorizonOptions& options) {
    if (sun_elevation_rad <= 0.0) return true;
    const double horizon =
        brute_force_horizon(dsm, x, y, sun_azimuth_rad, options);
    return sun_elevation_rad < horizon;
}

pvfp::Grid2D<unsigned char> shadow_map(const Raster& dsm,
                                       double sun_azimuth_rad,
                                       double sun_elevation_rad,
                                       const HorizonOptions& options) {
    pvfp::Grid2D<unsigned char> out(dsm.width(), dsm.height(), 0);
    for (int y = 0; y < dsm.height(); ++y) {
        for (int x = 0; x < dsm.width(); ++x) {
            out(x, y) = is_shaded_brute_force(dsm, x, y, sun_azimuth_rad,
                                              sun_elevation_rad, options)
                            ? 1
                            : 0;
        }
    }
    return out;
}

pvfp::Grid2D<double> shading_fraction_map(
    const Raster& dsm, const std::vector<SunPosition>& positions,
    const HorizonOptions& options) {
    pvfp::Grid2D<double> out(dsm.width(), dsm.height(), 0.0);
    int daylight = 0;
    for (const auto& p : positions) {
        if (p.elevation_rad <= 0.0) continue;
        ++daylight;
        for (int y = 0; y < dsm.height(); ++y) {
            for (int x = 0; x < dsm.width(); ++x) {
                if (is_shaded_brute_force(dsm, x, y, p.azimuth_rad,
                                          p.elevation_rad, options))
                    out(x, y) += 1.0;
            }
        }
    }
    check_arg(daylight > 0,
              "shading_fraction_map: no daylight sun positions given");
    for (double& v : out.data()) v /= daylight;
    return out;
}

}  // namespace pvfp::geo

#include "pvfp/geo/poly_raster.hpp"

#include <algorithm>

#include "pvfp/util/error.hpp"

namespace pvfp::geo {

bool point_in_polygon_even_odd(
    double px, double py, const std::vector<std::array<double, 2>>& poly) {
    bool inside = false;
    const std::size_t n = poly.size();
    for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
        const double xi = poly[i][0];
        const double yi = poly[i][1];
        const double xj = poly[j][0];
        const double yj = poly[j][1];
        // Boundary hardening: exactly on vertex i, or exactly on a
        // horizontal edge (closed interval), is inside.
        if (yi == py && xi == px) return true;
        if (yi == py && yj == py && std::min(xi, xj) <= px &&
            px <= std::max(xi, xj))
            return true;
        if ((yi > py) != (yj > py) &&
            px < (xj - xi) * (py - yi) / (yj - yi) + xi)
            inside = !inside;
    }
    return inside;
}

namespace {

/// Closed x interval of boundary samples on one row (a vertex
/// degenerates to lo == hi).
struct BoundarySpan {
    double lo;
    double hi;
};

}  // namespace

pvfp::Grid2D<unsigned char> rasterize_polygon_even_odd(
    const std::vector<std::array<double, 2>>& poly, int width, int height,
    double cell_size, double origin_x, double origin_y) {
    check_arg(width >= 0 && height >= 0,
              "rasterize_polygon_even_odd: negative window");
    check_arg(cell_size > 0.0,
              "rasterize_polygon_even_odd: cell_size must be > 0");
    pvfp::Grid2D<unsigned char> out(width, height, 0);
    const std::size_t n = poly.size();
    if (n == 0) return out;

    std::vector<double> crossings;
    std::vector<BoundarySpan> boundary;
    crossings.reserve(n);
    for (int y = 0; y < height; ++y) {
        const double py = origin_y - (y + 0.5) * cell_size;
        crossings.clear();
        boundary.clear();
        for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
            const double xi = poly[i][0];
            const double yi = poly[i][1];
            const double xj = poly[j][0];
            const double yj = poly[j][1];
            if (yi == py) {
                if (yj == py)
                    boundary.push_back(
                        {std::min(xi, xj), std::max(xi, xj)});
                else
                    boundary.push_back({xi, xi});
            }
            if ((yi > py) != (yj > py))
                crossings.push_back((xj - xi) * (py - yi) / (yj - yi) + xi);
        }
        std::sort(crossings.begin(), crossings.end());
        if (!boundary.empty()) {
            // Union of the closed spans: containment in the merged set is
            // containment in at least one original span.
            std::sort(boundary.begin(), boundary.end(),
                      [](const BoundarySpan& a, const BoundarySpan& b) {
                          return a.lo < b.lo;
                      });
            std::size_t m = 0;
            for (std::size_t k = 1; k < boundary.size(); ++k) {
                if (boundary[k].lo <= boundary[m].hi)
                    boundary[m].hi =
                        std::max(boundary[m].hi, boundary[k].hi);
                else
                    boundary[++m] = boundary[k];
            }
            boundary.resize(m + 1);
        }

        // Left-to-right sweep: px is strictly increasing in x, so the
        // count of crossing thresholds still ahead (`px < t`, the
        // oracle's comparison) only ever shrinks, and the boundary-span
        // pointer only ever advances.
        std::size_t cross_idx = 0;
        std::size_t span_idx = 0;
        for (int x = 0; x < width; ++x) {
            const double px = origin_x + (x + 0.5) * cell_size;
            while (cross_idx < crossings.size() &&
                   !(px < crossings[cross_idx]))
                ++cross_idx;
            bool inside = ((crossings.size() - cross_idx) & 1) != 0;
            if (!inside && span_idx < boundary.size()) {
                while (span_idx < boundary.size() &&
                       boundary[span_idx].hi < px)
                    ++span_idx;
                inside = span_idx < boundary.size() &&
                         boundary[span_idx].lo <= px;
            }
            out(x, y) = inside ? 1 : 0;
        }
    }
    return out;
}

}  // namespace pvfp::geo

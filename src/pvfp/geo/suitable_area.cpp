#include "pvfp/geo/suitable_area.hpp"

#include <cmath>
#include <queue>
#include <vector>

#include "pvfp/util/error.hpp"
#include "pvfp/util/math.hpp"

namespace pvfp::geo {

pvfp::Grid2D<unsigned char> dilate_invalid(
    const pvfp::Grid2D<unsigned char>& valid, double radius_cells) {
    check_arg(radius_cells >= 0.0, "dilate_invalid: negative radius");
    if (radius_cells == 0.0) return valid;
    const int r = static_cast<int>(std::ceil(radius_cells));
    // Disc offsets once.
    std::vector<std::pair<int, int>> disc;
    for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
            if (dx * dx + dy * dy <= radius_cells * radius_cells)
                disc.emplace_back(dx, dy);
        }
    }
    pvfp::Grid2D<unsigned char> out = valid;
    for (int y = 0; y < valid.height(); ++y) {
        for (int x = 0; x < valid.width(); ++x) {
            if (valid(x, y)) continue;  // already invalid
            for (const auto& [dx, dy] : disc) {
                const int nx = x + dx;
                const int ny = y + dy;
                if (out.in_bounds(nx, ny)) out(nx, ny) = 0;
            }
        }
    }
    return out;
}

pvfp::Grid2D<unsigned char> largest_component(
    const pvfp::Grid2D<unsigned char>& valid) {
    pvfp::Grid2D<int> label(valid.width(), valid.height(), -1);
    int best_label = -1;
    int best_size = 0;
    int next_label = 0;
    for (int sy = 0; sy < valid.height(); ++sy) {
        for (int sx = 0; sx < valid.width(); ++sx) {
            if (!valid(sx, sy) || label(sx, sy) >= 0) continue;
            // BFS flood fill.
            int size = 0;
            std::queue<std::pair<int, int>> frontier;
            frontier.emplace(sx, sy);
            label(sx, sy) = next_label;
            while (!frontier.empty()) {
                const auto [x, y] = frontier.front();
                frontier.pop();
                ++size;
                constexpr int kDx[4] = {1, -1, 0, 0};
                constexpr int kDy[4] = {0, 0, 1, -1};
                for (int k = 0; k < 4; ++k) {
                    const int nx = x + kDx[k];
                    const int ny = y + kDy[k];
                    if (valid.in_bounds(nx, ny) && valid(nx, ny) &&
                        label(nx, ny) < 0) {
                        label(nx, ny) = next_label;
                        frontier.emplace(nx, ny);
                    }
                }
            }
            if (size > best_size) {
                best_size = size;
                best_label = next_label;
            }
            ++next_label;
        }
    }
    pvfp::Grid2D<unsigned char> out(valid.width(), valid.height(), 0);
    if (best_label >= 0) {
        for (int y = 0; y < valid.height(); ++y)
            for (int x = 0; x < valid.width(); ++x)
                out(x, y) = (label(x, y) == best_label) ? 1 : 0;
    }
    return out;
}

PlacementArea extract_placement_area(const Raster& dsm,
                                     const SceneBuilder& scene,
                                     int roof_index,
                                     const SuitableAreaOptions& options,
                                     const pvfp::Grid2D<unsigned char>* mask) {
    check_arg(roof_index >= 0 && roof_index < scene.roof_count(),
              "extract_placement_area: roof index out of range");
    check_arg(options.obstacle_tolerance >= 0.0 && options.clearance >= 0.0 &&
                  options.edge_margin >= 0.0,
              "extract_placement_area: negative option");
    check_arg(mask == nullptr || (mask->width() == dsm.width() &&
                                  mask->height() == dsm.height()),
              "extract_placement_area: mask does not match the DSM");

    const MonopitchRoof& roof = scene.roof(roof_index);
    const double cs = dsm.cell_size();

    // Stage 1: roof membership (with edge margin), the footprint mask,
    // and obstacle residuals.  NODATA cells (gaps in measured mosaics)
    // are never placeable.
    pvfp::Grid2D<unsigned char> valid(dsm.width(), dsm.height(), 0);
    const double m = options.edge_margin;
    for (int y = 0; y < dsm.height(); ++y) {
        for (int x = 0; x < dsm.width(); ++x) {
            const double lx = dsm.local_x(x);
            const double ly = dsm.local_y(y);
            const bool inside = lx >= roof.x + m && lx < roof.x + roof.w - m &&
                                ly >= roof.y + m && ly < roof.y + roof.d - m;
            if (!inside) continue;
            if (mask && (*mask)(x, y) == 0) continue;
            if (dsm(x, y) == dsm.nodata()) continue;
            const double plane = scene.roof_plane_height(roof_index, lx, ly);
            const double residual = dsm(x, y) - plane;
            valid(x, y) = (residual <= options.obstacle_tolerance) ? 1 : 0;
        }
    }

    // Stage 2: clearance dilation around obstacles.  Only obstacle cells
    // *inside* the roof should repel; invalid cells outside the roof rect
    // (which are all zero at this point) must not erase the roof border.
    // dilate_invalid treats every zero cell as a repeller, so restrict the
    // operation to the roof's bounding window.
    const int bx0 = std::max(0, dsm.col_of(roof.x));
    const int by0 = std::max(0, dsm.row_of(dsm.origin_y() - roof.y));
    const int bx1 = std::min(dsm.width(), dsm.col_of(roof.x + roof.w) + 1);
    const int by1 =
        std::min(dsm.height(), dsm.row_of(dsm.origin_y() - roof.y - roof.d) + 1);
    check_arg(bx1 > bx0 && by1 > by0,
              "extract_placement_area: roof outside the raster");

    if (options.clearance > 0.0) {
        const double radius_cells = options.clearance / cs;
        // Window copy holding 1 for valid, and 0 ONLY for obstacle cells;
        // non-roof cells are temporarily marked valid so they do not repel.
        pvfp::Grid2D<unsigned char> window(bx1 - bx0, by1 - by0, 1);
        for (int y = by0; y < by1; ++y) {
            for (int x = bx0; x < bx1; ++x) {
                const double lx = dsm.local_x(x);
                const double ly = dsm.local_y(y);
                if (!scene.inside_roof(roof_index, lx, ly)) continue;
                const double plane =
                    scene.roof_plane_height(roof_index, lx, ly);
                if (dsm(x, y) - plane > options.obstacle_tolerance)
                    window(x - bx0, y - by0) = 0;
            }
        }
        const auto dilated = dilate_invalid(window, radius_cells);
        for (int y = by0; y < by1; ++y)
            for (int x = bx0; x < bx1; ++x)
                if (!dilated(x - bx0, y - by0)) valid(x, y) = 0;
    }

    if (options.keep_largest_component) valid = largest_component(valid);

    // Stage 3: crop to the bounding box of valid cells.
    int min_x = dsm.width();
    int min_y = dsm.height();
    int max_x = -1;
    int max_y = -1;
    int count = 0;
    for (int y = 0; y < dsm.height(); ++y) {
        for (int x = 0; x < dsm.width(); ++x) {
            if (!valid(x, y)) continue;
            ++count;
            min_x = std::min(min_x, x);
            min_y = std::min(min_y, y);
            max_x = std::max(max_x, x);
            max_y = std::max(max_y, y);
        }
    }
    if (count == 0)
        throw Infeasible("extract_placement_area: no valid cells on roof '" +
                         roof.name + "'");

    PlacementArea area;
    area.width = max_x - min_x + 1;
    area.height = max_y - min_y + 1;
    area.origin_col = min_x;
    area.origin_row = min_y;
    area.cell_size = cs;
    area.tilt_rad = deg2rad(roof.tilt_deg);
    area.azimuth_rad = deg2rad(roof.azimuth_deg);
    area.valid_count = count;
    area.valid = pvfp::Grid2D<unsigned char>(area.width, area.height, 0);
    for (int y = 0; y < area.height; ++y)
        for (int x = 0; x < area.width; ++x)
            area.valid(x, y) = valid(min_x + x, min_y + y);
    return area;
}

}  // namespace pvfp::geo

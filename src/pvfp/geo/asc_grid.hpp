#pragma once
/// \file asc_grid.hpp
/// ESRI ASCII grid (.asc) import/export for Raster.
///
/// This is the interchange format used in place of GDAL/GeoTIFF: it is a
/// plain-text grid format that every GIS package (QGIS, ArcGIS, GRASS, and
/// GDAL itself) reads, so synthetic DSMs produced here can be inspected in
/// real GIS tools and real LiDAR DSMs can be fed to the floorplanner.
///
/// Format:
///   ncols 4
///   nrows 3
///   xllcorner 0.0
///   yllcorner 0.0
///   cellsize 0.2
///   NODATA_value -9999
///   <nrows lines of ncols numbers, row 0 = northernmost>
///
/// The parser accepts the variations found in the wild: header keys in any
/// case and order, CRLF line endings, and the xllcenter/yllcenter variant
/// (lower-left *cell center* instead of corner, per the ESRI spec — each
/// axis independently).  Duplicate header keys are rejected: real exporters
/// never emit them, so a duplicate means a corrupted or concatenated file.

#include <iosfwd>
#include <string>

#include "pvfp/geo/raster.hpp"

namespace pvfp::geo {

/// Parsed .asc header, in the file's own conventions (lower-left
/// reference).  This is all a tile index needs to place a tile in world
/// coordinates without reading its data section.
struct AscHeader {
    long ncols = 0;
    long nrows = 0;
    /// World easting/northing of the lower-left *corner* of the grid
    /// (center variants are already converted by the parser).
    double xllcorner = 0.0;
    double yllcorner = 0.0;
    double cellsize = 0.0;
    double nodata = kDefaultNoData;

    /// Easting of the east edge.
    double x_max() const { return xllcorner + ncols * cellsize; }
    /// Northing of the north edge.
    double y_max() const { return yllcorner + nrows * cellsize; }
};

/// Parse only the header of an ASCII grid from a stream, leaving the
/// stream positioned at the first data token; throws IoError on malformed
/// or duplicated header keys.
AscHeader read_asc_header(std::istream& is);

/// Parse the header of an ASCII grid file without loading its data
/// section (tile discovery over large directories).
AscHeader read_asc_header_file(const std::string& path);

/// Parse an ASCII grid from a stream; throws IoError on malformed content.
Raster read_asc_grid(std::istream& is);

/// Parse an ASCII grid file; throws IoError when it cannot be opened.
Raster read_asc_grid_file(const std::string& path);

/// Serialize \p raster to a stream in ESRI ASCII grid format.
/// Note: the format's yllcorner refers to the *bottom-left* corner while
/// Raster's origin is top-left; the writer converts.
void write_asc_grid(const Raster& raster, std::ostream& os);

/// Serialize to a file; throws IoError on failure.
void write_asc_grid_file(const Raster& raster, const std::string& path);

}  // namespace pvfp::geo

#pragma once
/// \file asc_grid.hpp
/// ESRI ASCII grid (.asc) import/export for Raster.
///
/// This is the interchange format used in place of GDAL/GeoTIFF: it is a
/// plain-text grid format that every GIS package (QGIS, ArcGIS, GRASS, and
/// GDAL itself) reads, so synthetic DSMs produced here can be inspected in
/// real GIS tools and real LiDAR DSMs can be fed to the floorplanner.
///
/// Format:
///   ncols 4
///   nrows 3
///   xllcorner 0.0
///   yllcorner 0.0
///   cellsize 0.2
///   NODATA_value -9999
///   <nrows lines of ncols numbers, row 0 = northernmost>

#include <iosfwd>
#include <string>

#include "pvfp/geo/raster.hpp"

namespace pvfp::geo {

/// Parse an ASCII grid from a stream; throws IoError on malformed content.
Raster read_asc_grid(std::istream& is);

/// Parse an ASCII grid file; throws IoError when it cannot be opened.
Raster read_asc_grid_file(const std::string& path);

/// Serialize \p raster to a stream in ESRI ASCII grid format.
/// Note: the format's yllcorner refers to the *bottom-left* corner while
/// Raster's origin is top-left; the writer converts.
void write_asc_grid(const Raster& raster, std::ostream& os);

/// Serialize to a file; throws IoError on failure.
void write_asc_grid_file(const Raster& raster, const std::string& path);

}  // namespace pvfp::geo

#pragma once
/// \file raster.hpp
/// Georeferenced rasters: the in-memory representation of the Digital
/// Surface Model (DSM) that drives shadow casting and suitable-area
/// extraction (paper Section IV).
///
/// The paper's infrastructure consumes LiDAR-derived DSMs through GIS
/// tooling; here a Raster is a Grid2D with a geotransform (origin + square
/// cell size in meters).  Conventions (standard GIS / GDAL):
///  - world frame: x (easting) grows east, y (northing) grows north;
///  - raster frame: column index grows east, row index grows *south*
///    (row 0 is the northernmost), so world y decreases with row index;
///  - "local" coordinates: plan meters relative to the top-left (NW)
///    corner with local y growing south — the frame used by the scene
///    builder and the placement code, where everything is row-aligned.

#include <string>

#include "pvfp/util/grid2d.hpp"

namespace pvfp::geo {

/// Value used to mark cells with no data in I/O (ESRI convention).
inline constexpr double kDefaultNoData = -9999.0;

/// A georeferenced, square-cell raster of doubles (heights in meters for
/// DSMs, but also used for irradiance/suitability exports).
class Raster {
public:
    Raster() = default;

    /// \p width, \p height in cells; \p cell_size in meters (> 0).
    /// \p origin_x: easting of the west edge; \p origin_y: northing of the
    /// *north* edge (top-left corner of cell (0,0)).
    Raster(int width, int height, double cell_size, double fill = 0.0,
           double origin_x = 0.0, double origin_y = 0.0);

    int width() const { return grid_.width(); }
    int height() const { return grid_.height(); }
    double cell_size() const { return cell_size_; }
    double origin_x() const { return origin_x_; }
    double origin_y() const { return origin_y_; }
    double nodata() const { return nodata_; }
    void set_nodata(double v) { nodata_ = v; }

    bool in_bounds(int x, int y) const { return grid_.in_bounds(x, y); }

    /// Unchecked fast access (hot loops).
    double operator()(int x, int y) const { return grid_(x, y); }
    double& operator()(int x, int y) { return grid_(x, y); }
    /// Checked access.
    double at(int x, int y) const { return grid_.at(x, y); }
    double& at(int x, int y) { return grid_.at(x, y); }

    const pvfp::Grid2D<double>& grid() const { return grid_; }
    pvfp::Grid2D<double>& grid() { return grid_; }

    /// World easting of the *center* of column \p x.
    double world_x(int x) const { return origin_x_ + (x + 0.5) * cell_size_; }
    /// World northing of the *center* of row \p y (decreases with row).
    double world_y(int y) const { return origin_y_ - (y + 0.5) * cell_size_; }

    /// Column containing world easting \p wx (may be out of bounds).
    int col_of(double wx) const;
    /// Row containing world northing \p wy (may be out of bounds).
    int row_of(double wy) const;

    /// Local plan x (meters east of the NW corner) of the center of col x.
    double local_x(int x) const { return (x + 0.5) * cell_size_; }
    /// Local plan y (meters south of the NW corner) of the center of row y.
    double local_y(int y) const { return (y + 0.5) * cell_size_; }

    /// Bilinear interpolation of the height surface at *local* plan
    /// coordinates (meters from the NW corner, y growing south); clamps to
    /// the raster edges.  Used by the horizon ray-marcher.
    double sample_bilinear_local(double lx, double ly) const;

    bool operator==(const Raster&) const = default;

private:
    pvfp::Grid2D<double> grid_;
    double cell_size_ = 1.0;
    double origin_x_ = 0.0;
    double origin_y_ = 0.0;
    double nodata_ = kDefaultNoData;
};

/// Per-cell unit surface normals of a DSM window in the (east, north, up)
/// frame, from central differences.  The irradiance field uses these to
/// modulate the beam component cell-by-cell — the mechanism by which DSM
/// surface structure (roof undulation, obstacle flanks) produces the
/// fine-grain irradiance variance the paper's suitability metric exploits.
struct NormalMap {
    pvfp::Grid2D<float> east;
    pvfp::Grid2D<float> north;
    pvfp::Grid2D<float> up;

    int width() const { return east.width(); }
    int height() const { return east.height(); }

    /// Build for the window with top-left (x0, y0) and size w x h of
    /// \p dsm; gradients use neighbors from the full raster (clamped at
    /// its edges).
    static NormalMap from_dsm(const Raster& dsm, int x0, int y0, int w,
                              int h);
};

/// Per-cell slope (radians from horizontal) of the height surface computed
/// with central differences (Horn's method simplified to 4-neighborhood at
/// the borders).
pvfp::Grid2D<double> slope_map(const Raster& dsm);

/// Per-cell aspect (downslope azimuth, radians clockwise from North);
/// flat cells get NaN.
pvfp::Grid2D<double> aspect_map(const Raster& dsm);

}  // namespace pvfp::geo

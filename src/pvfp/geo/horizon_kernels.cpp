#include "pvfp/geo/horizon_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "pvfp/util/error.hpp"
#include "pvfp/util/math.hpp"
#include "pvfp/util/simd.hpp"

namespace pvfp::geo {

HorizonSchedule make_horizon_schedule(const HorizonOptions& options,
                                      double cell_size) {
    check_arg(cell_size > 0.0, "make_horizon_schedule: cell_size <= 0");
    const double step = options.step_factor * cell_size;
    const double max_step = options.max_step_factor * cell_size;

    HorizonSchedule sched;
    sched.sectors = options.azimuth_sectors;
    // Replicate the per-cell marcher's accumulation exactly: the t_k
    // sequence is the same doubles in the same order, so fl(t_k * dir)
    // below matches the in-loop product bit for bit.
    double t = step;
    double dt = step;
    while (t <= options.max_distance) {
        sched.t.push_back(t);
        dt = std::min(dt * options.step_growth, max_step);
        t += dt;
    }
    sched.steps = static_cast<int>(sched.t.size());

    const std::size_t ns = static_cast<std::size_t>(sched.sectors) *
                           static_cast<std::size_t>(sched.steps);
    sched.xoff.resize(ns);
    sched.yoff.resize(ns);
    for (int s = 0; s < sched.sectors; ++s) {
        const double az = kTwoPi * s / sched.sectors;
        const double dirx = std::sin(az);
        const double diry = -std::cos(az);
        double* xo = sched.xoff.data() +
                     static_cast<std::size_t>(s) * sched.steps;
        double* yo = sched.yoff.data() +
                     static_cast<std::size_t>(s) * sched.steps;
        for (int k = 0; k < sched.steps; ++k) {
            xo[k] = sched.t[k] * dirx;
            yo[k] = sched.t[k] * diry;
        }
    }
    return sched;
}

namespace detail {

void march_row_scalar(const HorizonRowArgs& a) {
    // Lane-major: each lane keeps its running state in registers and
    // breaks as soon as its x leaves the raster (lx is monotone in k, so
    // the first exit is permanent — the per-cell marcher's `break`).
    const int wm1 = a.gw - 1;
    const double wm1_d = static_cast<double>(wm1);
    for (int i = 0; i < a.n; ++i) {
        const double lx0 = a.lx0[i];
        const double h0 = a.h0[i];
        double best = 0.0;
        double rmax = 0.0;
        for (int k = 0; k < a.ksteps; ++k) {
            const double lx = lx0 + a.xoff[k];
            if (lx < 0.0 || lx >= a.width_m) break;
            const double cx = lx / a.cs - 0.5;
            const double fx = std::clamp(cx, 0.0, wm1_d);
            const int x0 = std::min(static_cast<int>(fx), wm1);
            const int x1 = std::min(x0 + 1, wm1);
            const double tx = fx - x0;
            const double* r0 = a.grid + a.row0[k];
            const double* r1 = a.grid + a.row1[k];
            const double top = r0[x0] + (r0[x1] - r0[x0]) * tx;
            const double bot = r1[x0] + (r1[x1] - r1[x0]) * tx;
            const double h = top + (bot - top) * a.ty[k];
            const double d = h - h0;
            if (d > 0.0) {
                const double r = d / a.t[k];
                if (r >= rmax * (1.0 - 1e-9)) {
                    const double ang = std::atan2(d, a.t[k]);
                    if (ang > best) best = ang;
                }
                if (r > rmax) rmax = r;
            }
        }
        a.best[i] = best;
    }
}

}  // namespace detail

void horizon_row_batched(const Raster& dsm, int x0, int y, int win_w,
                         const HorizonSchedule& sched, double observer_offset,
                         float* angles_row, std::size_t plane_stride,
                         float* svf_row) {
    const int gw = dsm.width();
    const int gh = dsm.height();
    const double cs = dsm.cell_size();
    const double width_m = gw * cs;
    const double height_m = gh * cs;
    const double ly0 = dsm.local_y(y);

    // Per-lane constants of the row.
    std::vector<double> lx0(win_w);
    std::vector<double> h0(win_w);
    for (int i = 0; i < win_w; ++i) {
        lx0[i] = dsm.local_x(x0 + i);
        h0[i] = dsm(x0 + i, y) + observer_offset;
    }

    std::vector<double> best(win_w);
    std::vector<double> svf_acc(win_w, 0.0);
    // Shared y-plan of one sector (rebuilt per sector, reused by every
    // lane and every SIMD level — one arithmetic sequence to trust).
    std::vector<std::size_t> row0(sched.steps);
    std::vector<std::size_t> row1(sched.steps);
    std::vector<double> ty(sched.steps);

    void (*kernel)(const detail::HorizonRowArgs&) = &detail::march_row_scalar;
    switch (simd_level()) {
        case SimdLevel::Avx512: kernel = &detail::march_row_avx512; break;
        case SimdLevel::Avx2: kernel = &detail::march_row_avx2; break;
        case SimdLevel::Scalar: break;
    }

    const int hm1 = gh - 1;
    const double hm1_d = static_cast<double>(hm1);
    for (int s = 0; s < sched.sectors; ++s) {
        const double* yo = sched.yoff.data() +
                           static_cast<std::size_t>(s) * sched.steps;
        int ksteps = 0;
        for (int k = 0; k < sched.steps; ++k) {
            const double ly = ly0 + yo[k];
            // Shared break: all lanes of the row leave the raster in y at
            // the same step (the per-cell marcher's bounds test on ly).
            if (ly < 0.0 || ly >= height_m) break;
            const double cy = ly / cs - 0.5;
            const double fy = std::clamp(cy, 0.0, hm1_d);
            const int y0 = std::min(static_cast<int>(fy), hm1);
            const int y1 = std::min(y0 + 1, hm1);
            ty[k] = fy - y0;
            row0[k] = static_cast<std::size_t>(y0) * gw;
            row1[k] = static_cast<std::size_t>(y1) * gw;
            ++ksteps;
        }

        detail::HorizonRowArgs args;
        args.grid = dsm.grid().data().data();
        args.gw = gw;
        args.cs = cs;
        args.width_m = width_m;
        args.lx0 = lx0.data();
        args.h0 = h0.data();
        args.n = win_w;
        args.t = sched.t.data();
        args.xoff = sched.xoff.data() +
                    static_cast<std::size_t>(s) * sched.steps;
        args.row0 = row0.data();
        args.row1 = row1.data();
        args.ty = ty.data();
        args.ksteps = ksteps;
        args.best = best.data();
        kernel(args);

        float* plane = angles_row + static_cast<std::size_t>(s) * plane_stride;
        for (int i = 0; i < win_w; ++i) {
            const double ang = best[i];
            plane[i] = static_cast<float>(ang);
            // Scalar libm cos on the double angle, accumulated in sector
            // order: the exact SVF arithmetic of the per-cell builder.
            const double c = std::cos(ang);
            svf_acc[i] += c * c;
        }
    }

    for (int i = 0; i < win_w; ++i)
        svf_row[i] = static_cast<float>(svf_acc[i] / sched.sectors);
}

}  // namespace pvfp::geo

#include "pvfp/geo/scene.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "pvfp/util/error.hpp"
#include "pvfp/util/math.hpp"

namespace pvfp::geo {
namespace {

bool inside_rect(double lx, double ly, double x, double y, double w,
                 double d) {
    return lx >= x && lx < x + w && ly >= y && ly < y + d;
}

/// Squared distance from point p to segment (a, b) in the plane.
double point_segment_dist(double px, double py, double ax, double ay,
                          double bx, double by) {
    const double vx = bx - ax;
    const double vy = by - ay;
    const double len2 = vx * vx + vy * vy;
    double t = 0.0;
    if (len2 > 0.0) {
        t = ((px - ax) * vx + (py - ay) * vy) / len2;
        t = std::clamp(t, 0.0, 1.0);
    }
    const double cx = ax + t * vx;
    const double cy = ay + t * vy;
    return std::hypot(px - cx, py - cy);
}

}  // namespace

SceneBuilder::SceneBuilder(double extent_x, double extent_y,
                           double ground_height)
    : extent_x_(extent_x), extent_y_(extent_y),
      ground_height_(ground_height) {
    check_arg(extent_x > 0.0 && extent_y > 0.0,
              "SceneBuilder: extents must be positive");
}

int SceneBuilder::add_roof(MonopitchRoof roof) {
    check_arg(roof.w > 0.0 && roof.d > 0.0,
              "SceneBuilder::add_roof: roof plan extents must be positive");
    check_arg(roof.tilt_deg >= 0.0 && roof.tilt_deg < 90.0,
              "SceneBuilder::add_roof: tilt must be in [0, 90) degrees");
    roofs_.push_back(std::move(roof));
    textures_.emplace_back();
    return static_cast<int>(roofs_.size()) - 1;
}

void SceneBuilder::set_roof_texture(int roof_index,
                                    const RoofTexture& texture) {
    check_arg(roof_index >= 0 && roof_index < roof_count(),
              "SceneBuilder::set_roof_texture: index out of range");
    check_arg(texture.undulation_amp_x >= 0.0 &&
                  texture.undulation_amp_y >= 0.0 &&
                  texture.noise_amp >= 0.0,
              "SceneBuilder::set_roof_texture: negative amplitude");
    check_arg(texture.undulation_period_x > 0.0 &&
                  texture.undulation_period_y > 0.0 &&
                  texture.noise_scale > 0.0,
              "SceneBuilder::set_roof_texture: non-positive period/scale");
    textures_[static_cast<std::size_t>(roof_index)] = texture;
}

int SceneBuilder::add_gable_roof(const std::string& name, double x, double y,
                                 double w, double d, double eave_height,
                                 double tilt_deg) {
    MonopitchRoof south;
    south.name = name + "/south";
    south.x = x;
    south.y = y + d / 2.0;
    south.w = w;
    south.d = d / 2.0;
    south.eave_height = eave_height;
    south.tilt_deg = tilt_deg;
    south.azimuth_deg = 180.0;  // downslope towards south
    const int south_index = add_roof(south);

    MonopitchRoof north = south;
    north.name = name + "/north";
    north.y = y;
    north.azimuth_deg = 0.0;  // downslope towards north
    add_roof(north);
    return south_index;
}

void SceneBuilder::add_box(BoxObstacle box) {
    check_arg(box.w > 0.0 && box.d > 0.0 && box.height >= 0.0,
              "SceneBuilder::add_box: invalid box");
    boxes_.push_back(box);
}

void SceneBuilder::add_pipe(PipeRun pipe) {
    check_arg(pipe.width > 0.0 && pipe.height >= 0.0,
              "SceneBuilder::add_pipe: invalid pipe");
    pipes_.push_back(pipe);
}

void SceneBuilder::add_tree(Tree tree) {
    check_arg(tree.radius > 0.0 && tree.height > 0.0,
              "SceneBuilder::add_tree: invalid tree");
    trees_.push_back(tree);
}

void SceneBuilder::add_building(Building building) {
    check_arg(building.w > 0.0 && building.d > 0.0 && building.height >= 0.0,
              "SceneBuilder::add_building: invalid building");
    buildings_.push_back(building);
}

const MonopitchRoof& SceneBuilder::roof(int index) const {
    check_arg(index >= 0 && index < roof_count(),
              "SceneBuilder::roof: index out of range");
    return roofs_[static_cast<std::size_t>(index)];
}

double SceneBuilder::roof_plane_height(int index, double lx, double ly) const {
    const MonopitchRoof& r = roof(index);
    // Downslope unit vector in the local frame (x east, y south):
    // azimuth a (clockwise from North) has east = sin(a), north = cos(a),
    // hence local y component = -cos(a).
    const double a = deg2rad(r.azimuth_deg);
    const double dx = std::sin(a);
    const double dy = -std::cos(a);
    // Height grows along -d.  Reference: the lowest plan corner, i.e. the
    // corner maximizing the downslope projection.
    const double ux = -dx;
    const double uy = -dy;
    double t_min = std::numeric_limits<double>::infinity();
    const double corners[4][2] = {{r.x, r.y},
                                  {r.x + r.w, r.y},
                                  {r.x, r.y + r.d},
                                  {r.x + r.w, r.y + r.d}};
    for (const auto& c : corners)
        t_min = std::min(t_min, c[0] * ux + c[1] * uy);
    const double t = lx * ux + ly * uy;
    return ground_height_ + r.eave_height +
           std::tan(deg2rad(r.tilt_deg)) * (t - t_min);
}

bool SceneBuilder::inside_roof(int index, double lx, double ly) const {
    const MonopitchRoof& r = roof(index);
    return inside_rect(lx, ly, r.x, r.y, r.w, r.d);
}

namespace {

/// Deterministic hash of a lattice point -> uniform in [-1, 1].
double lattice_noise(std::int64_t ix, std::int64_t iy, std::uint32_t seed) {
    std::uint64_t h = static_cast<std::uint64_t>(ix) * 0x9E3779B97F4A7C15ULL ^
                      static_cast<std::uint64_t>(iy) * 0xC2B2AE3D27D4EB4FULL ^
                      (static_cast<std::uint64_t>(seed) << 32);
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    // Top 53 bits -> [0,1) -> [-1,1).
    return static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
}

/// Smooth value noise: bilinear interpolation of lattice values.
double value_noise(double lx, double ly, double scale, std::uint32_t seed) {
    const double gx = lx / scale;
    const double gy = ly / scale;
    const auto ix = static_cast<std::int64_t>(std::floor(gx));
    const auto iy = static_cast<std::int64_t>(std::floor(gy));
    const double tx = gx - static_cast<double>(ix);
    const double ty = gy - static_cast<double>(iy);
    const double v00 = lattice_noise(ix, iy, seed);
    const double v10 = lattice_noise(ix + 1, iy, seed);
    const double v01 = lattice_noise(ix, iy + 1, seed);
    const double v11 = lattice_noise(ix + 1, iy + 1, seed);
    const double top = v00 + (v10 - v00) * tx;
    const double bot = v01 + (v11 - v01) * tx;
    return top + (bot - top) * ty;
}

}  // namespace

double SceneBuilder::roof_texture_height(int index, double lx,
                                         double ly) const {
    check_arg(index >= 0 && index < roof_count(),
              "SceneBuilder::roof_texture_height: index out of range");
    const auto& maybe = textures_[static_cast<std::size_t>(index)];
    if (!maybe) return 0.0;
    const RoofTexture& t = *maybe;
    double dz = 0.0;
    if (t.undulation_amp_x > 0.0)
        dz += t.undulation_amp_x *
              std::sin(kTwoPi * lx / t.undulation_period_x);
    if (t.undulation_amp_y > 0.0)
        dz += t.undulation_amp_y *
              std::sin(kTwoPi * ly / t.undulation_period_y);
    if (t.noise_amp > 0.0)
        dz += t.noise_amp * value_noise(lx, ly, t.noise_scale, t.seed);
    return dz;
}

double SceneBuilder::base_height(double lx, double ly) const {
    double h = ground_height_;
    for (const auto& b : buildings_) {
        if (inside_rect(lx, ly, b.x, b.y, b.w, b.d))
            h = std::max(h, ground_height_ + b.height);
    }
    for (int i = 0; i < roof_count(); ++i) {
        if (inside_roof(i, lx, ly)) {
            h = std::max(h, roof_plane_height(i, lx, ly) +
                                roof_texture_height(i, lx, ly));
        }
    }
    return h;
}

double SceneBuilder::surface_height(double lx, double ly) const {
    const double base = base_height(lx, ly);
    double h = base;
    for (const auto& b : boxes_) {
        if (!inside_rect(lx, ly, b.x, b.y, b.w, b.d)) continue;
        const double ref =
            (b.ref == HeightRef::Ground) ? ground_height_ : base;
        h = std::max(h, ref + b.height);
    }
    for (const auto& p : pipes_) {
        if (point_segment_dist(lx, ly, p.x0, p.y0, p.x1, p.y1) <=
            p.width / 2.0) {
            h = std::max(h, base + p.height);
        }
    }
    for (const auto& t : trees_) {
        const double r = std::hypot(lx - t.x, ly - t.y);
        if (r < t.radius) {
            // Conical canopy standing on the ground.
            const double cone =
                ground_height_ + t.height * (1.0 - r / t.radius);
            h = std::max(h, cone);
        }
    }
    return h;
}

Raster SceneBuilder::rasterize(double cell_size) const {
    check_arg(cell_size > 0.0, "SceneBuilder::rasterize: bad cell size");
    const int ncols = static_cast<int>(std::ceil(extent_x_ / cell_size));
    const int nrows = static_cast<int>(std::ceil(extent_y_ / cell_size));
    check_arg(ncols > 0 && nrows > 0,
              "SceneBuilder::rasterize: degenerate raster");
    // World georeference: NW corner at (0, extent_y) so that northing
    // decreases with the row index per the Raster convention.
    Raster dsm(ncols, nrows, cell_size, 0.0, /*origin_x=*/0.0,
               /*origin_y=*/extent_y_);
    for (int y = 0; y < nrows; ++y) {
        for (int x = 0; x < ncols; ++x) {
            dsm(x, y) = surface_height(dsm.local_x(x), dsm.local_y(y));
        }
    }
    return dsm;
}

}  // namespace pvfp::geo

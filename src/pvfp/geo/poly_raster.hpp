#pragma once
/// \file poly_raster.hpp
/// Scanline rasterization of cadastral footprint polygons.
///
/// Roof ingestion (gis/roof_registry) masks the DSM window to the
/// footprint polygon.  The original path ran an O(vertices) even-odd
/// ray cast per cell — O(cells · edges), quadratic-ish for the
/// 10^4–10^5-vertex footprints real cadastres produce.  The scanline
/// rasterizer here walks each cell-center row once, collects the
/// x thresholds where polygon edges cross that row, sorts them, and
/// sweeps the row left to right counting thresholds still ahead —
/// O(rows · edges + cells) total.
///
/// Exactness contract: the mask equals the per-cell oracle
/// point_in_polygon_even_odd() on every cell center, bit for bit.  The
/// rasterizer evaluates the *same* IEEE crossing-threshold expression
/// `(xj-xi) * (py-yi) / (yj-yi) + xi` per (row, edge) and compares with
/// the same `<` the oracle uses — it reorders which comparisons happen,
/// never what is compared.  tests/geo/test_poly_raster pins this
/// differentially over randomized polygons, including degenerate and
/// collinear ones.

#include <array>
#include <vector>

#include "pvfp/util/grid2d.hpp"

namespace pvfp::geo {

/// Even-odd point-in-polygon test over the implicit-closure polygon
/// (last vertex connects back to the first).
///
/// This is the classic half-open crossing rule — an edge crosses the
/// horizontal ray through (px, py) iff exactly one endpoint satisfies
/// `y > py`, which counts a vertex exactly on the ray once (not twice)
/// and skips horizontal edges — hardened against the two cases where
/// the bare rule is fragile:
///  - a sample exactly on a *vertex* is inside (the bare rule made it
///    depend on the incident edges' winding);
///  - a sample exactly on a *horizontal edge* is inside (the bare rule
///    skipped the edge and let the neighbours decide either way).
/// Samples exactly on the interior of a slanted edge remain decided by
/// the crossing comparison — deterministic, since the oracle and the
/// rasterizer evaluate identical expressions.
bool point_in_polygon_even_odd(
    double px, double py, const std::vector<std::array<double, 2>>& poly);

/// Rasterize \p poly onto the cell centers of a north-up georeferenced
/// window (the Raster conventions: px = origin_x + (x+0.5)*cell_size,
/// py = origin_y - (y+0.5)*cell_size, row 0 northernmost):
/// out(x, y) = point_in_polygon_even_odd(px, py, poly), computed by
/// scanline in O(height · edges + cells) instead of O(cells · edges).
pvfp::Grid2D<unsigned char> rasterize_polygon_even_odd(
    const std::vector<std::array<double, 2>>& poly, int width, int height,
    double cell_size, double origin_x, double origin_y);

}  // namespace pvfp::geo

#pragma once
/// \file metrics.hpp
/// pvfp::obs — low-overhead process-wide telemetry: a registry of named
/// counters, gauges, and fixed-bucket histograms.
///
/// The system now spans a batch city runner, an always-on daemon, SIMD
/// kernel tiers, and three caches; each grew its own ad-hoc stats
/// struct, none of which can answer "what is the horizon-cache hit rate
/// on this live run" without recompiling.  The MetricsRegistry gives
/// every layer one place to account events, and one snapshot that
/// covers the whole process.
///
/// Design constraints (in order):
///  1. *The hot path must not serialize.*  Counter and histogram
///     updates go to a lock-free per-thread shard (plain relaxed
///     atomics the owning thread alone writes); snapshot() merges the
///     shards under the registry mutex.  A dying thread folds its shard
///     into a retired accumulator, so totals survive thread churn (the
///     daemon spawns one dispatcher per session).
///  2. *Zero cost when off.*  Every mutating call is gated on a single
///     relaxed atomic bool — the runtime `PVFP_OBS` switch (env var at
///     startup, set_enabled() programmatically) — and the whole layer
///     compiles out under -DPVFP_OBS_DISABLED (macros and inline calls
///     become empty; the symbols stay so callers never #ifdef).
///  3. *Deterministic metrics stay deterministic.*  Counters are
///     order-independent sums, so event counts that are a pure function
///     of the workload (roofs processed, per-stage call counts, cache
///     misses on a cold run) are bitwise thread-count-invariant in the
///     snapshot.  Wall-clock data lives only in gauges and histogram
///     sections, which the snapshot segregates so consumers (and the CI
///     schema gate) can tell the two classes apart.
///
/// The snapshot JSON codec follows the gis/json writer conventions:
/// fixed key order (sorted metric names inside fixed sections), fixed
/// precision, strings escaped with gis::json_escape — equal telemetry
/// produces equal bytes.
///
/// Telemetry never alters results: ranked/plan/JSONL output bytes are
/// identical with the registry on or off (pinned by
/// tests/gis/test_city_runner and the CI `obs` job).

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pvfp::obs {

class MetricsRegistry;

/// Runtime master switch.  Initialized once from the PVFP_OBS
/// environment variable ("0"/unset = off, anything else = on); flipped
/// programmatically by the CLI --metrics-out/--trace-out flags.
bool enabled();
void set_enabled(bool on);

#ifndef PVFP_OBS_DISABLED

/// Handle on one named monotonic counter (index into the registry).
/// Cheap to copy; valid for the registry's lifetime.
class Counter {
public:
    Counter() = default;
    /// Add \p n events; no-op when telemetry is disabled.
    void add(std::uint64_t n = 1) const;

private:
    friend class MetricsRegistry;
    Counter(MetricsRegistry* registry, int cell) noexcept
        : registry_(registry), cell_(cell) {}
    MetricsRegistry* registry_ = nullptr;
    int cell_ = -1;
};

/// Handle on one named point-in-time gauge (last write wins).  Gauges
/// carry wall-clock-ish state (queue depth, resident bytes) and are
/// *not* covered by the determinism contract.
class Gauge {
public:
    Gauge() = default;
    void set(double value) const;

private:
    friend class MetricsRegistry;
    explicit Gauge(std::atomic<double>* cell) noexcept : cell_(cell) {}
    /// Stable address inside the registry (deque-backed, never moves).
    std::atomic<double>* cell_ = nullptr;
};

/// Handle on one named fixed-bucket histogram.  Bucket upper bounds are
/// fixed at registration; values past the last bound land in a final
/// overflow bucket, so the layout (and the snapshot shape) never
/// changes after registration.  Bucket *counts* of deterministic values
/// are thread-count-invariant; latency histograms are wall-clock data.
class HistogramHandle {
public:
    HistogramHandle() = default;
    /// Record one sample (same unit as the registered bounds).
    void record(std::uint64_t value) const;

private:
    friend class MetricsRegistry;
    HistogramHandle(MetricsRegistry* registry, int first_cell,
                    const std::uint64_t* bounds, int n_bounds) noexcept
        : registry_(registry),
          first_cell_(first_cell),
          bounds_(bounds),
          n_bounds_(n_bounds) {}
    MetricsRegistry* registry_ = nullptr;
    int first_cell_ = -1;  ///< first bucket cell; sum cell follows buckets
    const std::uint64_t* bounds_ = nullptr;  ///< stable registry storage
    int n_bounds_ = 0;
};

/// Merged view of one histogram at snapshot time.
struct HistogramSnapshot {
    std::string name;
    std::vector<std::uint64_t> bounds;  ///< upper bounds, ascending
    /// bounds.size() + 1 entries; the last is the overflow bucket.
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
};

/// Merged view of the whole registry at one instant.
struct MetricsSnapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< sorted
    std::vector<std::pair<std::string, double>> gauges;           ///< sorted
    std::vector<HistogramSnapshot> histograms;                    ///< sorted
};

/// The registry of every metric in the process.  One canonical global
/// instance (registry()); construction of further instances is reserved
/// for tests that need full isolation.
class MetricsRegistry {
public:
    /// Opaque implementation types (defined in metrics.cpp); public in
    /// name only so file-local helpers there can take them by reference.
    struct Shard;
    struct State;

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;
    ~MetricsRegistry();

    /// Find-or-register the named metric.  Idempotent by name; throws
    /// InvalidArgument when the name is already registered with another
    /// kind (or, for histograms, other bounds).  Registration is the
    /// cold path (a mutex); typical call sites hold the handle in a
    /// function-local static.
    Counter counter(const std::string& name);
    Gauge gauge(const std::string& name);
    /// \p bounds: ascending, non-empty upper bucket bounds.
    HistogramHandle histogram(const std::string& name,
                              const std::vector<std::uint64_t>& bounds);

    /// Merge every per-thread shard (live and retired) into one view.
    /// Safe concurrently with updates; counter sums are exact for
    /// events that happened-before the call.
    MetricsSnapshot snapshot() const;

    /// Serialize \p snapshot with fixed key order and precision:
    /// {"counters":{...},"gauges":{...},"histograms":{...}} with names
    /// sorted inside each section.  Equal snapshots give equal bytes.
    static std::string to_json(const MetricsSnapshot& snapshot);

    /// snapshot() + to_json() of this registry.
    std::string snapshot_json() const;

    /// Zero every metric (shards, retired totals, gauges).  Definitions
    /// — and therefore previously issued handles, including the static
    /// handles inside PVFP_TRACE_SPAN sites — stay valid.  Test-only:
    /// callers must be quiescent (no concurrent updates).
    void reset_for_tests();

private:
    friend class Counter;
    friend class Gauge;
    friend class HistogramHandle;

    Shard& local_shard() const;
    void retire_shard(Shard* shard) noexcept;

    /// All registry state lives behind one pimpl so the header stays
    /// free of container/mutex includes on the hot path.
    State* state_ = nullptr;
    State& state() const;
};

/// The process-wide registry (never destroyed: safe from thread_local
/// destructors during shutdown).
MetricsRegistry& registry();

/// Exponential latency bucket bounds in nanoseconds, 1 us .. 10 s (the
/// fixed layout every latency histogram in the tree shares).
const std::vector<std::uint64_t>& latency_bounds_ns();

#else  // PVFP_OBS_DISABLED: the whole layer compiles to nothing.

class Counter {
public:
    void add(std::uint64_t = 1) const {}
};
class Gauge {
public:
    void set(double) const {}
};
class HistogramHandle {
public:
    void record(std::uint64_t) const {}
};
struct HistogramSnapshot {
    std::string name;
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
};
struct MetricsSnapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSnapshot> histograms;
};
class MetricsRegistry {
public:
    Counter counter(const std::string&) { return {}; }
    Gauge gauge(const std::string&) { return {}; }
    HistogramHandle histogram(const std::string&,
                              const std::vector<std::uint64_t>&) {
        return {};
    }
    MetricsSnapshot snapshot() const { return {}; }
    static std::string to_json(const MetricsSnapshot&) {
        return "{\"counters\":{},\"gauges\":{},\"histograms\":{}}";
    }
    std::string snapshot_json() const { return to_json({}); }
    void reset_for_tests() {}
};
MetricsRegistry& registry();
const std::vector<std::uint64_t>& latency_bounds_ns();

#endif  // PVFP_OBS_DISABLED

}  // namespace pvfp::obs

#include "pvfp/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "pvfp/gis/json.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::obs {

namespace {

std::atomic<bool>& enabled_flag() {
    static std::atomic<bool> flag = [] {
        const char* env = std::getenv("PVFP_OBS");
        return env != nullptr && *env != '\0' &&
               std::string_view(env) != "0";
    }();
    return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
    enabled_flag().store(on, std::memory_order_relaxed);
}

#ifndef PVFP_OBS_DISABLED

/// One thread's update target: a flat array of relaxed atomic cells the
/// owning thread alone mutates (counters and histogram buckets share
/// the cell index space).  std::deque keeps element addresses stable
/// while the owner grows it, so snapshot() can read concurrently under
/// the state mutex which also guards the growth.
struct MetricsRegistry::Shard {
    std::deque<std::atomic<std::uint64_t>> cells;
    std::uint64_t epoch = 0;  ///< registry epoch this shard belongs to
};

struct MetricsRegistry::State {
    struct CounterDef {
        std::string name;
        int cell = 0;
    };
    struct HistDef {
        std::string name;
        std::vector<std::uint64_t> bounds;
        int first_cell = 0;  ///< bounds.size()+1 buckets, then the sum
    };

    mutable std::mutex mutex;
    std::map<std::string, CounterDef> counters;
    std::map<std::string, HistDef> histograms;
    std::map<std::string, std::deque<std::atomic<double>>::size_type>
        gauge_index;
    std::deque<std::atomic<double>> gauges;
    int next_cell = 0;
    std::vector<Shard*> shards;  ///< live per-thread shards
    std::vector<std::uint64_t> retired;  ///< folded cells of dead threads
    /// Bumped by reset_for_tests so stale thread-cached shards are
    /// detected and replaced instead of silently updating orphans.
    std::atomic<std::uint64_t> epoch{0};
};

namespace {

/// Thread-exit bookkeeping: every (state, shard) pair this thread ever
/// touched; the destructor folds each shard into its state's retired
/// totals so counts survive thread churn.  The shared_ptr keeps the
/// state alive past its registry (test instances) and past static
/// destruction order (the global registry is intentionally leaked).
struct ThreadShards {
    struct Entry {
        std::shared_ptr<MetricsRegistry::State> state;
        std::unique_ptr<MetricsRegistry::Shard> shard;
    };
    std::vector<Entry> entries;

    ~ThreadShards() {
        for (Entry& entry : entries) retire(entry);
    }

    static void retire(Entry& entry);
};

thread_local ThreadShards t_shards;

/// Registries hand their state around as shared_ptr so thread caches
/// can outlive the registry object; the registry itself stores the raw
/// pointer (header stays container-free) and parks the owning ref here.
std::mutex g_states_mutex;
std::vector<std::shared_ptr<MetricsRegistry::State>>& g_states() {
    static auto* states =
        new std::vector<std::shared_ptr<MetricsRegistry::State>>;
    return *states;
}

std::shared_ptr<MetricsRegistry::State> make_state() {
    auto state = std::make_shared<MetricsRegistry::State>();
    std::lock_guard<std::mutex> lock(g_states_mutex);
    g_states().push_back(state);
    return state;
}

std::shared_ptr<MetricsRegistry::State> find_state(
    MetricsRegistry::State* raw) {
    std::lock_guard<std::mutex> lock(g_states_mutex);
    for (const auto& state : g_states())
        if (state.get() == raw) return state;
    return nullptr;
}

void drop_state(MetricsRegistry::State* raw) {
    std::lock_guard<std::mutex> lock(g_states_mutex);
    auto& states = g_states();
    states.erase(std::remove_if(states.begin(), states.end(),
                                [&](const auto& s) { return s.get() == raw; }),
                 states.end());
}

void ThreadShards::retire(Entry& entry) {
    MetricsRegistry::State& state = *entry.state;
    std::lock_guard<std::mutex> lock(state.mutex);
    if (entry.shard->epoch ==
        state.epoch.load(std::memory_order_relaxed)) {
        if (state.retired.size() < entry.shard->cells.size())
            state.retired.resize(entry.shard->cells.size(), 0);
        for (std::size_t i = 0; i < entry.shard->cells.size(); ++i)
            state.retired[i] +=
                entry.shard->cells[i].load(std::memory_order_relaxed);
    }
    state.shards.erase(
        std::remove(state.shards.begin(), state.shards.end(),
                    entry.shard.get()),
        state.shards.end());
    entry.shard.reset();
}

std::string format_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    return buf;
}

}  // namespace

MetricsRegistry::State& MetricsRegistry::state() const {
    // Lazy so the global registry() and test instances share one path;
    // the first call wins (registration and updates both funnel here).
    if (state_ == nullptr) {
        static std::mutex init_mutex;
        std::lock_guard<std::mutex> lock(init_mutex);
        if (state_ == nullptr)
            const_cast<MetricsRegistry*>(this)->state_ = make_state().get();
    }
    return *state_;
}

MetricsRegistry::~MetricsRegistry() {
    if (state_ != nullptr) drop_state(state_);
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() const {
    State& s = state();
    const std::uint64_t epoch = s.epoch.load(std::memory_order_relaxed);
    for (auto& entry : t_shards.entries) {
        if (entry.state.get() != &s) continue;
        if (entry.shard->epoch != epoch) {
            // reset_for_tests happened: the registry forgot this shard,
            // so updating it would vanish.  Replace with a fresh one.
            ThreadShards::Entry stale = std::move(entry);
            entry.state = stale.state;
            entry.shard = std::make_unique<Shard>();
            entry.shard->epoch = epoch;
            std::lock_guard<std::mutex> lock(s.mutex);
            s.shards.push_back(entry.shard.get());
        }
        return *entry.shard;
    }
    ThreadShards::Entry entry;
    entry.state = find_state(&s);
    entry.shard = std::make_unique<Shard>();
    entry.shard->epoch = epoch;
    Shard* shard = entry.shard.get();
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        s.shards.push_back(shard);
    }
    t_shards.entries.push_back(std::move(entry));
    return *shard;
}

Counter MetricsRegistry::counter(const std::string& name) {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    check_arg(s.histograms.find(name) == s.histograms.end() &&
                  s.gauge_index.find(name) == s.gauge_index.end(),
              "obs: metric '" + name + "' already registered as another kind");
    auto [it, inserted] = s.counters.try_emplace(name);
    if (inserted) {
        it->second.name = name;
        it->second.cell = s.next_cell++;
    }
    return Counter(this, it->second.cell);
}

Gauge MetricsRegistry::gauge(const std::string& name) {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    check_arg(s.counters.find(name) == s.counters.end() &&
                  s.histograms.find(name) == s.histograms.end(),
              "obs: metric '" + name + "' already registered as another kind");
    auto [it, inserted] = s.gauge_index.try_emplace(name, s.gauges.size());
    if (inserted) s.gauges.emplace_back(0.0);
    return Gauge(&s.gauges[it->second]);
}

HistogramHandle MetricsRegistry::histogram(
    const std::string& name, const std::vector<std::uint64_t>& bounds) {
    check_arg(!bounds.empty(), "obs: histogram needs at least one bound");
    check_arg(std::is_sorted(bounds.begin(), bounds.end()) &&
                  std::adjacent_find(bounds.begin(), bounds.end()) ==
                      bounds.end(),
              "obs: histogram bounds must be strictly ascending");
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    check_arg(s.counters.find(name) == s.counters.end() &&
                  s.gauge_index.find(name) == s.gauge_index.end(),
              "obs: metric '" + name + "' already registered as another kind");
    auto it = s.histograms.find(name);
    if (it == s.histograms.end()) {
        State::HistDef def;
        def.name = name;
        def.bounds = bounds;
        def.first_cell = s.next_cell;
        s.next_cell += static_cast<int>(bounds.size()) + 2;
        it = s.histograms.emplace(name, std::move(def)).first;
    } else {
        check_arg(it->second.bounds == bounds,
                  "obs: histogram '" + name +
                      "' re-registered with different bounds");
    }
    return HistogramHandle(this, it->second.first_cell,
                           it->second.bounds.data(),
                           static_cast<int>(it->second.bounds.size()));
}

namespace {

/// Grow \p shard (owner thread only) to cover cell \p cell, under the
/// state mutex so a concurrent snapshot never races the deque growth.
void ensure_cell(MetricsRegistry::State& s, MetricsRegistry::Shard& shard,
                 int cell) {
    if (static_cast<std::size_t>(cell) < shard.cells.size()) return;
    std::lock_guard<std::mutex> lock(s.mutex);
    // Value-initialized atomics: new cells start at zero.
    while (shard.cells.size() <= static_cast<std::size_t>(cell))
        shard.cells.emplace_back();
}

}  // namespace

void Counter::add(std::uint64_t n) const {
    if (registry_ == nullptr || !enabled()) return;
    MetricsRegistry::Shard& shard = registry_->local_shard();
    ensure_cell(registry_->state(), shard, cell_);
    shard.cells[static_cast<std::size_t>(cell_)].fetch_add(
        n, std::memory_order_relaxed);
}

void Gauge::set(double value) const {
    if (cell_ == nullptr || !enabled()) return;
    cell_->store(value, std::memory_order_relaxed);
}

void HistogramHandle::record(std::uint64_t value) const {
    if (registry_ == nullptr || !enabled()) return;
    // Inclusive upper bounds (the Prometheus "le" convention): a value
    // equal to a bound lands in that bound's bucket; only values past
    // the last bound overflow.
    const std::uint64_t* end = bounds_ + n_bounds_;
    const int bucket =
        static_cast<int>(std::lower_bound(bounds_, end, value) - bounds_);
    MetricsRegistry::Shard& shard = registry_->local_shard();
    const int sum_cell = first_cell_ + n_bounds_ + 1;
    ensure_cell(registry_->state(), shard, sum_cell);
    shard.cells[static_cast<std::size_t>(first_cell_ + bucket)].fetch_add(
        1, std::memory_order_relaxed);
    shard.cells[static_cast<std::size_t>(sum_cell)].fetch_add(
        value, std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto cell_total = [&](int cell) {
        std::uint64_t total =
            static_cast<std::size_t>(cell) < s.retired.size()
                ? s.retired[static_cast<std::size_t>(cell)]
                : 0;
        for (const Shard* shard : s.shards)
            if (static_cast<std::size_t>(cell) < shard->cells.size())
                total += shard->cells[static_cast<std::size_t>(cell)].load(
                    std::memory_order_relaxed);
        return total;
    };

    MetricsSnapshot snap;
    for (const auto& [name, def] : s.counters)
        snap.counters.emplace_back(name, cell_total(def.cell));
    for (const auto& [name, slot] : s.gauge_index)
        snap.gauges.emplace_back(
            name, s.gauges[slot].load(std::memory_order_relaxed));
    for (const auto& [name, def] : s.histograms) {
        HistogramSnapshot h;
        h.name = name;
        h.bounds = def.bounds;
        h.buckets.resize(def.bounds.size() + 1);
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            h.buckets[b] = cell_total(def.first_cell + static_cast<int>(b));
            h.count += h.buckets[b];
        }
        h.sum = cell_total(def.first_cell +
                           static_cast<int>(def.bounds.size()) + 1);
        snap.histograms.push_back(std::move(h));
    }
    // std::map iteration is already name-sorted — the codec's fixed key
    // order falls out of the container choice.
    return snap;
}

std::string MetricsRegistry::to_json(const MetricsSnapshot& snapshot) {
    std::string out = "{\"counters\":{";
    for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
        if (i) out += ',';
        out += '"' + gis::json_escape(snapshot.counters[i].first) +
               "\":" + std::to_string(snapshot.counters[i].second);
    }
    out += "},\"gauges\":{";
    for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
        if (i) out += ',';
        out += '"' + gis::json_escape(snapshot.gauges[i].first) +
               "\":" + format_double(snapshot.gauges[i].second);
    }
    out += "},\"histograms\":{";
    for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
        const HistogramSnapshot& h = snapshot.histograms[i];
        if (i) out += ',';
        out += '"' + gis::json_escape(h.name) + "\":{\"count\":" +
               std::to_string(h.count) + ",\"sum\":" + std::to_string(h.sum) +
               ",\"bounds\":[";
        for (std::size_t b = 0; b < h.bounds.size(); ++b) {
            if (b) out += ',';
            out += std::to_string(h.bounds[b]);
        }
        out += "],\"buckets\":[";
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            if (b) out += ',';
            out += std::to_string(h.buckets[b]);
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

std::string MetricsRegistry::snapshot_json() const {
    return to_json(snapshot());
}

void MetricsRegistry::reset_for_tests() {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    // Definitions survive (span sites and other call sites hold static
    // handles); only the accumulated values go.  Live threads notice the
    // epoch bump and re-register a fresh zeroed shard on next touch.
    s.shards.clear();
    s.retired.clear();
    for (auto& gauge : s.gauges) gauge.store(0.0, std::memory_order_relaxed);
    s.epoch.fetch_add(1, std::memory_order_relaxed);
}

MetricsRegistry& registry() {
    // Intentionally leaked: thread_local shard destructors may run
    // during shutdown after function-local statics are destroyed.
    static MetricsRegistry* instance = new MetricsRegistry;
    return *instance;
}

const std::vector<std::uint64_t>& latency_bounds_ns() {
    static const std::vector<std::uint64_t> bounds = {
        1'000,          2'000,          5'000,         10'000,
        20'000,         50'000,         100'000,       200'000,
        500'000,        1'000'000,      2'000'000,     5'000'000,
        10'000'000,     20'000'000,     50'000'000,    100'000'000,
        200'000'000,    500'000'000,    1'000'000'000, 2'000'000'000,
        5'000'000'000,  10'000'000'000,
    };
    return bounds;
}

#else  // PVFP_OBS_DISABLED

MetricsRegistry& registry() {
    static MetricsRegistry instance;
    return instance;
}

const std::vector<std::uint64_t>& latency_bounds_ns() {
    static const std::vector<std::uint64_t> bounds = {1'000};
    return bounds;
}

#endif  // PVFP_OBS_DISABLED

}  // namespace pvfp::obs

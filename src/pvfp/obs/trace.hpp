#pragma once
/// \file trace.hpp
/// pvfp::obs — scoped trace spans with Chrome trace-event export.
///
/// `PVFP_TRACE_SPAN("prepare_scenario")` at the top of a scope records
/// one complete event (begin timestamp + duration) into a per-thread
/// buffer when tracing is on.  chrome_trace_json() serializes every
/// buffered span as Chrome trace-event JSON — load the file in Perfetto
/// (https://ui.perfetto.dev) or chrome://tracing to see the per-roof /
/// per-request timeline.
///
/// Two deliberate asymmetries with the metrics layer:
///  - Each span site also owns a deterministic `span.<name>` *counter*
///    in the global MetricsRegistry, incremented whenever telemetry is
///    enabled (obs::enabled()), even when span *timing* is off.  Call
///    counts are a pure function of the workload and thread-count
///    invariant; timestamps are wall clock and live only in the trace.
///  - Span buffers drop new events when full instead of overwriting:
///    published slots are immutable, so concurrent export never reads a
///    half-written record (TSan-clean by construction).  The drop count
///    is reported in the export.
///
/// Tracing never alters results: enabling it must not change ranked /
/// plan / JSONL bytes (pinned by the CI `obs` job).

#include <cstdint>
#include <string>

#include "pvfp/obs/metrics.hpp"

namespace pvfp::obs {

/// Span-timing switch, independent of the metrics switch (enabled()):
/// timing costs a clock read per span, so callers opt in separately
/// (--trace-out sets both).  Initialized from PVFP_OBS_TRACE.
bool trace_enabled();
void set_trace_enabled(bool on);

#ifndef PVFP_OBS_DISABLED

namespace detail {

/// Per-site registration (one per PVFP_TRACE_SPAN literal): interns the
/// name and the deterministic call counter once, at first execution.
struct SpanSite {
    explicit SpanSite(const char* name);
    const char* name;
    Counter calls;  ///< `span.<name>` in the global registry
};

/// Record one complete span for this thread.  \p begin_ns / \p end_ns
/// come from the steady clock; conversion to trace-event microseconds
/// happens at export.
void record_span(const SpanSite& site, std::uint64_t begin_ns,
                 std::uint64_t end_ns);

std::uint64_t steady_now_ns();

}  // namespace detail

/// RAII span: counts the call on entry (when enabled()), records the
/// timed event on exit (when trace_enabled()).
class ScopedSpan {
public:
    explicit ScopedSpan(const detail::SpanSite& site) : site_(&site) {
        if (enabled()) site.calls.add();
        if (trace_enabled()) begin_ns_ = detail::steady_now_ns();
    }
    ~ScopedSpan() {
        if (begin_ns_ != 0)
            detail::record_span(*site_, begin_ns_, detail::steady_now_ns());
    }
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
    const detail::SpanSite* site_;
    std::uint64_t begin_ns_ = 0;  ///< 0 = timing off for this span
};

/// Serialize every buffered span as Chrome trace-event JSON (complete
/// "ph":"X" events, microsecond timestamps, one tid per recording
/// thread in first-seen order).  Deterministic key order; the wrapper
/// object carries the drop count under "pvfp_dropped_spans".
std::string chrome_trace_json();

/// chrome_trace_json() to \p path (throws IoError on failure).
void write_chrome_trace(const std::string& path);

/// Spans dropped because a thread buffer was full.
std::uint64_t dropped_spans();

/// Drop every buffered span and the drop count.  Test-only; callers
/// must be quiescent.
void reset_trace_for_tests();

#define PVFP_OBS_CONCAT2(a, b) a##b
#define PVFP_OBS_CONCAT(a, b) PVFP_OBS_CONCAT2(a, b)

/// Trace the enclosing scope as one named span.  \p name_literal must
/// be a string literal (it is interned by pointer at first execution).
#define PVFP_TRACE_SPAN(name_literal)                                    \
    static const ::pvfp::obs::detail::SpanSite PVFP_OBS_CONCAT(          \
        pvfp_span_site_, __LINE__){name_literal};                        \
    ::pvfp::obs::ScopedSpan PVFP_OBS_CONCAT(pvfp_span_,                  \
                                            __LINE__)(PVFP_OBS_CONCAT(  \
        pvfp_span_site_, __LINE__))

#else  // PVFP_OBS_DISABLED: spans compile to nothing.

inline std::string chrome_trace_json() {
    return "{\"displayTimeUnit\":\"ms\",\"pvfp_dropped_spans\":0,"
           "\"traceEvents\":[]}";
}
void write_chrome_trace(const std::string& path);
inline std::uint64_t dropped_spans() { return 0; }
inline void reset_trace_for_tests() {}

#define PVFP_TRACE_SPAN(name_literal) \
    do {                              \
    } while (false)

#endif  // PVFP_OBS_DISABLED

}  // namespace pvfp::obs

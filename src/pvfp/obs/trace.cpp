#include "pvfp/obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "pvfp/gis/json.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::obs {

namespace {

std::atomic<bool>& trace_flag() {
    static std::atomic<bool> flag = [] {
        const char* env = std::getenv("PVFP_OBS_TRACE");
        return env != nullptr && *env != '\0' &&
               std::string_view(env) != "0";
    }();
    return flag;
}

}  // namespace

bool trace_enabled() {
    return trace_flag().load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
    trace_flag().store(on, std::memory_order_relaxed);
}

#ifndef PVFP_OBS_DISABLED

namespace {

struct SpanRecord {
    const char* name;
    std::uint64_t begin_ns;
    std::uint64_t end_ns;
};

/// One thread's span storage.  The owner writes the slot *before*
/// publishing it via the release store on `count`; the exporter
/// acquires `count` and reads only published slots, so slots are
/// immutable once visible (no overwrite ring — full buffers drop).
struct TraceBuffer {
    static constexpr std::size_t kCapacity = 1 << 16;  // 64k spans/thread
    std::vector<SpanRecord> slots{kCapacity};
    std::atomic<std::uint64_t> count{0};
    std::uint64_t tid = 0;  ///< first-seen order, 1-based
};

struct TraceState {
    std::mutex mutex;
    /// shared_ptr: buffers outlive their thread so the exporter can
    /// still read spans from threads that already exited.
    std::vector<std::shared_ptr<TraceBuffer>> buffers;
    std::atomic<std::uint64_t> dropped{0};
    /// Bumped by reset_trace_for_tests; stale thread-local buffers
    /// re-register instead of resurrecting cleared spans.
    std::atomic<std::uint64_t> epoch{0};
};

TraceState& trace_state() {
    // Leaked for the same reason as the metrics registry: thread_local
    // destructors may outlive function-local statics at shutdown.
    static TraceState* state = new TraceState;
    return *state;
}

struct LocalBuffer {
    std::shared_ptr<TraceBuffer> buffer;
    std::uint64_t epoch = 0;
};

TraceBuffer& local_buffer() {
    thread_local LocalBuffer local;
    TraceState& state = trace_state();
    const std::uint64_t epoch = state.epoch.load(std::memory_order_relaxed);
    if (local.buffer == nullptr || local.epoch != epoch) {
        local.buffer = std::make_shared<TraceBuffer>();
        local.epoch = epoch;
        std::lock_guard<std::mutex> lock(state.mutex);
        local.buffer->tid = state.buffers.size() + 1;
        state.buffers.push_back(local.buffer);
    }
    return *local.buffer;
}

}  // namespace

namespace detail {

SpanSite::SpanSite(const char* name_literal)
    : name(name_literal),
      calls(registry().counter(std::string("span.") + name_literal)) {}

std::uint64_t steady_now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void record_span(const SpanSite& site, std::uint64_t begin_ns,
                 std::uint64_t end_ns) {
    TraceBuffer& buffer = local_buffer();
    const std::uint64_t n = buffer.count.load(std::memory_order_relaxed);
    if (n >= TraceBuffer::kCapacity) {
        trace_state().dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buffer.slots[n] = SpanRecord{site.name, begin_ns, end_ns};
    buffer.count.store(n + 1, std::memory_order_release);
}

}  // namespace detail

std::string chrome_trace_json() {
    TraceState& state = trace_state();
    std::vector<std::shared_ptr<TraceBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        buffers = state.buffers;
    }
    std::string out = "{\"displayTimeUnit\":\"ms\",\"pvfp_dropped_spans\":";
    out += std::to_string(dropped_spans());
    out += ",\"traceEvents\":[";
    bool first = true;
    for (const auto& buffer : buffers) {
        const std::uint64_t n = buffer->count.load(std::memory_order_acquire);
        for (std::uint64_t i = 0; i < n; ++i) {
            const SpanRecord& span = buffer->slots[i];
            if (!first) out += ',';
            first = false;
            // Complete ("X") events: microsecond begin + duration, one
            // pid for the process, tid in thread first-seen order.
            out += "{\"name\":\"" + gis::json_escape(span.name) +
                   "\",\"ph\":\"X\",\"ts\":" +
                   std::to_string(span.begin_ns / 1000) + ",\"dur\":" +
                   std::to_string((span.end_ns - span.begin_ns) / 1000) +
                   ",\"pid\":1,\"tid\":" + std::to_string(buffer->tid) + "}";
        }
    }
    out += "]}";
    return out;
}

std::uint64_t dropped_spans() {
    return trace_state().dropped.load(std::memory_order_relaxed);
}

void reset_trace_for_tests() {
    TraceState& state = trace_state();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.buffers.clear();
    state.dropped.store(0, std::memory_order_relaxed);
    state.epoch.fetch_add(1, std::memory_order_relaxed);
}

#endif  // PVFP_OBS_DISABLED

void write_chrome_trace(const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    check_io(out.good(), "obs: cannot open trace output '" + path + "'");
    const std::string json = chrome_trace_json();
    out.write(json.data(), static_cast<std::streamsize>(json.size()));
    out.put('\n');
    check_io(out.good(), "obs: failed writing trace output '" + path + "'");
}

}  // namespace pvfp::obs

#pragma once
/// \file server.hpp
/// pvfp::serve::Server — the always-on ranking daemon.
///
/// One accept/parse thread reads newline-delimited JSON requests (from
/// a pipe or a local socket), appends each to a replayable request log,
/// and pushes it into a bounded lock-free MPSC ring
/// (util/atomic_queue.hpp) — no mutex anywhere on the request path.  A
/// dispatcher thread drains the ring in arrival order and executes
/// batches of independent requests on the existing PR-2 worker pool
/// (one request per task when the batch is pool-wide, inner-loop
/// fan-out otherwise — the run_city policy), writing responses strictly
/// in arrival order.  Because every response byte is a pure function of
/// the request sequence — per-roof results are bitwise thread-count
/// independent, and ops that mutate or observe shared state (reload,
/// quit, status, metrics) run as serial barriers — a live session at 8
/// threads, a live session at 1 thread, and a --replay of the logged
/// session all produce identical bytes (metrics responses excepted:
/// they carry wall-clock data by design).  That extends the repo's
/// determinism contract from batch outputs to the serving plane and
/// gives load tests an exact oracle.
///
/// Hot state (tiles, per-site sky artifacts, prepared roofs) lives in
/// ResidentState and persists across sessions/connections: the first
/// request on a roof pays mosaic + fit + horizon + sky once, every
/// later rank/plan on it costs milliseconds.

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "pvfp/gis/city_runner.hpp"
#include "pvfp/grid/feeder_model.hpp"
#include "pvfp/serve/resident_state.hpp"

namespace pvfp::serve {

struct ServerOptions {
    ServeConfig state{};
    /// Append every request here (JSONL, torn-tail safe); "" disables
    /// logging (and with it replayability).
    std::string request_log_path;
    /// Footprint index path backing the `reload` op; "" rejects reload.
    std::string index_path;
    /// Feeder index (grid::FeederModel) backing the `grid_rank` op;
    /// "" rejects grid_rank.  Loaded and validated against the roof
    /// registry at construction.
    std::string feeder_path;
    /// Request ring capacity (rounded up to a power of two).
    std::size_t queue_capacity = 1024;
    /// Max requests executed as one batch; 0 = 2 x thread_count().
    int max_batch = 0;
};

class Server {
public:
    Server(gis::TileIndex tiles, gis::RoofRegistry registry,
           ServerOptions options);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Serve one session: read requests from \p in until EOF or a quit
    /// op, write responses to \p out in arrival order.  Returns true
    /// when quit ended the session (a socket accept loop stops then).
    /// Resident state, the request log, and sequence numbers persist
    /// across sessions.
    bool serve(std::istream& in, std::ostream& out);

    /// Serve connections on a local (AF_UNIX) stream socket at \p path,
    /// one client at a time, until a quit request.  The socket file is
    /// created fresh (an existing one is replaced).
    void serve_socket(const std::string& socket_path);

    /// Re-execute the longest valid prefix of a request log serially,
    /// writing responses to \p out — byte-identical to the live
    /// session(s) that produced the log, at any thread count.  Returns
    /// the number of requests replayed.
    long replay(const std::string& log_path, std::ostream& out);

    /// Requests accepted so far (== next sequence number).
    long requests_accepted() const { return seq_; }

    ResidentState& state() { return *state_; }
    const ResidentState& state() const { return *state_; }

private:
    struct Item;

    /// Compute the response line for one parsed item (no newline).
    /// Deterministic per (seq, request, registry state); never throws.
    /// Wraps respond_payload with per-op telemetry (request counter and
    /// latency histogram) when obs is enabled — the payload bytes are
    /// identical either way.
    std::string respond(const Item& item);
    std::string respond_payload(const Item& item);
    Item make_item(long seq, const std::string& raw_line) const;
    /// Fold resident-state/cache stats into the obs registry: byte
    /// totals as gauges, event totals as counters fed the delta since
    /// the last export (tracked in obs_exported_).  Runs under the
    /// metrics op's barrier serialization.
    void export_resident_metrics();
    /// One roof's rank payload: the run_city record shape, errors
    /// captured in the record (shared by rank and grid_rank).
    gis::RoofResult rank_result(const std::string& roof_id);

    ServerOptions options_;
    std::optional<grid::FeederModel> feeder_model_;
    std::unique_ptr<ResidentState> state_;
    std::unique_ptr<std::ofstream> log_;
    long seq_ = 0;
    /// ResidentStats totals already folded into the obs registry; the
    /// next `metrics` op adds only the delta (counters stay monotonic
    /// across repeated snapshots).  Barrier-serial, so unsynchronized.
    ResidentStats obs_exported_{};
};

}  // namespace pvfp::serve

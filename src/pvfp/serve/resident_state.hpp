#pragma once
/// \file resident_state.hpp
/// The serving daemon's hot state: prepared roofs that stay resident.
///
/// A batch run amortizes tile decode and the ~105k-step sky precompute
/// across one pass and then exits; a serving process must instead keep
/// exactly that state alive between requests so a re-plan costs
/// milliseconds.  ResidentState owns the long-lived layers:
///
///   TileIndex (scanned once)  +  RoofRegistry (swappable snapshot)
///   -> TileCache              (decoded tiles, bounded LRU, PR-5)
///   -> per-site SharedSkyArtifact cache (one sun/transposition
///      precompute per distinct site, shared by every roof there)
///   -> per-roof PreparedRoof cache (mosaic + plane fit + HorizonMap +
///      IrradianceField + suitability — everything a rank/plan request
///      needs), LRU-evicted against a byte budget accounted from the
///      actual buffer sizes.
///
/// Entries are content-hashed over the registry record and the build
/// knobs, so an index edit (new bbox, moved polygon, changed site)
/// invalidates exactly the affected roofs on their next request after
/// update_registry — stale state can never serve.  Concurrent requests
/// for the same cold roof join one in-flight build (waiting on that
/// build's own latch, never a state-wide lock); requests for different
/// roofs prepare fully in parallel.  All responses derived from a
/// PreparedRoof are bitwise deterministic at any thread count (the
/// PR-2..PR-5 contract), so caching is invisible in the output bytes —
/// the property the serving plane's replay gate rests on.

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pvfp/core/pipeline.hpp"
#include "pvfp/gis/horizon_cache.hpp"
#include "pvfp/gis/roof_registry.hpp"
#include "pvfp/gis/tile_index.hpp"

namespace pvfp::serve {

/// Everything the daemon applies to every roof it prepares.
struct ServeConfig {
    /// Pipeline configuration shared by every roof (cell_size is
    /// overridden by the tile set's; location by registry lat/lon).
    core::ScenarioConfig config{};
    /// Topologies a `rank` request compares.
    std::vector<pv::Topology> topologies{{8, 2}};
    core::GreedyOptions greedy{};
    core::EvaluationOptions eval{};
    gis::ScenarioBuildOptions build{};
    /// Resident decoded tiles in the shared LRU cache.
    std::size_t tile_cache_tiles = 16;
    /// Byte budget for resident roofs + sky artifacts + shared horizon
    /// planes.  The LRU evicts past it after every build; the most
    /// recent entry is always kept, so a single roof larger than the
    /// budget still serves (the budget then bounds *additional*
    /// residency, not that one roof).
    std::size_t memory_budget_bytes = 512ull << 20;
    /// Share horizon marching across roofs (gis::HorizonCache): sector
    /// planes are computed once per macro tile over a max_distance-halo
    /// mosaic and each prepared roof assembles its window from the
    /// cached planes.  Served results then match a
    /// `run_city --shared-horizon` stream (uniform march distance over
    /// real neighbouring terrain) instead of the cold per-roof-capped
    /// one; either mode is bitwise deterministic.
    bool share_horizon = false;
};

/// One roof's resident hot state — immutable once built, shared with
/// any request currently using it (eviction only drops the cache's
/// reference, never memory in use).
struct PreparedRoof {
    std::string id;
    /// FNV-1a over the registry record + build knobs; a mismatch with
    /// the current registry means the entry is stale.
    std::uint64_t content_hash = 0;
    gis::RoofPlaneFit fit{};
    /// The per-roof adjusted configuration (site override, horizon
    /// march clamp, shared sky) — identical to what run_city applies,
    /// so a served result equals the batch JSONL record bit for bit.
    core::ScenarioConfig config{};
    core::PreparedScenario prepared;
    /// Actual buffer footprint: DSM window + placement mask + horizon
    /// planes + irradiance SoA planes + suitability grids.
    std::size_t resident_bytes = 0;
};

/// Accounting snapshot (approximate under concurrency; exact when
/// quiescent).
struct ResidentStats {
    std::size_t entries = 0;         ///< resident PreparedRoofs
    /// Aggregate: prepared + sky + horizon bytes (the budget's view).
    std::size_t resident_bytes = 0;
    /// Per-cache byte accounting (status op: tiles/sky/prepared/horizon).
    std::size_t tile_cache_bytes = 0;  ///< decoded tiles (outside budget)
    std::size_t sky_bytes = 0;         ///< resident sky artifacts
    std::size_t prepared_bytes = 0;    ///< resident PreparedRoof buffers
    std::size_t sky_artifacts = 0;   ///< distinct resident sites
    std::size_t hits = 0;            ///< served without building
    std::size_t misses = 0;          ///< builds initiated
    std::size_t evictions = 0;       ///< entries dropped for the budget
    std::size_t invalidations = 0;   ///< entries dropped as stale
    std::size_t tile_cache_hits = 0;
    std::size_t tile_cache_misses = 0;
    /// Shared horizon cache accounting (share_horizon; zero otherwise).
    std::size_t horizon_cache_hits = 0;
    std::size_t horizon_cache_misses = 0;
    std::size_t horizon_cache_evictions = 0;
    std::size_t horizon_cache_bytes = 0;
};

class ResidentState {
public:
    ResidentState(gis::TileIndex tiles, gis::RoofRegistry registry,
                  ServeConfig config);

    /// The prepared hot state of \p roof_id: resident entry when fresh,
    /// else built (joining an identical in-flight build when one is
    /// running).  Throws InvalidArgument for an unknown id; build
    /// failures (footprint off the tiles, ...) propagate to every
    /// joined caller and leave nothing cached.
    std::shared_ptr<const PreparedRoof> prepare(const std::string& roof_id);

    /// Swap the registry (an edited index reloaded).  Resident entries
    /// are revalidated lazily: the next prepare() of a changed roof sees
    /// the content-hash mismatch and rebuilds; untouched roofs keep
    /// serving from cache.
    void update_registry(gis::RoofRegistry registry);

    /// Drop one roof's resident entry (no-op when absent).
    void invalidate(const std::string& roof_id);

    /// Registry record for \p roof_id, nullptr when unknown.  The
    /// returned pointer stays valid while the returned snapshot guard
    /// is held.
    std::shared_ptr<const gis::RoofRegistry> registry() const;

    const gis::TileIndex& tiles() const { return tiles_; }
    const ServeConfig& config() const { return serve_config_; }

    ResidentStats stats() const;

private:
    struct Build;  // one in-flight preparation

    std::shared_ptr<PreparedRoof> build_roof(const gis::RoofRecord& record,
                                             std::uint64_t hash);
    std::shared_ptr<const solar::SharedSkyArtifact> sky_for(
        const solar::Location& location);
    void evict_over_budget_locked();
    void drop_entry_locked(const std::string& roof_id, bool stale);

    gis::TileIndex tiles_;
    ServeConfig serve_config_;
    core::ScenarioConfig base_config_;  ///< config with tile cell size
    gis::TileCache tile_cache_;
    /// Shared macro-tile horizon planes (share_horizon; else null).
    /// Its bytes count against memory_budget_bytes: the roof eviction
    /// pass shrinks it once the resident roofs alone fit.
    std::unique_ptr<gis::HorizonCache> horizon_cache_;

    mutable std::mutex registry_mutex_;
    std::shared_ptr<const gis::RoofRegistry> registry_;
    /// id -> record index of *registry_ (rebuilt on update_registry).
    std::shared_ptr<const std::unordered_map<std::string, long>> by_id_;

    mutable std::mutex mutex_;  ///< guards everything below
    struct EntryRef {
        std::shared_ptr<const PreparedRoof> roof;
        std::list<std::string>::iterator lru_it;
    };
    std::unordered_map<std::string, EntryRef> entries_;
    std::list<std::string> lru_;  ///< front = most recently used
    std::unordered_map<std::string, std::shared_ptr<Build>> in_flight_;
    std::size_t entry_bytes_ = 0;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
    std::size_t evictions_ = 0;
    std::size_t invalidations_ = 0;

    mutable std::mutex sky_mutex_;
    std::map<std::pair<double, double>,
             std::shared_ptr<const solar::SharedSkyArtifact>>
        sky_cache_;
    std::unordered_map<std::string, std::shared_ptr<Build>> sky_in_flight_;
};

/// Actual buffer footprint of a prepared scenario (the accounting unit
/// of the memory budget); exposed for the eviction tests.
std::size_t prepared_scenario_bytes(const core::PreparedScenario& prepared);

/// Bytes of one shared sky artifact.
std::size_t sky_artifact_bytes(const solar::SharedSkyArtifact& artifact);

/// FNV-1a content hash of a registry record under \p build — the
/// invalidation key of the resident cache.
std::uint64_t roof_record_hash(const gis::RoofRecord& record,
                               const gis::ScenarioBuildOptions& build);

}  // namespace pvfp::serve

#include "pvfp/serve/resident_state.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <condition_variable>

#include "pvfp/util/error.hpp"
#include "pvfp/weather/synthetic.hpp"

namespace pvfp::serve {

namespace {

void hash_bytes(std::uint64_t& h, const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;  // FNV-1a 64 prime
    }
}

void hash_double(std::uint64_t& h, double v) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
    hash_bytes(h, &bits, sizeof bits);
}

}  // namespace

std::uint64_t roof_record_hash(const gis::RoofRecord& record,
                               const gis::ScenarioBuildOptions& build) {
    std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64 offset basis
    hash_bytes(h, record.id.data(), record.id.size());
    hash_double(h, record.bbox.x0);
    hash_double(h, record.bbox.y0);
    hash_double(h, record.bbox.x1);
    hash_double(h, record.bbox.y1);
    for (const auto& [x, y] : record.polygon) {
        hash_double(h, x);
        hash_double(h, y);
    }
    const unsigned char has_loc = record.has_location ? 1 : 0;
    hash_bytes(h, &has_loc, 1);
    if (record.has_location) {
        hash_double(h, record.latitude_deg);
        hash_double(h, record.longitude_deg);
    }
    hash_double(h, build.context_margin_m);
    hash_double(h, build.trim_sigma);
    return h;
}

std::size_t prepared_scenario_bytes(const core::PreparedScenario& prepared) {
    std::size_t bytes = 0;
    // The mosaic window (aliased by the scenario, owned here: the cache
    // entry is what keeps it alive).
    if (prepared.dsm)
        bytes += prepared.dsm->grid().size() * sizeof(double);
    // Placement validity mask.
    bytes += prepared.area.valid.size() * sizeof(unsigned char);
    // Horizon planes: sector-major angles + SVF, float each.
    const geo::HorizonMap& horizon = prepared.field.horizon();
    bytes += static_cast<std::size_t>(horizon.cell_count()) *
             (static_cast<std::size_t>(horizon.sectors()) + 1) *
             sizeof(float);
    // Per-cell surface normals (3 float planes over the window).
    bytes += static_cast<std::size_t>(horizon.cell_count()) * 3 *
             sizeof(float);
    // Irradiance SoA step planes: 9 float planes, the daylight bytes,
    // and the horizon-lerp precompute (2 x int32 + 1 x double).
    bytes += static_cast<std::size_t>(prepared.field.steps()) *
             (9 * sizeof(float) + sizeof(std::uint8_t) +
              2 * sizeof(std::int32_t) + sizeof(double));
    // Daylight-packed plane twins (7 float planes + 2 x int32 + 1 x
    // double per daylight step) and the two step<->packed index maps.
    bytes += static_cast<std::size_t>(prepared.field.packed_steps()) *
             (7 * sizeof(float) + 2 * sizeof(std::int32_t) +
              sizeof(double) + sizeof(long));
    bytes += static_cast<std::size_t>(prepared.field.steps()) *
             sizeof(long);
    // Suitability, G percentile, T percentile grids.
    bytes += (prepared.suitability.suitability.size() +
              prepared.suitability.g_percentile.size() +
              prepared.suitability.t_percentile.size()) *
             sizeof(double);
    return bytes;
}

std::size_t sky_artifact_bytes(const solar::SharedSkyArtifact& artifact) {
    const auto steps = static_cast<std::size_t>(artifact.steps());
    // env (4 doubles) + 7 double series + the daylight byte per step.
    return steps * (sizeof(solar::EnvSample) + 7 * sizeof(double) +
                    sizeof(std::uint8_t));
}

/// One in-flight preparation (roof build or sky precompute): joiners
/// wait on this latch, never on a state-wide mutex.
struct ResidentState::Build {
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    std::shared_ptr<const PreparedRoof> roof;
    std::shared_ptr<const solar::SharedSkyArtifact> sky;
    std::exception_ptr error;

    void finish(std::shared_ptr<const PreparedRoof> r,
                std::shared_ptr<const solar::SharedSkyArtifact> s,
                std::exception_ptr e) {
        {
            std::lock_guard<std::mutex> lock(mutex);
            done = true;
            roof = std::move(r);
            sky = std::move(s);
            error = e;
        }
        done_cv.notify_all();
    }

    void wait() {
        std::unique_lock<std::mutex> lock(mutex);
        done_cv.wait(lock, [&] { return done; });
        if (error) std::rethrow_exception(error);
    }
};

ResidentState::ResidentState(gis::TileIndex tiles, gis::RoofRegistry registry,
                             ServeConfig config)
    : tiles_(std::move(tiles)),
      serve_config_(std::move(config)),
      base_config_(serve_config_.config),
      tile_cache_(serve_config_.tile_cache_tiles) {
    check_arg(!serve_config_.topologies.empty(),
              "ResidentState: no topologies configured");
    base_config_.cell_size = tiles_.cell_size();
    base_config_.shared_sky = nullptr;
    if (serve_config_.share_horizon) {
        gis::HorizonCacheOptions hc;
        hc.horizon = base_config_.horizon;
        hc.byte_budget = serve_config_.memory_budget_bytes;
        horizon_cache_ = std::make_unique<gis::HorizonCache>(
            tiles_, &tile_cache_, hc);
    }
    update_registry(std::move(registry));
}

void ResidentState::update_registry(gis::RoofRegistry registry) {
    // A reload is the operator's "inputs may have changed" signal: drop
    // the horizon planes and their per-tile content memo so re-written
    // tiles re-hash (roof entries self-invalidate via content_hash).
    if (horizon_cache_) horizon_cache_->clear();
    auto next = std::make_shared<const gis::RoofRegistry>(std::move(registry));
    auto by_id = std::make_shared<std::unordered_map<std::string, long>>();
    by_id->reserve(static_cast<std::size_t>(next->size()));
    for (long i = 0; i < next->size(); ++i)
        (*by_id)[next->record(i).id] = i;
    std::lock_guard<std::mutex> lock(registry_mutex_);
    registry_ = std::move(next);
    by_id_ = std::move(by_id);
}

std::shared_ptr<const gis::RoofRegistry> ResidentState::registry() const {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    return registry_;
}

void ResidentState::invalidate(const std::string& roof_id) {
    std::lock_guard<std::mutex> lock(mutex_);
    drop_entry_locked(roof_id, /*stale=*/true);
}

void ResidentState::drop_entry_locked(const std::string& roof_id,
                                      bool stale) {
    const auto it = entries_.find(roof_id);
    if (it == entries_.end()) return;
    entry_bytes_ -= it->second.roof->resident_bytes;
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    if (stale)
        ++invalidations_;
    else
        ++evictions_;
}

void ResidentState::evict_over_budget_locked() {
    // Sky artifacts referenced by resident entries are part of the
    // resident footprint; an artifact's bytes drop off once the last
    // roof using it is evicted (pruned below).
    const auto artifact_bytes = [&] {
        std::size_t b = 0;
        std::lock_guard<std::mutex> sky_lock(sky_mutex_);
        for (auto it = sky_cache_.begin(); it != sky_cache_.end();) {
            // use_count == 1: only the cache holds it — no resident
            // roof, no in-flight build.  Safe to drop.
            if (it->second.use_count() == 1) {
                it = sky_cache_.erase(it);
            } else {
                b += sky_artifact_bytes(*it->second);
                ++it;
            }
        }
        return b;
    };
    const std::size_t horizon_bytes =
        horizon_cache_ ? horizon_cache_->bytes_used() : 0;
    while (lru_.size() > 1 &&
           entry_bytes_ + artifact_bytes() + horizon_bytes >
               serve_config_.memory_budget_bytes) {
        drop_entry_locked(lru_.back(), /*stale=*/false);
    }
    const std::size_t remaining =
        entry_bytes_ + artifact_bytes();  // prunes released artifacts too
    // Roof entries alone may still exceed the budget (keep-1 floor);
    // shrink the horizon planes into whatever headroom is left.  Planes
    // rebuild bitwise-identically on demand, so this only costs time.
    if (horizon_cache_) {
        horizon_cache_->shrink_to(
            serve_config_.memory_budget_bytes > remaining
                ? serve_config_.memory_budget_bytes - remaining
                : 0);
    }
}

std::shared_ptr<const solar::SharedSkyArtifact> ResidentState::sky_for(
    const solar::Location& location) {
    const std::pair<double, double> key{location.latitude_deg,
                                        location.longitude_deg};
    const std::string flight_key = std::to_string(key.first) + "," +
                                   std::to_string(key.second);
    std::shared_ptr<Build> build;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(sky_mutex_);
        const auto it = sky_cache_.find(key);
        if (it != sky_cache_.end()) return it->second;
        const auto fl = sky_in_flight_.find(flight_key);
        if (fl != sky_in_flight_.end()) {
            build = fl->second;
        } else {
            build = std::make_shared<Build>();
            sky_in_flight_.emplace(flight_key, build);
            owner = true;
        }
    }
    if (!owner) {
        build->wait();
        return build->sky;
    }

    std::shared_ptr<const solar::SharedSkyArtifact> sky;
    std::exception_ptr error;
    try {
        sky = solar::make_shared_sky(
            location, base_config_.grid,
            weather::generate_synthetic_weather(location, base_config_.grid,
                                                base_config_.weather),
            base_config_.field.sky_model);
    } catch (...) {
        error = std::current_exception();
    }
    {
        std::lock_guard<std::mutex> lock(sky_mutex_);
        sky_in_flight_.erase(flight_key);
        if (!error) sky_cache_.emplace(key, sky);
    }
    build->finish(nullptr, sky, error);
    if (error) std::rethrow_exception(error);
    return sky;
}

std::shared_ptr<PreparedRoof> ResidentState::build_roof(
    const gis::RoofRecord& record, std::uint64_t hash) {
    gis::RoofPlaneFit fit;
    gis::WindowOrigin origin;
    const core::RoofScenario scenario = gis::make_scenario(
        record, tiles_, serve_config_.build, &tile_cache_, &fit, &origin);

    core::ScenarioConfig config = base_config_;
    if (record.has_location) {
        config.location.latitude_deg = record.latitude_deg;
        config.location.longitude_deg = record.longitude_deg;
    }
    if (horizon_cache_) {
        // Shared planes answer the full uniform max_distance over real
        // halo terrain — the run_city --shared-horizon semantics — so
        // the window cap below does not apply.
        gis::HorizonCache* hc = horizon_cache_.get();
        const double wx = origin.x;
        const double wy = origin.y;
        const double cs = tiles_.cell_size();
        config.horizon_provider =
            [hc, wx, wy, cs](const geo::Raster&, int x0, int y0, int w,
                             int h, const geo::HorizonOptions&)
            -> std::optional<geo::HorizonMap> {
            return hc->window(wx + x0 * cs, wy - y0 * cs, x0, y0, w, h);
        };
    } else {
        // Same clamp as run_city: the mosaic answers horizon rays only
        // out to the context margin, so never march further.
        config.horizon.max_distance = std::min(
            config.horizon.max_distance,
            serve_config_.build.context_margin_m +
                std::hypot(record.bbox.width(), record.bbox.height()));
    }
    config.shared_sky = sky_for(config.location);

    auto roof = std::make_shared<PreparedRoof>(PreparedRoof{
        record.id, hash, fit, config,
        core::prepare_scenario(scenario, config), 0});
    roof->resident_bytes = prepared_scenario_bytes(roof->prepared);
    return roof;
}

std::shared_ptr<const PreparedRoof> ResidentState::prepare(
    const std::string& roof_id) {
    for (;;) {
        // Snapshot the registry: a concurrent update_registry swaps the
        // pointer, never mutates the snapshot.
        std::shared_ptr<const gis::RoofRegistry> registry;
        std::shared_ptr<const std::unordered_map<std::string, long>> by_id;
        {
            std::lock_guard<std::mutex> lock(registry_mutex_);
            registry = registry_;
            by_id = by_id_;
        }
        const auto rec_it = by_id->find(roof_id);
        check_arg(rec_it != by_id->end(),
                  "serve: unknown roof '" + roof_id + "'");
        const gis::RoofRecord& record = registry->record(rec_it->second);
        const std::uint64_t hash =
            roof_record_hash(record, serve_config_.build);

        std::shared_ptr<Build> build;
        bool owner = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            const auto it = entries_.find(roof_id);
            if (it != entries_.end()) {
                if (it->second.roof->content_hash == hash) {
                    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
                    ++hits_;
                    return it->second.roof;
                }
                // Index edit: the resident entry no longer matches the
                // record.  Drop it and rebuild below.
                drop_entry_locked(roof_id, /*stale=*/true);
            }
            const auto fl = in_flight_.find(roof_id);
            if (fl != in_flight_.end()) {
                build = fl->second;
                ++hits_;
            } else {
                build = std::make_shared<Build>();
                in_flight_.emplace(roof_id, build);
                owner = true;
                ++misses_;
            }
        }

        if (!owner) {
            build->wait();
            // The joined build may predate a registry edit; only accept
            // it when it matches what this request resolved.
            if (build->roof && build->roof->content_hash == hash)
                return build->roof;
            continue;
        }

        // Owner builds with no state lock held: different roofs prepare
        // fully in parallel (tile loads dedup in the TileCache, the sky
        // precompute dedups per site above).
        std::shared_ptr<PreparedRoof> roof;
        std::exception_ptr error;
        try {
            roof = build_roof(record, hash);
        } catch (...) {
            error = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            in_flight_.erase(roof_id);
            if (!error) {
                // A stale twin cannot exist here: any entry was dropped
                // before this build started, and only the in-flight
                // owner inserts.
                lru_.push_front(roof_id);
                entries_[roof_id] = EntryRef{roof, lru_.begin()};
                entry_bytes_ += roof->resident_bytes;
                evict_over_budget_locked();
            }
        }
        build->finish(roof, nullptr, error);
        if (error) std::rethrow_exception(error);
        return roof;
    }
}

ResidentStats ResidentState::stats() const {
    ResidentStats s;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        s.entries = entries_.size();
        s.prepared_bytes = entry_bytes_;
        s.hits = hits_;
        s.misses = misses_;
        s.evictions = evictions_;
        s.invalidations = invalidations_;
    }
    {
        std::lock_guard<std::mutex> lock(sky_mutex_);
        s.sky_artifacts = sky_cache_.size();
        for (const auto& [key, sky] : sky_cache_)
            s.sky_bytes += sky_artifact_bytes(*sky);
    }
    s.resident_bytes = s.prepared_bytes + s.sky_bytes;
    s.tile_cache_hits = tile_cache_.hits();
    s.tile_cache_misses = tile_cache_.misses();
    s.tile_cache_bytes = tile_cache_.bytes();
    if (horizon_cache_) {
        const gis::HorizonCacheStats hs = horizon_cache_->stats();
        s.horizon_cache_hits = hs.hits + hs.joins;
        s.horizon_cache_misses = hs.misses;
        s.horizon_cache_evictions = hs.evictions;
        s.horizon_cache_bytes = hs.bytes;
        s.resident_bytes += hs.bytes;
    }
    return s;
}

}  // namespace pvfp::serve

#include "pvfp/serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <thread>
#include <vector>

#include "pvfp/core/evaluator.hpp"
#include "pvfp/core/greedy_placer.hpp"
#include "pvfp/gis/json.hpp"
#include "pvfp/gis/jsonl.hpp"
#include "pvfp/grid/sequential_place.hpp"
#include "pvfp/obs/metrics.hpp"
#include "pvfp/obs/trace.hpp"
#include "pvfp/serve/protocol.hpp"
#include "pvfp/util/atomic_queue.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/parallel.hpp"

#ifdef __unix__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <ext/stdio_filebuf.h>
#endif

namespace pvfp::serve {

namespace {

std::string num(double v, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    return buf;
}

/// Per-op request counter + latency histogram.  One static pair per op
/// (magic-statics init), so the steady-state request path never takes
/// the registry's registration mutex.
struct OpMetrics {
    obs::Counter requests;
    obs::HistogramHandle latency;
};

OpMetrics make_op_metrics(const char* op) {
    obs::MetricsRegistry& reg = obs::registry();
    return OpMetrics{
        reg.counter(std::string("serve.requests.") + op),
        reg.histogram(std::string("serve.latency_ns.") + op,
                      obs::latency_bounds_ns())};
}

const OpMetrics& op_metrics(const std::string& op) {
    static const OpMetrics rank = make_op_metrics("rank");
    static const OpMetrics grid_rank = make_op_metrics("grid_rank");
    static const OpMetrics plan = make_op_metrics("plan");
    static const OpMetrics status = make_op_metrics("status");
    static const OpMetrics metrics = make_op_metrics("metrics");
    static const OpMetrics reload = make_op_metrics("reload");
    static const OpMetrics quit = make_op_metrics("quit");
    static const OpMetrics parse_error = make_op_metrics("parse_error");
    if (op == "rank") return rank;
    if (op == "grid_rank") return grid_rank;
    if (op == "plan") return plan;
    if (op == "status") return status;
    if (op == "metrics") return metrics;
    if (op == "reload") return reload;
    if (op == "quit") return quit;
    return parse_error;
}

}  // namespace

/// One unit of work crossing the ring: the reader parses exactly once;
/// a parse failure travels as an error item so the response still
/// occupies the request's sequence slot.
struct Server::Item {
    long seq = 0;
    bool stop = false;      ///< sentinel: dispatcher shuts down
    bool parse_ok = false;
    std::string error;      ///< parse failure message
    Request request;
};

Server::Server(gis::TileIndex tiles, gis::RoofRegistry registry,
               ServerOptions options)
    : options_(std::move(options)),
      state_(std::make_unique<ResidentState>(
          std::move(tiles), std::move(registry), options_.state)) {
    if (!options_.request_log_path.empty()) {
        log_ = std::make_unique<std::ofstream>(options_.request_log_path,
                                               std::ios::binary |
                                                   std::ios::trunc);
        check_io(log_->good(), "serve: cannot open request log '" +
                                   options_.request_log_path + "'");
    }
    if (!options_.feeder_path.empty()) {
        feeder_model_ = grid::FeederModel::load(options_.feeder_path);
        feeder_model_->validate_roofs(*state_->registry());
    }
}

Server::~Server() = default;

Server::Item Server::make_item(long seq, const std::string& raw_line) const {
    Item item;
    item.seq = seq;
    try {
        item.request = parse_request(raw_line);
        item.parse_ok = true;
    } catch (const std::exception& e) {
        item.error = e.what();
    }
    return item;
}

gis::RoofResult Server::rank_result(const std::string& roof_id) {
    const ServeConfig& config = state_->config();
    gis::RoofResult result;
    result.id = roof_id;
    try {
        const std::shared_ptr<const PreparedRoof> roof =
            state_->prepare(roof_id);
        result.valid_cells = roof->prepared.area.valid_count;
        result.area_w = roof->prepared.area.width;
        result.area_h = roof->prepared.area.height;
        result.tilt_deg = roof->fit.tilt_deg;
        result.azimuth_deg = roof->fit.azimuth_deg;
        result.fit_rmse_m = roof->fit.rmse_m;
        for (const pv::Topology& topology : config.topologies) {
            const core::PlacementComparison cmp = core::compare_placements(
                roof->prepared, topology, config.greedy, config.eval);
            gis::RoofTopologyResult t;
            t.topology = topology;
            t.proposed_kwh = cmp.proposed_eval.energy_kwh;
            t.compact_kwh = cmp.traditional_eval.energy_kwh;
            t.improvement_pct = cmp.improvement() * 100.0;
            result.best_kwh = std::max(result.best_kwh, t.proposed_kwh);
            result.topologies.push_back(t);
        }
        result.ok = true;
    } catch (const std::exception& e) {
        // Same shape run_city records for a failed roof, so the
        // payload stays byte-compatible either way.
        gis::RoofResult failed;
        failed.id = roof_id;
        failed.error = e.what();
        result = std::move(failed);
    }
    return result;
}

std::string Server::respond(const Item& item) {
    if (!obs::enabled()) return respond_payload(item);
    const OpMetrics& om =
        op_metrics(item.parse_ok ? item.request.op : "parse_error");
    om.requests.add();
    const auto begin = std::chrono::steady_clock::now();
    std::string response = respond_payload(item);
    om.latency.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - begin)
            .count()));
    return response;
}

std::string Server::respond_payload(const Item& item) {
    if (!item.parse_ok)
        return error_response(item.seq, "error", "", item.error);
    const Request& request = item.request;
    const ServeConfig& config = state_->config();
    try {
        if (request.op == "rank")
            return rank_response(item.seq, rank_result(request.id));
        if (request.op == "grid_rank") {
            check_arg(feeder_model_.has_value(),
                      "grid_rank: server started without --feeder-index");
            const grid::FeederModel& model = *feeder_model_;
            const long feeder = model.find_feeder(request.feeder);
            check_arg(feeder >= 0, "grid_rank: unknown feeder '" +
                                       request.feeder + "'");
            // Attached roofs in registry order — the same results order
            // (and thus tie-break order) the batch planner sees, with
            // every yield round-tripped through the batch codec so the
            // scores use run_city's fixed JSONL precision.
            const std::shared_ptr<const gis::RoofRegistry> registry =
                state_->registry();
            std::vector<gis::RoofResult> results;
            for (const gis::RoofRecord& record : registry->records()) {
                const long bus = model.bus_of(record.id);
                if (bus < 0 ||
                    model.buses()[static_cast<std::size_t>(bus)].feeder !=
                        feeder)
                    continue;
                results.push_back(gis::roof_result_from_jsonl(
                    gis::roof_result_to_jsonl(rank_result(record.id))));
            }
            grid::GridPlaceOptions grid_options;
            grid_options.feeder_filter = request.feeder;
            const grid::GridPlanResult plan =
                grid::sequential_place(model, results, grid_options);
            std::string out = ok_envelope(item.seq, "grid_rank");
            out += ",\"feeder\":\"" + gis::json_escape(request.feeder) +
                   "\"";
            out += ",\"status\":\"ok\"";
            out += ",\"export_cap_kw\":" +
                   num(model.feeders()[static_cast<std::size_t>(feeder)]
                           .export_cap_kw,
                       6);
            out += ",\"attached\":" + std::to_string(plan.attached);
            out += ",\"placements\":[";
            for (std::size_t p = 0; p < plan.placements.size(); ++p) {
                if (p) out += ',';
                out += grid::placement_to_jsonl(plan.placements[p]);
            }
            out += "],\"skipped\":[";
            for (std::size_t s = 0; s < plan.skipped.size(); ++s) {
                if (s) out += ',';
                out += "{\"id\":\"" +
                       gis::json_escape(plan.skipped[s].roof_id) +
                       "\",\"reason\":\"" + plan.skipped[s].reason + "\"}";
            }
            out += "]}";
            return out;
        }
        if (request.op == "plan") {
            const std::shared_ptr<const PreparedRoof> roof =
                state_->prepare(request.id);
            const core::PanelGeometry geometry =
                request.portrait
                    ? core::PanelGeometry::from_module(
                          roof->config.module, roof->config.cell_size, true)
                    : roof->prepared.geometry;
            const pv::Topology topology{request.series, request.strings};
            const core::Floorplan plan = core::place_greedy(
                roof->prepared.area, roof->prepared.suitability.suitability,
                geometry, topology, config.greedy);
            const core::EvaluationResult eval = core::evaluate_floorplan(
                plan, roof->prepared.area, roof->prepared.field,
                roof->prepared.model, config.eval);
            std::string out = ok_envelope(item.seq, "plan");
            out += ",\"id\":\"" + gis::json_escape(request.id) + "\"";
            out += ",\"status\":\"ok\"";
            out += ",\"series\":" + std::to_string(topology.series);
            out += ",\"strings\":" + std::to_string(topology.strings);
            out += std::string(",\"orientation\":\"") +
                   (request.portrait ? "portrait" : "landscape") + "\"";
            out += ",\"modules\":[";
            for (std::size_t m = 0; m < plan.modules.size(); ++m) {
                if (m) out += ',';
                out += '[' + std::to_string(plan.modules[m].x) + ',' +
                       std::to_string(plan.modules[m].y) + ']';
            }
            out += "],\"energy_kwh\":" + num(eval.energy_kwh, 6);
            out += ",\"mismatch_loss_kwh\":" + num(eval.mismatch_loss_kwh, 6);
            out += ",\"wiring_loss_kwh\":" + num(eval.wiring_loss_kwh, 6);
            out += '}';
            return out;
        }
        if (request.op == "status") {
            // Identity plus per-cache resident byte accounting.  status
            // executes as a serial barrier, so the accounting is a pure
            // function of the preceding request sequence — live at any
            // thread count and replay agree byte for byte (as long as
            // the budget is not forcing evictions mid-race; the CI
            // fixtures keep ample budgets).  Never timings or rates.
            const std::shared_ptr<const gis::RoofRegistry> registry =
                state_->registry();
            const ResidentStats rs = state_->stats();
            std::string out = ok_envelope(item.seq, "status");
            out += ",\"status\":\"ok\",\"protocol\":1";
            out += ",\"roofs\":" + std::to_string(registry->size());
            out += ",\"tiles\":" +
                   std::to_string(state_->tiles().tiles().size());
            out += ",\"cell_size\":" + num(state_->tiles().cell_size(), 4);
            out += ",\"topologies\":[";
            for (std::size_t t = 0; t < config.topologies.size(); ++t) {
                if (t) out += ',';
                out += '[' + std::to_string(config.topologies[t].series) +
                       ',' + std::to_string(config.topologies[t].strings) +
                       ']';
            }
            out += "],\"memory_budget_mb\":" +
                   std::to_string(config.memory_budget_bytes >> 20);
            out += ",\"resident_bytes\":{\"tiles\":" +
                   std::to_string(rs.tile_cache_bytes);
            out += ",\"sky\":" + std::to_string(rs.sky_bytes);
            out += ",\"prepared\":" + std::to_string(rs.prepared_bytes);
            out += ",\"horizon\":" +
                   std::to_string(rs.horizon_cache_bytes) + "}";
            out += '}';
            return out;
        }
        if (request.op == "metrics") {
            export_resident_metrics();
            std::string out = ok_envelope(item.seq, "metrics");
            out += ",\"status\":\"ok\"";
            out += ",\"metrics\":" + obs::registry().snapshot_json();
            out += ",\"dropped_spans\":" +
                   std::to_string(obs::dropped_spans());
            out += '}';
            return out;
        }
        if (request.op == "reload") {
            check_arg(!options_.index_path.empty(),
                      "reload: server started without --index");
            gis::RoofRegistry registry =
                gis::RoofRegistry::load(options_.index_path);
            const long roofs = registry.size();
            state_->update_registry(std::move(registry));
            return ok_envelope(item.seq, "reload") +
                   ",\"status\":\"ok\",\"roofs\":" + std::to_string(roofs) +
                   "}";
        }
        // quit
        return ok_envelope(item.seq, "quit") + ",\"status\":\"ok\"}";
    } catch (const std::exception& e) {
        return error_response(item.seq, request.op, request.id, e.what());
    }
}

void Server::export_resident_metrics() {
    if (!obs::enabled()) return;
    const ResidentStats now = state_->stats();
    obs::MetricsRegistry& reg = obs::registry();
    const auto fold = [&](const char* name, std::size_t total,
                          std::size_t exported) {
        if (total > exported)
            reg.counter(name).add(
                static_cast<std::uint64_t>(total - exported));
    };
    fold("serve.resident.hits", now.hits, obs_exported_.hits);
    fold("serve.resident.misses", now.misses, obs_exported_.misses);
    fold("serve.resident.evictions", now.evictions,
         obs_exported_.evictions);
    fold("serve.resident.invalidations", now.invalidations,
         obs_exported_.invalidations);
    fold("serve.tile_cache.hits", now.tile_cache_hits,
         obs_exported_.tile_cache_hits);
    fold("serve.tile_cache.misses", now.tile_cache_misses,
         obs_exported_.tile_cache_misses);
    fold("serve.horizon_cache.hits", now.horizon_cache_hits,
         obs_exported_.horizon_cache_hits);
    fold("serve.horizon_cache.misses", now.horizon_cache_misses,
         obs_exported_.horizon_cache_misses);
    fold("serve.horizon_cache.evictions", now.horizon_cache_evictions,
         obs_exported_.horizon_cache_evictions);
    reg.gauge("serve.resident.entries")
        .set(static_cast<double>(now.entries));
    reg.gauge("serve.resident.sky_artifacts")
        .set(static_cast<double>(now.sky_artifacts));
    reg.gauge("serve.bytes.tiles")
        .set(static_cast<double>(now.tile_cache_bytes));
    reg.gauge("serve.bytes.sky").set(static_cast<double>(now.sky_bytes));
    reg.gauge("serve.bytes.prepared")
        .set(static_cast<double>(now.prepared_bytes));
    reg.gauge("serve.bytes.horizon")
        .set(static_cast<double>(now.horizon_cache_bytes));
    obs_exported_ = now;
}

bool Server::serve(std::istream& in, std::ostream& out) {
    AtomicQueue<Item> queue(options_.queue_capacity);
    const long max_batch = options_.max_batch > 0
                               ? options_.max_batch
                               : 2 * static_cast<long>(thread_count());

    std::thread dispatcher([&] {
        std::vector<Item> batch;
        std::vector<std::string> responses;
        const auto flush = [&] {
            const long n = static_cast<long>(batch.size());
            if (n == 0) return;
            responses.assign(static_cast<std::size_t>(n), {});
            // run_city's policy: one request per task when the batch is
            // at least pool-wide, else inline so inner loops fan out.
            if (n > 1 && n >= thread_count()) {
                parallel_for(0, n, 1, [&](long begin, long end) {
                    SerialScope serial;
                    for (long k = begin; k < end; ++k)
                        responses[static_cast<std::size_t>(k)] =
                            respond(batch[static_cast<std::size_t>(k)]);
                });
            } else {
                for (long k = 0; k < n; ++k)
                    responses[static_cast<std::size_t>(k)] =
                        respond(batch[static_cast<std::size_t>(k)]);
            }
            for (const std::string& response : responses)
                out << response << '\n';
            out.flush();
            batch.clear();
        };
        bool stop = false;
        while (!stop) {
            Item item = queue.pop();
            if (obs::enabled()) {
                static const obs::Gauge depth =
                    obs::registry().gauge("serve.queue_depth");
                depth.set(static_cast<double>(queue.approx_size()));
            }
            for (;;) {
                if (item.stop) {
                    stop = true;
                    break;
                }
                // Ops that mutate shared state (reload, quit) — or
                // observe it (status byte accounting, metrics) —
                // execute as serial barriers between batches, so every
                // request sees state determined by arrival order alone.
                const bool barrier =
                    item.parse_ok && (item.request.op == "reload" ||
                                      item.request.op == "quit" ||
                                      item.request.op == "status" ||
                                      item.request.op == "metrics");
                if (barrier) {
                    flush();
                    out << respond(item) << '\n';
                    out.flush();
                } else {
                    batch.push_back(std::move(item));
                    if (static_cast<long>(batch.size()) >= max_batch)
                        flush();
                }
                if (!queue.try_pop(item)) break;
            }
            flush();
        }
    });

    bool saw_quit = false;
    std::string raw;
    while (!saw_quit && std::getline(in, raw)) {
        if (!raw.empty() && raw.back() == '\r') raw.pop_back();
        if (raw.empty()) continue;  // blank keep-alives: no seq, no log
        const long seq = seq_++;
        if (log_) {
            *log_ << request_log_line(seq, raw) << '\n';
            log_->flush();
        }
        Item item = make_item(seq, raw);
        saw_quit = item.parse_ok && item.request.op == "quit";
        queue.push(std::move(item));
    }
    Item sentinel;
    sentinel.stop = true;
    queue.push(std::move(sentinel));
    dispatcher.join();
    return saw_quit;
}

long Server::replay(const std::string& log_path, std::ostream& out) {
    std::vector<std::string> raws;
    gis::read_jsonl_prefix(log_path, [&](long k, const std::string& line) {
        try {
            raws.push_back(request_from_log_line(k, line));
            return true;
        } catch (const std::exception&) {
            return false;  // torn tail: stop at the longest valid prefix
        }
    });
    long seq = 0;
    for (const std::string& raw : raws) {
        out << respond(make_item(seq, raw)) << '\n';
        ++seq;
    }
    out.flush();
    seq_ = std::max(seq_, seq);
    return seq;
}

#ifdef __unix__

void Server::serve_socket(const std::string& socket_path) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    check_io(fd >= 0, "serve: cannot create AF_UNIX socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    check_arg(socket_path.size() < sizeof(addr.sun_path),
              "serve: socket path too long: '" + socket_path + "'");
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  socket_path.c_str());
    ::unlink(socket_path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 4) != 0) {
        ::close(fd);
        throw IoError("serve: cannot listen on '" + socket_path + "'");
    }
    bool quit = false;
    while (!quit) {
        const int client = ::accept(fd, nullptr, nullptr);
        if (client < 0) break;
        // stdio_filebuf owns its fd; dup so in and out close separately.
        __gnu_cxx::stdio_filebuf<char> in_buf(client, std::ios::in);
        __gnu_cxx::stdio_filebuf<char> out_buf(::dup(client),
                                               std::ios::out);
        std::istream client_in(&in_buf);
        std::ostream client_out(&out_buf);
        quit = serve(client_in, client_out);
    }
    ::close(fd);
    ::unlink(socket_path.c_str());
}

#else

void Server::serve_socket(const std::string&) {
    throw IoError("serve: socket mode requires a POSIX platform");
}

#endif

}  // namespace pvfp::serve

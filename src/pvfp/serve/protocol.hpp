#pragma once
/// \file protocol.hpp
/// The serving daemon's newline-delimited JSON request/response schema.
///
/// One request object per line in, one response object per line out,
/// same order.  Ops:
///
///   {"op":"rank","id":"R"}
///       Compare every configured topology on roof R — the payload is
///       byte-identical to R's run_city JSONL record (same fixed key
///       order and precision), wrapped with the sequence number.
///   {"op":"plan","id":"R","series":M,"strings":N[,"orientation":"portrait"]}
///       Re-place K = M*N panels (landscape by default) on roof R:
///       proposed placement coordinates + energies.
///   {"op":"grid_rank","feeder":"F"}
///       Re-rank feeder F's attached roofs under its shared export cap
///       (grid::sequential_place restricted to F against the resident
///       yields): the placement objects reuse the plan-JSONL bytes.
///   {"op":"status"}   daemon identity (registry/tile counts, config)
///                     plus per-cache resident byte accounting
///                     (tiles/sky/prepared/horizon).  Executed as a
///                     serial barrier so the accounting is a pure
///                     function of the preceding request sequence.
///   {"op":"metrics"}  pvfp::obs registry snapshot (counters, gauges,
///                     latency histograms) + trace drop count.  The one
///                     op whose response carries wall-clock data and is
///                     therefore *excluded* from the replay byte
///                     contract below.
///   {"op":"reload"}   re-read the footprint index from disk; edited
///                     roofs rebuild on their next request.
///   {"op":"quit"}     acknowledge and shut the session down.
///
/// Every response starts {"seq":N,"op":...} with N the 0-based arrival
/// index, and `"status":"ok"` or `"status":"error","error":...`.
/// Response bytes are a pure function of the request sequence (never of
/// scheduling, cache hits, or wall clock), which is what lets --replay
/// reproduce a logged session byte-for-byte at any thread count.  Sole
/// exception: `metrics` responses (latency data is wall clock by
/// nature); streams compared byte-for-byte must not include them.
///
/// The request log wraps each raw request line as
/// {"seq":N,"request":"<escaped line>"} so a torn tail write is
/// detected by the same longest-valid-prefix scan the city runner's
/// resume uses.

#include <optional>
#include <string>

#include "pvfp/gis/city_runner.hpp"

namespace pvfp::serve {

/// A parsed request line.
struct Request {
    std::string op;  ///< rank|plan|grid_rank|status|metrics|reload|quit
    std::string id;  ///< roof id (rank, plan)
    std::string feeder;  ///< feeder id (grid_rank)
    int series = 0;      ///< plan
    int strings = 0;     ///< plan
    bool portrait = false;  ///< plan: panel orientation
};

/// Parse one request line; throws IoError naming the defect (malformed
/// JSON, missing field, unknown op) — the server turns that into an
/// error response carrying the same message.
Request parse_request(const std::string& line);

/// Serialize the request-log record for \p raw_line at \p seq.
std::string request_log_line(long seq, const std::string& raw_line);

/// Parse one request-log record back; throws IoError on malformed
/// input (a torn tail), used as the replay prefix validator.
std::string request_from_log_line(long expected_seq,
                                  const std::string& line);

/// Response builders (no trailing newline; fixed key order/precision).
std::string ok_envelope(long seq, const std::string& op);
std::string error_response(long seq, const std::string& op,
                           const std::string& id, const std::string& what);
/// Wrap a roof's batch-format payload (roof_result_to_jsonl) with the
/// response envelope.
std::string rank_response(long seq, const gis::RoofResult& result);

}  // namespace pvfp::serve

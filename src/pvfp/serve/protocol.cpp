#include "pvfp/serve/protocol.hpp"

#include "pvfp/gis/json.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::serve {

Request parse_request(const std::string& line) {
    const gis::JsonValue v = gis::JsonValue::parse(line);
    check_io(v.is_object(), "request is not a JSON object");
    Request request;
    request.op = v.at("op").as_string();
    if (request.op == "rank" || request.op == "plan")
        request.id = v.at("id").as_string();
    if (request.op == "plan") {
        request.series = static_cast<int>(v.at("series").as_number());
        request.strings = static_cast<int>(v.at("strings").as_number());
        check_io(request.series >= 1 && request.strings >= 1,
                 "plan: series and strings must be >= 1");
        if (const gis::JsonValue* o = v.find("orientation")) {
            const std::string& orientation = o->as_string();
            check_io(orientation == "portrait" || orientation == "landscape",
                     "plan: orientation must be portrait or landscape");
            request.portrait = orientation == "portrait";
        }
    } else if (request.op == "grid_rank") {
        request.feeder = v.at("feeder").as_string();
        check_io(!request.feeder.empty(), "grid_rank: empty feeder id");
    } else if (request.op != "rank" && request.op != "status" &&
               request.op != "metrics" && request.op != "reload" &&
               request.op != "quit") {
        throw IoError("unknown op '" + request.op + "'");
    }
    return request;
}

std::string request_log_line(long seq, const std::string& raw_line) {
    return "{\"seq\":" + std::to_string(seq) + ",\"request\":\"" +
           gis::json_escape(raw_line) + "\"}";
}

std::string request_from_log_line(long expected_seq,
                                  const std::string& line) {
    const gis::JsonValue v = gis::JsonValue::parse(line);
    const long seq = static_cast<long>(v.at("seq").as_number());
    check_io(seq == expected_seq,
             "request log: sequence gap (got " + std::to_string(seq) +
                 ", expected " + std::to_string(expected_seq) + ")");
    return v.at("request").as_string();
}

std::string ok_envelope(long seq, const std::string& op) {
    return "{\"seq\":" + std::to_string(seq) + ",\"op\":\"" +
           gis::json_escape(op) + "\"";
}

std::string error_response(long seq, const std::string& op,
                           const std::string& id, const std::string& what) {
    std::string out = ok_envelope(seq, op);
    if (!id.empty()) out += ",\"id\":\"" + gis::json_escape(id) + "\"";
    out += ",\"status\":\"error\",\"error\":\"" + gis::json_escape(what) +
           "\"}";
    return out;
}

std::string rank_response(long seq, const gis::RoofResult& result) {
    // The batch codec already emits {"id":...}; splice the envelope in
    // front so a rank payload stays byte-compatible with the run_city
    // JSONL record for the same roof.
    const std::string body = gis::roof_result_to_jsonl(result);
    return ok_envelope(seq, "rank") + "," + body.substr(1);
}

}  // namespace pvfp::serve

#pragma once
/// \file weather.hpp
/// Weather-series types and summaries.
///
/// The paper feeds its GIS pipeline with real traces from personal/third-
/// party weather stations (Section IV, [16]).  Here a weather series is a
/// vector of solar::EnvSample aligned to a TimeGrid; it can come from the
/// synthetic generator (synthetic.hpp) or from CSV import
/// (station_csv.hpp), and both paths feed the same IrradianceField.

#include <vector>

#include "pvfp/solar/irradiance.hpp"
#include "pvfp/util/timegrid.hpp"

namespace pvfp::weather {

using solar::EnvSample;

/// Aggregate yearly quantities used for sanity checks and reporting.
struct WeatherSummary {
    double ghi_kwh_m2 = 0.0;       ///< horizontal insolation over horizon
    double dni_kwh_m2 = 0.0;       ///< beam normal insolation
    double dhi_kwh_m2 = 0.0;       ///< diffuse insolation
    double mean_temp_c = 0.0;
    double min_temp_c = 0.0;
    double max_temp_c = 0.0;
    double diffuse_fraction = 0.0; ///< DHI energy / GHI energy
};

/// Integrate a series into a summary.  Throws when sizes mismatch.
WeatherSummary summarize(const std::vector<EnvSample>& env,
                         const pvfp::TimeGrid& grid);

/// Validate physical consistency of a series: no negative components,
/// GHI ~= DNI*sin(el)+DHI within \p tolerance (relative), temperature in a
/// plausible band.  Returns the number of inconsistent samples.
long count_inconsistent_samples(const std::vector<EnvSample>& env,
                                const pvfp::TimeGrid& grid,
                                const solar::Location& location,
                                double tolerance = 0.05);

}  // namespace pvfp::weather

#pragma once
/// \file station_csv.hpp
/// Weather-station trace import/export (CSV).
///
/// Mirrors the paper's two acquisition paths (Section IV): stations that
/// report all components, and stations that report only global horizontal
/// radiation — for which "incident radiation is derived through
/// state-of-the-art decomposition models".
///
/// Full format columns: day,hour,ghi,dni,dhi,temp_air_c
/// GHI-only columns:    day,hour,ghi,temp_air_c
/// (day = day-of-year 1..365; hour = local clock hour, fractional.)

#include <string>
#include <vector>

#include "pvfp/weather/weather.hpp"

namespace pvfp::weather {

/// Decomposition model selector for GHI-only imports.
enum class DecompositionModel {
    Erbs,
    Engerer2,
};

/// Write a series (aligned with \p grid) to CSV.
void write_station_csv(const std::string& path,
                       const std::vector<EnvSample>& env,
                       const pvfp::TimeGrid& grid);

/// Read a full-format CSV; validates the row count against \p grid and
/// physical ranges.  Rows must be in time order.
std::vector<EnvSample> read_station_csv(const std::string& path,
                                        const pvfp::TimeGrid& grid);

/// Read a GHI-only CSV and reconstruct DNI/DHI with the chosen
/// decomposition model (clear-sky reference from ESRA for Engerer2).
std::vector<EnvSample> read_station_csv_ghi_only(
    const std::string& path, const pvfp::TimeGrid& grid,
    const solar::Location& location,
    DecompositionModel model = DecompositionModel::Erbs,
    double linke = 3.0, double altitude_m = 0.0);

}  // namespace pvfp::weather

#pragma once
/// \file synthetic.hpp
/// Deterministic synthetic weather generator.
///
/// Substitute for the paper's real weather-station traces ([16]): produces
/// a year of 15-minute (GHI, DNI, DHI, Tair) samples with the statistical
/// structure that the suitability metric exploits — skewed irradiance
/// distributions, intra-day cloud variability and irradiance-coupled
/// temperature.  The sky is a three-state Markov chain (clear / partly /
/// overcast) whose monthly stationary probabilities come from a climate
/// profile; within a state, the clear-sky ratio follows an AR(1) process.
/// GHI = ratio * ESRA clear-sky GHI, decomposed into DNI/DHI with Erbs.
///
/// Everything is seeded: equal seeds give identical series on every
/// platform (custom xoshiro RNG).

#include <array>
#include <vector>

#include "pvfp/solar/clearsky.hpp"
#include "pvfp/weather/weather.hpp"

namespace pvfp::weather {

/// Monthly climate description (January first in all arrays).
struct ClimateProfile {
    /// Stationary probability of a *clear* sky state.
    std::array<double, 12> p_clear{};
    /// Stationary probability of an *overcast* state (the remainder is
    /// "partly cloudy").
    std::array<double, 12> p_overcast{};
    /// Monthly mean air temperature [deg C].
    std::array<double, 12> mean_temp_c{};
    /// Half peak-to-peak diurnal temperature swing on a clear day [K].
    std::array<double, 12> diurnal_amplitude_c{};

    /// Torino / western Po valley: foggy winters, hazy-bright summers.
    static ClimateProfile torino();

    /// Validate probability bounds; throws InvalidArgument when broken.
    void validate() const;
};

/// Generator knobs beyond the climate itself.
struct SyntheticWeatherOptions {
    std::uint64_t seed = 42;
    ClimateProfile climate = ClimateProfile::torino();
    solar::LinkeTurbidity turbidity = solar::LinkeTurbidity::torino_profile();
    double altitude_m = 240.0;  ///< Torino
    /// Probability of keeping the current sky state across one
    /// *reference step* of 15 minutes (0.95 ~= 5 h mean sojourn).  The
    /// generator rescales to the actual TimeGrid step
    /// (p_step = p^(minutes/15)) so the synthetic climate's wall-time
    /// statistics do not depend on the simulation resolution.
    double state_persistence = 0.95;
    /// AR(1) coefficient of the within-state clear-sky-ratio noise, at
    /// the 15-minute reference step (rescaled like the persistence).
    double ratio_ar1 = 0.85;
    /// AR(1) coefficient (15-minute reference) and innovation sigma of
    /// the slow temperature noise [K].
    double temp_ar1 = 0.995;
    double temp_noise_sigma = 0.35;
};

/// Generate a series aligned with \p grid at \p location.
std::vector<EnvSample> generate_synthetic_weather(
    const solar::Location& location, const pvfp::TimeGrid& grid,
    const SyntheticWeatherOptions& options = {});

}  // namespace pvfp::weather

#include "pvfp/weather/weather.hpp"

#include <cmath>

#include "pvfp/solar/sunpos.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::weather {

WeatherSummary summarize(const std::vector<EnvSample>& env,
                         const pvfp::TimeGrid& grid) {
    check_arg(static_cast<long>(env.size()) == grid.total_steps(),
              "summarize: series length != grid steps");
    check_arg(!env.empty(), "summarize: empty series");
    WeatherSummary s;
    const double dt = grid.step_hours();
    double temp_acc = 0.0;
    s.min_temp_c = env.front().temp_air_c;
    s.max_temp_c = env.front().temp_air_c;
    for (const auto& e : env) {
        s.ghi_kwh_m2 += e.ghi * dt / 1000.0;
        s.dni_kwh_m2 += e.dni * dt / 1000.0;
        s.dhi_kwh_m2 += e.dhi * dt / 1000.0;
        temp_acc += e.temp_air_c;
        s.min_temp_c = std::min(s.min_temp_c, e.temp_air_c);
        s.max_temp_c = std::max(s.max_temp_c, e.temp_air_c);
    }
    s.mean_temp_c = temp_acc / static_cast<double>(env.size());
    s.diffuse_fraction = (s.ghi_kwh_m2 > 0.0) ? s.dhi_kwh_m2 / s.ghi_kwh_m2
                                              : 0.0;
    return s;
}

long count_inconsistent_samples(const std::vector<EnvSample>& env,
                                const pvfp::TimeGrid& grid,
                                const solar::Location& location,
                                double tolerance) {
    check_arg(static_cast<long>(env.size()) == grid.total_steps(),
              "count_inconsistent_samples: series length != grid steps");
    check_arg(tolerance >= 0.0, "count_inconsistent_samples: bad tolerance");
    long bad = 0;
    for (long s = 0; s < grid.total_steps(); ++s) {
        const EnvSample& e = env[static_cast<std::size_t>(s)];
        if (e.ghi < 0.0 || e.dni < 0.0 || e.dhi < 0.0 ||
            e.temp_air_c < -60.0 || e.temp_air_c > 60.0) {
            ++bad;
            continue;
        }
        const auto sun = solar::sun_position(location, grid.day_of_year(s),
                                             grid.hour_of_day(s));
        const double sin_el = std::max(0.0, std::sin(sun.elevation_rad));
        const double closed = e.dni * sin_el + e.dhi;
        const double scale = std::max(50.0, e.ghi);  // absolute floor 50 W/m^2
        if (std::abs(closed - e.ghi) > tolerance * scale) ++bad;
    }
    return bad;
}

}  // namespace pvfp::weather

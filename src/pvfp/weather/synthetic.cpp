#include "pvfp/weather/synthetic.hpp"

#include <cmath>

#include "pvfp/solar/decomposition.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/math.hpp"
#include "pvfp/util/rng.hpp"

namespace pvfp::weather {
namespace {

enum class Sky { Clear = 0, Partly = 1, Overcast = 2 };

/// Per-state parameters of the clear-sky-ratio process.
struct StateParams {
    double base;   ///< mean clear-sky ratio
    double sigma;  ///< AR(1) innovation scale
    double lo;     ///< clamp range
    double hi;
};

constexpr StateParams state_params(Sky s) {
    switch (s) {
        case Sky::Clear:
            return {1.00, 0.03, 0.85, 1.08};
        case Sky::Partly:
            return {0.70, 0.18, 0.15, 1.15};  // hi > 1: cloud enhancement
        case Sky::Overcast:
            return {0.22, 0.06, 0.03, 0.45};
    }
    return {0.5, 0.1, 0.0, 1.0};
}

int month_of_doy(int doy) {
    // Nominal 365/12-day months; good enough for climate interpolation.
    const double month_len = 365.0 / 12.0;
    const int m = static_cast<int>((doy - 1) / month_len);
    return std::min(m, 11);
}

}  // namespace

ClimateProfile ClimateProfile::torino() {
    ClimateProfile c;
    c.p_clear = {0.40, 0.45, 0.48, 0.47, 0.52, 0.58,
                 0.63, 0.58, 0.53, 0.42, 0.32, 0.34};
    c.p_overcast = {0.38, 0.33, 0.28, 0.28, 0.23, 0.15,
                    0.10, 0.14, 0.20, 0.34, 0.45, 0.43};
    c.mean_temp_c = {3.0, 5.0, 9.5, 13.5, 18.0, 22.0,
                     24.5, 24.0, 19.5, 14.0, 8.0, 4.0};
    c.diurnal_amplitude_c = {4.0, 5.0, 6.0, 6.0, 7.0, 7.5,
                             8.0, 7.5, 6.5, 5.0, 4.0, 3.5};
    return c;
}

void ClimateProfile::validate() const {
    for (int m = 0; m < 12; ++m) {
        const double pc = p_clear[static_cast<std::size_t>(m)];
        const double po = p_overcast[static_cast<std::size_t>(m)];
        check_arg(pc >= 0.0 && po >= 0.0 && pc + po <= 1.0,
                  "ClimateProfile: monthly state probabilities invalid");
        check_arg(diurnal_amplitude_c[static_cast<std::size_t>(m)] >= 0.0,
                  "ClimateProfile: negative diurnal amplitude");
    }
}

std::vector<EnvSample> generate_synthetic_weather(
    const solar::Location& location, const pvfp::TimeGrid& grid,
    const SyntheticWeatherOptions& options) {
    options.climate.validate();
    check_arg(options.state_persistence >= 0.0 &&
                  options.state_persistence < 1.0,
              "generate_synthetic_weather: persistence must be in [0,1)");
    check_arg(options.ratio_ar1 >= 0.0 && options.ratio_ar1 < 1.0,
              "generate_synthetic_weather: ratio_ar1 must be in [0,1)");
    check_arg(options.temp_ar1 >= 0.0 && options.temp_ar1 < 1.0,
              "generate_synthetic_weather: temp_ar1 must be in [0,1)");

    pvfp::Rng rng(options.seed);
    const ClimateProfile& climate = options.climate;

    // Rescale the per-reference-step (15 min) dynamics to the actual
    // grid step so sojourn times and noise correlation are defined in
    // wall time, independent of the simulation resolution.
    const double step_ratio = grid.minutes_per_step() / 15.0;
    const double persistence =
        std::pow(options.state_persistence, step_ratio);
    const double ratio_ar1 = std::pow(options.ratio_ar1, step_ratio);
    const double temp_ar1 = std::pow(options.temp_ar1, step_ratio);
    // Keep the stationary variance of the temperature noise unchanged:
    // sigma_step^2 = sigma^2 * (1 - a_step^2) / (1 - a_ref^2).
    const double temp_sigma =
        options.temp_noise_sigma *
        std::sqrt((1.0 - temp_ar1 * temp_ar1) /
                  (1.0 - options.temp_ar1 * options.temp_ar1));

    std::vector<EnvSample> out(
        static_cast<std::size_t>(grid.total_steps()));

    // Markov state, initialized from the stationary distribution of the
    // starting month.
    Sky state = Sky::Partly;
    {
        const int m0 = month_of_doy(grid.start_day());
        const double u = rng.uniform();
        const double pc = climate.p_clear[static_cast<std::size_t>(m0)];
        const double po = climate.p_overcast[static_cast<std::size_t>(m0)];
        state = (u < pc) ? Sky::Clear
                         : (u < pc + po ? Sky::Overcast : Sky::Partly);
    }

    double ratio_noise = 0.0;  // AR(1), in units of state sigma
    double temp_noise = 0.0;   // AR(1) slow temperature wander [K]
    double day_offset = 0.0;   // per-day temperature offset [K]
    int current_day = -1;

    for (long s = 0; s < grid.total_steps(); ++s) {
        const int doy = grid.day_of_year(s);
        const double hour = grid.hour_of_day(s);
        const int month = month_of_doy(doy);
        const double pc = climate.p_clear[static_cast<std::size_t>(month)];
        const double po =
            climate.p_overcast[static_cast<std::size_t>(month)];

        if (doy != current_day) {
            current_day = doy;
            day_offset = rng.normal(0.0, 1.6);
        }

        // Sky-state transition: persist, otherwise redraw from the
        // month's stationary distribution.
        if (!rng.bernoulli(persistence)) {
            const double u = rng.uniform();
            state = (u < pc) ? Sky::Clear
                             : (u < pc + po ? Sky::Overcast : Sky::Partly);
        }

        const StateParams sp = state_params(state);
        ratio_noise = ratio_ar1 * ratio_noise +
                      std::sqrt(1.0 - ratio_ar1 * ratio_ar1) * rng.normal();
        const double ratio =
            std::clamp(sp.base + sp.sigma * ratio_noise, sp.lo, sp.hi);

        EnvSample e;

        const auto sun = solar::sun_position(location, doy, hour);
        if (sun.elevation_rad > 0.0) {
            const double linke = options.turbidity.at_day(doy);
            const auto clear = solar::esra_clear_sky(
                sun.elevation_rad, doy, linke, options.altitude_m);
            e.ghi = std::max(0.0, ratio * clear.ghi);
            const auto split =
                solar::decompose_erbs(e.ghi, sun.elevation_rad, doy);
            // A clear sky should not produce more beam than the clear-sky
            // model itself (Erbs can over-assign beam at high kt).
            e.dni = std::min(split.dni, clear.dni * 1.05);
            e.dhi = std::max(0.0, e.ghi - e.dni *
                                             std::sin(sun.elevation_rad));
        }

        // Temperature: seasonal mean + clearness-scaled diurnal wave
        // peaking at 14h + slow AR(1) wander + per-day offset.
        temp_noise = temp_ar1 * temp_noise + temp_sigma * rng.normal();
        const double amp_scale = 0.45 + 0.55 * ratio;
        const double diurnal =
            climate.diurnal_amplitude_c[static_cast<std::size_t>(month)] *
            amp_scale * std::cos(kTwoPi * (hour - 14.0) / 24.0);
        e.temp_air_c =
            climate.mean_temp_c[static_cast<std::size_t>(month)] + diurnal +
            temp_noise + day_offset;

        out[static_cast<std::size_t>(s)] = e;
    }
    return out;
}

}  // namespace pvfp::weather

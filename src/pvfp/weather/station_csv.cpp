#include "pvfp/weather/station_csv.hpp"

#include <cmath>

#include "pvfp/solar/clearsky.hpp"
#include "pvfp/solar/decomposition.hpp"
#include "pvfp/util/csv.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/table.hpp"

namespace pvfp::weather {

void write_station_csv(const std::string& path,
                       const std::vector<EnvSample>& env,
                       const pvfp::TimeGrid& grid) {
    check_arg(static_cast<long>(env.size()) == grid.total_steps(),
              "write_station_csv: series length != grid steps");
    pvfp::CsvTable table({"day", "hour", "ghi", "dni", "dhi", "temp_air_c"});
    for (long s = 0; s < grid.total_steps(); ++s) {
        const EnvSample& e = env[static_cast<std::size_t>(s)];
        table.add_row({std::to_string(grid.day_of_year(s)),
                       pvfp::TextTable::num(grid.hour_of_day(s), 4),
                       pvfp::TextTable::num(e.ghi, 2),
                       pvfp::TextTable::num(e.dni, 2),
                       pvfp::TextTable::num(e.dhi, 2),
                       pvfp::TextTable::num(e.temp_air_c, 2)});
    }
    table.write_file(path);
}

std::vector<EnvSample> read_station_csv(const std::string& path,
                                        const pvfp::TimeGrid& grid) {
    const auto table = pvfp::CsvTable::read_file(path);
    check_io(static_cast<long>(table.row_count()) == grid.total_steps(),
             "read_station_csv: row count does not match the time grid");
    std::vector<EnvSample> env(table.row_count());
    for (std::size_t r = 0; r < table.row_count(); ++r) {
        EnvSample e;
        e.ghi = table.cell_as_double(r, "ghi");
        e.dni = table.cell_as_double(r, "dni");
        e.dhi = table.cell_as_double(r, "dhi");
        e.temp_air_c = table.cell_as_double(r, "temp_air_c");
        check_io(e.ghi >= 0.0 && e.dni >= 0.0 && e.dhi >= 0.0,
                 "read_station_csv: negative irradiance at row " +
                     std::to_string(r));
        env[r] = e;
    }
    return env;
}

std::vector<EnvSample> read_station_csv_ghi_only(
    const std::string& path, const pvfp::TimeGrid& grid,
    const solar::Location& location, DecompositionModel model, double linke,
    double altitude_m) {
    const auto table = pvfp::CsvTable::read_file(path);
    check_io(static_cast<long>(table.row_count()) == grid.total_steps(),
             "read_station_csv_ghi_only: row count does not match the grid");
    std::vector<EnvSample> env(table.row_count());
    for (std::size_t r = 0; r < table.row_count(); ++r) {
        const long s = static_cast<long>(r);
        EnvSample e;
        e.ghi = table.cell_as_double(r, "ghi");
        e.temp_air_c = table.cell_as_double(r, "temp_air_c");
        check_io(e.ghi >= 0.0,
                 "read_station_csv_ghi_only: negative GHI at row " +
                     std::to_string(r));
        const int doy = grid.day_of_year(s);
        const double hour = grid.hour_of_day(s);
        const auto sun = solar::sun_position(location, doy, hour);
        if (sun.elevation_rad > 0.0 && e.ghi > 0.0) {
            solar::Decomposition d;
            if (model == DecompositionModel::Erbs) {
                d = solar::decompose_erbs(e.ghi, sun.elevation_rad, doy);
            } else {
                const auto clear = solar::esra_clear_sky(
                    sun.elevation_rad, doy, linke, altitude_m);
                d = solar::decompose_engerer2(
                    e.ghi, clear.ghi, sun.elevation_rad, doy,
                    solar::solar_time_hours(location, doy, hour));
            }
            e.dni = d.dni;
            e.dhi = d.dhi;
        }
        env[r] = e;
    }
    return env;
}

}  // namespace pvfp::weather

#pragma once
/// \file tile_index.hpp
/// Tiled DSM discovery and windowed mosaic reads (city-scale GIS input).
///
/// Real LiDAR campaigns publish DSMs as directories of fixed-size .asc
/// tiles on a common grid (e.g. 1 km x 1 km at 0.5 m).  A TileIndex
/// scans such a directory once — header-only reads, no data loaded —
/// and resolves the world-coordinate extent of every tile; read_window
/// then crops/mosaics an arbitrary world rectangle across tile
/// boundaries into one Raster, marking uncovered cells NODATA.  The
/// per-roof windows of a batch run overlap heavily within a tile, so an
/// optional bounded TileCache keeps recently used tiles decoded
/// (thread-safe LRU — shards of the city runner share one).
///
/// Conventions match geo::Raster: x/easting grows east, y/northing grows
/// north, tile placement comes straight from the .asc lower-left-corner
/// headers.  All tiles must share one cell size and sit on one common
/// cell lattice (checked at scan time) — resampling is out of scope.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "pvfp/geo/asc_grid.hpp"
#include "pvfp/geo/raster.hpp"

namespace pvfp::gis {

/// Axis-aligned world rectangle: x east, y north, max edges exclusive
/// for cell-membership purposes.
struct WorldRect {
    double x0 = 0.0;  ///< west edge [m]
    double y0 = 0.0;  ///< south edge [m]
    double x1 = 0.0;  ///< east edge [m]
    double y1 = 0.0;  ///< north edge [m]

    double width() const { return x1 - x0; }
    double height() const { return y1 - y0; }
    bool empty() const { return x1 <= x0 || y1 <= y0; }

    bool intersects(const WorldRect& o) const {
        return x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
    }
    /// Grow outward by \p margin meters on every side.
    WorldRect expanded(double margin) const {
        return {x0 - margin, y0 - margin, x1 + margin, y1 + margin};
    }
    /// True when world point (wx, wy) falls inside (max edges excluded).
    bool contains(double wx, double wy) const {
        return wx >= x0 && wx < x1 && wy >= y0 && wy < y1;
    }
};

/// One discovered tile: its path and parsed header (no data resident).
struct TileInfo {
    std::string path;
    geo::AscHeader header;

    WorldRect extent() const {
        return {header.xllcorner, header.yllcorner, header.x_max(),
                header.y_max()};
    }
};

/// Thread-safe bounded LRU cache of decoded tiles, keyed by path.
/// Shared by the city runner's concurrent roof windows so a tile
/// crossed by many roofs is parsed once, while total resident tiles
/// stay bounded (load -> mosaic -> evict keeps city-scale memory flat).
///
/// Misses never hold the cache mutex across the disk decode: the first
/// requester of a tile registers a per-key in-flight entry, releases the
/// global lock, and parses; a concurrent requester of the *same* tile
/// waits on that entry (not the global mutex, so misses on *different*
/// tiles decode fully in parallel) and shares the one decoded raster —
/// load-once semantics without a stop-the-world parse, which matters
/// once the cache lives inside a long-running server instead of a batch
/// shard.  A failed decode wakes every waiter with the error and leaves
/// nothing cached, so a transient I/O failure is retryable.
class TileCache {
public:
    /// Decodes one tile file; injectable so tests can instrument
    /// concurrency (latches, counters) without real files.
    using Loader = std::function<geo::Raster(const std::string&)>;

    /// \p capacity: maximum resident tiles (>= 1).  \p loader defaults
    /// to geo::read_asc_grid_file.
    explicit TileCache(std::size_t capacity = 16, Loader loader = {});

    /// Return the decoded tile, loading it on a miss (which may evict
    /// the least recently used entry).  The returned shared_ptr stays
    /// valid after eviction.
    std::shared_ptr<const geo::Raster> load(const std::string& path);

    /// \p hits counts loads served without initiating a decode (resident
    /// entries and joins on an in-flight decode); \p misses counts
    /// decodes initiated.
    std::size_t hits() const;
    std::size_t misses() const;
    /// Heap bytes of every resident (cached) tile's cell grid.
    std::size_t bytes() const;

private:
    using Entry = std::pair<std::string, std::shared_ptr<const geo::Raster>>;

    /// One decode in progress: waiters block on this entry's own
    /// mutex/cv, never on the cache-wide one.
    struct InFlight {
        std::mutex mutex;
        std::condition_variable done_cv;
        bool done = false;
        std::shared_ptr<const geo::Raster> result;
        std::exception_ptr error;
    };

    mutable std::mutex mutex_;
    std::size_t capacity_;
    Loader loader_;
    std::list<Entry> lru_;  ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index_;
    std::unordered_map<std::string, std::shared_ptr<InFlight>> in_flight_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
};

/// The discovered tile set of one DSM directory.
class TileIndex {
public:
    /// Scan \p directory for *.asc tiles (case-insensitive extension,
    /// sorted by filename so every downstream decision is
    /// order-deterministic), reading only headers.  Throws IoError when
    /// the directory cannot be read, contains no tiles, or the tiles
    /// disagree on cell size / lattice alignment.
    static TileIndex scan(const std::string& directory);

    int tile_count() const { return static_cast<int>(tiles_.size()); }
    const std::vector<TileInfo>& tiles() const { return tiles_; }
    double cell_size() const { return cell_size_; }
    /// Union bounding box of all tile extents.
    const WorldRect& extent() const { return extent_; }

    /// Read the smallest lattice-aligned raster covering \p rect,
    /// mosaicking across every intersecting tile.  A cell takes its
    /// value from the first tile in filename order holding *data*
    /// there; NODATA contributors are passed over, so overlapping tiles
    /// fill each other's gaps, and only cells no tile covers with data
    /// hold geo::kDefaultNoData.  \p cache, when non-null, serves the
    /// tile loads.
    geo::Raster read_window(const WorldRect& rect,
                            TileCache* cache = nullptr) const;

private:
    std::vector<TileInfo> tiles_;
    double cell_size_ = 0.0;
    /// Lattice reference point (lower-left corner of the first tile);
    /// every tile's corner offsets from here are whole cell multiples.
    double ref_x_ = 0.0;
    double ref_y_ = 0.0;
    WorldRect extent_{};
};

}  // namespace pvfp::gis

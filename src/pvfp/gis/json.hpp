#pragma once
/// \file json.hpp
/// Minimal JSON reader/escaper for the GIS subsystem.
///
/// Three GIS surfaces speak JSON: the footprint index (an array of roof
/// records), the JSONL result stream of the city runner (one object per
/// roof, also re-read on resume), and the tests that pin both.  The
/// project deliberately carries no third-party dependencies, so this is
/// a small, strict, self-contained value parser: UTF-8 in, full JSON
/// grammar (objects, arrays, strings with escapes incl. \uXXXX, numbers,
/// booleans, null), objects kept in insertion order, trailing garbage
/// rejected.  It is an ingestion tool, not a serialization framework —
/// writers in this codebase emit JSON by formatting strings (the schema
/// is fixed), with json_escape for string payloads.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pvfp::gis {

/// An immutable parsed JSON value.
class JsonValue {
public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    /// Parse one complete JSON document; throws IoError on any syntax
    /// error, on trailing non-whitespace, and on nesting deeper than an
    /// anti-abuse bound (128 levels).
    static JsonValue parse(std::string_view text);

    JsonValue() = default;

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::Null; }
    bool is_bool() const { return type_ == Type::Bool; }
    bool is_number() const { return type_ == Type::Number; }
    bool is_string() const { return type_ == Type::String; }
    bool is_array() const { return type_ == Type::Array; }
    bool is_object() const { return type_ == Type::Object; }

    /// Typed accessors; throw IoError when the value has another type.
    bool as_bool() const;
    double as_number() const;
    const std::string& as_string() const;
    const std::vector<JsonValue>& as_array() const;
    const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

    /// Object lookup: nullptr when absent (or when not an object —
    /// lenient on purpose so optional-field probing reads naturally).
    const JsonValue* find(const std::string& key) const;
    /// Object lookup that throws IoError when the key is missing.
    const JsonValue& at(const std::string& key) const;

private:
    friend class JsonParser;

    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Escape \p s for inclusion inside a JSON string literal (quotes not
/// added): ", \, control characters.
std::string json_escape(std::string_view s);

}  // namespace pvfp::gis

#include "pvfp/gis/horizon_cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <utility>

#include "pvfp/util/error.hpp"

namespace pvfp::gis {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t fnv1a(std::uint64_t h, double v) {
    return fnv1a(h, std::bit_cast<std::uint64_t>(v));
}

/// Division rounding toward negative infinity (macro indices of windows
/// west/north of the tile extent are negative).
long floor_div(long a, long b) {
    const long q = a / b;
    const long r = a % b;
    return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

}  // namespace

HorizonCache::HorizonCache(const TileIndex& tiles, TileCache* tile_cache,
                           const HorizonCacheOptions& options)
    : tiles_(tiles), tile_cache_(tile_cache), options_(options) {
    check_arg(options_.macro_cells > 0,
              "HorizonCache: macro_cells must be positive");
    check_arg(std::isfinite(options_.horizon.max_distance) &&
                  options_.horizon.max_distance > 0.0,
              "HorizonCache: invalid max_distance");
    // Bilinear sampling at exactly max_distance touches one cell beyond
    // the sample point; one more cell absorbs the outward lattice snap.
    halo_m_ = options_.horizon.max_distance + 2.0 * tiles_.cell_size();

    std::uint64_t k = kFnvOffset;
    k = fnv1a(k, static_cast<std::uint64_t>(options_.horizon.azimuth_sectors));
    k = fnv1a(k, options_.horizon.max_distance);
    k = fnv1a(k, options_.horizon.step_factor);
    k = fnv1a(k, options_.horizon.step_growth);
    k = fnv1a(k, options_.horizon.max_step_factor);
    k = fnv1a(k, options_.horizon.observer_offset);
    k = fnv1a(k, static_cast<std::uint64_t>(options_.macro_cells));
    k = fnv1a(k, tiles_.cell_size());
    options_key_ = k;
}

WorldRect HorizonCache::macro_core_rect(long mx, long my) const {
    const double cs = tiles_.cell_size();
    const double side = options_.macro_cells * cs;
    const double ax = tiles_.extent().x0;  // lattice-aligned NW anchor
    const double ay = tiles_.extent().y1;
    return {ax + mx * side, ay - (my + 1) * side, ax + (mx + 1) * side,
            ay - my * side};
}

std::uint64_t HorizonCache::tile_content_hash(const TileInfo& tile) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = tile_hash_memo_.find(tile.path);
        if (it != tile_hash_memo_.end()) return it->second;
    }
    // Hash with no lock held (the load may hit disk).  Two threads may
    // race to hash the same tile; both compute the same value, so the
    // duplicate work is benign.
    std::shared_ptr<const geo::Raster> loaded;
    geo::Raster direct;
    const geo::Raster* src = nullptr;
    if (tile_cache_) {
        loaded = tile_cache_->load(tile.path);
        src = loaded.get();
    } else {
        direct = geo::read_asc_grid_file(tile.path);
        src = &direct;
    }
    std::uint64_t h = kFnvOffset;
    h = fnv1a(h, static_cast<std::uint64_t>(src->width()));
    h = fnv1a(h, static_cast<std::uint64_t>(src->height()));
    h = fnv1a(h, src->origin_x());
    h = fnv1a(h, src->origin_y());
    h = fnv1a(h, src->nodata());
    for (const double v : src->grid().data()) h = fnv1a(h, v);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tile_hash_memo_.emplace(tile.path, h);
    }
    return h;
}

std::uint64_t HorizonCache::content_key(long mx, long my) {
    // Every tile whose data can influence a core cell intersects the
    // halo rectangle.  tiles() is filename-sorted, so the combination
    // order — like read_window's first-wins mosaicking — is stable.
    const WorldRect halo = macro_core_rect(mx, my).expanded(halo_m_);
    std::uint64_t key = options_key_;
    for (const TileInfo& tile : tiles_.tiles()) {
        if (!tile.extent().intersects(halo)) continue;
        key = fnv1a(key, tile_content_hash(tile));
    }
    return key;
}

std::shared_ptr<const HorizonCache::Planes> HorizonCache::build_macro(
    long mx, long my) const {
    const double cs = tiles_.cell_size();
    const WorldRect core = macro_core_rect(mx, my);
    geo::Raster mosaic =
        tiles_.read_window(core.expanded(halo_m_), tile_cache_);

    // Backfill NODATA with the mosaic's minimum data height (the
    // make_scenario convention: gaps become low flat ground that never
    // shades).  Per macro tile, so still a pure function of the key.
    double ground = 0.0;
    bool any_data = false;
    for (const double v : mosaic.grid().data()) {
        if (v == mosaic.nodata()) continue;
        ground = any_data ? std::min(ground, v) : v;
        any_data = true;
    }
    for (int y = 0; y < mosaic.height(); ++y)
        for (int x = 0; x < mosaic.width(); ++x)
            if (mosaic(x, y) == mosaic.nodata()) mosaic(x, y) = ground;

    const int M = options_.macro_cells;
    const int cx0 =
        static_cast<int>(std::llround((core.x0 - mosaic.origin_x()) / cs));
    const int cy0 =
        static_cast<int>(std::llround((mosaic.origin_y() - core.y1) / cs));
    const geo::HorizonMap map(mosaic, cx0, cy0, M, M, options_.horizon);

    auto planes = std::make_shared<Planes>();
    planes->w = M;
    planes->h = M;
    planes->sectors = map.sectors();
    const std::size_t ncells = static_cast<std::size_t>(M) * M;
    planes->angles.assign(map.angles_data(),
                          map.angles_data() + ncells * map.sectors());
    planes->svf.assign(map.svf_data(), map.svf_data() + ncells);
    return planes;
}

std::shared_ptr<const HorizonCache::Planes> HorizonCache::macro_planes(
    long mx, long my) {
    const MacroKey key{mx, my};
    const std::uint64_t ck = content_key(mx, my);

    std::shared_ptr<InFlight> flight;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = index_.find(key);
        if (it != index_.end()) {
            if (it->second->content_key == ck) {
                lru_.splice(lru_.begin(), lru_, it->second);
                ++stats_.hits;
                return it->second->planes;
            }
            // A contributing tile changed on disk: self-invalidate.
            bytes_ -= it->second->planes->bytes();
            lru_.erase(it->second);
            index_.erase(it);
        }
        const auto fl = in_flight_.find(key);
        if (fl != in_flight_.end()) {
            flight = fl->second;
            ++stats_.joins;
        } else {
            flight = std::make_shared<InFlight>();
            in_flight_.emplace(key, flight);
            owner = true;
            ++stats_.misses;
        }
    }

    if (!owner) {
        // Join the build already marching this macro tile (TileCache
        // pattern: wait on the entry's own latch, not the cache mutex).
        std::unique_lock<std::mutex> lock(flight->mutex);
        flight->done_cv.wait(lock, [&] { return flight->done; });
        if (flight->error) std::rethrow_exception(flight->error);
        return flight->result;
    }

    std::shared_ptr<const Planes> planes;
    std::exception_ptr error;
    try {
        planes = build_macro(mx, my);
    } catch (...) {
        error = std::current_exception();
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        in_flight_.erase(key);
        if (!error) {
            lru_.push_front(Entry{key, ck, planes});
            index_[key] = lru_.begin();
            bytes_ += planes->bytes();
            evict_over_budget_locked();
        }
    }
    {
        std::lock_guard<std::mutex> lock(flight->mutex);
        flight->done = true;
        flight->result = planes;
        flight->error = error;
    }
    flight->done_cv.notify_all();
    if (error) std::rethrow_exception(error);
    return planes;
}

void HorizonCache::evict_over_budget_locked() {
    // Keep at least the most recent entry resident so one oversized
    // macro tile cannot thrash the cache into rebuilding every lookup.
    while (bytes_ > options_.byte_budget && lru_.size() > 1) {
        bytes_ -= lru_.back().planes->bytes();
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

geo::HorizonMap HorizonCache::window(double origin_x, double origin_y,
                                     int x0, int y0, int w, int h) {
    check_arg(w > 0 && h > 0, "HorizonCache::window: empty window");
    const double cs = tiles_.cell_size();
    const double ax = tiles_.extent().x0;
    const double ay = tiles_.extent().y1;
    const double fx = (origin_x - ax) / cs;
    const double fy = (ay - origin_y) / cs;
    const long gx0 = std::llround(fx);
    const long gy0 = std::llround(fy);
    check_arg(std::abs(fx - static_cast<double>(gx0)) <= 1e-6 &&
                  std::abs(fy - static_cast<double>(gy0)) <= 1e-6,
              "HorizonCache::window: origin off the tile lattice");

    const long M = options_.macro_cells;
    const int sectors = options_.horizon.azimuth_sectors;
    const std::size_t ncells = static_cast<std::size_t>(w) * h;
    std::vector<float> angles(ncells * static_cast<std::size_t>(sectors));
    std::vector<float> svf(ncells);

    const long mx0 = floor_div(gx0, M);
    const long mx1 = floor_div(gx0 + w - 1, M);
    const long my0 = floor_div(gy0, M);
    const long my1 = floor_div(gy0 + h - 1, M);
    for (long my = my0; my <= my1; ++my) {
        for (long mx = mx0; mx <= mx1; ++mx) {
            const std::shared_ptr<const Planes> sp = macro_planes(mx, my);
            const long gxa = std::max(gx0, mx * M);
            const long gxb = std::min(gx0 + w, (mx + 1) * M);
            const long gya = std::max(gy0, my * M);
            const long gyb = std::min(gy0 + h, (my + 1) * M);
            const std::size_t run = static_cast<std::size_t>(gxb - gxa);
            const std::size_t src_cells =
                static_cast<std::size_t>(sp->w) * sp->h;
            for (int s = 0; s < sectors; ++s) {
                const float* splane = sp->angles.data() + s * src_cells;
                float* dplane = angles.data() + s * ncells;
                for (long gy = gya; gy < gyb; ++gy) {
                    const float* srow =
                        splane + (gy - my * M) * sp->w + (gxa - mx * M);
                    float* drow = dplane + (gy - gy0) * w + (gxa - gx0);
                    std::memcpy(drow, srow, run * sizeof(float));
                }
            }
            for (long gy = gya; gy < gyb; ++gy) {
                const float* srow = sp->svf.data() + (gy - my * M) * sp->w +
                                    (gxa - mx * M);
                float* drow = svf.data() + (gy - gy0) * w + (gxa - gx0);
                std::memcpy(drow, srow, run * sizeof(float));
            }
        }
    }
    return geo::HorizonMap::from_planes(x0, y0, w, h, sectors,
                                        std::move(angles), std::move(svf));
}

HorizonCacheStats HorizonCache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    HorizonCacheStats s = stats_;
    s.bytes = bytes_;
    return s;
}

std::size_t HorizonCache::bytes_used() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
}

void HorizonCache::shrink_to(std::size_t limit) {
    std::lock_guard<std::mutex> lock(mutex_);
    while (bytes_ > limit && !lru_.empty()) {
        bytes_ -= lru_.back().planes->bytes();
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

void HorizonCache::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
    tile_hash_memo_.clear();
    bytes_ = 0;
}

}  // namespace pvfp::gis

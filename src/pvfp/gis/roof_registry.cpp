#include "pvfp/gis/roof_registry.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <limits>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "pvfp/geo/poly_raster.hpp"
#include "pvfp/gis/json.hpp"
#include "pvfp/obs/trace.hpp"
#include "pvfp/util/csv.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/math.hpp"

namespace pvfp::gis {

namespace {

/// One least-squares pass over the cells where keep is nonzero; returns
/// false when the system is degenerate (fewer than 3 cells or a
/// collinear footprint), in which case the flat fallback applies.
bool plane_pass(const geo::Raster& dsm,
                const pvfp::Grid2D<unsigned char>& keep, double& a,
                double& b, double& c, long& cells) {
    double mx = 0.0, my = 0.0, mz = 0.0;
    long n = 0;
    for (int y = 0; y < dsm.height(); ++y) {
        for (int x = 0; x < dsm.width(); ++x) {
            if (!keep(x, y)) continue;
            mx += dsm.local_x(x);
            my += dsm.local_y(y);
            mz += dsm(x, y);
            ++n;
        }
    }
    cells = n;
    if (n < 3) return false;
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    mz /= static_cast<double>(n);

    double sxx = 0.0, sxy = 0.0, syy = 0.0, sxz = 0.0, syz = 0.0;
    for (int y = 0; y < dsm.height(); ++y) {
        for (int x = 0; x < dsm.width(); ++x) {
            if (!keep(x, y)) continue;
            const double dx = dsm.local_x(x) - mx;
            const double dy = dsm.local_y(y) - my;
            const double dz = dsm(x, y) - mz;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
            sxz += dx * dz;
            syz += dy * dz;
        }
    }
    const double det = sxx * syy - sxy * sxy;
    if (det <= 1e-12 * std::max(1.0, sxx * syy)) return false;
    a = (sxz * syy - syz * sxy) / det;
    b = (syz * sxx - sxz * sxy) / det;
    c = mz - a * mx - b * my;
    return true;
}

double plane_rmse(const geo::Raster& dsm,
                  const pvfp::Grid2D<unsigned char>& keep, double a,
                  double b, double c) {
    double ss = 0.0;
    long n = 0;
    for (int y = 0; y < dsm.height(); ++y) {
        for (int x = 0; x < dsm.width(); ++x) {
            if (!keep(x, y)) continue;
            const double r =
                dsm(x, y) - (a * dsm.local_x(x) + b * dsm.local_y(y) + c);
            ss += r * r;
            ++n;
        }
    }
    return n > 0 ? std::sqrt(ss / static_cast<double>(n)) : 0.0;
}

std::vector<std::array<double, 2>> parse_polygon_field(
    const std::string& field, const std::string& id) {
    std::vector<std::array<double, 2>> poly;
    std::istringstream vertices(field);
    std::string vertex;
    while (std::getline(vertices, vertex, ';')) {
        if (vertex.find_first_not_of(" \t") == std::string::npos) continue;
        std::istringstream vs(vertex);
        double x = 0.0, y = 0.0;
        check_io(static_cast<bool>(vs >> x >> y),
                 "roof_registry: bad polygon vertex for roof '" + id + "'");
        poly.push_back({x, y});
    }
    check_io(poly.size() >= 3,
             "roof_registry: polygon of roof '" + id +
                 "' needs >= 3 vertices");
    return poly;
}

}  // namespace

RoofPlaneFit fit_roof_plane(const geo::Raster& dsm,
                            const pvfp::Grid2D<unsigned char>& mask,
                            double trim_sigma) {
    check_arg(mask.width() == dsm.width() && mask.height() == dsm.height(),
              "fit_roof_plane: mask does not match the DSM");
    check_arg(trim_sigma >= 0.0, "fit_roof_plane: negative trim_sigma");

    // Only data cells participate.
    pvfp::Grid2D<unsigned char> keep = mask;
    for (int y = 0; y < dsm.height(); ++y)
        for (int x = 0; x < dsm.width(); ++x)
            if (keep(x, y) && dsm(x, y) == dsm.nodata()) keep(x, y) = 0;

    RoofPlaneFit fit;
    bool sloped = plane_pass(dsm, keep, fit.a, fit.b, fit.c, fit.cells);
    if (fit.cells < 3)
        throw Infeasible("fit_roof_plane: fewer than 3 data cells");
    if (!sloped) {
        // Collinear or flat footprint: horizontal plane at the mean.
        double mz = 0.0;
        long n = 0;
        for (int y = 0; y < dsm.height(); ++y)
            for (int x = 0; x < dsm.width(); ++x)
                if (keep(x, y)) { mz += dsm(x, y); ++n; }
        fit.a = 0.0;
        fit.b = 0.0;
        fit.c = mz / static_cast<double>(n);
    }
    fit.rmse_m = plane_rmse(dsm, keep, fit.a, fit.b, fit.c);

    // Trimmed re-fit: encumbrances (chimneys, HVAC) sit entirely above
    // the plane and drag the first fit toward themselves; one residual
    // trim recovers the clean-surface plane.
    if (trim_sigma > 0.0 && fit.rmse_m > 1e-6) {
        pvfp::Grid2D<unsigned char> trimmed = keep;
        long dropped = 0;
        for (int y = 0; y < dsm.height(); ++y) {
            for (int x = 0; x < dsm.width(); ++x) {
                if (!trimmed(x, y)) continue;
                const double r = dsm(x, y) - (fit.a * dsm.local_x(x) +
                                              fit.b * dsm.local_y(y) + fit.c);
                if (std::abs(r) > trim_sigma * fit.rmse_m) {
                    trimmed(x, y) = 0;
                    ++dropped;
                }
            }
        }
        if (dropped > 0) {
            RoofPlaneFit refit;
            if (plane_pass(dsm, trimmed, refit.a, refit.b, refit.c,
                           refit.cells)) {
                refit.rmse_m = plane_rmse(dsm, trimmed, refit.a, refit.b,
                                          refit.c);
                fit = refit;
            }
        }
    }

    // Orientation: z grows along the gradient (a, b) in the local frame
    // (x east, y south), so downslope is -(a, b) -> east = -a,
    // north = +b (local y points south).
    fit.tilt_deg = rad2deg(std::atan(std::hypot(fit.a, fit.b)));
    const double az = std::atan2(-fit.a, fit.b);
    fit.azimuth_deg = rad2deg(az < 0.0 ? az + kTwoPi : az);
    return fit;
}

core::RoofScenario make_scenario(const RoofRecord& record,
                                 const TileIndex& tiles,
                                 const ScenarioBuildOptions& options,
                                 TileCache* cache, RoofPlaneFit* fit_out,
                                 WindowOrigin* origin_out) {
    check_arg(options.context_margin_m >= 0.0,
              "make_scenario: negative context margin");
    check_arg(!record.bbox.empty(),
              "make_scenario: empty bbox for roof '" + record.id + "'");

    std::optional<geo::Raster> dsm_slot;
    {
        PVFP_TRACE_SPAN("stage.mosaic");
        dsm_slot = tiles.read_window(
            record.bbox.expanded(options.context_margin_m), cache);
    }
    geo::Raster& dsm = *dsm_slot;
    const double cs = dsm.cell_size();

    // Footprint mask: bbox AND polygon AND data.  The polygon mask comes
    // from the scanline rasterizer (O(rows·edges) instead of a per-cell
    // even-odd ray cast — the difference between linear and quadratic
    // ingest on 10^4+-vertex cadastral footprints), evaluated on the same
    // cell centers world_x/world_y address.
    pvfp::Grid2D<unsigned char> poly_mask;
    const bool have_poly = !record.polygon.empty();
    if (have_poly)
        poly_mask = geo::rasterize_polygon_even_odd(
            record.polygon, dsm.width(), dsm.height(), cs, dsm.origin_x(),
            dsm.origin_y());
    pvfp::Grid2D<unsigned char> mask(dsm.width(), dsm.height(), 0);
    long footprint_cells = 0;
    for (int y = 0; y < dsm.height(); ++y) {
        for (int x = 0; x < dsm.width(); ++x) {
            const double wx = dsm.world_x(x);
            const double wy = dsm.world_y(y);
            if (!record.bbox.contains(wx, wy)) continue;
            if (have_poly && !poly_mask(x, y)) continue;
            if (dsm(x, y) == dsm.nodata()) continue;
            mask(x, y) = 1;
            ++footprint_cells;
        }
    }
    if (footprint_cells < 3)
        throw Infeasible("make_scenario: footprint of roof '" + record.id +
                         "' holds no data cells (outside the tile set?)");

    RoofPlaneFit fit;
    {
        PVFP_TRACE_SPAN("stage.fit");
        fit = fit_roof_plane(dsm, mask, options.trim_sigma);
    }
    if (fit_out) *fit_out = fit;

    // Backfill NODATA with the window's minimum height: the horizon scan
    // and the normal map must see plausible ground, not a -9999 m pit.
    double ground = std::numeric_limits<double>::infinity();
    for (int y = 0; y < dsm.height(); ++y)
        for (int x = 0; x < dsm.width(); ++x)
            if (dsm(x, y) != dsm.nodata())
                ground = std::min(ground, dsm(x, y));
    for (int y = 0; y < dsm.height(); ++y)
        for (int x = 0; x < dsm.width(); ++x)
            if (dsm(x, y) == dsm.nodata()) dsm(x, y) = ground;

    // Describe the fitted plane as a MonopitchRoof in the window's local
    // frame, so extract_placement_area detects encumbrances as
    // measured-DSM-minus-fitted-plane residuals.
    const double lx0 = record.bbox.x0 - dsm.origin_x();
    const double ly0 = dsm.origin_y() - record.bbox.y1;
    geo::MonopitchRoof roof;
    roof.name = record.id;
    roof.x = lx0;
    roof.y = ly0;
    roof.w = record.bbox.width();
    roof.d = record.bbox.height();
    roof.tilt_deg = fit.tilt_deg;
    roof.azimuth_deg = fit.azimuth_deg;
    // Eave = fitted plane height at the most-downslope footprint corner
    // (the reference corner of roof_plane_height): the plane minimum
    // over the rectangle.
    double eave = std::numeric_limits<double>::infinity();
    for (const auto& [cx, cy] : {std::pair{lx0, ly0},
                                 std::pair{lx0 + roof.w, ly0},
                                 std::pair{lx0, ly0 + roof.d},
                                 std::pair{lx0 + roof.w, ly0 + roof.d}}) {
        eave = std::min(eave, fit.a * cx + fit.b * cy + fit.c);
    }
    roof.eave_height = eave;

    geo::SceneBuilder scene(dsm.width() * cs, dsm.height() * cs, 0.0);
    scene.add_roof(std::move(roof));

    if (origin_out) *origin_out = {dsm.origin_x(), dsm.origin_y()};

    // Rebase the mosaic to the scene-local georeference (NW corner at
    // (0, extent_y), like SceneBuilder::rasterize) now that the
    // world-coordinate work — footprint mask, plane fit — is done: the
    // pipeline's area extraction addresses the raster in that frame.
    geo::Raster local(dsm.width(), dsm.height(), cs, 0.0, 0.0,
                      dsm.height() * cs);
    local.grid() = std::move(dsm.grid());
    local.set_nodata(dsm.nodata());

    return core::RoofScenario{
        record.id, std::move(scene), 0,
        std::make_shared<const geo::Raster>(std::move(local)),
        std::make_shared<const pvfp::Grid2D<unsigned char>>(
            std::move(mask))};
}

RoofRegistry RoofRegistry::load(const std::string& path) {
    const auto dot = path.find_last_of('.');
    std::string ext = dot == std::string::npos ? "" : path.substr(dot);
    std::transform(ext.begin(), ext.end(), ext.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return ext == ".json" ? load_json(path) : load_csv(path);
}

RoofRegistry RoofRegistry::load_csv(const std::string& path) {
    const CsvTable table = CsvTable::read_file(path);
    for (const char* required : {"id", "min_x", "min_y", "max_x", "max_y"})
        check_io(table.has_column(required),
                 "roof_registry: CSV index misses column '" +
                     std::string(required) + "'");
    const bool has_lat = table.has_column("lat") && table.has_column("lon");
    const bool has_poly = table.has_column("polygon");

    RoofRegistry registry;
    registry.records_.reserve(table.row_count());
    for (std::size_t r = 0; r < table.row_count(); ++r) {
        RoofRecord record;
        record.id = table.cell(r, table.column("id"));
        record.bbox = {table.cell_as_double(r, "min_x"),
                       table.cell_as_double(r, "min_y"),
                       table.cell_as_double(r, "max_x"),
                       table.cell_as_double(r, "max_y")};
        if (has_lat) {
            const std::string& lat = table.cell(r, table.column("lat"));
            const std::string& lon = table.cell(r, table.column("lon"));
            if (!lat.empty() && !lon.empty()) {
                record.has_location = true;
                record.latitude_deg = table.cell_as_double(r, "lat");
                record.longitude_deg = table.cell_as_double(r, "lon");
            }
        }
        if (has_poly) {
            const std::string& poly = table.cell(r, table.column("polygon"));
            if (!poly.empty())
                record.polygon = parse_polygon_field(poly, record.id);
        }
        registry.records_.push_back(std::move(record));
    }
    registry.validate();
    return registry;
}

RoofRegistry RoofRegistry::load_json(const std::string& path) {
    std::ifstream is(path);
    check_io(is.good(), "roof_registry: cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const JsonValue root = JsonValue::parse(buffer.str());
    check_io(root.is_array(),
             "roof_registry: JSON index root must be an array");

    RoofRegistry registry;
    registry.records_.reserve(root.as_array().size());
    for (const JsonValue& item : root.as_array()) {
        RoofRecord record;
        record.id = item.at("id").as_string();
        const auto& bbox = item.at("bbox").as_array();
        check_io(bbox.size() == 4,
                 "roof_registry: bbox of roof '" + record.id +
                     "' must have 4 numbers");
        record.bbox = {bbox[0].as_number(), bbox[1].as_number(),
                       bbox[2].as_number(), bbox[3].as_number()};
        const JsonValue* lat = item.find("lat");
        const JsonValue* lon = item.find("lon");
        if (lat && lon && !lat->is_null() && !lon->is_null()) {
            record.has_location = true;
            record.latitude_deg = lat->as_number();
            record.longitude_deg = lon->as_number();
        }
        if (const JsonValue* poly = item.find("polygon");
            poly && !poly->is_null()) {
            for (const JsonValue& vertex : poly->as_array()) {
                const auto& xy = vertex.as_array();
                check_io(xy.size() == 2,
                         "roof_registry: polygon vertex of roof '" +
                             record.id + "' must be [x, y]");
                record.polygon.push_back(
                    {xy[0].as_number(), xy[1].as_number()});
            }
            check_io(record.polygon.size() >= 3,
                     "roof_registry: polygon of roof '" + record.id +
                         "' needs >= 3 vertices");
        }
        registry.records_.push_back(std::move(record));
    }
    registry.validate();
    return registry;
}

const RoofRecord& RoofRegistry::record(long i) const {
    check_arg(i >= 0 && i < size(), "roof_registry: record out of range");
    return records_[static_cast<std::size_t>(i)];
}

void RoofRegistry::validate() const {
    check_io(!records_.empty(), "roof_registry: index holds no roofs");
    std::set<std::string> ids;
    for (const RoofRecord& record : records_) {
        check_io(!record.id.empty(), "roof_registry: empty roof id");
        check_io(ids.insert(record.id).second,
                 "roof_registry: duplicate roof id '" + record.id + "'");
        check_io(!record.bbox.empty(),
                 "roof_registry: degenerate bbox for roof '" + record.id +
                     "'");
    }
}

}  // namespace pvfp::gis

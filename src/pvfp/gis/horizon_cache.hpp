#pragma once
/// \file horizon_cache.hpp
/// Shared horizon macro-tile cache: compute horizon sector planes once
/// per terrain region, serve every roof whose context window overlaps it.
///
/// City runs recompute per-roof HorizonMaps from scratch even where
/// adjacent roofs' context windows cover the same terrain (the TileCache
/// already shares the raster *reads*; the marching — the dominant
/// prepare-time cost — was still per roof).  The HorizonCache partitions
/// the tile set's cell lattice into square *macro tiles* of
/// macro_cells x macro_cells cells and, on first demand, marches a whole
/// macro tile over a mosaic expanded by a halo of
/// max_distance + 2 cells, so no core cell's rays ever reach the mosaic
/// edge — the **halo contract**: a core cell's horizon is independent of
/// the mosaic extent, hence of which roof (or thread) triggered the
/// build.  A roof's HorizonMap then becomes a window view assembled from
/// the cached sector planes (HorizonMap::from_planes).
///
/// Determinism/bitwise contract:
///  * every cached plane is produced by the ordinary HorizonMap build
///    over the macro mosaic, so a window served from the cache is
///    bitwise-identical to a fresh HorizonMap built over the same mosaic
///    with the same effective parameters (pinned by
///    tests/geo/test_horizon_kernels);
///  * entry values are a pure function of (macro index, tile content,
///    HorizonOptions) — eviction, rebuild order, and thread count can
///    never change a byte of any served window.
///
/// Entries are keyed on the macro index plus a content fingerprint of
/// the contributing tiles (FNV-1a over each intersecting tile's decoded
/// heights, memoized per path) and the effective HorizonOptions + march
/// distance, so a changed tile self-invalidates.  Residency follows the
/// TileCache patterns: per-key in-flight build dedup (concurrent
/// requesters of one macro tile march it once and share the planes) and
/// LRU eviction under a byte budget.
///
/// NODATA cells of a macro mosaic are backfilled with the mosaic's
/// minimum data height (the make_scenario convention; 0 when the mosaic
/// holds no data at all) before marching — per macro tile, hence still
/// content-pure.

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <unordered_map>
#include <vector>

#include "pvfp/geo/horizon.hpp"
#include "pvfp/gis/tile_index.hpp"

namespace pvfp::gis {

struct HorizonCacheOptions {
    /// Effective horizon parameters of the run (uniform max_distance —
    /// run_city's shared mode replaces the per-roof cap with this).
    geo::HorizonOptions horizon{};
    /// Macro tile edge length [cells].  Larger tiles amortize the halo
    /// marching over more roofs; smaller tiles keep residency granular.
    int macro_cells = 192;
    /// LRU byte budget over the resident sector planes.
    std::size_t byte_budget = 256ull << 20;
};

struct HorizonCacheStats {
    std::size_t hits = 0;        ///< macro lookups served resident
    std::size_t misses = 0;      ///< macro builds initiated
    std::size_t joins = 0;       ///< waits on another thread's build
    std::size_t evictions = 0;   ///< entries dropped for the budget
    std::size_t bytes = 0;       ///< resident plane bytes
};

/// Thread-safe shared horizon plane cache over one TileIndex.
class HorizonCache {
public:
    /// \p tile_cache serves the mosaic reads (may be null: uncached).
    /// The referenced index/cache must outlive the HorizonCache.
    HorizonCache(const TileIndex& tiles, TileCache* tile_cache,
                 const HorizonCacheOptions& options);

    /// Assemble the HorizonMap of the window whose north-west corner
    /// sits at world (\p origin_x, \p origin_y) and spans \p w x \p h
    /// lattice cells.  (\p x0, \p y0) become the returned map's window
    /// origin (the caller's placement-area coordinates).  The corner
    /// must sit on the tile lattice (checked).
    geo::HorizonMap window(double origin_x, double origin_y, int x0, int y0,
                           int w, int h);

    const HorizonCacheOptions& options() const { return options_; }
    HorizonCacheStats stats() const;
    std::size_t bytes_used() const;

    /// Drop least-recently-used entries until resident bytes <= \p limit
    /// (serve budget integration).  Never interrupts an in-flight build.
    void shrink_to(std::size_t limit);

    /// Drop every resident entry and content memo (serve reload).
    void clear();

private:
    struct Planes {
        int w = 0;
        int h = 0;
        int sectors = 0;
        std::vector<float> angles;  ///< sector-major over the core cells
        std::vector<float> svf;
        std::size_t bytes() const {
            return (angles.size() + svf.size()) * sizeof(float);
        }
    };
    struct InFlight {
        std::mutex mutex;
        std::condition_variable done_cv;
        bool done = false;
        std::shared_ptr<const Planes> result;
        std::exception_ptr error;
    };
    using MacroKey = std::pair<long, long>;
    struct Entry {
        MacroKey key;
        std::uint64_t content_key = 0;
        std::shared_ptr<const Planes> planes;
    };

    std::shared_ptr<const Planes> macro_planes(long mx, long my);
    std::shared_ptr<const Planes> build_macro(long mx, long my) const;
    std::uint64_t content_key(long mx, long my);
    std::uint64_t tile_content_hash(const TileInfo& tile);
    WorldRect macro_core_rect(long mx, long my) const;
    void evict_over_budget_locked();

    const TileIndex& tiles_;
    TileCache* tile_cache_;
    HorizonCacheOptions options_;
    double halo_m_ = 0.0;
    std::uint64_t options_key_ = 0;

    mutable std::mutex mutex_;
    std::list<Entry> lru_;  ///< front = most recently used
    std::map<MacroKey, std::list<Entry>::iterator> index_;
    std::map<MacroKey, std::shared_ptr<InFlight>> in_flight_;
    std::unordered_map<std::string, std::uint64_t> tile_hash_memo_;
    std::size_t bytes_ = 0;
    HorizonCacheStats stats_;
};

}  // namespace pvfp::gis

#include "pvfp/gis/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "pvfp/util/error.hpp"

namespace pvfp::gis {

namespace {
constexpr int kMaxDepth = 128;
}  // namespace

/// Recursive-descent parser over a string_view cursor.
class JsonParser {
public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonValue parse_document() {
        JsonValue v = parse_value(0);
        skip_ws();
        check_io(pos_ == text_.size(), "json: trailing garbage after value");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw IoError("json: " + what + " at offset " +
                      std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
            else break;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue parse_value(int depth) {
        if (depth > kMaxDepth) fail("nesting too deep");
        skip_ws();
        const char c = peek();
        JsonValue v;
        switch (c) {
        case '{': {
            v.type_ = JsonValue::Type::Object;
            ++pos_;
            skip_ws();
            if (peek() == '}') { ++pos_; return v; }
            for (;;) {
                skip_ws();
                if (peek() != '"') fail("expected object key string");
                std::string key = parse_string_body();
                skip_ws();
                expect(':');
                v.object_.emplace_back(std::move(key),
                                       parse_value(depth + 1));
                skip_ws();
                if (peek() == ',') { ++pos_; continue; }
                expect('}');
                return v;
            }
        }
        case '[': {
            v.type_ = JsonValue::Type::Array;
            ++pos_;
            skip_ws();
            if (peek() == ']') { ++pos_; return v; }
            for (;;) {
                v.array_.push_back(parse_value(depth + 1));
                skip_ws();
                if (peek() == ',') { ++pos_; continue; }
                expect(']');
                return v;
            }
        }
        case '"':
            v.type_ = JsonValue::Type::String;
            v.string_ = parse_string_body();
            return v;
        case 't':
            if (!consume_literal("true")) fail("bad literal");
            v.type_ = JsonValue::Type::Bool;
            v.bool_ = true;
            return v;
        case 'f':
            if (!consume_literal("false")) fail("bad literal");
            v.type_ = JsonValue::Type::Bool;
            v.bool_ = false;
            return v;
        case 'n':
            if (!consume_literal("null")) fail("bad literal");
            v.type_ = JsonValue::Type::Null;
            return v;
        default:
            return parse_number();
        }
    }

    /// Cursor sits on the opening quote.
    std::string parse_string_body() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') { out += c; continue; }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': append_utf8(parse_hex4(), out); break;
            default: fail("bad escape");
            }
        }
    }

    unsigned parse_hex4() {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) fail("truncated \\u escape");
            const char c = text_[pos_++];
            code <<= 4;
            if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
            else fail("bad \\u escape digit");
        }
        return code;
    }

    /// BMP code point to UTF-8 (surrogate pairs are combined when the
    /// low half follows; a lone surrogate is rejected).
    void append_utf8(unsigned code, std::string& out) {
        if (code >= 0xD800 && code <= 0xDBFF) {
            if (!(pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                  text_[pos_ + 1] == 'u'))
                fail("lone high surrogate");
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("lone low surrogate");
        }
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    JsonValue parse_number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        auto digits = [&] {
            std::size_t n = 0;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0) fail("bad number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (digits() == 0) fail("bad number fraction");
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (digits() == 0) fail("bad number exponent");
        }
        const std::string token(text_.substr(start, pos_ - start));
        JsonValue v;
        v.type_ = JsonValue::Type::Number;
        v.number_ = std::strtod(token.c_str(), nullptr);
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
    return JsonParser(text).parse_document();
}

bool JsonValue::as_bool() const {
    check_io(type_ == Type::Bool, "json: value is not a boolean");
    return bool_;
}

double JsonValue::as_number() const {
    check_io(type_ == Type::Number, "json: value is not a number");
    return number_;
}

const std::string& JsonValue::as_string() const {
    check_io(type_ == Type::String, "json: value is not a string");
    return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
    check_io(type_ == Type::Array, "json: value is not an array");
    return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object()
    const {
    check_io(type_ == Type::Object, "json: value is not an object");
    return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
    if (type_ != Type::Object) return nullptr;
    for (const auto& [k, v] : object_)
        if (k == key) return &v;
    return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
    const JsonValue* v = find(key);
    check_io(v != nullptr, "json: missing key '" + key + "'");
    return *v;
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

}  // namespace pvfp::gis

#include "pvfp/gis/city_runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "pvfp/gis/horizon_cache.hpp"
#include "pvfp/gis/json.hpp"
#include "pvfp/gis/jsonl.hpp"
#include "pvfp/obs/metrics.hpp"
#include "pvfp/obs/trace.hpp"
#include "pvfp/util/csv.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/parallel.hpp"

namespace pvfp::gis {

namespace {

std::string num(double v, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    return buf;
}

}  // namespace

std::string roof_result_to_jsonl(const RoofResult& result) {
    std::string line = "{\"id\":\"" + json_escape(result.id) + "\"";
    if (!result.ok) {
        line += ",\"status\":\"error\",\"error\":\"" +
                json_escape(result.error) + "\"}";
        return line;
    }
    line += ",\"status\":\"ok\"";
    line += ",\"valid_cells\":" + std::to_string(result.valid_cells);
    line += ",\"area_w\":" + std::to_string(result.area_w);
    line += ",\"area_h\":" + std::to_string(result.area_h);
    line += ",\"tilt_deg\":" + num(result.tilt_deg, 4);
    line += ",\"azimuth_deg\":" + num(result.azimuth_deg, 4);
    line += ",\"fit_rmse_m\":" + num(result.fit_rmse_m, 5);
    line += ",\"topologies\":[";
    for (std::size_t t = 0; t < result.topologies.size(); ++t) {
        const RoofTopologyResult& topo = result.topologies[t];
        if (t) line += ',';
        line += "{\"series\":" + std::to_string(topo.topology.series);
        line += ",\"strings\":" + std::to_string(topo.topology.strings);
        line += ",\"proposed_kwh\":" + num(topo.proposed_kwh, 6);
        line += ",\"compact_kwh\":" + num(topo.compact_kwh, 6);
        line += ",\"improvement_pct\":" + num(topo.improvement_pct, 6);
        line += '}';
    }
    line += "],\"best_kwh\":" + num(result.best_kwh, 6) + "}";
    return line;
}

RoofResult roof_result_from_jsonl(const std::string& line) {
    const JsonValue v = JsonValue::parse(line);
    RoofResult result;
    result.id = v.at("id").as_string();
    const std::string& status = v.at("status").as_string();
    if (status == "error") {
        result.ok = false;
        result.error = v.at("error").as_string();
        return result;
    }
    check_io(status == "ok", "run_city: unknown result status '" + status +
                                 "' for roof '" + result.id + "'");
    result.ok = true;
    result.valid_cells = static_cast<int>(v.at("valid_cells").as_number());
    result.area_w = static_cast<int>(v.at("area_w").as_number());
    result.area_h = static_cast<int>(v.at("area_h").as_number());
    result.tilt_deg = v.at("tilt_deg").as_number();
    result.azimuth_deg = v.at("azimuth_deg").as_number();
    result.fit_rmse_m = v.at("fit_rmse_m").as_number();
    for (const JsonValue& t : v.at("topologies").as_array()) {
        RoofTopologyResult topo;
        topo.topology.series = static_cast<int>(t.at("series").as_number());
        topo.topology.strings = static_cast<int>(t.at("strings").as_number());
        topo.proposed_kwh = t.at("proposed_kwh").as_number();
        topo.compact_kwh = t.at("compact_kwh").as_number();
        topo.improvement_pct = t.at("improvement_pct").as_number();
        result.topologies.push_back(topo);
    }
    result.best_kwh = v.at("best_kwh").as_number();
    return result;
}

CityRunSummary run_city(const TileIndex& tiles, const RoofRegistry& registry,
                        const CityRunOptions& options) {
    check_arg(!options.jsonl_path.empty(),
              "run_city: jsonl_path is required");
    check_arg(!options.topologies.empty(), "run_city: no topologies");
    check_arg(options.shard_size >= 1, "run_city: shard_size must be >= 1");

    core::ScenarioConfig base = options.config;
    base.cell_size = tiles.cell_size();
    base.shared_sky = nullptr;

    const long total = registry.size();
    CityRunSummary summary;
    summary.total = total;

    const auto location_of = [&](const RoofRecord& rec) {
        solar::Location loc = base.location;
        if (rec.has_location) {
            loc.latitude_deg = rec.latitude_deg;
            loc.longitude_deg = rec.longitude_deg;
        }
        return loc;
    };

    // ---- Resume: keep the longest valid prefix of the stream. -----------
    // Shards append whole, in registry order, so a valid stream is always
    // line k == record k; anything else (a torn final line from a kill
    // mid-write — even one that still looks string-like because the cut
    // landed inside an escaped JSON string — stale ids after an index
    // edit, CRLF artifacts of a transferred stream) is normalized or
    // recomputed by the shared prefix scanner, the same code path the
    // serving daemon's request-log replay trusts.
    std::vector<RoofResult> kept;
    if (options.resume) {
        read_jsonl_prefix(
            options.jsonl_path,
            [&](long k, const std::string& line) {
                RoofResult r;
                try {
                    r = roof_result_from_jsonl(line);
                } catch (const std::exception&) {
                    return false;
                }
                if (r.id != registry.record(k).id) return false;
                r.from_resume = true;
                kept.push_back(std::move(r));
                return true;
            },
            total);
    }
    summary.resumed = static_cast<long>(kept.size());

    // Rewrite the stream as exactly the kept prefix, then append.
    {
        std::ofstream os(options.jsonl_path, std::ios::trunc);
        check_io(os.good(),
                 "run_city: cannot write '" + options.jsonl_path + "'");
        for (const RoofResult& r : kept)
            os << roof_result_to_jsonl(r) << '\n';
        check_io(os.good(), "run_city: JSONL rewrite failed");
    }

    // ---- Shared sky: one artifact per distinct site, built lazily per
    // shard and dropped when the next shard stops using it, so a
    // per-building-coordinates index cannot accumulate one multi-MB
    // artifact per roof (memory stays bounded by the shard's distinct
    // sites; a single-site city builds exactly one artifact total).
    std::map<std::pair<double, double>,
             std::shared_ptr<const solar::SharedSkyArtifact>>
        artifacts;
    const auto prepare_shard_artifacts = [&](long begin, long end) {
        std::set<std::pair<double, double>> needed;
        for (long i = begin; i < end; ++i) {
            const solar::Location loc = location_of(registry.record(i));
            needed.insert({loc.latitude_deg, loc.longitude_deg});
        }
        for (auto it = artifacts.begin(); it != artifacts.end();)
            it = needed.count(it->first) ? std::next(it)
                                         : artifacts.erase(it);
        for (const auto& key : needed) {
            if (artifacts.find(key) != artifacts.end()) continue;
            const solar::Location loc{key.first, key.second,
                                      base.location.timezone_hours};
            artifacts.emplace(
                key, solar::make_shared_sky(
                         loc, base.grid,
                         weather::generate_synthetic_weather(
                             loc, base.grid, base.weather),
                         base.field.sky_model));
        }
    };

    TileCache cache(options.tile_cache_tiles);
    std::unique_ptr<HorizonCache> owned_horizon_cache;
    HorizonCache* horizon_cache = options.shared_horizon_cache;
    if (horizon_cache != nullptr) {
        // An injected cache carries planes from previous runs; serving
        // them is only sound if this run would march them identically.
        const geo::HorizonOptions& have = horizon_cache->options().horizon;
        const geo::HorizonOptions& want = base.horizon;
        check_arg(have.azimuth_sectors == want.azimuth_sectors &&
                      have.max_distance == want.max_distance &&
                      have.step_factor == want.step_factor &&
                      have.step_growth == want.step_growth &&
                      have.max_step_factor == want.max_step_factor &&
                      have.observer_offset == want.observer_offset,
                  "run_city: shared_horizon_cache options differ from "
                  "config.horizon");
    } else if (options.share_horizon) {
        HorizonCacheOptions hc;
        hc.horizon = base.horizon;
        hc.byte_budget = options.horizon_cache_mb << 20;
        owned_horizon_cache = std::make_unique<HorizonCache>(tiles, &cache, hc);
        horizon_cache = owned_horizon_cache.get();
    }
    summary.results = std::move(kept);
    summary.results.reserve(static_cast<std::size_t>(total));

    std::ofstream out(options.jsonl_path, std::ios::app);
    check_io(out.good(),
             "run_city: cannot append to '" + options.jsonl_path + "'");

    // ---- Stream shards: load -> prepare -> place -> free. ---------------
    for (long shard_begin = summary.resumed; shard_begin < total;
         shard_begin += options.shard_size) {
        const long shard_end =
            std::min(total, shard_begin + static_cast<long>(options.shard_size));
        const long n = shard_end - shard_begin;
        std::vector<RoofResult> shard(static_cast<std::size_t>(n));
        if (options.share_sky)
            prepare_shard_artifacts(shard_begin, shard_end);

        const auto process = [&](long k) {
            PVFP_TRACE_SPAN("city.roof");
            const RoofRecord& rec = registry.record(shard_begin + k);
            RoofResult& r = shard[static_cast<std::size_t>(k)];
            r.id = rec.id;
            try {
                RoofPlaneFit fit;
                WindowOrigin origin;
                const core::RoofScenario scenario = make_scenario(
                    rec, tiles, options.build, &cache, &fit, &origin);
                core::ScenarioConfig config = base;
                config.location = location_of(rec);
                if (horizon_cache) {
                    // Shared planes answer the full run-uniform
                    // max_distance over real halo terrain, so the
                    // window cap below does not apply.  The closure
                    // maps the scene-local window back onto the tile
                    // lattice via the pre-rebase world origin.
                    HorizonCache* hc = horizon_cache;
                    const double wx = origin.x;
                    const double wy = origin.y;
                    const double cs = tiles.cell_size();
                    config.horizon_provider =
                        [hc, wx, wy, cs](const geo::Raster&, int x0, int y0,
                                         int w, int h,
                                         const geo::HorizonOptions&)
                        -> std::optional<geo::HorizonMap> {
                        return hc->window(wx + x0 * cs, wy - y0 * cs, x0,
                                          y0, w, h);
                    };
                } else {
                    // The mosaic holds real heights only out to the
                    // context margin; marching the horizon rays further
                    // would sample the raster's clamped edge values as
                    // if they were terrain.  Bound the march by what
                    // the window can actually answer (never extend a
                    // tighter user bound).
                    config.horizon.max_distance = std::min(
                        config.horizon.max_distance,
                        options.build.context_margin_m +
                            std::hypot(rec.bbox.width(),
                                       rec.bbox.height()));
                }
                if (options.share_sky) {
                    config.shared_sky =
                        artifacts.at({config.location.latitude_deg,
                                      config.location.longitude_deg});
                }
                const core::PreparedScenario prepared =
                    core::prepare_scenario(scenario, config);
                r.valid_cells = prepared.area.valid_count;
                r.area_w = prepared.area.width;
                r.area_h = prepared.area.height;
                r.tilt_deg = fit.tilt_deg;
                r.azimuth_deg = fit.azimuth_deg;
                r.fit_rmse_m = fit.rmse_m;
                for (const pv::Topology& topology : options.topologies) {
                    const core::PlacementComparison cmp =
                        core::compare_placements(prepared, topology,
                                                 options.greedy,
                                                 options.eval);
                    RoofTopologyResult t;
                    t.topology = topology;
                    t.proposed_kwh = cmp.proposed_eval.energy_kwh;
                    t.compact_kwh = cmp.traditional_eval.energy_kwh;
                    t.improvement_pct = cmp.improvement() * 100.0;
                    r.best_kwh = std::max(r.best_kwh, t.proposed_kwh);
                    r.topologies.push_back(t);
                }
                r.ok = true;
            } catch (const std::exception& e) {
                // One bad roof (footprint off the tiles, nothing
                // placeable, infeasible topology) must not sink a
                // 10,000-roof run: record and continue.
                RoofResult failed;
                failed.id = rec.id;
                failed.error = e.what();
                r = std::move(failed);
            }
        };

        // Same policy as run_scenarios: one roof per task when the shard
        // is at least pool-wide, else let each roof's inner loops fan
        // out.  Either way the per-roof results are identical.
        {
            PVFP_TRACE_SPAN("city.shard");
            if (n > 1 && n >= thread_count()) {
                parallel_for(0, n, 1, [&](long b, long e) {
                    SerialScope serial;
                    for (long k = b; k < e; ++k) process(k);
                });
            } else {
                for (long k = 0; k < n; ++k) process(k);
            }
        }

        for (RoofResult& r : shard) {
            const std::string line = roof_result_to_jsonl(r);
            out << line << '\n';
            // Store the round-tripped record: every consumer (ranking,
            // summary CSV, resumed reruns) then sees the exact same
            // fixed-precision values whether a roof was computed now or
            // parsed back from a previous stream.
            RoofResult stored = roof_result_from_jsonl(line);
            if (!stored.ok) ++summary.failed;
            ++summary.processed;
            summary.results.push_back(std::move(stored));
        }
        out.flush();
        check_io(out.good(), "run_city: JSONL append failed");
    }

    for (long i = 0; i < summary.resumed; ++i)
        if (!summary.results[static_cast<std::size_t>(i)].ok)
            ++summary.failed;

    // ---- City-wide ranking. ---------------------------------------------
    for (std::size_t i = 0; i < summary.results.size(); ++i)
        if (summary.results[i].ok) summary.ranking.push_back(i);
    std::sort(summary.ranking.begin(), summary.ranking.end(),
              [&](std::size_t a, std::size_t b) {
                  const RoofResult& ra = summary.results[a];
                  const RoofResult& rb = summary.results[b];
                  if (ra.best_kwh != rb.best_kwh)
                      return ra.best_kwh > rb.best_kwh;
                  return ra.id < rb.id;
              });

    if (!options.summary_csv_path.empty()) {
        CsvTable csv({"rank", "id", "best_kwh", "valid_cells", "area_w",
                      "area_h", "tilt_deg", "azimuth_deg"});
        for (std::size_t i = 0; i < summary.ranking.size(); ++i) {
            const RoofResult& r = summary.results[summary.ranking[i]];
            csv.add_row({std::to_string(i + 1), r.id, num(r.best_kwh, 6),
                         std::to_string(r.valid_cells),
                         std::to_string(r.area_w), std::to_string(r.area_h),
                         num(r.tilt_deg, 4), num(r.azimuth_deg, 4)});
        }
        csv.write_file(options.summary_csv_path);
    }

    summary.tile_cache_hits = cache.hits();
    summary.tile_cache_misses = cache.misses();
    if (horizon_cache) {
        const HorizonCacheStats hs = horizon_cache->stats();
        summary.horizon_cache_hits = hs.hits + hs.joins;
        summary.horizon_cache_misses = hs.misses;
        summary.horizon_cache_evictions = hs.evictions;
        summary.horizon_cache_bytes = hs.bytes;
    }

    // Re-export the run's component stats through the global registry so
    // one snapshot covers the whole process.  Counts are pure functions
    // of the workload (joins count as hits in the horizon cache), so
    // they are thread-count-invariant; byte totals are point-in-time
    // state and go to gauges.  Registration is the cold path — once per
    // run, not per roof.
    if (obs::enabled()) {
        obs::MetricsRegistry& reg = obs::registry();
        reg.counter("city.roofs_processed")
            .add(static_cast<std::uint64_t>(summary.processed));
        reg.counter("city.roofs_failed")
            .add(static_cast<std::uint64_t>(summary.failed));
        reg.counter("city.roofs_resumed")
            .add(static_cast<std::uint64_t>(summary.resumed));
        reg.counter("gis.tile_cache.hits").add(cache.hits());
        reg.counter("gis.tile_cache.misses").add(cache.misses());
        reg.gauge("gis.tile_cache.bytes")
            .set(static_cast<double>(cache.bytes()));
        if (horizon_cache) {
            const HorizonCacheStats hs = horizon_cache->stats();
            reg.counter("gis.horizon_cache.hits").add(hs.hits);
            reg.counter("gis.horizon_cache.joins").add(hs.joins);
            reg.counter("gis.horizon_cache.misses").add(hs.misses);
            reg.counter("gis.horizon_cache.evictions").add(hs.evictions);
            reg.gauge("gis.horizon_cache.bytes")
                .set(static_cast<double>(hs.bytes));
        }
    }
    return summary;
}

}  // namespace pvfp::gis

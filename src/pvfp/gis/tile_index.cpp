#include "pvfp/gis/tile_index.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <filesystem>

#include "pvfp/util/error.hpp"

namespace pvfp::gis {

namespace {

bool has_asc_extension(const std::filesystem::path& p) {
    std::string ext = p.extension().string();
    std::transform(ext.begin(), ext.end(), ext.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return ext == ".asc";
}

/// Offset of \p value from \p ref in cells; throws when it is not a
/// whole number of cells (tile off the common lattice).
long lattice_offset(double value, double ref, double cell_size,
                    const std::string& path) {
    const double cells = (value - ref) / cell_size;
    const double rounded = std::round(cells);
    check_io(std::abs(cells - rounded) <= 1e-6,
             "tile_index: tile '" + path +
                 "' is not aligned to the common cell lattice");
    return static_cast<long>(rounded);
}

}  // namespace

TileCache::TileCache(std::size_t capacity, Loader loader)
    : capacity_(capacity == 0 ? 1 : capacity),
      loader_(loader ? std::move(loader) : [](const std::string& p) {
          return geo::read_asc_grid_file(p);
      }) {}

std::shared_ptr<const geo::Raster> TileCache::load(const std::string& path) {
    std::shared_ptr<InFlight> flight;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = index_.find(path);
        if (it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            ++hits_;
            return it->second->second;
        }
        const auto fl = in_flight_.find(path);
        if (fl != in_flight_.end()) {
            flight = fl->second;  // join the decode already running
            ++hits_;
        } else {
            flight = std::make_shared<InFlight>();
            in_flight_.emplace(path, flight);
            owner = true;
            ++misses_;
        }
    }

    if (!owner) {
        // Second requester of the *same* tile: wait on this tile's
        // entry, leaving the cache mutex free for other tiles' loads.
        std::unique_lock<std::mutex> lock(flight->mutex);
        flight->done_cv.wait(lock, [&] { return flight->done; });
        if (flight->error) std::rethrow_exception(flight->error);
        return flight->result;
    }

    // Owner decodes with no lock held: concurrent misses on different
    // tiles overlap their parses fully.
    std::shared_ptr<const geo::Raster> raster;
    std::exception_ptr error;
    try {
        raster = std::make_shared<const geo::Raster>(loader_(path));
    } catch (...) {
        error = std::current_exception();
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        in_flight_.erase(path);
        if (!error) {
            lru_.emplace_front(path, raster);
            index_[path] = lru_.begin();
            while (lru_.size() > capacity_) {
                index_.erase(lru_.back().first);
                lru_.pop_back();
            }
        }
    }
    {
        std::lock_guard<std::mutex> lock(flight->mutex);
        flight->done = true;
        flight->result = raster;
        flight->error = error;
    }
    flight->done_cv.notify_all();
    if (error) std::rethrow_exception(error);
    return raster;
}

std::size_t TileCache::hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t TileCache::misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::size_t TileCache::bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const Entry& entry : lru_)
        total += static_cast<std::size_t>(entry.second->width()) *
                 static_cast<std::size_t>(entry.second->height()) *
                 sizeof(double);
    return total;
}

TileIndex TileIndex::scan(const std::string& directory) {
    namespace fs = std::filesystem;
    std::error_code ec;
    check_io(fs::is_directory(directory, ec),
             "tile_index: '" + directory + "' is not a directory");

    std::vector<std::string> paths;
    for (const auto& entry : fs::directory_iterator(directory, ec)) {
        if (entry.is_regular_file() && has_asc_extension(entry.path()))
            paths.push_back(entry.path().string());
    }
    check_io(!ec, "tile_index: cannot read directory '" + directory + "'");
    check_io(!paths.empty(),
             "tile_index: no .asc tiles in '" + directory + "'");
    std::sort(paths.begin(), paths.end());

    TileIndex index;
    index.tiles_.reserve(paths.size());
    for (const std::string& path : paths)
        index.tiles_.push_back({path, geo::read_asc_header_file(path)});

    const geo::AscHeader& first = index.tiles_.front().header;
    index.cell_size_ = first.cellsize;
    index.ref_x_ = first.xllcorner;
    index.ref_y_ = first.yllcorner;
    index.extent_ = index.tiles_.front().extent();
    for (const TileInfo& tile : index.tiles_) {
        check_io(std::abs(tile.header.cellsize - index.cell_size_) <=
                     1e-9 * index.cell_size_,
                 "tile_index: tile '" + tile.path +
                     "' cell size differs from the set's");
        lattice_offset(tile.header.xllcorner, index.ref_x_,
                       index.cell_size_, tile.path);
        lattice_offset(tile.header.yllcorner, index.ref_y_,
                       index.cell_size_, tile.path);
        const WorldRect e = tile.extent();
        index.extent_.x0 = std::min(index.extent_.x0, e.x0);
        index.extent_.y0 = std::min(index.extent_.y0, e.y0);
        index.extent_.x1 = std::max(index.extent_.x1, e.x1);
        index.extent_.y1 = std::max(index.extent_.y1, e.y1);
    }
    return index;
}

geo::Raster TileIndex::read_window(const WorldRect& rect,
                                   TileCache* cache) const {
    check_arg(!rect.empty(), "tile_index: empty window rectangle");
    const double cs = cell_size_;

    // Snap the window outward to the common lattice.  The epsilon keeps
    // an edge that *is* a lattice line (the overwhelmingly common case:
    // windows derived from tile/bbox corners) from absorbing one extra
    // cell row through floating-point dust.
    const double eps = 1e-6;
    const long i0 = static_cast<long>(std::floor((rect.x0 - ref_x_) / cs + eps));
    const long i1 = static_cast<long>(std::ceil((rect.x1 - ref_x_) / cs - eps));
    const long j0 = static_cast<long>(std::floor((rect.y0 - ref_y_) / cs + eps));
    const long j1 = static_cast<long>(std::ceil((rect.y1 - ref_y_) / cs - eps));
    const long w = i1 - i0;
    const long h = j1 - j0;
    check_arg(w > 0 && h > 0, "tile_index: degenerate window");
    check_arg(w * h <= 64LL * 1024 * 1024,
              "tile_index: window too large (>64M cells)");

    geo::Raster out(static_cast<int>(w), static_cast<int>(h), cs,
                    geo::kDefaultNoData, ref_x_ + i0 * cs,
                    ref_y_ + j1 * cs);
    out.set_nodata(geo::kDefaultNoData);

    // j counts lattice rows northward from the reference; raster rows
    // count southward from the north edge.
    for (const TileInfo& tile : tiles_) {
        if (!tile.extent().intersects(
                {ref_x_ + i0 * cs, ref_y_ + j0 * cs, ref_x_ + i1 * cs,
                 ref_y_ + j1 * cs}))
            continue;
        const long ti0 = lattice_offset(tile.header.xllcorner, ref_x_, cs,
                                        tile.path);
        const long tj0 = lattice_offset(tile.header.yllcorner, ref_y_, cs,
                                        tile.path);
        const long ci0 = std::max(i0, ti0);
        const long ci1 = std::min(i1, ti0 + tile.header.ncols);
        const long cj0 = std::max(j0, tj0);
        const long cj1 = std::min(j1, tj0 + tile.header.nrows);
        if (ci0 >= ci1 || cj0 >= cj1) continue;

        std::shared_ptr<const geo::Raster> loaded;
        geo::Raster direct;
        const geo::Raster* src = nullptr;
        if (cache) {
            loaded = cache->load(tile.path);
            src = loaded.get();
        } else {
            direct = geo::read_asc_grid_file(tile.path);
            src = &direct;
        }
        check_io(src->width() == tile.header.ncols &&
                     src->height() == tile.header.nrows,
                 "tile_index: tile '" + tile.path +
                     "' changed size since the scan");

        for (long j = cj0; j < cj1; ++j) {
            const int oy = static_cast<int>(j1 - 1 - j);
            const int sy = static_cast<int>(tj0 + tile.header.nrows - 1 - j);
            for (long i = ci0; i < ci1; ++i) {
                const int ox = static_cast<int>(i - i0);
                const int sx = static_cast<int>(i - ti0);
                if (out(ox, oy) != out.nodata()) continue;  // first wins
                const double v = (*src)(sx, sy);
                if (v == src->nodata()) continue;  // source gap stays NODATA
                out(ox, oy) = v;
            }
        }
    }
    return out;
}

}  // namespace pvfp::gis

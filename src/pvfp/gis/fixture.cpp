#include "pvfp/gis/fixture.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "pvfp/geo/asc_grid.hpp"
#include "pvfp/geo/scene.hpp"
#include "pvfp/gis/json.hpp"
#include "pvfp/util/csv.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/rng.hpp"

namespace pvfp::gis {

namespace {

std::string fmt(double v, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    return buf;
}

/// One emitted index record, in fixture-local coordinates (converted to
/// world on write).
struct LocalRecord {
    std::string id;
    double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;  // local, y SOUTHWARD
    bool cut_corner = false;  ///< emit a 5-vertex polygon missing one corner
    int lot = 0;              ///< hosting lot (drives feeder attachment)
};

}  // namespace

CityFixture generate_city_fixture(const std::string& directory,
                                  const CityFixtureOptions& options) {
    check_arg(options.roofs >= 1, "city_fixture: need at least one roof");
    check_arg(options.cell_size > 0.0, "city_fixture: bad cell size");
    check_arg(options.tile_cells >= 8, "city_fixture: tiles too small");
    check_arg(options.lot_w >= 12.0 && options.lot_d >= 10.0,
              "city_fixture: lots must fit a house (>= 12 x 10 m)");

    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(directory, ec);
    check_io(fs::is_directory(directory, ec),
             "city_fixture: cannot create '" + directory + "'");

    Rng rng(options.seed);

    // ---- Plan the lots. -------------------------------------------------
    // Each lot hosts one house; a gable house contributes two records.
    // Decide house types first so the city extent is known before any
    // geometry lands.
    struct LotPlan {
        bool gable = false;
    };
    std::vector<LotPlan> lots;
    int records_planned = 0;
    while (records_planned < options.roofs) {
        LotPlan lot;
        lot.gable =
            records_planned + 2 <= options.roofs && rng.bernoulli(0.35);
        records_planned += lot.gable ? 2 : 1;
        lots.push_back(lot);
    }
    const int n_lots = static_cast<int>(lots.size());
    const int cols = std::max(
        1, static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n_lots)))));
    const int rows = (n_lots + cols - 1) / cols;

    const double border = 6.0;  // shading context beyond the outer lots
    // Make the extent an exact multiple of the tile span so the tile cut
    // is clean; rasterize() ceils to whole cells anyway.
    const double tile_m = options.tile_cells * options.cell_size;
    const double want_x = cols * options.lot_w + 2.0 * border;
    const double want_y = rows * options.lot_d + 2.0 * border;
    const int tiles_x = static_cast<int>(std::ceil(want_x / tile_m));
    const int tiles_y = static_cast<int>(std::ceil(want_y / tile_m));
    const double extent_x = tiles_x * tile_m;
    const double extent_y = tiles_y * tile_m;

    // ---- Build the city scene. ------------------------------------------
    geo::SceneBuilder city(extent_x, extent_y, 0.0);
    std::vector<LocalRecord> records;
    records.reserve(static_cast<std::size_t>(options.roofs));

    for (int li = 0; li < n_lots; ++li) {
        const int lc = li % cols;
        const int lr = li / cols;
        const double lot_x = border + lc * options.lot_w;
        const double lot_y = border + lr * options.lot_d;

        // House plan rectangle inside the lot, jittered.
        const double house_w = rng.uniform(8.0, options.lot_w - 3.5);
        const double house_d = rng.uniform(6.5, options.lot_d - 3.0);
        const double hx =
            lot_x + rng.uniform(1.0, options.lot_w - house_w - 1.0);
        const double hy =
            lot_y + rng.uniform(1.0, options.lot_d - house_d - 1.0);
        const double eave = rng.uniform(3.0, 5.5);
        const double tilt = rng.uniform(16.0, 34.0);

        const auto emit = [&](double x0, double y0, double x1, double y1) {
            LocalRecord rec;
            // Zero-padded to 3 digits, growing naturally past 999.
            char id[32];
            std::snprintf(id, sizeof id, "roof_%03d",
                          static_cast<int>(records.size()));
            rec.id = id;
            rec.x0 = x0;
            rec.y0 = y0;
            rec.x1 = x1;
            rec.y1 = y1;
            rec.cut_corner = records.size() % 5 == 4;
            rec.lot = li;
            records.push_back(rec);
        };

        if (lots[static_cast<std::size_t>(li)].gable) {
            city.add_gable_roof("house_" + std::to_string(li), hx, hy,
                                house_w, house_d, eave, tilt);
            // South-facing plane = southern half, north-facing = northern.
            emit(hx, hy + house_d / 2.0, hx + house_w, hy + house_d);
            emit(hx, hy, hx + house_w, hy + house_d / 2.0);
        } else {
            geo::MonopitchRoof roof;
            roof.name = "house_" + std::to_string(li);
            roof.x = hx;
            roof.y = hy;
            roof.w = house_w;
            roof.d = house_d;
            roof.eave_height = eave;
            roof.tilt_deg = tilt;
            // Mostly south-ish, with east/west outliers.
            roof.azimuth_deg = rng.bernoulli(0.8)
                                   ? rng.uniform(150.0, 230.0)
                                   : rng.uniform(70.0, 290.0);
            const int roof_index = city.add_roof(roof);
            emit(hx, hy, hx + house_w, hy + house_d);

            // Decimeter surface structure on some monopitch roofs (below
            // the obstacle tolerance — texture, not encumbrance).
            if (rng.bernoulli(0.6)) {
                geo::RoofTexture texture;
                texture.undulation_amp_x = rng.uniform(0.02, 0.07);
                texture.undulation_period_x = rng.uniform(4.0, 7.0);
                texture.noise_amp = rng.uniform(0.01, 0.05);
                texture.noise_scale = rng.uniform(2.0, 4.0);
                texture.seed = static_cast<std::uint32_t>(
                    options.seed * 131 + static_cast<std::uint32_t>(li));
                city.set_roof_texture(roof_index, texture);
            }
        }

        // Encumbrances: chimney near a corner, occasional HVAC box.
        if (rng.bernoulli(0.7)) {
            const double cw = rng.uniform(0.4, 0.8);
            city.add_box({hx + rng.uniform(0.8, house_w - 1.6),
                          hy + rng.uniform(0.8, house_d - 1.6), cw, cw,
                          rng.uniform(0.8, 1.6), geo::HeightRef::Surface});
        }
        if (rng.bernoulli(0.25)) {
            city.add_box({hx + rng.uniform(1.0, house_w - 2.5),
                          hy + rng.uniform(1.0, house_d - 2.5),
                          rng.uniform(1.0, 1.8), rng.uniform(0.8, 1.4),
                          rng.uniform(0.6, 1.1), geo::HeightRef::Surface});
        }
        // Garden tree on the lot edge (external shading).
        if (rng.bernoulli(0.45)) {
            city.add_tree({lot_x + rng.uniform(0.5, options.lot_w - 0.5),
                           lot_y + rng.uniform(0.3, 1.2),
                           rng.uniform(1.4, 2.4), rng.uniform(6.0, 10.0)});
        }
    }

    // ---- Rasterize once, cut into tiles. --------------------------------
    const geo::Raster dsm = city.rasterize(options.cell_size);
    const int total_cols = dsm.width();
    const int total_rows = dsm.height();

    int tiles_written = 0;
    for (int ty = 0; ty < tiles_y; ++ty) {
        for (int tx = 0; tx < tiles_x; ++tx) {
            const int c0 = tx * options.tile_cells;
            const int r0 = ty * options.tile_cells;
            const int w = std::min(options.tile_cells, total_cols - c0);
            const int h = std::min(options.tile_cells, total_rows - r0);
            if (w <= 0 || h <= 0) continue;
            // World georeference: the scene's NW corner sits at
            // (origin_x, origin_y + extent_y).
            geo::Raster tile(w, h, options.cell_size, 0.0,
                             options.origin_x + c0 * options.cell_size,
                             options.origin_y + extent_y -
                                 r0 * options.cell_size);
            for (int y = 0; y < h; ++y)
                for (int x = 0; x < w; ++x)
                    tile(x, y) = dsm(c0 + x, r0 + y);
            char name[64];
            std::snprintf(name, sizeof name, "tile_%02d_%02d.asc", ty, tx);
            geo::write_asc_grid_file(tile,
                                     (fs::path(directory) / name).string());
            ++tiles_written;
        }
    }

    // ---- Indexes (local y southward -> world northing). ------------------
    const auto world_x = [&](double lx) { return options.origin_x + lx; };
    const auto world_y = [&](double ly) {
        return options.origin_y + extent_y - ly;
    };
    const auto polygon_of = [&](const LocalRecord& rec) {
        // Cut the NE corner: a 5-vertex polygon (world coords, CCW).
        const double cut = std::min(2.0, 0.35 * (rec.x1 - rec.x0));
        std::vector<std::array<double, 2>> poly;
        poly.push_back({world_x(rec.x0), world_y(rec.y1)});  // SW
        poly.push_back({world_x(rec.x1), world_y(rec.y1)});  // SE
        poly.push_back({world_x(rec.x1), world_y(rec.y0) - cut});
        poly.push_back({world_x(rec.x1) - cut, world_y(rec.y0)});
        poly.push_back({world_x(rec.x0), world_y(rec.y0)});  // NW
        return poly;
    };

    CityFixture fixture;
    fixture.directory = directory;
    fixture.records = static_cast<int>(records.size());
    fixture.tiles_written = tiles_written;

    CsvTable csv({"id", "min_x", "min_y", "max_x", "max_y", "lat", "lon",
                  "polygon"});
    for (const LocalRecord& rec : records) {
        std::string poly;
        if (rec.cut_corner) {
            for (const auto& [px, py] : polygon_of(rec)) {
                if (!poly.empty()) poly += ';';
                poly += fmt(px, 3) + " " + fmt(py, 3);
            }
        }
        csv.add_row({rec.id, fmt(world_x(rec.x0), 3), fmt(world_y(rec.y1), 3),
                     fmt(world_x(rec.x1), 3), fmt(world_y(rec.y0), 3),
                     "45.07", "7.69", poly});
    }
    fixture.csv_index_path = (fs::path(directory) / "index.csv").string();
    csv.write_file(fixture.csv_index_path);

    if (options.write_json_index) {
        fixture.json_index_path =
            (fs::path(directory) / "index.json").string();
        std::ofstream os(fixture.json_index_path);
        check_io(os.good(), "city_fixture: cannot write JSON index");
        os << "[\n";
        for (std::size_t i = 0; i < records.size(); ++i) {
            const LocalRecord& rec = records[i];
            os << "  {\"id\": \"" << json_escape(rec.id) << "\", \"bbox\": ["
               << fmt(world_x(rec.x0), 3) << ", " << fmt(world_y(rec.y1), 3)
               << ", " << fmt(world_x(rec.x1), 3) << ", "
               << fmt(world_y(rec.y0), 3)
               << "], \"lat\": 45.07, \"lon\": 7.69";
            if (rec.cut_corner) {
                os << ", \"polygon\": [";
                bool first = true;
                for (const auto& [px, py] : polygon_of(rec)) {
                    if (!first) os << ", ";
                    first = false;
                    os << "[" << fmt(px, 3) << ", " << fmt(py, 3) << "]";
                }
                os << "]";
            }
            os << "}" << (i + 1 < records.size() ? "," : "") << "\n";
        }
        os << "]\n";
        check_io(os.good(), "city_fixture: JSON index write failed");
    }

    // ---- Synthetic radial feeder index. ----------------------------------
    // A separate generator keeps the city stream untouched: toggling the
    // feeder index on or off must not move a single tile or index byte.
    if (options.write_feeder_index) {
        check_arg(options.lots_per_feeder >= 1,
                  "city_fixture: lots_per_feeder must be >= 1");
        Rng grid_rng(options.seed ^ 0xFEEDE12ULL);

        const int per = options.lots_per_feeder;
        const int n_feeders = (n_lots + per - 1) / per;
        const auto feeder_of_lot = [&](int lot) { return lot / per; };
        const auto feeder_id = [](int f) {
            char id[32];
            std::snprintf(id, sizeof id, "F%02d", f);
            return std::string(id);
        };
        const auto bus_id = [](int lot) {
            char id[32];
            std::snprintf(id, sizeof id, "bus_%03d", lot);
            return std::string(id);
        };

        // Per-feeder roof count drives the shared export cap; every 4th
        // feeder stays uncapped so both cap regimes appear in the fixture.
        std::vector<int> roofs_on(static_cast<std::size_t>(n_feeders), 0);
        for (const LocalRecord& rec : records)
            ++roofs_on[static_cast<std::size_t>(feeder_of_lot(rec.lot))];

        struct BusRow {
            std::string id, feeder, parent;
            double r_ohm, ampacity_a, load_kw;
        };
        std::vector<std::string> feeder_ids;
        std::vector<double> feeder_caps;
        std::vector<BusRow> bus_rows;
        for (int f = 0; f < n_feeders; ++f) {
            feeder_ids.push_back(feeder_id(f));
            feeder_caps.push_back(
                f % 4 == 3 ? 0.0
                           : 0.02 * roofs_on[static_cast<std::size_t>(f)]);
            // Transformer drop, then the street chain lot by lot.
            bus_rows.push_back({feeder_id(f) + "_root", feeder_id(f), "",
                                grid_rng.uniform(0.01, 0.05), 400.0, 0.0});
            std::string prev = bus_rows.back().id;
            const int lot_end = std::min(n_lots, (f + 1) * per);
            for (int lot = f * per; lot < lot_end; ++lot) {
                bus_rows.push_back(
                    {bus_id(lot), feeder_id(f), prev,
                     grid_rng.uniform(0.02, 0.10),
                     100.0 + 20.0 * static_cast<double>(
                                        grid_rng.uniform_int(8)),
                     grid_rng.uniform(0.4, 2.5)});
                prev = bus_rows.back().id;
            }
        }

        CsvTable feeder_csv({"kind", "id", "feeder", "parent", "r_ohm",
                             "ampacity_a", "load_kw", "export_cap_kw",
                             "bus"});
        for (int f = 0; f < n_feeders; ++f)
            feeder_csv.add_row(
                {"feeder", feeder_ids[static_cast<std::size_t>(f)], "", "",
                 "", "", "",
                 fmt(feeder_caps[static_cast<std::size_t>(f)], 3), ""});
        for (const BusRow& bus : bus_rows)
            feeder_csv.add_row({"bus", bus.id, bus.feeder, bus.parent,
                                fmt(bus.r_ohm, 4), fmt(bus.ampacity_a, 1),
                                fmt(bus.load_kw, 3), "", ""});
        for (const LocalRecord& rec : records)
            feeder_csv.add_row(
                {"roof", rec.id, "", "", "", "", "", "", bus_id(rec.lot)});
        fixture.csv_feeder_path =
            (fs::path(directory) / "feeder.csv").string();
        feeder_csv.write_file(fixture.csv_feeder_path);

        fixture.json_feeder_path =
            (fs::path(directory) / "feeder.json").string();
        std::ofstream os(fixture.json_feeder_path);
        check_io(os.good(), "city_fixture: cannot write feeder JSON");
        os << "{\n  \"feeders\": [\n";
        for (int f = 0; f < n_feeders; ++f)
            os << "    {\"id\": \""
               << json_escape(feeder_ids[static_cast<std::size_t>(f)])
               << "\", \"export_cap_kw\": "
               << fmt(feeder_caps[static_cast<std::size_t>(f)], 3) << "}"
               << (f + 1 < n_feeders ? "," : "") << "\n";
        os << "  ],\n  \"buses\": [\n";
        for (std::size_t i = 0; i < bus_rows.size(); ++i) {
            const BusRow& bus = bus_rows[i];
            os << "    {\"id\": \"" << json_escape(bus.id)
               << "\", \"feeder\": \"" << json_escape(bus.feeder) << "\"";
            if (!bus.parent.empty())
                os << ", \"parent\": \"" << json_escape(bus.parent) << "\"";
            os << ", \"r_ohm\": " << fmt(bus.r_ohm, 4)
               << ", \"ampacity_a\": " << fmt(bus.ampacity_a, 1)
               << ", \"load_kw\": " << fmt(bus.load_kw, 3) << "}"
               << (i + 1 < bus_rows.size() ? "," : "") << "\n";
        }
        os << "  ],\n  \"roofs\": [\n";
        for (std::size_t i = 0; i < records.size(); ++i)
            os << "    {\"id\": \"" << json_escape(records[i].id)
               << "\", \"bus\": \"" << bus_id(records[i].lot) << "\"}"
               << (i + 1 < records.size() ? "," : "") << "\n";
        os << "  ]\n}\n";
        check_io(os.good(), "city_fixture: feeder JSON write failed");
        fixture.feeders = n_feeders;
    }
    return fixture;
}

}  // namespace pvfp::gis

#pragma once
/// \file city_runner.hpp
/// gis::run_city — the streaming batch driver of the city-scale
/// workload: registry + tiles in, ranked floorplans out.
///
/// Roofs flow through in registry order, sharded so memory stays
/// bounded (shard_size prepared scenarios resident at once: a shard is
/// loaded -> prepared -> placed -> freed before the next one starts,
/// with mosaic tile loads served by one bounded LRU cache).  Inside a
/// shard, roofs run on the PR-2 pool under the same outer/inner policy
/// as core::run_scenarios; all of a shard's results are appended to the
/// JSONL stream only after the shard completes, in registry order, so
/// the output is *bitwise identical at any thread count* and always a
/// prefix of the full run — which is what makes resume trivial: on
/// --resume the runner keeps the longest valid prefix of an interrupted
/// stream (a torn final line from a kill mid-write is discarded) and
/// continues after it, producing the same final bytes as an
/// uninterrupted run.
///
/// The sky precompute (env series + sun positions + transposition trig)
/// is prepared once per distinct site (lazily, shard by shard, dropping
/// artifacts the next shard no longer needs) and shared immutably by
/// every roof — the ROADMAP "shared-weather batching" item; per-roof
/// regeneration stays available (share_sky=false) as the benchmark
/// baseline.  A roof that fails (footprint off the tile set, no valid
/// cells, topology infeasible) contributes an error record and the run
/// continues.

#include <string>
#include <vector>

#include "pvfp/core/pipeline.hpp"
#include "pvfp/gis/roof_registry.hpp"
#include "pvfp/gis/tile_index.hpp"

namespace pvfp::gis {

class HorizonCache;  // gis/horizon_cache.hpp

/// Everything a city run needs beyond the tiles and the registry.
struct CityRunOptions {
    /// Pipeline configuration shared by every roof.  cell_size is
    /// overridden by the tile set's; location may be overridden per
    /// record (registry lat/lon, with this config's timezone).
    core::ScenarioConfig config{};
    /// Topologies compared on every roof.
    std::vector<pv::Topology> topologies{{8, 2}};
    core::GreedyOptions greedy{};
    core::EvaluationOptions eval{};
    ScenarioBuildOptions build{};
    /// Roofs prepared concurrently per shard — the memory bound.
    int shard_size = 32;
    /// Resident decoded tiles in the shared LRU cache.
    std::size_t tile_cache_tiles = 16;
    /// Keep the valid prefix of an existing JSONL stream and continue
    /// after it; false truncates and recomputes everything.
    bool resume = false;
    /// Prepare the sky once per site and share it (default).  false =
    /// every roof regenerates weather + sun precompute (bench baseline;
    /// results are bitwise identical either way).
    bool share_sky = true;
    /// Share the horizon marching across roofs (gis::HorizonCache):
    /// sector planes are computed once per macro tile over a
    /// max_distance-halo mosaic and every roof window is assembled from
    /// the cached planes.  The per-roof march cap (see run_city) does
    /// not apply — every roof marches the run-uniform
    /// config.horizon.max_distance over real neighbouring terrain, so
    /// results legitimately differ from the cold path; within the mode
    /// the stream stays bitwise identical at any thread count.
    bool share_horizon = false;
    /// Byte budget [MiB] of the resident horizon planes (shared mode).
    std::size_t horizon_cache_mb = 256;
    /// Optional externally-owned horizon cache: when set, the run uses
    /// it instead of creating its own (and implies share_horizon
    /// semantics).  This is how a caller amortizes the macro-tile
    /// marching across *runs* — re-ranks, delta re-runs, the serve
    /// daemon's workload — where the shared planes pay for themselves;
    /// a single cold pass over disjoint roof windows computes more
    /// cells than it consumes.  The cache's horizon options must match
    /// config.horizon (checked); its stats are cumulative across runs.
    /// The caller keeps ownership and must keep it alive for the run.
    HorizonCache* shared_horizon_cache = nullptr;
    /// Required: incremental JSONL result stream (one object per roof).
    std::string jsonl_path;
    /// Optional: final ranking summary CSV.
    std::string summary_csv_path;
};

/// Per-topology outcome on one roof.
struct RoofTopologyResult {
    pv::Topology topology{};
    double proposed_kwh = 0.0;  ///< greedy floorplanner (the paper's)
    double compact_kwh = 0.0;   ///< traditional compact baseline
    double improvement_pct = 0.0;
};

/// One JSONL record: everything the run learned about one roof.
struct RoofResult {
    std::string id;
    bool ok = false;
    std::string error;  ///< set when !ok
    int valid_cells = 0;
    int area_w = 0;
    int area_h = 0;
    double tilt_deg = 0.0;
    double azimuth_deg = 0.0;
    double fit_rmse_m = 0.0;
    std::vector<RoofTopologyResult> topologies;
    double best_kwh = 0.0;  ///< max proposed_kwh over topologies
    bool from_resume = false;  ///< parsed back from a previous stream
};

/// Run-level accounting.
struct CityRunSummary {
    long total = 0;      ///< registry records
    long processed = 0;  ///< computed this run
    long resumed = 0;    ///< taken from the existing stream
    long failed = 0;     ///< error records (either origin)
    /// One entry per registry record, registry order.
    std::vector<RoofResult> results;
    /// Indices into results, successful roofs only, best_kwh descending
    /// (ties by id) — the city-wide ranking of the summary CSV.
    std::vector<std::size_t> ranking;
    std::size_t tile_cache_hits = 0;
    std::size_t tile_cache_misses = 0;
    /// Horizon cache accounting (share_horizon runs; all zero otherwise).
    std::size_t horizon_cache_hits = 0;
    std::size_t horizon_cache_misses = 0;
    std::size_t horizon_cache_evictions = 0;
    std::size_t horizon_cache_bytes = 0;
};

/// Serialize one result as a JSONL line (no trailing newline).  Fixed
/// key order and fixed-precision numbers: equal results produce equal
/// bytes, the contract behind the thread-count determinism gate.
std::string roof_result_to_jsonl(const RoofResult& result);

/// Parse one JSONL line (resume path); throws IoError on malformed
/// input — including a torn line from an interrupted write.
RoofResult roof_result_from_jsonl(const std::string& line);

/// Rank \p registry's roofs from \p tiles under \p options.  See the
/// file comment for streaming/resume/determinism semantics.
CityRunSummary run_city(const TileIndex& tiles, const RoofRegistry& registry,
                        const CityRunOptions& options);

}  // namespace pvfp::gis

#pragma once
/// \file jsonl.hpp
/// Longest-valid-prefix scanning of append-only JSONL streams.
///
/// Two subsystems recover state from a JSONL stream that may have been
/// cut mid-write: the city runner's --resume (keep computed roofs,
/// recompute the rest) and the serving daemon's --replay (re-execute a
/// logged request session).  Both need the same contract, so it lives
/// here once: read lines in order, hand each to a caller validator, and
/// stop at the first line that is torn or out of place — the surviving
/// prefix is exactly what an uninterrupted writer would have produced.
///
/// Edge cases this scanner owns (each pinned by tests):
///  - a final record with no trailing newline is a complete line when it
///    validates (the writer was killed between the bytes and the '\n');
///  - CRLF-terminated lines (a stream that crossed a Windows machine or
///    a text-mode transfer) validate like their LF twins — the '\r' is
///    stripped before the validator sees the line;
///  - a write interrupted anywhere inside a line — including inside an
///    escaped JSON string, where the prefix can still look string-like —
///    fails validation (JSON requires the object to close) and ends the
///    scan, as does an empty trailing line from a double newline.

#include <functional>
#include <string>
#include <vector>

namespace pvfp::gis {

/// Validates line \p k (0-based) of a stream; return false to end the
/// prefix.  Typically parses the line and checks it belongs at
/// position k (record id, sequence number); it must not throw — wrap
/// parse attempts in try/catch and report false.
using JsonlLineValidator = std::function<bool(long k, const std::string&)>;

/// Read the longest prefix of \p path whose lines all satisfy
/// \p valid, in order.  Lines are returned with line endings (LF or
/// CRLF) stripped.  A missing or unreadable file yields an empty
/// prefix — recovery treats it as "nothing written yet".
/// \p max_lines bounds the scan when >= 0 (a stream can hold stale
/// records past the writer's planned length after an index edit).
std::vector<std::string> read_jsonl_prefix(const std::string& path,
                                           const JsonlLineValidator& valid,
                                           long max_lines = -1);

}  // namespace pvfp::gis

#pragma once
/// \file roof_registry.hpp
/// The footprint index of a city run: which roofs exist, where.
///
/// A RoofRegistry is loaded from a CSV or JSON index file mapping roof
/// ids to world-coordinate footprints (axis-aligned bbox, optionally
/// refined by a polygon) plus optional per-roof site coordinates.  From
/// a registry record and a TileIndex, make_scenario assembles a
/// core::RoofScenario on demand — the bridge from measured GIS input to
/// the paper's pipeline:
///
///   mosaic the roof's context window  ->  mask the footprint
///   ->  least-squares fit the roof plane (trimmed re-fit against
///       encumbrance bias)  ->  describe it as a MonopitchRoof so
///       suitable-area extraction sees residuals against the *fitted*
///       plane of the *measured* DSM.
///
/// Index formats (world coordinates, meters; ids must be unique):
///   CSV:  id,min_x,min_y,max_x,max_y[,lat,lon][,polygon]
///         polygon = "x y;x y;..." (>= 3 vertices, implicit closure)
///   JSON: [{"id": "...", "bbox": [min_x,min_y,max_x,max_y],
///          "lat": ..., "lon": ..., "polygon": [[x,y],...]}, ...]

#include <array>
#include <string>
#include <vector>

#include "pvfp/core/roof_library.hpp"
#include "pvfp/gis/tile_index.hpp"

namespace pvfp::gis {

/// One roof footprint of the index.
struct RoofRecord {
    std::string id;
    /// Axis-aligned footprint bounding box, world coordinates.
    WorldRect bbox{};
    /// Optional footprint polygon (world coordinates, implicit closure);
    /// empty = the bbox is the footprint.  Cells whose centers fall
    /// outside are masked from placement (they still shade).
    std::vector<std::array<double, 2>> polygon;
    /// Optional per-roof site override (a registry may span sites whose
    /// sun geometry differs); the run's configured timezone applies.
    bool has_location = false;
    double latitude_deg = 0.0;
    double longitude_deg = 0.0;
};

/// Least-squares roof plane in the mosaic's local frame (x east, y south
/// from the window's NW corner): z = a*lx + b*ly + c.
struct RoofPlaneFit {
    double a = 0.0;
    double b = 0.0;
    double c = 0.0;
    double tilt_deg = 0.0;     ///< atan(|grad z|)
    double azimuth_deg = 0.0;  ///< downslope, clockwise from North
    double rmse_m = 0.0;       ///< residual RMS over the kept cells
    long cells = 0;            ///< cells in the final fit
};

/// Knobs of the record -> scenario assembly.
struct ScenarioBuildOptions {
    /// Mosaic margin around the footprint bbox [m]: context that shades
    /// the roof (neighbour buildings, trees) without being placeable.
    double context_margin_m = 8.0;
    /// Trimmed re-fit: after the first least-squares pass, drop cells
    /// whose |residual| exceeds this many RMS and fit once more, so
    /// chimneys/dormers inside the footprint do not tilt the plane.
    /// 0 disables the second pass.
    double trim_sigma = 3.0;
};

/// Fit the roof plane over the cells where \p mask is nonzero (and the
/// DSM holds data).  Throws Infeasible when fewer than 3 cells remain.
/// Exposed for tests; make_scenario calls it internally.
RoofPlaneFit fit_roof_plane(const geo::Raster& dsm,
                            const pvfp::Grid2D<unsigned char>& mask,
                            double trim_sigma = 3.0);

/// World georeference of a scenario's mosaic window.  The scenario
/// raster is rebased to a scene-local frame for the pipeline, which
/// erases where the window sat on the tile lattice; shared-horizon
/// consumers (gis::HorizonCache) need that corner back to address the
/// cached macro-tile planes.
struct WindowOrigin {
    double x = 0.0;  ///< easting of the window's west edge [m]
    double y = 0.0;  ///< northing of the window's north edge [m]
};

/// Assemble the scenario for \p record: mosaic its window from
/// \p tiles, mask its footprint, fit its plane, and package everything
/// as a core::RoofScenario (measured DSM override + placement mask +
/// fitted-plane scene).  NODATA cells are excluded from placement and
/// backfilled with the window's minimum height so the horizon scan sees
/// ground, not a -9999 m canyon.  Throws Infeasible when the footprint
/// holds no data cells.  \p fit_out, when non-null, receives the plane
/// fit diagnostics; \p origin_out the window's world NW corner.
core::RoofScenario make_scenario(const RoofRecord& record,
                                 const TileIndex& tiles,
                                 const ScenarioBuildOptions& options = {},
                                 TileCache* cache = nullptr,
                                 RoofPlaneFit* fit_out = nullptr,
                                 WindowOrigin* origin_out = nullptr);

/// The loaded index.
class RoofRegistry {
public:
    /// Load by extension: ".json" -> JSON, anything else -> CSV.
    static RoofRegistry load(const std::string& path);
    static RoofRegistry load_csv(const std::string& path);
    static RoofRegistry load_json(const std::string& path);

    long size() const { return static_cast<long>(records_.size()); }
    const std::vector<RoofRecord>& records() const { return records_; }
    const RoofRecord& record(long i) const;

private:
    void validate() const;  ///< unique non-empty ids, sane bboxes

    std::vector<RoofRecord> records_;
};

}  // namespace pvfp::gis

#pragma once
/// \file fixture.hpp
/// Synthetic city fixture: tiles + footprint index on disk.
///
/// The real input of the GIS subsystem is a directory of LiDAR DSM
/// tiles plus a cadastral footprint index — data that cannot ship with
/// the repository.  This generator produces a statistically similar
/// stand-in entirely from the procedural scene substrate: a seeded grid
/// of residential lots (monopitch and gable houses with chimneys, HVAC
/// boxes, garden trees, decimeter roof texture) rasterized once and cut
/// into .asc tiles (written via write_asc_grid), with a CSV *and* JSON
/// footprint index describing every roof plane (gable = two records;
/// some records carry footprint polygons that cut a corner).  Tests,
/// benches, the CI determinism gate, and `pvfp_city --gen-fixture` all
/// build their cities here, so every consumer exercises the identical
/// end-to-end path: write tiles -> scan -> mosaic -> fit -> place.

#include <cstdint>
#include <string>

namespace pvfp::gis {

struct CityFixtureOptions {
    /// Number of roof *records* in the index (a gable contributes two).
    int roofs = 60;
    std::uint64_t seed = 7;
    /// DSM resolution [m] (paper grid pitch).
    double cell_size = 0.2;
    /// Tile side length in cells (default 160 = 32 m tiles at 0.2 m).
    int tile_cells = 160;
    /// World coordinates of the city's SW corner [m] (UTM-like).
    double origin_x = 12000.0;
    double origin_y = 48000.0;
    /// Residential lot plan size [m].
    double lot_w = 16.0;
    double lot_d = 14.0;
    /// Also write index.json next to index.csv.
    bool write_json_index = true;
    /// Also write a synthetic radial feeder index (feeder.csv +
    /// feeder.json) attaching every roof record to a bus, so the
    /// grid-aware placement path can be exercised end to end on the
    /// fixture alone.  Lots on one street segment share a feeder; the
    /// buses chain down the street (real LV feeders are radial).
    bool write_feeder_index = true;
    /// Lots per feeder (the chain length knob).
    int lots_per_feeder = 6;
};

/// What was written where.
struct CityFixture {
    std::string directory;        ///< tiles live here
    std::string csv_index_path;   ///< <dir>/index.csv
    std::string json_index_path;  ///< <dir>/index.json ("" when disabled)
    std::string csv_feeder_path;  ///< <dir>/feeder.csv ("" when disabled)
    std::string json_feeder_path;  ///< <dir>/feeder.json ("" when disabled)
    int tiles_written = 0;
    int records = 0;
    int feeders = 0;  ///< feeders in the feeder index
};

/// Generate the fixture into \p directory (created if needed; existing
/// tiles/indexes are overwritten).  Deterministic in (options.seed,
/// options): equal inputs produce byte-identical tiles and indexes.
CityFixture generate_city_fixture(const std::string& directory,
                                  const CityFixtureOptions& options = {});

}  // namespace pvfp::gis

#include "pvfp/gis/jsonl.hpp"

#include <fstream>

namespace pvfp::gis {

std::vector<std::string> read_jsonl_prefix(const std::string& path,
                                           const JsonlLineValidator& valid,
                                           long max_lines) {
    std::vector<std::string> lines;
    // Binary mode: line endings are handled here, identically on every
    // platform, so the validator always sees the bare payload.
    std::ifstream is(path, std::ios::binary);
    if (!is.is_open()) return lines;

    std::string line;
    long k = 0;
    while ((max_lines < 0 || k < max_lines) && std::getline(is, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (!valid(k, line)) break;
        lines.push_back(line);
        ++k;
    }
    return lines;
}

}  // namespace pvfp::gis

#pragma once
/// \file feeder_model.hpp
/// The lightweight radial-feeder model behind grid-aware placement.
///
/// A city ranking that only orders roofs by kWh ignores where on the
/// distribution network the energy lands.  Following the Downstream
/// Power Index approach (arXiv 1706.04596), a FeederModel attaches an
/// electrical skeleton to the roof registry: feeders (one transformer
/// each, optional export cap), buses forming a radial tree per feeder
/// (each bus row describes the line feeding it from its parent —
/// resistance and ampacity — plus the local demand), and roof→bus
/// attachments.  The model is loaded from a CSV or JSON feeder index
/// and validated structurally on load: exactly one root per feeder, an
/// acyclic parent relation, resolvable feeder/parent/bus references,
/// unique ids, non-negative electrical quantities.  Attachments are
/// validated against a RoofRegistry separately (validate_roofs), so a
/// model can be loaded and inspected without the registry at hand.
///
/// Index formats (ids must be unique per kind):
///   CSV, one `kind` column selecting the record type:
///     kind,id,feeder,parent,r_ohm,ampacity_a,load_kw,export_cap_kw,bus
///     feeder,F0,,,,,,24.0,
///     bus,F0_root,F0,,0.02,400,0.0,,
///     bus,F0_b01,F0,F0_root,0.08,160,1.4,,
///     roof,roof_000,,,,,,,F0_b01
///   JSON, one object with three arrays:
///     {"feeders":[{"id":"F0","export_cap_kw":24.0}],
///      "buses":[{"id":"F0_root","feeder":"F0","r_ohm":0.02,
///                "ampacity_a":400,"load_kw":0.0},
///               {"id":"F0_b01","feeder":"F0","parent":"F0_root",
///                "r_ohm":0.08,"ampacity_a":160,"load_kw":1.4}],
///      "roofs":[{"id":"roof_000","bus":"F0_b01"}]}
///
/// An export_cap_kw of 0 (or an omitted field) means the feeder is
/// uncapped.  A bus with an empty/omitted parent is its feeder's root;
/// its r_ohm is the line from the transformer.
///
/// The Downstream Power Index of a bus values generation injected
/// there by the loss-weighted demand it displaces on the way to the
/// transformer: with flow_kw[b] the net downstream demand crossing the
/// line into bus b,
///
///     dpi[b] = dpi[parent(b)] + r_ohm[b] * max(flow_kw[b], 0)
///
/// accumulated root-downward in topological order.  The summation
/// order is part of the contract: the sequential placer's incremental
/// re-scoring and its brute-force differential oracle both fold in
/// exactly this order, which is what makes them bitwise comparable.

#include <cstddef>
#include <string>
#include <vector>

namespace pvfp::gis {
class RoofRegistry;
}

namespace pvfp::grid {

/// One feeder: a transformer with an optional shared export cap.
struct FeederRecord {
    std::string id;
    /// Aggregate export limit for generation placed on this feeder
    /// [kW]; <= 0 = uncapped.
    double export_cap_kw = 0.0;
    long root_bus = -1;  ///< index into buses(); resolved by load
};

/// One bus plus the line feeding it from its parent (root: from the
/// transformer).
struct BusRecord {
    std::string id;
    std::string feeder_id;
    std::string parent_id;  ///< empty = feeder root
    double r_ohm = 0.0;      ///< resistance of the feeding line
    double ampacity_a = 0.0;  ///< thermal rating of the feeding line
    double load_kw = 0.0;     ///< local demand at the bus
    long feeder = -1;  ///< index into feeders(); resolved by load
    long parent = -1;  ///< index into buses(); -1 at the root
};

/// One roof -> bus attachment.
struct RoofAttachment {
    std::string roof_id;
    std::string bus_id;
    long bus = -1;  ///< index into buses(); resolved by load
};

/// The loaded, validated feeder index.
class FeederModel {
public:
    /// Load by extension: ".json" -> JSON, anything else -> CSV.  Both
    /// loaders finish with the same structural validation and throw
    /// IoError on malformed content (syntax, dangling references,
    /// duplicate ids, multiple/missing roots, a parent cycle, negative
    /// electrical quantities, duplicate roof attachments).
    static FeederModel load(const std::string& path);
    static FeederModel load_csv(const std::string& path);
    static FeederModel load_json(const std::string& path);

    const std::vector<FeederRecord>& feeders() const { return feeders_; }
    const std::vector<BusRecord>& buses() const { return buses_; }
    const std::vector<RoofAttachment>& attachments() const {
        return attachments_;
    }

    /// Buses in root-downward topological order (parents before
    /// children; within a level, file order).  The canonical iteration
    /// order of every flow/DPI computation.
    const std::vector<long>& topo_order() const { return topo_order_; }

    /// One feeder's buses in the same root-downward order — the
    /// affected set the incremental placer re-scores after a pick on
    /// that feeder (other feeders' DPI cannot change).
    const std::vector<long>& feeder_topo(long feeder) const;

    /// Feeder index by id; -1 when unknown.
    long find_feeder(const std::string& feeder_id) const;
    /// Bus index of \p roof_id's attachment; -1 when unattached.
    long bus_of(const std::string& roof_id) const;

    /// Check that every attachment names a roof the registry knows;
    /// throws IoError listing the first unresolvable id.
    void validate_roofs(const gis::RoofRegistry& registry) const;

    /// Net downstream demand crossing the line into each bus before
    /// any generation is placed: flow[b] = load_kw[b] + sum of child
    /// flows, folded child-by-child in topo order.  Both placers start
    /// from this exact vector, so their later per-bus update sequences
    /// stay bitwise comparable.
    std::vector<double> base_flows() const;

    /// Subtract an injection of \p kw at \p bus from the flow on every
    /// line between the bus and its root (self included) — the
    /// one-placement flow update both placers apply in placement
    /// order.
    void apply_injection(std::vector<double>& flow_kw, long bus,
                         double kw) const;

    /// Downstream Power Index of every bus under \p flow_kw, folded
    /// root-downward in topo order (see the file comment for the
    /// recurrence).
    std::vector<double> downstream_power_index(
        const std::vector<double>& flow_kw) const;

private:
    void resolve_and_validate();  ///< shared by both loaders

    std::vector<FeederRecord> feeders_;
    std::vector<BusRecord> buses_;
    std::vector<RoofAttachment> attachments_;
    std::vector<long> topo_order_;
    std::vector<std::vector<long>> feeder_topo_;  ///< per feeder
    std::vector<std::vector<long>> children_;     ///< per bus, file order
};

}  // namespace pvfp::grid

#include "pvfp/grid/sequential_place.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

#include "pvfp/gis/json.hpp"
#include "pvfp/util/csv.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/parallel.hpp"

namespace pvfp::grid {

namespace {

std::string num(double v, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    return buf;
}

/// One placeable roof, resolved against the model.
struct Candidate {
    std::size_t result = 0;  ///< index into results
    long bus = -1;
    long feeder = -1;
    double yield_kwh = 0.0;
    double avg_kw = 0.0;
    bool placed = false;
};

/// Resolve results against the model: candidates in results order
/// (errors split out as skips), shared verbatim by both placers so
/// only the scoring loops differ.
struct Instance {
    std::vector<Candidate> candidates;
    std::vector<GridSkipped> error_skips;  ///< results order
    long attached = 0;
};

Instance build_instance(const FeederModel& model,
                        const std::vector<gis::RoofResult>& results,
                        const GridPlaceOptions& options) {
    check_arg(options.hours_per_year > 0.0,
              "sequential_place: hours_per_year must be positive");
    long filter = -1;
    if (!options.feeder_filter.empty()) {
        filter = model.find_feeder(options.feeder_filter);
        check_io(filter >= 0, "sequential_place: unknown feeder '" +
                                  options.feeder_filter + "'");
    }

    std::unordered_map<std::string, long> bus_of;
    bus_of.reserve(model.attachments().size());
    for (const RoofAttachment& attachment : model.attachments()) {
        const long feeder =
            model.buses()[static_cast<std::size_t>(attachment.bus)].feeder;
        if (filter >= 0 && feeder != filter) continue;
        bus_of.emplace(attachment.roof_id, attachment.bus);
    }

    Instance instance;
    std::unordered_set<std::string> seen;
    seen.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        const gis::RoofResult& result = results[i];
        seen.insert(result.id);
        const auto it = bus_of.find(result.id);
        if (it == bus_of.end()) continue;
        ++instance.attached;
        if (!result.ok) {
            // An error record has no yield: it must never reach the
            // scorer, where a NaN score would poison the argmax.
            instance.error_skips.push_back({result.id, "error"});
            continue;
        }
        Candidate candidate;
        candidate.result = i;
        candidate.bus = it->second;
        candidate.feeder =
            model.buses()[static_cast<std::size_t>(it->second)].feeder;
        candidate.yield_kwh = result.best_kwh;
        candidate.avg_kw = result.best_kwh / options.hours_per_year;
        instance.candidates.push_back(candidate);
    }
    // Walk attachments in model order (not the hash map) so which
    // missing roof gets named in the error is deterministic — these
    // messages reach serve responses, which must replay byte-for-byte.
    for (const RoofAttachment& attachment : model.attachments()) {
        if (bus_of.count(attachment.roof_id) == 0) continue;
        check_io(seen.count(attachment.roof_id) != 0,
                 "sequential_place: attached roof '" + attachment.roof_id +
                     "' has no yield record");
    }
    return instance;
}

bool fits_cap(double used_kw, double kw, double cap_kw) {
    return cap_kw <= 0.0 || used_kw + kw <= cap_kw;
}

GridPlacement make_placement(const FeederModel& model,
                             const std::vector<gis::RoofResult>& results,
                             const Candidate& candidate, long order,
                             double dpi, double used_after_kw) {
    GridPlacement placement;
    placement.order = order;
    placement.roof_id = results[candidate.result].id;
    placement.bus_id =
        model.buses()[static_cast<std::size_t>(candidate.bus)].id;
    placement.feeder_id =
        model.feeders()[static_cast<std::size_t>(candidate.feeder)].id;
    placement.yield_kwh = candidate.yield_kwh;
    placement.avg_kw = candidate.avg_kw;
    placement.dpi = dpi;
    placement.score = candidate.yield_kwh * (1.0 + dpi);
    placement.feeder_used_kw = used_after_kw;
    return placement;
}

/// Close a finished plan: per-feeder totals and capped-roof skips, in
/// deterministic (model, results) order — identical code on both
/// placers, so every derived byte matches when the placements match.
void finalize(const FeederModel& model,
              const std::vector<gis::RoofResult>& results,
              const Instance& instance, const std::vector<double>& used_kw,
              GridPlanResult& plan) {
    plan.attached = instance.attached;
    plan.errors = static_cast<long>(instance.error_skips.size());
    plan.skipped = instance.error_skips;

    std::vector<GridFeederTotal> totals(model.feeders().size());
    for (std::size_t f = 0; f < model.feeders().size(); ++f) {
        totals[f].feeder_id = model.feeders()[f].id;
        totals[f].export_cap_kw = model.feeders()[f].export_cap_kw;
        totals[f].placed_kw = used_kw[f];
    }
    for (const GridPlacement& placement : plan.placements) {
        GridFeederTotal& total = totals[static_cast<std::size_t>(
            model.find_feeder(placement.feeder_id))];
        ++total.placed;
        total.yield_kwh += placement.yield_kwh;
    }
    for (const Candidate& candidate : instance.candidates) {
        if (candidate.placed) continue;
        plan.skipped.push_back({results[candidate.result].id, "capped"});
        ++totals[static_cast<std::size_t>(candidate.feeder)].capped;
    }
    plan.feeders = std::move(totals);
}

}  // namespace

std::string placement_to_jsonl(const GridPlacement& placement) {
    std::string line = "{\"order\":" + std::to_string(placement.order);
    line += ",\"id\":\"" + gis::json_escape(placement.roof_id) + "\"";
    line += ",\"bus\":\"" + gis::json_escape(placement.bus_id) + "\"";
    line += ",\"feeder\":\"" + gis::json_escape(placement.feeder_id) + "\"";
    line += ",\"yield_kwh\":" + num(placement.yield_kwh, 6);
    line += ",\"avg_kw\":" + num(placement.avg_kw, 6);
    line += ",\"dpi\":" + num(placement.dpi, 6);
    line += ",\"score\":" + num(placement.score, 6);
    line += ",\"feeder_used_kw\":" + num(placement.feeder_used_kw, 6) + "}";
    return line;
}

GridPlanResult sequential_place(const FeederModel& model,
                                const std::vector<gis::RoofResult>& results,
                                const GridPlaceOptions& options) {
    const Instance instance = build_instance(model, results, options);
    Instance live = instance;

    std::vector<double> flow = model.base_flows();
    std::vector<double> dpi = model.downstream_power_index(flow);
    std::vector<double> used_kw(model.feeders().size(), 0.0);

    // Alive candidate positions, results order — the tie-break order.
    std::vector<std::size_t> alive(live.candidates.size());
    for (std::size_t i = 0; i < alive.size(); ++i) alive[i] = i;

    GridPlanResult plan;
    struct Best {
        std::size_t pos = 0;  ///< index into alive
        double score = 0.0;
        bool found = false;
    };
    while (!alive.empty()) {
        const long n = static_cast<long>(alive.size());
        // Fixed-chunk parallel argmax, partials merged in chunk order:
        // the winner is the first strictly-best alive candidate, the
        // same pick a serial scan makes — at any thread count.
        const Best best = parallel_reduce(
            0L, n, 256L, Best{},
            [&](long begin, long end) {
                Best local;
                for (long k = begin; k < end; ++k) {
                    const Candidate& candidate =
                        live.candidates[alive[static_cast<std::size_t>(k)]];
                    const double cap =
                        model.feeders()[static_cast<std::size_t>(
                                            candidate.feeder)]
                            .export_cap_kw;
                    if (!fits_cap(used_kw[static_cast<std::size_t>(
                                      candidate.feeder)],
                                  candidate.avg_kw, cap))
                        continue;
                    const double score =
                        candidate.yield_kwh *
                        (1.0 +
                         dpi[static_cast<std::size_t>(candidate.bus)]);
                    if (!local.found || score > local.score) {
                        local.pos = static_cast<std::size_t>(k);
                        local.score = score;
                        local.found = true;
                    }
                }
                return local;
            },
            [](Best acc, Best partial) {
                if (!acc.found) return partial;
                if (partial.found && partial.score > acc.score)
                    return partial;
                return acc;
            });
        if (!best.found) break;  // every remaining roof is capped out

        Candidate& picked = live.candidates[alive[best.pos]];
        picked.placed = true;
        const std::size_t feeder = static_cast<std::size_t>(picked.feeder);
        used_kw[feeder] += picked.avg_kw;
        plan.placements.push_back(make_placement(
            model, results, picked,
            static_cast<long>(plan.placements.size()) + 1,
            dpi[static_cast<std::size_t>(picked.bus)], used_kw[feeder]));

        // Commit: pull the injection off the path to the root, then
        // re-score the affected buses — exactly the picked feeder; no
        // other feeder's flows moved.
        model.apply_injection(flow, picked.bus, picked.avg_kw);
        for (long b : model.feeder_topo(picked.feeder)) {
            const BusRecord& bus =
                model.buses()[static_cast<std::size_t>(b)];
            const double upstream =
                bus.parent >= 0
                    ? dpi[static_cast<std::size_t>(bus.parent)]
                    : 0.0;
            dpi[static_cast<std::size_t>(b)] =
                upstream +
                bus.r_ohm *
                    std::max(flow[static_cast<std::size_t>(b)], 0.0);
        }
        alive.erase(alive.begin() + static_cast<long>(best.pos));
    }

    finalize(model, results, live, used_kw, plan);

    if (!options.plan_jsonl_path.empty()) {
        std::ofstream os(options.plan_jsonl_path,
                         std::ios::binary | std::ios::trunc);
        check_io(os.good(), "sequential_place: cannot write '" +
                                options.plan_jsonl_path + "'");
        for (const GridPlacement& placement : plan.placements)
            os << placement_to_jsonl(placement) << '\n';
        check_io(os.good(), "sequential_place: plan write failed");
    }
    if (!options.summary_csv_path.empty()) {
        CsvTable csv({"feeder", "placed", "capped", "placed_kw",
                      "export_cap_kw", "utilization_pct", "yield_kwh"});
        for (const GridFeederTotal& total : plan.feeders) {
            const double utilization =
                total.export_cap_kw > 0.0
                    ? total.placed_kw / total.export_cap_kw * 100.0
                    : 0.0;
            csv.add_row({total.feeder_id, std::to_string(total.placed),
                         std::to_string(total.capped),
                         num(total.placed_kw, 6),
                         num(total.export_cap_kw, 6), num(utilization, 3),
                         num(total.yield_kwh, 6)});
        }
        csv.write_file(options.summary_csv_path);
    }
    return plan;
}

GridPlanResult sequential_place_reference(
    const FeederModel& model, const std::vector<gis::RoofResult>& results,
    const GridPlaceOptions& options) {
    const Instance frozen = build_instance(model, results, options);
    Instance live = frozen;

    const std::vector<double> base = model.base_flows();
    GridPlanResult plan;
    std::vector<double> used_kw(model.feeders().size(), 0.0);

    for (;;) {
        // No incremental state: rebuild flows and per-feeder usage by
        // replaying every committed placement in order, then recompute
        // DPI for all buses from scratch.
        std::vector<double> flow = base;
        used_kw.assign(model.feeders().size(), 0.0);
        for (const GridPlacement& placement : plan.placements) {
            model.apply_injection(flow, model.bus_of(placement.roof_id),
                                  placement.avg_kw);
            used_kw[static_cast<std::size_t>(
                model.find_feeder(placement.feeder_id))] +=
                placement.avg_kw;
        }
        const std::vector<double> dpi =
            model.downstream_power_index(flow);

        // Serial re-walk of every remaining roof, first strict best.
        Candidate* picked = nullptr;
        double best_score = 0.0;
        for (Candidate& candidate : live.candidates) {
            if (candidate.placed) continue;
            const double cap =
                model.feeders()[static_cast<std::size_t>(candidate.feeder)]
                    .export_cap_kw;
            if (!fits_cap(
                    used_kw[static_cast<std::size_t>(candidate.feeder)],
                    candidate.avg_kw, cap))
                continue;
            const double score =
                candidate.yield_kwh *
                (1.0 + dpi[static_cast<std::size_t>(candidate.bus)]);
            if (!picked || score > best_score) {
                picked = &candidate;
                best_score = score;
            }
        }
        if (!picked) break;

        picked->placed = true;
        const std::size_t feeder = static_cast<std::size_t>(picked->feeder);
        used_kw[feeder] += picked->avg_kw;
        plan.placements.push_back(make_placement(
            model, results, *picked,
            static_cast<long>(plan.placements.size()) + 1,
            dpi[static_cast<std::size_t>(picked->bus)], used_kw[feeder]));
    }

    finalize(model, results, live, used_kw, plan);
    return plan;
}

}  // namespace pvfp::grid

#include "pvfp/grid/feeder_model.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "pvfp/gis/json.hpp"
#include "pvfp/gis/roof_registry.hpp"
#include "pvfp/util/csv.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::grid {

namespace {

/// Strict non-negative number for electrical fields: the CSV cells
/// arrive as strings, the JSON ones as doubles; both funnel through
/// here so the typed-error surface is identical.
double checked_quantity(double value, const std::string& what,
                        const std::string& id) {
    check_io(value == value && value >= 0.0,
             "feeder index: " + what + " of '" + id +
                 "' must be a non-negative number");
    return value;
}

double csv_number(const CsvTable& table, std::size_t row,
                  const std::string& column, const std::string& what,
                  const std::string& id) {
    return checked_quantity(table.cell_as_double(row, table.column(column)),
                            what, id);
}

double csv_number_or(const CsvTable& table, std::size_t row,
                     const std::string& column, const std::string& what,
                     const std::string& id, double fallback) {
    const std::string& cell = table.cell(row, table.column(column));
    if (cell.empty()) return fallback;
    return csv_number(table, row, column, what, id);
}

double json_number_or(const gis::JsonValue& object, const std::string& key,
                      const std::string& what, const std::string& id,
                      double fallback) {
    const gis::JsonValue* value = object.find(key);
    if (!value || value->is_null()) return fallback;
    return checked_quantity(value->as_number(), what, id);
}

std::string json_string_or(const gis::JsonValue& object,
                           const std::string& key) {
    const gis::JsonValue* value = object.find(key);
    if (!value || value->is_null()) return {};
    return value->as_string();
}

}  // namespace

FeederModel FeederModel::load(const std::string& path) {
    const std::string::size_type dot = path.rfind('.');
    if (dot != std::string::npos && path.substr(dot) == ".json")
        return load_json(path);
    return load_csv(path);
}

FeederModel FeederModel::load_csv(const std::string& path) {
    const CsvTable table = CsvTable::read_file(path);
    for (const char* column : {"kind", "id", "feeder", "parent", "r_ohm",
                               "ampacity_a", "load_kw", "export_cap_kw",
                               "bus"})
        check_io(table.has_column(column),
                 "feeder index: missing column '" + std::string(column) +
                     "' in '" + path + "'");

    FeederModel model;
    for (std::size_t row = 0; row < table.row_count(); ++row) {
        const std::string& kind = table.cell(row, table.column("kind"));
        const std::string& id = table.cell(row, table.column("id"));
        check_io(!id.empty(), "feeder index: empty id in row " +
                                  std::to_string(row + 1));
        if (kind == "feeder") {
            FeederRecord feeder;
            feeder.id = id;
            feeder.export_cap_kw = csv_number_or(
                table, row, "export_cap_kw", "export_cap_kw", id, 0.0);
            model.feeders_.push_back(std::move(feeder));
        } else if (kind == "bus") {
            BusRecord bus;
            bus.id = id;
            bus.feeder_id = table.cell(row, table.column("feeder"));
            bus.parent_id = table.cell(row, table.column("parent"));
            bus.r_ohm = csv_number(table, row, "r_ohm", "r_ohm", id);
            bus.ampacity_a =
                csv_number(table, row, "ampacity_a", "ampacity_a", id);
            bus.load_kw = csv_number_or(table, row, "load_kw", "load_kw",
                                        id, 0.0);
            model.buses_.push_back(std::move(bus));
        } else if (kind == "roof") {
            RoofAttachment attachment;
            attachment.roof_id = id;
            attachment.bus_id = table.cell(row, table.column("bus"));
            model.attachments_.push_back(std::move(attachment));
        } else {
            throw IoError("feeder index: unknown kind '" + kind +
                          "' in row " + std::to_string(row + 1));
        }
    }
    model.resolve_and_validate();
    return model;
}

FeederModel FeederModel::load_json(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    check_io(is.good(), "feeder index: cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const gis::JsonValue document = gis::JsonValue::parse(buffer.str());
    check_io(document.is_object(),
             "feeder index: '" + path + "' is not a JSON object");

    FeederModel model;
    if (const gis::JsonValue* feeders = document.find("feeders")) {
        for (const gis::JsonValue& entry : feeders->as_array()) {
            FeederRecord feeder;
            feeder.id = entry.at("id").as_string();
            check_io(!feeder.id.empty(), "feeder index: empty feeder id");
            feeder.export_cap_kw = json_number_or(
                entry, "export_cap_kw", "export_cap_kw", feeder.id, 0.0);
            model.feeders_.push_back(std::move(feeder));
        }
    }
    if (const gis::JsonValue* buses = document.find("buses")) {
        for (const gis::JsonValue& entry : buses->as_array()) {
            BusRecord bus;
            bus.id = entry.at("id").as_string();
            check_io(!bus.id.empty(), "feeder index: empty bus id");
            bus.feeder_id = json_string_or(entry, "feeder");
            bus.parent_id = json_string_or(entry, "parent");
            bus.r_ohm = checked_quantity(entry.at("r_ohm").as_number(),
                                         "r_ohm", bus.id);
            bus.ampacity_a = checked_quantity(
                entry.at("ampacity_a").as_number(), "ampacity_a", bus.id);
            bus.load_kw =
                json_number_or(entry, "load_kw", "load_kw", bus.id, 0.0);
            model.buses_.push_back(std::move(bus));
        }
    }
    if (const gis::JsonValue* roofs = document.find("roofs")) {
        for (const gis::JsonValue& entry : roofs->as_array()) {
            RoofAttachment attachment;
            attachment.roof_id = entry.at("id").as_string();
            check_io(!attachment.roof_id.empty(),
                     "feeder index: empty roof id");
            attachment.bus_id = entry.at("bus").as_string();
            model.attachments_.push_back(std::move(attachment));
        }
    }
    model.resolve_and_validate();
    return model;
}

void FeederModel::resolve_and_validate() {
    // --- Unique ids, resolvable references. --------------------------
    std::unordered_map<std::string, long> feeder_index;
    for (std::size_t f = 0; f < feeders_.size(); ++f)
        check_io(feeder_index.emplace(feeders_[f].id, static_cast<long>(f))
                     .second,
                 "feeder index: duplicate feeder id '" + feeders_[f].id +
                     "'");
    std::unordered_map<std::string, long> bus_index;
    for (std::size_t b = 0; b < buses_.size(); ++b)
        check_io(
            bus_index.emplace(buses_[b].id, static_cast<long>(b)).second,
            "feeder index: duplicate bus id '" + buses_[b].id + "'");

    for (BusRecord& bus : buses_) {
        const auto feeder = feeder_index.find(bus.feeder_id);
        check_io(feeder != feeder_index.end(),
                 "feeder index: bus '" + bus.id + "' names unknown feeder '" +
                     bus.feeder_id + "'");
        bus.feeder = feeder->second;
        if (bus.parent_id.empty()) {
            bus.parent = -1;
            FeederRecord& record =
                feeders_[static_cast<std::size_t>(bus.feeder)];
            // Branch before building the message: the happy path has
            // root_bus == -1, which must never index buses_.
            if (record.root_bus >= 0)
                throw IoError(
                    "feeder index: feeder '" + record.id +
                    "' has two roots ('" +
                    buses_[static_cast<std::size_t>(record.root_bus)].id +
                    "' and '" + bus.id + "')");
            record.root_bus = bus_index.at(bus.id);
        } else {
            const auto parent = bus_index.find(bus.parent_id);
            check_io(parent != bus_index.end(),
                     "feeder index: bus '" + bus.id +
                         "' names unknown parent '" + bus.parent_id + "'");
            bus.parent = parent->second;
            check_io(bus.parent != bus_index.at(bus.id),
                     "feeder index: bus '" + bus.id + "' is its own parent");
            check_io(
                buses_[static_cast<std::size_t>(bus.parent)].feeder_id ==
                    bus.feeder_id,
                "feeder index: bus '" + bus.id + "' and parent '" +
                    bus.parent_id + "' belong to different feeders");
        }
    }
    for (const FeederRecord& feeder : feeders_)
        check_io(feeder.root_bus >= 0, "feeder index: feeder '" + feeder.id +
                                           "' has no root bus");

    std::unordered_set<std::string> attached;
    for (RoofAttachment& attachment : attachments_) {
        const auto bus = bus_index.find(attachment.bus_id);
        check_io(bus != bus_index.end(),
                 "feeder index: roof '" + attachment.roof_id +
                     "' attaches to unknown bus '" + attachment.bus_id +
                     "'");
        attachment.bus = bus->second;
        check_io(attached.insert(attachment.roof_id).second,
                 "feeder index: roof '" + attachment.roof_id +
                     "' attached twice");
    }

    // --- Acyclic parent relation; topological order. ------------------
    children_.assign(buses_.size(), {});
    for (std::size_t b = 0; b < buses_.size(); ++b)
        if (buses_[b].parent >= 0)
            children_[static_cast<std::size_t>(buses_[b].parent)].push_back(
                static_cast<long>(b));

    topo_order_.clear();
    topo_order_.reserve(buses_.size());
    feeder_topo_.assign(feeders_.size(), {});
    std::vector<char> visited(buses_.size(), 0);
    for (std::size_t f = 0; f < feeders_.size(); ++f) {
        // Iterative preorder DFS; a stack entry is pushed exactly once,
        // so a tree reaches every bus and a cycle strands its members.
        std::vector<long> stack{feeders_[f].root_bus};
        while (!stack.empty()) {
            const long b = stack.back();
            stack.pop_back();
            visited[static_cast<std::size_t>(b)] = 1;
            topo_order_.push_back(b);
            feeder_topo_[f].push_back(b);
            const std::vector<long>& kids =
                children_[static_cast<std::size_t>(b)];
            // Reverse push keeps file order on the preorder walk.
            for (auto it = kids.rbegin(); it != kids.rend(); ++it)
                stack.push_back(*it);
        }
    }
    for (std::size_t b = 0; b < buses_.size(); ++b)
        check_io(visited[b] != 0,
                 "feeder index: bus '" + buses_[b].id +
                     "' is unreachable from its feeder root (parent cycle)");
}

long FeederModel::find_feeder(const std::string& feeder_id) const {
    for (std::size_t f = 0; f < feeders_.size(); ++f)
        if (feeders_[f].id == feeder_id) return static_cast<long>(f);
    return -1;
}

long FeederModel::bus_of(const std::string& roof_id) const {
    for (const RoofAttachment& attachment : attachments_)
        if (attachment.roof_id == roof_id) return attachment.bus;
    return -1;
}

const std::vector<long>& FeederModel::feeder_topo(long feeder) const {
    check_arg(feeder >= 0 &&
                  feeder < static_cast<long>(feeder_topo_.size()),
              "FeederModel::feeder_topo: feeder index out of range");
    return feeder_topo_[static_cast<std::size_t>(feeder)];
}

void FeederModel::validate_roofs(const gis::RoofRegistry& registry) const {
    std::unordered_set<std::string> known;
    known.reserve(static_cast<std::size_t>(registry.size()));
    for (const gis::RoofRecord& record : registry.records())
        known.insert(record.id);
    for (const RoofAttachment& attachment : attachments_)
        check_io(known.count(attachment.roof_id) != 0,
                 "feeder index: attached roof '" + attachment.roof_id +
                     "' is not in the roof registry");
}

std::vector<double> FeederModel::base_flows() const {
    std::vector<double> flow(buses_.size(), 0.0);
    // Children accumulate into parents leaf-upward: the reverse of the
    // topo order visits every child before its parent, and the child
    // list order fixes the fold order.
    for (std::size_t b = 0; b < buses_.size(); ++b)
        flow[b] = buses_[b].load_kw;
    for (auto it = topo_order_.rbegin(); it != topo_order_.rend(); ++it) {
        const BusRecord& bus = buses_[static_cast<std::size_t>(*it)];
        if (bus.parent >= 0)
            flow[static_cast<std::size_t>(bus.parent)] +=
                flow[static_cast<std::size_t>(*it)];
    }
    return flow;
}

void FeederModel::apply_injection(std::vector<double>& flow_kw, long bus,
                                  double kw) const {
    check_arg(bus >= 0 && bus < static_cast<long>(buses_.size()),
              "FeederModel::apply_injection: bus index out of range");
    for (long b = bus; b >= 0;
         b = buses_[static_cast<std::size_t>(b)].parent)
        flow_kw[static_cast<std::size_t>(b)] -= kw;
}

std::vector<double> FeederModel::downstream_power_index(
    const std::vector<double>& flow_kw) const {
    check_arg(flow_kw.size() == buses_.size(),
              "FeederModel::downstream_power_index: flow size mismatch");
    std::vector<double> dpi(buses_.size(), 0.0);
    for (long b : topo_order_) {
        const BusRecord& bus = buses_[static_cast<std::size_t>(b)];
        const double upstream =
            bus.parent >= 0 ? dpi[static_cast<std::size_t>(bus.parent)]
                            : 0.0;
        dpi[static_cast<std::size_t>(b)] =
            upstream +
            bus.r_ohm *
                std::max(flow_kw[static_cast<std::size_t>(b)], 0.0);
    }
    return dpi;
}

}  // namespace pvfp::grid

#pragma once
/// \file sequential_place.hpp
/// Grid-aware sequential city placement: rank roofs by DPI × yield.
///
/// sequential_place consumes the per-roof yield records of a
/// gis::run_city JSONL stream (or a serving-plane equivalent) plus a
/// FeederModel, and greedily builds a deployment *plan*: at each step
/// it scores every remaining attached roof as
///
///     score = yield_kwh * (1 + dpi[bus])
///
/// with dpi the Downstream Power Index under the current net flows,
/// picks the best feasible roof (its average export must fit the
/// feeder's remaining shared cap), commits the placement, subtracts
/// its injection from the bus flows on the path to the root, and
/// re-scores the affected buses — exactly the placed roof's feeder,
/// since no other feeder's flows changed.  Ties break by results
/// order (= registry order), strictly: the placement sequence and the
/// emitted bytes are identical at any thread count, because the
/// candidate scan is a fixed-chunk parallel argmax merged in chunk
/// order (the PR-2 pool contract).
///
/// Roofs whose record carries status:error are skipped up front (they
/// never reach the scorer, so no NaN can leak into a score), as are
/// roofs the feeder index does not attach.  Roofs whose export no
/// longer fits their feeder's cap are reported as capped.
///
/// sequential_place_reference is the brute-force differential oracle:
/// no incremental state at all — each step it rebuilds the flows from
/// base by replaying every committed placement in order, recomputes
/// DPI for all buses, and re-walks all remaining roofs serially.  The
/// shared fold orders (base_flows / apply_injection /
/// downstream_power_index) make both placers bitwise identical, which
/// the equivalence suite pins on seeded random instances.

#include <string>
#include <vector>

#include "pvfp/gis/city_runner.hpp"
#include "pvfp/grid/feeder_model.hpp"

namespace pvfp::grid {

struct GridPlaceOptions {
    /// Converts annual yield [kWh] to the average export power [kW]
    /// accounted against the feeder cap.
    double hours_per_year = 8760.0;
    /// Restrict placement to one feeder id ("" = whole model) — the
    /// serving daemon's grid_rank re-ranks a single feeder this way.
    std::string feeder_filter;
    /// Required output JSONL stream ("" = keep results in memory only).
    std::string plan_jsonl_path;
    /// Optional per-feeder summary CSV.
    std::string summary_csv_path;
};

/// One committed placement, in pick order.
struct GridPlacement {
    long order = 0;  ///< 1-based pick position
    std::string roof_id;
    std::string bus_id;
    std::string feeder_id;
    double yield_kwh = 0.0;
    double avg_kw = 0.0;  ///< yield_kwh / hours_per_year
    double dpi = 0.0;     ///< at pick time
    double score = 0.0;   ///< yield_kwh * (1 + dpi)
    double feeder_used_kw = 0.0;  ///< feeder total after this pick
};

/// A roof the plan could not place.
struct GridSkipped {
    std::string roof_id;
    std::string reason;  ///< "error" | "capped"
};

/// Per-feeder accounting, model order.
struct GridFeederTotal {
    std::string feeder_id;
    long placed = 0;
    long capped = 0;  ///< attached ok-roofs that no longer fit the cap
    double placed_kw = 0.0;
    double export_cap_kw = 0.0;  ///< <= 0 = uncapped
    double yield_kwh = 0.0;
};

struct GridPlanResult {
    std::vector<GridPlacement> placements;
    std::vector<GridSkipped> skipped;
    std::vector<GridFeederTotal> feeders;
    long attached = 0;  ///< results with an attachment (after filter)
    long errors = 0;    ///< attached but status:error
};

/// Serialize one placement as a JSONL line (no trailing newline);
/// fixed key order and precision — the byte-determinism contract.
std::string placement_to_jsonl(const GridPlacement& placement);

/// Greedy DPI-weighted placement over \p results (see file comment).
/// Every attachment the filter keeps must name a roof present in
/// \p results (IoError otherwise — run_city emits a record for every
/// registry roof, errors included, so a gap means mismatched inputs).
GridPlanResult sequential_place(const FeederModel& model,
                                const std::vector<gis::RoofResult>& results,
                                const GridPlaceOptions& options = {});

/// The brute-force differential oracle (see file comment).  Never
/// writes files; bitwise-identical placements to sequential_place.
GridPlanResult sequential_place_reference(
    const FeederModel& model, const std::vector<gis::RoofResult>& results,
    const GridPlaceOptions& options = {});

}  // namespace pvfp::grid

#pragma once
/// \file exhaustive_placer.hpp
/// Exhaustive reference placer for small instances.
///
/// Paper Section III-C: "the calculation of the optimal placement requires
/// an exhaustive enumeration of all possible candidate grid points, which
/// becomes quickly unfeasible even for small areas" (O(N^Ng) solution
/// space).  This module implements exactly that enumeration — with overlap
/// pruning — so tests and the optimality-gap bench can measure how close
/// the greedy heuristic gets on instances where the optimum is computable.
///
/// The objective is pluggable: by default the footprint-suitability sum
/// (position-only, so enumerating anchor *combinations* is exact); a
/// custom objective receives the full floorplan (series-first assignment
/// in enumeration order) and may be non-separable, e.g. true yearly
/// energy.  For the true-energy objective, wrap an IncrementalEvaluator
/// with make_incremental_objective (incremental_evaluator.hpp): DFS
/// leaves share long prefixes, so each leaf is scored by a delta update
/// instead of a full re-evaluation.

#include <functional>

#include "pvfp/core/layout.hpp"
#include "pvfp/util/grid2d.hpp"

namespace pvfp::core {

/// Objective: higher is better.
using PlacementObjective = std::function<double(const Floorplan&)>;

struct ExhaustiveOptions {
    /// Hard cap on explored search nodes; throws Infeasible when exceeded
    /// (the paper's point about intractability, made concrete).
    long long max_nodes = 20'000'000;
};

struct ExhaustiveStats {
    long long nodes = 0;        ///< search-tree nodes visited
    long long leaves = 0;       ///< complete placements evaluated
    double best_objective = 0.0;
};

/// Enumerate all non-overlapping N-subsets of feasible anchors (N from
/// \p topology) and return the floorplan maximizing \p objective.
/// When \p objective is null, maximizes the footprint-suitability sum.
Floorplan place_exhaustive(const geo::PlacementArea& area,
                           const pvfp::Grid2D<double>& suitability,
                           const PanelGeometry& geometry,
                           const pv::Topology& topology,
                           const PlacementObjective& objective = nullptr,
                           const ExhaustiveOptions& options = {},
                           ExhaustiveStats* stats = nullptr);

}  // namespace pvfp::core

#pragma once
/// \file pipeline.hpp
/// End-to-end orchestration: scene -> DSM -> suitable area -> horizons ->
/// weather -> irradiance field -> suitability -> placements -> energy.
/// This is the programmatic equivalent of the paper's full flow (GIS data
/// extraction of Section IV feeding the algorithm of Section III), and the
/// single entry point used by examples and benches.

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "pvfp/core/compact_placer.hpp"
#include "pvfp/core/evaluator.hpp"
#include "pvfp/core/greedy_placer.hpp"
#include "pvfp/core/roof_library.hpp"
#include "pvfp/core/suitability.hpp"
#include "pvfp/solar/sky_artifact.hpp"
#include "pvfp/weather/synthetic.hpp"

namespace pvfp::core {

/// Every knob of the pipeline, with paper-faithful defaults.
struct ScenarioConfig {
    solar::Location location{};  ///< Torino defaults
    pvfp::TimeGrid grid{15, 1, 365};  ///< one year at 15-minute steps
    weather::SyntheticWeatherOptions weather{};
    solar::FieldConfig field{};
    geo::SuitableAreaOptions area{};
    geo::HorizonOptions horizon{};
    SuitabilityOptions suitability{};
    pv::ModuleSpec module{};
    /// Virtual grid pitch s [m] (paper: 0.2); also the DSM resolution.
    double cell_size = 0.2;
    /// Shared per-batch sky precompute (ROADMAP "shared-weather
    /// batching").  When set, prepare_scenario consumes it instead of
    /// regenerating synthetic weather and the per-step sun/transposition
    /// precompute for every roof; it must have been prepared for this
    /// config's location, grid, and sky model (checked).  run_scenarios
    /// prepares one automatically when unset.  Results are bitwise
    /// identical either way.
    std::shared_ptr<const solar::SharedSkyArtifact> shared_sky;
    /// Optional shared horizon source (ROADMAP "share prepared
    /// HorizonMaps between adjacent roofs").  When set,
    /// prepare_scenario asks it for the placement window's horizons —
    /// arguments are the scenario DSM and the window the local build
    /// would march — before marching locally; returning std::nullopt
    /// falls back to the local build.  The returned map must cover
    /// exactly the requested window (checked).  gis::HorizonCache
    /// windows satisfy the determinism contract: served planes are
    /// bitwise-identical to a fresh HorizonMap over the same terrain,
    /// independent of thread count and eviction order.
    std::function<std::optional<geo::HorizonMap>(
        const geo::Raster& dsm, int x0, int y0, int w, int h,
        const geo::HorizonOptions& options)>
        horizon_provider;
};

/// A scenario with all derived data materialized, ready for experiments.
struct PreparedScenario {
    std::string name;
    /// The DSM the artifacts were derived from — shared, never null:
    /// GIS scenarios alias their (immutable) mosaic instead of copying
    /// a possibly multi-megabyte window per roof; procedural scenarios
    /// own their rasterization.
    std::shared_ptr<const geo::Raster> dsm;
    geo::PlacementArea area;
    solar::IrradianceField field;
    SuitabilityResult suitability;
    pv::EmpiricalModuleModel model;
    PanelGeometry geometry;
    ScenarioConfig config;
};

/// Build every derived artifact of \p scenario under \p config.
PreparedScenario prepare_scenario(const RoofScenario& scenario,
                                  const ScenarioConfig& config = {});

/// One Table-I style comparison: traditional vs proposed on a topology.
struct PlacementComparison {
    Floorplan traditional;
    CompactMode traditional_mode = CompactMode::FullBlock;
    Floorplan proposed;
    GreedyStats greedy_stats;
    EvaluationResult traditional_eval;
    EvaluationResult proposed_eval;

    /// Fractional improvement of proposed over traditional (Table I "%").
    double improvement() const {
        return traditional_eval.energy_kwh > 0.0
                   ? proposed_eval.energy_kwh /
                             traditional_eval.energy_kwh -
                         1.0
                   : 0.0;
    }
};

/// Run both placers and evaluate them over the full horizon.
PlacementComparison compare_placements(
    const PreparedScenario& prepared, const pv::Topology& topology,
    const GreedyOptions& greedy_options = {},
    const EvaluationOptions& eval_options = {});

/// How the batch runner distributes its work over the thread pool.
enum class ParallelPolicy {
    /// Outer-loop when the batch is at least as wide as the pool (many
    /// small roofs), inner-loop otherwise (few big roofs).
    Auto,
    /// One scenario per task; each scenario's own loops run serially.
    /// Best when scenarios are many and individually small.
    OuterScenarios,
    /// Scenarios processed one after the other; each one's horizon /
    /// field / evaluation loops fan out.  Best for few large roofs.
    InnerLoops,
};

/// Batch configuration: which topologies to compare on every scenario,
/// and how to parallelize.
struct BatchOptions {
    /// Topologies compared on each scenario (paper Table I: 8x2, 8x4).
    std::vector<pv::Topology> topologies{{8, 2}, {8, 4}};
    GreedyOptions greedy{};
    EvaluationOptions eval{};
    ParallelPolicy policy = ParallelPolicy::Auto;
};

/// Everything the batch produced for one scenario.
struct ScenarioReport {
    PreparedScenario prepared;
    /// One comparison per BatchOptions::topologies entry, same order.
    std::vector<PlacementComparison> comparisons;
};

/// Prepare and compare many roof scenarios concurrently — the many-roofs
/// workload (one report per input scenario, input order preserved).
/// Results are identical under every policy and thread count: scenarios
/// are independent, and the inner loops use deterministic fixed-chunk
/// parallelism.  The first exception thrown by any scenario (e.g.
/// Infeasible when a topology does not fit) is rethrown.
std::vector<ScenarioReport> run_scenarios(
    std::span<const RoofScenario> scenarios,
    const ScenarioConfig& config = {}, const BatchOptions& options = {});

}  // namespace pvfp::core

#pragma once
/// \file annealing_placer.hpp
/// Simulated-annealing refinement of a floorplan (extension/ablation).
///
/// The paper stops at the greedy heuristic; this refiner measures how much
/// headroom greedy leaves on the table under the *true* objective (yearly
/// energy including mismatch and wiring), which the greedy ranking only
/// approximates through the suitability signature.  Moves: relocate one
/// module to a random feasible anchor, or swap two modules between string
/// positions (which changes mismatch/wiring but not covered cells).
/// Fully deterministic given the seed.
///
/// Two entry points share one proposal loop (and one RNG stream):
///  - the closure overload evaluates an arbitrary PlacementObjective on a
///    full candidate copy per proposal (O(steps x all modules) when the
///    objective is evaluate_floorplan);
///  - the IncrementalEvaluator overload drives proposals through
///    delta_move/delta_swap + commit/rollback, so a relocation pays only
///    the moved module's series (free on an anchor-cache hit) plus a
///    cheap re-aggregation of cached operating points, and a swap only
///    the re-aggregation.  Feasibility is validated per moved footprint
///    only — the
///    full-plan re-validation that evaluate_floorplan performs on every
///    closure call is hoisted into the evaluator's one-time constructor
///    pass.

#include <functional>

#include "pvfp/core/exhaustive_placer.hpp"
#include "pvfp/core/incremental_evaluator.hpp"
#include "pvfp/core/layout.hpp"

namespace pvfp::core {

struct AnnealingOptions {
    std::uint64_t seed = 1;
    int iterations = 4000;
    double initial_temperature = 0.0;  ///< 0 = auto from objective scale
    double cooling = 0.995;            ///< geometric factor per iteration
    /// Probability of a swap move (vs relocate).
    double swap_probability = 0.3;
};

struct AnnealingStats {
    int accepted = 0;
    int improved = 0;
    double initial_objective = 0.0;
    double final_objective = 0.0;
};

/// Refine \p initial under \p objective (higher is better).  The returned
/// plan is always feasible and never worse than the initial one.
Floorplan refine_annealing(const Floorplan& initial,
                           const geo::PlacementArea& area,
                           const PlacementObjective& objective,
                           const AnnealingOptions& options = {},
                           AnnealingStats* stats = nullptr);

/// Refine the evaluator's committed plan under the true yearly-energy
/// objective through the incremental delta API.  Consumes the same RNG
/// stream as the closure overload, so both paths propose the same move
/// sequence for a given seed.  On return the evaluator is committed at
/// the best visited plan (which is also returned); it must not hold a
/// pending proposal on entry.
Floorplan refine_annealing(IncrementalEvaluator& evaluator,
                           const AnnealingOptions& options = {},
                           AnnealingStats* stats = nullptr);

}  // namespace pvfp::core

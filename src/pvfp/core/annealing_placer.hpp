#pragma once
/// \file annealing_placer.hpp
/// Simulated-annealing refinement of a floorplan (extension/ablation).
///
/// The paper stops at the greedy heuristic; this refiner measures how much
/// headroom greedy leaves on the table under the *true* objective (yearly
/// energy including mismatch and wiring), which the greedy ranking only
/// approximates through the suitability signature.  Moves: relocate one
/// module to a random feasible anchor, or swap two modules between string
/// positions (which changes mismatch/wiring but not covered cells).
/// Fully deterministic given the seed.

#include <functional>

#include "pvfp/core/exhaustive_placer.hpp"
#include "pvfp/core/layout.hpp"

namespace pvfp::core {

struct AnnealingOptions {
    std::uint64_t seed = 1;
    int iterations = 4000;
    double initial_temperature = 0.0;  ///< 0 = auto from objective scale
    double cooling = 0.995;            ///< geometric factor per iteration
    /// Probability of a swap move (vs relocate).
    double swap_probability = 0.3;
};

struct AnnealingStats {
    int accepted = 0;
    int improved = 0;
    double initial_objective = 0.0;
    double final_objective = 0.0;
};

/// Refine \p initial under \p objective (higher is better).  The returned
/// plan is always feasible and never worse than the initial one.
Floorplan refine_annealing(const Floorplan& initial,
                           const geo::PlacementArea& area,
                           const PlacementObjective& objective,
                           const AnnealingOptions& options = {},
                           AnnealingStats* stats = nullptr);

}  // namespace pvfp::core

#pragma once
/// \file string_row_placer.hpp
/// String-rigid placer: an intermediate between the traditional compact
/// block and the paper's fully-free placement.
///
/// The paper's claimed novelty is letting *individual modules* be placed
/// "individually, therefore possibly yielding an unconventional,
/// 'irregular' floorplanning" (Section I).  This placer removes exactly
/// that freedom — each series string stays one rigid row of m modules —
/// while keeping everything else (suitability ranking, greedy selection).
/// The energy gap between this placer and place_greedy() therefore
/// *isolates the value of module-level freedom*, the paper's Fig. 1
/// message, measured in bench/ablation_rigidity.

#include "pvfp/core/layout.hpp"
#include "pvfp/util/grid2d.hpp"

namespace pvfp::core {

struct StringRowOptions {
    /// Small penalty per cell of distance between consecutive string rows
    /// (keeps equal-suitability rows adjacent, mirroring the greedy's
    /// wiring tie-break).
    double row_distance_penalty = 1e-6;
};

/// Place each of the topology's n strings as one rigid horizontal row of
/// m modules, rows chosen greedily by total footprint suitability.
/// Throws Infeasible when any string cannot be placed.
Floorplan place_string_rows(const geo::PlacementArea& area,
                            const pvfp::Grid2D<double>& suitability,
                            const PanelGeometry& geometry,
                            const pv::Topology& topology,
                            const StringRowOptions& options = {});

}  // namespace pvfp::core

#include "pvfp/core/annealing_placer.hpp"

#include <algorithm>
#include <cmath>

#include "pvfp/util/error.hpp"
#include "pvfp/util/rng.hpp"

namespace pvfp::core {
namespace {

bool relocation_feasible(const Floorplan& plan, std::size_t index,
                         const ModulePlacement& target,
                         const geo::PlacementArea& area) {
    if (!anchor_fits(area, plan.geometry, target.x, target.y)) return false;
    for (std::size_t i = 0; i < plan.modules.size(); ++i) {
        if (i == index) continue;
        if (modules_overlap(target, plan.modules[i], plan.geometry))
            return false;
    }
    return true;
}

}  // namespace

Floorplan refine_annealing(const Floorplan& initial,
                           const geo::PlacementArea& area,
                           const PlacementObjective& objective,
                           const AnnealingOptions& options,
                           AnnealingStats* stats) {
    check_arg(static_cast<bool>(objective),
              "refine_annealing: objective must be callable");
    check_arg(options.iterations >= 0,
              "refine_annealing: negative iteration count");
    check_arg(options.cooling > 0.0 && options.cooling < 1.0,
              "refine_annealing: cooling must be in (0,1)");
    check_arg(options.swap_probability >= 0.0 &&
                  options.swap_probability <= 1.0,
              "refine_annealing: bad swap probability");
    std::string why;
    check_arg(floorplan_feasible(initial, area, &why),
              "refine_annealing: initial plan infeasible: " + why);
    check_arg(!initial.modules.empty(), "refine_annealing: empty plan");

    const auto anchors = enumerate_anchors(area, initial.geometry);
    check_arg(!anchors.empty(), "refine_annealing: no anchors");

    pvfp::Rng rng(options.seed);

    Floorplan current = initial;
    double current_value = objective(current);
    Floorplan best = current;
    double best_value = current_value;

    double temperature = options.initial_temperature;
    if (temperature <= 0.0) {
        // Auto scale: a few percent of the objective magnitude.
        temperature = std::max(1e-9, std::abs(current_value) * 0.02);
    }

    AnnealingStats local;
    local.initial_objective = current_value;

    for (int it = 0; it < options.iterations; ++it) {
        Floorplan candidate = current;
        if (candidate.modules.size() >= 2 &&
            rng.bernoulli(options.swap_probability)) {
            // Swap two modules' string positions.
            const auto i = static_cast<std::size_t>(
                rng.uniform_int(candidate.modules.size()));
            auto j = static_cast<std::size_t>(
                rng.uniform_int(candidate.modules.size() - 1));
            if (j >= i) ++j;
            std::swap(candidate.modules[i], candidate.modules[j]);
        } else {
            // Relocate one module to a random feasible anchor.
            const auto i = static_cast<std::size_t>(
                rng.uniform_int(candidate.modules.size()));
            const auto& target = anchors[static_cast<std::size_t>(
                rng.uniform_int(anchors.size()))];
            if (!relocation_feasible(candidate, i, target, area)) {
                temperature *= options.cooling;
                continue;
            }
            candidate.modules[i] = target;
        }

        const double value = objective(candidate);
        const double delta = value - current_value;
        if (delta >= 0.0 ||
            rng.uniform() < std::exp(delta / temperature)) {
            current = std::move(candidate);
            current_value = value;
            ++local.accepted;
            if (current_value > best_value) {
                best = current;
                best_value = current_value;
                ++local.improved;
            }
        }
        temperature *= options.cooling;
    }

    local.final_objective = best_value;
    if (stats) *stats = local;
    return best;
}

}  // namespace pvfp::core

#include "pvfp/core/annealing_placer.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "pvfp/util/error.hpp"
#include "pvfp/util/rng.hpp"

namespace pvfp::core {
namespace {

bool relocation_feasible(const Floorplan& plan, std::size_t index,
                         const ModulePlacement& target,
                         const geo::PlacementArea& area) {
    if (!anchor_fits(area, plan.geometry, target.x, target.y)) return false;
    for (std::size_t i = 0; i < plan.modules.size(); ++i) {
        if (i == index) continue;
        if (modules_overlap(target, plan.modules[i], plan.geometry))
            return false;
    }
    return true;
}

/// The shared annealing loop.  A Proposer exposes the current objective
/// value, proposes swap/relocate moves, and accepts or rejects the single
/// outstanding proposal; both proposers consume no randomness, so the RNG
/// stream — and therefore the proposed move sequence — is identical for
/// the closure and incremental paths.
template <typename Proposer>
Floorplan anneal(Proposer& proposer, std::span<const ModulePlacement> anchors,
                 const AnnealingOptions& options, AnnealingStats* stats) {
    check_arg(options.iterations >= 0,
              "refine_annealing: negative iteration count");
    check_arg(options.cooling > 0.0 && options.cooling < 1.0,
              "refine_annealing: cooling must be in (0,1)");
    check_arg(options.swap_probability >= 0.0 &&
                  options.swap_probability <= 1.0,
              "refine_annealing: bad swap probability");
    check_arg(!anchors.empty(), "refine_annealing: no anchors");
    const std::size_t n = proposer.module_count();
    check_arg(n > 0, "refine_annealing: empty plan");

    pvfp::Rng rng(options.seed);

    double current_value = proposer.current_value();
    Floorplan best = proposer.snapshot();
    double best_value = current_value;

    double temperature = options.initial_temperature;
    if (temperature <= 0.0) {
        // Auto scale: a few percent of the objective magnitude.
        temperature = std::max(1e-9, std::abs(current_value) * 0.02);
    }

    AnnealingStats local;
    local.initial_objective = current_value;

    for (int it = 0; it < options.iterations; ++it) {
        double value = 0.0;
        bool proposed = false;
        if (n >= 2 && rng.bernoulli(options.swap_probability)) {
            // Swap two modules' string positions.
            const auto i = static_cast<std::size_t>(rng.uniform_int(n));
            auto j = static_cast<std::size_t>(rng.uniform_int(n - 1));
            if (j >= i) ++j;
            value = proposer.propose_swap(i, j);
            proposed = true;
        } else {
            // Relocate one module to a random feasible anchor.
            const auto i = static_cast<std::size_t>(rng.uniform_int(n));
            const ModulePlacement& target = anchors[static_cast<std::size_t>(
                rng.uniform_int(anchors.size()))];
            proposed = proposer.propose_move(i, target, value);
        }
        if (!proposed) {
            temperature *= options.cooling;
            continue;
        }

        const double delta = value - current_value;
        if (delta >= 0.0 ||
            rng.uniform() < std::exp(delta / temperature)) {
            proposer.accept();
            current_value = value;
            ++local.accepted;
            if (current_value > best_value) {
                best = proposer.snapshot();
                best_value = current_value;
                ++local.improved;
            }
        } else {
            proposer.reject();
        }
        temperature *= options.cooling;
    }

    local.final_objective = best_value;
    if (stats) *stats = local;
    return best;
}

/// Full-copy proposer: every proposal evaluates the objective closure on
/// a candidate copy (the objective revalidates the whole plan when it is
/// evaluate_floorplan — the cost the incremental path removes).
struct ClosureProposer {
    const geo::PlacementArea& area;
    const PlacementObjective& objective;
    Floorplan current;
    Floorplan candidate;

    std::size_t module_count() const { return current.modules.size(); }
    double current_value() { return objective(current); }
    Floorplan snapshot() const { return current; }
    double propose_swap(std::size_t i, std::size_t j) {
        candidate = current;
        std::swap(candidate.modules[i], candidate.modules[j]);
        return objective(candidate);
    }
    bool propose_move(std::size_t i, const ModulePlacement& target,
                      double& value) {
        if (!relocation_feasible(current, i, target, area)) return false;
        candidate = current;
        candidate.modules[i] = target;
        value = objective(candidate);
        return true;
    }
    void accept() { current = std::move(candidate); }
    void reject() {}
};

/// Delta proposer: feasibility is the targeted per-footprint check, and
/// the objective updates through the evaluator's cached series.
struct IncrementalProposer {
    IncrementalEvaluator& evaluator;

    std::size_t module_count() const {
        return evaluator.plan().modules.size();
    }
    double current_value() { return evaluator.energy_kwh(); }
    Floorplan snapshot() const { return evaluator.plan(); }
    double propose_swap(std::size_t i, std::size_t j) {
        return evaluator.delta_swap(static_cast<int>(i),
                                    static_cast<int>(j));
    }
    bool propose_move(std::size_t i, const ModulePlacement& target,
                      double& value) {
        if (!evaluator.move_feasible(static_cast<int>(i), target))
            return false;
        value = evaluator.delta_move(static_cast<int>(i), target);
        return true;
    }
    void accept() { evaluator.commit(); }
    void reject() { evaluator.rollback(); }
};

}  // namespace

Floorplan refine_annealing(const Floorplan& initial,
                           const geo::PlacementArea& area,
                           const PlacementObjective& objective,
                           const AnnealingOptions& options,
                           AnnealingStats* stats) {
    check_arg(static_cast<bool>(objective),
              "refine_annealing: objective must be callable");
    std::string why;
    check_arg(floorplan_feasible(initial, area, &why),
              "refine_annealing: initial plan infeasible: " + why);
    check_arg(!initial.modules.empty(), "refine_annealing: empty plan");

    const auto anchors = enumerate_anchors(area, initial.geometry);
    ClosureProposer proposer{area, objective, initial, {}};
    return anneal(proposer, anchors, options, stats);
}

Floorplan refine_annealing(IncrementalEvaluator& evaluator,
                           const AnnealingOptions& options,
                           AnnealingStats* stats) {
    check_arg(!evaluator.has_pending(),
              "refine_annealing: evaluator holds a pending proposal");

    const auto anchors =
        enumerate_anchors(evaluator.area(), evaluator.plan().geometry);
    IncrementalProposer proposer{evaluator};
    Floorplan best = anneal(proposer, anchors, options, stats);

    // The loop leaves the evaluator at the last accepted plan; move it to
    // the best visited one so callers read best energy/result directly.
    evaluator.sync_to(best.modules);
    return best;
}

}  // namespace pvfp::core

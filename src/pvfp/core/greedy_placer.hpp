#pragma once
/// \file greedy_placer.hpp
/// The paper's floorplanning algorithm (Section III-C, Fig. 5).
///
/// Grid positions are ranked by suitability; modules are allocated
/// greedily in series-first order, picking candidate anchors in
/// non-increasing suitability, with
///  - wiring distance as tie-breaker among equal-suitability candidates,
///  - a distance-threshold filter ("twice the average distance of the
///    already placed modules") rejecting high-suitability outliers that
///    would cost disproportionate cable,
///  - removal of covered grid points after each placement (a module spans
///    k1*k2 cells).
///
/// Interpretation choices relative to the terse pseudo-code are documented
/// in DESIGN.md Section 5 and are switchable here for the ablations.

#include "pvfp/core/layout.hpp"
#include "pvfp/util/grid2d.hpp"

namespace pvfp::core {

/// How an anchor position is scored from the suitability matrix.
enum class AnchorScore {
    /// Mean suitability over the k1*k2 footprint (default: same spirit,
    /// strictly better informed than a single cell).
    FootprintMean,
    /// The literal paper reading: suitability of the anchor grid point.
    TopLeftCell,
};

/// Options of the greedy placement.
struct GreedyOptions {
    AnchorScore anchor_score = AnchorScore::FootprintMean;
    /// Threshold factor: candidate-to-nearest-placed distance must not
    /// exceed factor * mean pairwise distance of placed modules (paper
    /// uses 2).  Disabled entirely when enable_distance_threshold=false.
    double distance_threshold_factor = 2.0;
    bool enable_distance_threshold = true;
    /// Tolerance for "identical values of suitability" (tie-breaking),
    /// *relative* to the leading candidate's score.  Real suitability
    /// values never tie exactly (histogram noise, surface texture), so
    /// candidates within this fraction of the best remaining score are
    /// treated as the paper's "identical values" and resolved by wiring
    /// distance.  A ~1% band keeps series strings spatially contiguous —
    /// the homogeneity that makes series-first enumeration avoid the
    /// weak-module bottleneck (paper Section V-B).
    double tie_epsilon = 0.01;
};

/// Diagnostics of a greedy run.
struct GreedyStats {
    /// Candidates skipped by the distance-threshold filter.
    int threshold_rejections = 0;
    /// Placements that had to ignore the threshold because no candidate
    /// satisfied it (the paper's loop would silently drop the module; we
    /// place it anyway and count the relaxation).
    int threshold_relaxations = 0;
    /// Number of candidate anchors considered.
    int candidate_count = 0;
};

/// Place topology.total() modules on \p area ranked by \p suitability.
/// Returns the floorplan in series-first order.  Throws Infeasible when
/// the area cannot host the requested number of modules.
Floorplan place_greedy(const geo::PlacementArea& area,
                       const pvfp::Grid2D<double>& suitability,
                       const PanelGeometry& geometry,
                       const pv::Topology& topology,
                       const GreedyOptions& options = {},
                       GreedyStats* stats = nullptr);

/// Score an anchor according to \p mode (exposed for tests/ablation).
double anchor_score(const pvfp::Grid2D<double>& suitability,
                    const PanelGeometry& geometry, int x, int y,
                    AnchorScore mode);

}  // namespace pvfp::core

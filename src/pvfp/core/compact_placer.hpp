#pragma once
/// \file compact_placer.hpp
/// The "traditional" compact placement baseline of paper Section V-B:
/// modules packed tightly into an n-rows x m-columns block (one series
/// string per row), positioned on "the most irradiated area of the roof"
/// using the same suitability information as the proposed algorithm — the
/// paper's deliberately strong reference.
///
/// When encumbrances leave no room for the monolithic block the placer
/// degrades gracefully: first to independently-positioned compact string
/// rows, then to per-module compaction (each module placed adjacent to the
/// previous one).  The mode used is reported so experiments can tell.

#include "pvfp/core/layout.hpp"
#include "pvfp/util/grid2d.hpp"

namespace pvfp::core {

/// How compact the achievable placement was.
enum class CompactMode {
    FullBlock,    ///< the n x m block fit as one rectangle
    StringRows,   ///< each string is one compact row, rows placed separately
    PerModule,    ///< modules placed one-by-one, adjacency-greedy
};

struct CompactResult {
    Floorplan plan;
    CompactMode mode = CompactMode::FullBlock;
    /// Total suitability captured by the footprint (the placement score).
    double score = 0.0;
};

/// Options for the baseline.
struct CompactOptions {
    /// Allow degradation to StringRows / PerModule when the block cannot
    /// fit; when false, throws Infeasible instead.
    bool allow_fallback = true;
};

/// Place the traditional compact baseline.
CompactResult place_compact(const geo::PlacementArea& area,
                            const pvfp::Grid2D<double>& suitability,
                            const PanelGeometry& geometry,
                            const pv::Topology& topology,
                            const CompactOptions& options = {});

}  // namespace pvfp::core

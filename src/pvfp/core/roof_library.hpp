#pragma once
/// \file roof_library.hpp
/// Synthetic stand-ins for the paper's case studies (Section V-A).
///
/// The paper evaluates three real lean-to industrial roofs in Torino
/// (~49-60 m x 10 m plan, 26 deg tilt, facing S/SW) whose LiDAR DSMs are
/// not public.  These factories build procedural scenes with the features
/// the paper describes:
///  - Roof 1: large pipe runs occupying much of the surface (the paper
///    notes its reduced valid area and lower average irradiance), plus
///    HVAC boxes and a taller neighbour to the east;
///  - Roof 2: skylights/chimneys and an eastern neighbour producing the
///    "least irradiated grid elements on the right-hand side" pattern of
///    Fig. 6(b);
///  - Roof 3: scattered service boxes, a southern tree row and a western
///    neighbour (heterogeneous shading, the largest gains in Table I).
/// A residential gable-roof scene (title use-case) and a small toy scene
/// (tests/quickstart) complete the library.

#include <memory>
#include <string>

#include "pvfp/geo/scene.hpp"

namespace pvfp::core {

/// A scene plus the roof plane on which modules are placed.
///
/// Two provenances share this type: procedural scenarios (the library
/// below) carry only the scene, and prepare_scenario rasterizes it; GIS
/// scenarios (pvfp::gis) additionally carry a measured DSM mosaic and
/// optionally a footprint mask, with the scene reduced to the fitted
/// roof-plane description the suitable-area extraction needs.
struct RoofScenario {
    std::string name;
    geo::SceneBuilder scene;
    int roof_index = 0;
    /// When set, prepare_scenario uses this raster instead of
    /// scene.rasterize() — the real-world path, where the DSM is measured
    /// (tile mosaic) rather than synthesized.  Its cell size must match
    /// ScenarioConfig::cell_size.  Shared so that scenario values stay
    /// cheap to copy around the batch runner.
    std::shared_ptr<const geo::Raster> dsm;
    /// Optional placement mask aligned with the DSM (same width/height):
    /// cells holding 0 are excluded from the suitable area on top of the
    /// geometric roof-rectangle test (GIS: outside the footprint polygon,
    /// or NODATA in the source tiles).
    std::shared_ptr<const pvfp::Grid2D<unsigned char>> placement_mask;
};

/// Paper Roof 1 analogue (pipes dominate).
RoofScenario make_roof1();
/// Paper Roof 2 analogue (skylights + eastern neighbour).
RoofScenario make_roof2();
/// Paper Roof 3 analogue (tree row + western neighbour).
RoofScenario make_roof3();
/// All three paper roofs, in order.
std::vector<RoofScenario> make_paper_roofs();

/// Residential gable roof with chimney, dormer and a garden tree (the
/// title's "residential installations" use-case; examples).
RoofScenario make_residential();

/// Small monopitch roof with one chimney and an eastern wall; fast enough
/// for unit tests.  \p width_m x \p depth_m plan.
RoofScenario make_toy(double width_m = 8.0, double depth_m = 4.8);

}  // namespace pvfp::core

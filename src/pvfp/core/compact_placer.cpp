#include "pvfp/core/compact_placer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "pvfp/util/error.hpp"
#include "pvfp/util/parallel.hpp"

namespace pvfp::core {
namespace {

/// Result of a parallel argmax scan over candidate positions.  Combining
/// partials in chunk order with "strictly greater wins" reproduces the
/// sequential scan's first-candidate-wins tie-breaking exactly, so the
/// chosen position is independent of the thread count.
struct ScanBest {
    double score = -std::numeric_limits<double>::infinity();
    long index = -1;  ///< flat scan index of the winner (-1: none)
};

ScanBest better_of(ScanBest a, const ScanBest& b) {
    return b.score > a.score ? b : a;
}

/// Argmax of score(index) over [0, count) in scan order; score returns
/// -infinity for invalid candidates.  Chunked over \p chunk indices.
template <typename ScoreFn>
ScanBest parallel_scan_best(long count, long chunk, const ScoreFn& score) {
    return parallel_reduce(
        0L, count, chunk, ScanBest{},
        [&](long b, long e) {
            ScanBest best;
            for (long i = b; i < e; ++i) {
                const double s = score(i);
                if (s > best.score) best = {s, i};
            }
            return best;
        },
        better_of);
}

/// All-valid test for a w x h cell rectangle at (x,y).
bool rect_valid(const geo::PlacementArea& area, int x, int y, int w, int h) {
    if (x < 0 || y < 0 || x + w > area.width || y + h > area.height)
        return false;
    for (int yy = y; yy < y + h; ++yy)
        for (int xx = x; xx < x + w; ++xx)
            if (!area.valid(xx, yy)) return false;
    return true;
}

/// Occupancy helpers shared by the fallback paths.
struct Occupancy {
    explicit Occupancy(const geo::PlacementArea& area)
        : grid(area.width, area.height, 0) {}

    bool free_rect(int x, int y, int w, int h) const {
        for (int yy = y; yy < y + h; ++yy)
            for (int xx = x; xx < x + w; ++xx)
                if (grid(xx, yy)) return false;
        return true;
    }
    void mark_rect(int x, int y, int w, int h) {
        for (int yy = y; yy < y + h; ++yy)
            for (int xx = x; xx < x + w; ++xx)
                grid(xx, yy) = 1;
    }
    pvfp::Grid2D<unsigned char> grid;
};

}  // namespace

CompactResult place_compact(const geo::PlacementArea& area,
                            const pvfp::Grid2D<double>& suitability,
                            const PanelGeometry& geometry,
                            const pv::Topology& topology,
                            const CompactOptions& options) {
    check_arg(suitability.width() == area.width &&
                  suitability.height() == area.height,
              "place_compact: suitability matrix does not match the area");
    const int m = topology.series;
    const int n = topology.strings;
    check_arg(m > 0 && n > 0, "place_compact: degenerate topology");

    const pvfp::SummedAreaTable sat(suitability, &area.valid);

    CompactResult result;
    result.plan.geometry = geometry;
    result.plan.topology = topology;

    // --- Mode 1: monolithic block, m modules per row, n rows. ----------
    const int block_w = m * geometry.k1;
    const int block_h = n * geometry.k2;
    {
        const long nx = area.width - block_w + 1;
        const long ny = area.height - block_h + 1;
        const ScanBest found = parallel_scan_best(
            std::max(0L, nx) * std::max(0L, ny), 4 * std::max(1L, nx),
            [&](long i) {
                const int x = static_cast<int>(i % nx);
                const int y = static_cast<int>(i / nx);
                if (!rect_valid(area, x, y, block_w, block_h))
                    return -std::numeric_limits<double>::infinity();
                return sat.rect_sum(x, y, block_w, block_h);
            });
        const double best = found.score;
        const int bx = found.index >= 0
                           ? static_cast<int>(found.index % nx)
                           : -1;
        const int by = found.index >= 0
                           ? static_cast<int>(found.index / nx)
                           : -1;
        if (bx >= 0) {
            for (int j = 0; j < n; ++j)
                for (int i = 0; i < m; ++i)
                    result.plan.modules.push_back(
                        {bx + i * geometry.k1, by + j * geometry.k2});
            result.mode = CompactMode::FullBlock;
            result.score = best;
            return result;
        }
    }
    if (!options.allow_fallback)
        throw Infeasible(
            "place_compact: the compact block does not fit the valid area");

    // --- Mode 2: one compact row per string, rows placed independently. -
    {
        Occupancy occ(area);
        const int row_w = m * geometry.k1;
        const int row_h = geometry.k2;
        Floorplan plan;
        plan.geometry = geometry;
        plan.topology = topology;
        double total = 0.0;
        bool ok = true;
        int prev_x = -1;
        int prev_y = -1;
        const long nx = area.width - row_w + 1;
        const long ny = area.height - row_h + 1;
        for (int j = 0; j < n && ok; ++j) {
            // Strings are placed sequentially (each depends on the
            // occupancy and position of the previous), but the candidate
            // scan for one row parallelizes.
            const ScanBest found = parallel_scan_best(
                std::max(0L, nx) * std::max(0L, ny), 4 * std::max(1L, nx),
                [&](long i) {
                    const int x = static_cast<int>(i % nx);
                    const int y = static_cast<int>(i / nx);
                    if (!rect_valid(area, x, y, row_w, row_h) ||
                        !occ.free_rect(x, y, row_w, row_h))
                        return -std::numeric_limits<double>::infinity();
                    double s = sat.rect_sum(x, y, row_w, row_h);
                    // Keep rows near each other: tiny distance penalty so
                    // equal-suitability rows stack compactly.
                    if (prev_x >= 0) {
                        const double d = std::hypot(
                            static_cast<double>(x - prev_x),
                            static_cast<double>(y - prev_y));
                        s -= 1e-6 * d;
                    }
                    return s;
                });
            const double best = found.score;
            const int bx = found.index >= 0
                               ? static_cast<int>(found.index % nx)
                               : -1;
            const int by = found.index >= 0
                               ? static_cast<int>(found.index / nx)
                               : -1;
            if (bx < 0) {
                ok = false;
                break;
            }
            occ.mark_rect(bx, by, row_w, row_h);
            for (int i = 0; i < m; ++i)
                plan.modules.push_back({bx + i * geometry.k1, by});
            total += best;
            prev_x = bx;
            prev_y = by;
        }
        if (ok) {
            result.plan = std::move(plan);
            result.mode = CompactMode::StringRows;
            result.score = total;
            return result;
        }
    }

    // --- Mode 3: per-module compaction. ---------------------------------
    {
        const auto anchors = enumerate_anchors(area, geometry);
        if (static_cast<int>(anchors.size()) < topology.total())
            throw Infeasible(
                "place_compact: not enough anchors for the requested "
                "module count");
        Occupancy occ(area);
        Floorplan plan;
        plan.geometry = geometry;
        plan.topology = topology;
        double total = 0.0;
        for (int k = 0; k < topology.total(); ++k) {
            const ScanBest found = parallel_scan_best(
                static_cast<long>(anchors.size()), 128, [&](long a) {
                    const auto& pos = anchors[static_cast<std::size_t>(a)];
                    if (!occ.free_rect(pos.x, pos.y, geometry.k1,
                                       geometry.k2))
                        return -std::numeric_limits<double>::infinity();
                    double s = 0.0;
                    for (int yy = pos.y; yy < pos.y + geometry.k2; ++yy)
                        for (int xx = pos.x; xx < pos.x + geometry.k1; ++xx)
                            s += suitability(xx, yy);
                    if (!plan.modules.empty()) {
                        // Compactness dominates: huge penalty per cell of
                        // distance to the previous module.
                        const double d = center_distance_cells(
                            pos, plan.modules.back(), geometry);
                        s -= 1e3 * d;
                    }
                    return s;
                });
            const double best = found.score;
            const int best_idx = static_cast<int>(found.index);
            if (best_idx < 0)
                throw Infeasible(
                    "place_compact: cannot place all modules even "
                    "per-module");
            const auto& pos = anchors[static_cast<std::size_t>(best_idx)];
            occ.mark_rect(pos.x, pos.y, geometry.k1, geometry.k2);
            plan.modules.push_back(pos);
            total += best;
        }
        result.plan = std::move(plan);
        result.mode = CompactMode::PerModule;
        result.score = total;
        return result;
    }
}

}  // namespace pvfp::core

#include "pvfp/core/compact_placer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "pvfp/util/error.hpp"

namespace pvfp::core {
namespace {

/// All-valid test for a w x h cell rectangle at (x,y).
bool rect_valid(const geo::PlacementArea& area, int x, int y, int w, int h) {
    if (x < 0 || y < 0 || x + w > area.width || y + h > area.height)
        return false;
    for (int yy = y; yy < y + h; ++yy)
        for (int xx = x; xx < x + w; ++xx)
            if (!area.valid(xx, yy)) return false;
    return true;
}

/// Occupancy helpers shared by the fallback paths.
struct Occupancy {
    explicit Occupancy(const geo::PlacementArea& area)
        : grid(area.width, area.height, 0) {}

    bool free_rect(int x, int y, int w, int h) const {
        for (int yy = y; yy < y + h; ++yy)
            for (int xx = x; xx < x + w; ++xx)
                if (grid(xx, yy)) return false;
        return true;
    }
    void mark_rect(int x, int y, int w, int h) {
        for (int yy = y; yy < y + h; ++yy)
            for (int xx = x; xx < x + w; ++xx)
                grid(xx, yy) = 1;
    }
    pvfp::Grid2D<unsigned char> grid;
};

}  // namespace

CompactResult place_compact(const geo::PlacementArea& area,
                            const pvfp::Grid2D<double>& suitability,
                            const PanelGeometry& geometry,
                            const pv::Topology& topology,
                            const CompactOptions& options) {
    check_arg(suitability.width() == area.width &&
                  suitability.height() == area.height,
              "place_compact: suitability matrix does not match the area");
    const int m = topology.series;
    const int n = topology.strings;
    check_arg(m > 0 && n > 0, "place_compact: degenerate topology");

    const pvfp::SummedAreaTable sat(suitability, &area.valid);

    CompactResult result;
    result.plan.geometry = geometry;
    result.plan.topology = topology;

    // --- Mode 1: monolithic block, m modules per row, n rows. ----------
    const int block_w = m * geometry.k1;
    const int block_h = n * geometry.k2;
    {
        double best = -std::numeric_limits<double>::infinity();
        int bx = -1;
        int by = -1;
        for (int y = 0; y + block_h <= area.height; ++y) {
            for (int x = 0; x + block_w <= area.width; ++x) {
                if (!rect_valid(area, x, y, block_w, block_h)) continue;
                const double s = sat.rect_sum(x, y, block_w, block_h);
                if (s > best) {
                    best = s;
                    bx = x;
                    by = y;
                }
            }
        }
        if (bx >= 0) {
            for (int j = 0; j < n; ++j)
                for (int i = 0; i < m; ++i)
                    result.plan.modules.push_back(
                        {bx + i * geometry.k1, by + j * geometry.k2});
            result.mode = CompactMode::FullBlock;
            result.score = best;
            return result;
        }
    }
    if (!options.allow_fallback)
        throw Infeasible(
            "place_compact: the compact block does not fit the valid area");

    // --- Mode 2: one compact row per string, rows placed independently. -
    {
        Occupancy occ(area);
        const int row_w = m * geometry.k1;
        const int row_h = geometry.k2;
        Floorplan plan;
        plan.geometry = geometry;
        plan.topology = topology;
        double total = 0.0;
        bool ok = true;
        int prev_x = -1;
        int prev_y = -1;
        for (int j = 0; j < n && ok; ++j) {
            double best = -std::numeric_limits<double>::infinity();
            int bx = -1;
            int by = -1;
            for (int y = 0; y + row_h <= area.height; ++y) {
                for (int x = 0; x + row_w <= area.width; ++x) {
                    if (!rect_valid(area, x, y, row_w, row_h)) continue;
                    if (!occ.free_rect(x, y, row_w, row_h)) continue;
                    double s = sat.rect_sum(x, y, row_w, row_h);
                    // Keep rows near each other: tiny distance penalty so
                    // equal-suitability rows stack compactly.
                    if (prev_x >= 0) {
                        const double d = std::hypot(
                            static_cast<double>(x - prev_x),
                            static_cast<double>(y - prev_y));
                        s -= 1e-6 * d;
                    }
                    if (s > best) {
                        best = s;
                        bx = x;
                        by = y;
                    }
                }
            }
            if (bx < 0) {
                ok = false;
                break;
            }
            occ.mark_rect(bx, by, row_w, row_h);
            for (int i = 0; i < m; ++i)
                plan.modules.push_back({bx + i * geometry.k1, by});
            total += best;
            prev_x = bx;
            prev_y = by;
        }
        if (ok) {
            result.plan = std::move(plan);
            result.mode = CompactMode::StringRows;
            result.score = total;
            return result;
        }
    }

    // --- Mode 3: per-module compaction. ---------------------------------
    {
        const auto anchors = enumerate_anchors(area, geometry);
        if (static_cast<int>(anchors.size()) < topology.total())
            throw Infeasible(
                "place_compact: not enough anchors for the requested "
                "module count");
        Occupancy occ(area);
        Floorplan plan;
        plan.geometry = geometry;
        plan.topology = topology;
        double total = 0.0;
        for (int k = 0; k < topology.total(); ++k) {
            double best = -std::numeric_limits<double>::infinity();
            int best_idx = -1;
            for (std::size_t a = 0; a < anchors.size(); ++a) {
                const auto& pos = anchors[a];
                if (!occ.free_rect(pos.x, pos.y, geometry.k1, geometry.k2))
                    continue;
                double s = 0.0;
                for (int yy = pos.y; yy < pos.y + geometry.k2; ++yy)
                    for (int xx = pos.x; xx < pos.x + geometry.k1; ++xx)
                        s += suitability(xx, yy);
                if (!plan.modules.empty()) {
                    // Compactness dominates: huge penalty per cell of
                    // distance to the previous module.
                    const double d = center_distance_cells(
                        pos, plan.modules.back(), geometry);
                    s -= 1e3 * d;
                }
                if (s > best) {
                    best = s;
                    best_idx = static_cast<int>(a);
                }
            }
            if (best_idx < 0)
                throw Infeasible(
                    "place_compact: cannot place all modules even "
                    "per-module");
            const auto& pos = anchors[static_cast<std::size_t>(best_idx)];
            occ.mark_rect(pos.x, pos.y, geometry.k1, geometry.k2);
            plan.modules.push_back(pos);
            total += best;
        }
        result.plan = std::move(plan);
        result.mode = CompactMode::PerModule;
        result.score = total;
        return result;
    }
}

}  // namespace pvfp::core

#include "pvfp/core/greedy_placer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "pvfp/util/error.hpp"
#include "pvfp/util/parallel.hpp"

namespace pvfp::core {
namespace {

/// A candidate anchor with its precomputed score.
struct Candidate {
    ModulePlacement pos;
    double score = 0.0;
    bool used = false;  ///< consumed or covered by a placed module
};

/// Mean pairwise center distance of the placed modules [cells].
double mean_pairwise_distance(const std::vector<ModulePlacement>& placed,
                              const PanelGeometry& g) {
    if (placed.size() < 2) return 0.0;
    double acc = 0.0;
    int pairs = 0;
    for (std::size_t i = 0; i < placed.size(); ++i) {
        for (std::size_t j = i + 1; j < placed.size(); ++j) {
            acc += center_distance_cells(placed[i], placed[j], g);
            ++pairs;
        }
    }
    return acc / pairs;
}

/// Distance from a candidate to the nearest placed module [cells].
double distance_to_nearest(const ModulePlacement& cand,
                           const std::vector<ModulePlacement>& placed,
                           const PanelGeometry& g) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& p : placed)
        best = std::min(best, center_distance_cells(cand, p, g));
    return best;
}

}  // namespace

double anchor_score(const pvfp::Grid2D<double>& suitability,
                    const PanelGeometry& geometry, int x, int y,
                    AnchorScore mode) {
    if (mode == AnchorScore::TopLeftCell) return suitability(x, y);
    double acc = 0.0;
    for (int yy = y; yy < y + geometry.k2; ++yy)
        for (int xx = x; xx < x + geometry.k1; ++xx)
            acc += suitability(xx, yy);
    return acc / geometry.cell_count();
}

Floorplan place_greedy(const geo::PlacementArea& area,
                       const pvfp::Grid2D<double>& suitability,
                       const PanelGeometry& geometry,
                       const pv::Topology& topology,
                       const GreedyOptions& options, GreedyStats* stats) {
    check_arg(suitability.width() == area.width &&
                  suitability.height() == area.height,
              "place_greedy: suitability matrix does not match the area");
    check_arg(options.distance_threshold_factor > 0.0,
              "place_greedy: threshold factor must be positive");
    const int n_modules = topology.total();
    check_arg(n_modules > 0, "place_greedy: topology with no modules");

    // Line 1-2 of Fig. 5: candidate list sorted by non-increasing
    // suitability (position as a deterministic secondary key).  Scoring
    // the anchors is embarrassingly parallel: each candidate writes only
    // its own slot, so the chunked loop is deterministic.
    const auto anchors = enumerate_anchors(area, geometry);
    std::vector<Candidate> list(anchors.size());
    parallel_for(
        0, static_cast<long>(anchors.size()), 256, [&](long b, long e) {
            for (long k = b; k < e; ++k) {
                const auto& a = anchors[static_cast<std::size_t>(k)];
                list[static_cast<std::size_t>(k)] = {
                    a,
                    anchor_score(suitability, geometry, a.x, a.y,
                                 options.anchor_score),
                    false};
            }
        });
    if (list.empty())
        throw Infeasible("place_greedy: no feasible anchor on this area");
    std::sort(list.begin(), list.end(), [](const Candidate& a,
                                           const Candidate& b) {
        if (a.score != b.score) return a.score > b.score;
        if (a.pos.y != b.pos.y) return a.pos.y < b.pos.y;
        return a.pos.x < b.pos.x;
    });
    if (stats) stats->candidate_count = static_cast<int>(list.size());

    // Occupancy of already placed modules, to re-check feasibility as the
    // covered points are "removed from L" (line 7).
    pvfp::Grid2D<unsigned char> occupied(area.width, area.height, 0);
    const auto is_free = [&](const ModulePlacement& m) {
        for (int yy = m.y; yy < m.y + geometry.k2; ++yy)
            for (int xx = m.x; xx < m.x + geometry.k1; ++xx)
                if (occupied(xx, yy)) return false;
        return true;
    };
    const auto mark = [&](const ModulePlacement& m) {
        for (int yy = m.y; yy < m.y + geometry.k2; ++yy)
            for (int xx = m.x; xx < m.x + geometry.k1; ++xx)
                occupied(xx, yy) = 1;
    };

    Floorplan plan;
    plan.geometry = geometry;
    plan.topology = topology;
    plan.modules.reserve(static_cast<std::size_t>(n_modules));

    // Line 4: series-first module loop.  (The set of chosen positions does
    // not depend on the string index; the *order* of selection assigns
    // consecutive picks to the same string, which is exactly the paper's
    // series-first enumeration and what keeps wiring short per string.)
    for (int i = 0; i < n_modules; ++i) {
        const double mean_dist =
            mean_pairwise_distance(plan.modules, geometry);
        const double threshold =
            options.distance_threshold_factor * mean_dist;
        const bool use_threshold = options.enable_distance_threshold &&
                                   plan.modules.size() >= 2;

        // Scan in rank order for the best candidate that is still free and
        // satisfies the distance threshold (line 5); the paper's text
        // makes the wiring distance a tie-breaker among equal suitability,
        // so among the leading equal-score group pick the one nearest to
        // the previously placed module.
        int chosen = -1;
        int fallback = -1;  // best free candidate ignoring the threshold
        for (std::size_t k = 0; k < list.size(); ++k) {
            Candidate& cand = list[k];
            if (cand.used) continue;
            if (!is_free(cand.pos)) {
                cand.used = true;  // covered by a previous module: remove
                continue;
            }
            if (fallback < 0) fallback = static_cast<int>(k);
            if (use_threshold &&
                distance_to_nearest(cand.pos, plan.modules, geometry) >
                    threshold) {
                if (stats) ++stats->threshold_rejections;
                continue;
            }
            chosen = static_cast<int>(k);
            break;
        }
        if (chosen < 0) {
            // No candidate passes the filter: relax it rather than place
            // fewer than N modules (DESIGN.md Section 5, point 3).
            if (fallback < 0)
                throw Infeasible(
                    "place_greedy: area cannot host " +
                    std::to_string(n_modules) + " modules (placed " +
                    std::to_string(plan.modules.size()) + ")");
            chosen = fallback;
            if (stats) ++stats->threshold_relaxations;
        }

        // Tie-break among equal-score candidates by wiring distance to the
        // last placed module (paper line 2: "wiring overhead is used as a
        // tie-breaker").
        if (!plan.modules.empty()) {
            const double lead_score =
                list[static_cast<std::size_t>(chosen)].score;
            const double tie_band =
                options.tie_epsilon * std::abs(lead_score);
            const ModulePlacement& prev = plan.modules.back();
            double best_d = center_distance_cells(
                list[static_cast<std::size_t>(chosen)].pos, prev, geometry);
            for (std::size_t k = static_cast<std::size_t>(chosen) + 1;
                 k < list.size(); ++k) {
                Candidate& cand = list[k];
                if (cand.score < lead_score - tie_band) break;
                if (cand.used || !is_free(cand.pos)) continue;
                if (use_threshold &&
                    distance_to_nearest(cand.pos, plan.modules, geometry) >
                        threshold)
                    continue;
                const double d =
                    center_distance_cells(cand.pos, prev, geometry);
                if (d < best_d) {
                    best_d = d;
                    chosen = static_cast<int>(k);
                }
            }
        }

        Candidate& winner = list[static_cast<std::size_t>(chosen)];
        winner.used = true;
        plan.modules.push_back(winner.pos);
        mark(winner.pos);  // line 7: remove covered grid points
    }
    return plan;
}

}  // namespace pvfp::core

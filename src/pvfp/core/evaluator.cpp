#include "pvfp/core/evaluator.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "pvfp/pv/array.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/parallel.hpp"

namespace pvfp::core {
namespace {

/// Sampled time steps per parallel shard.  Fixed (independent of the
/// thread count) so the shard grid — and therefore the order in which
/// partial energies are merged — is reproducible at any parallelism.
constexpr long kStepsPerShard = 256;

/// Unchecked core of module_irradiance: preconditions (module index in
/// range, footprint inside the field window, step in range) are
/// validated once at the evaluate_floorplan boundary.
double module_irradiance_raw(const Floorplan& plan, int module_index,
                             const solar::IrradianceField& field, long step,
                             ModuleIrradiance mode) {
    const ModulePlacement& m =
        plan.modules[static_cast<std::size_t>(module_index)];
    return anchor_irradiance_unchecked(plan.geometry, m.x, m.y, field, step,
                                       mode);
}

/// Per-shard accumulator: the time-dependent slice of EvaluationResult.
/// Shards cover disjoint step ranges and are merged in shard order, so
/// the fold is associative-by-construction and bitwise-reproducible.
struct Partial {
    double energy_kwh = 0.0;
    double ideal_energy_kwh = 0.0;
    double mismatch_loss_kwh = 0.0;
    double wiring_loss_kwh = 0.0;
    std::vector<double> string_energy_kwh;
    std::vector<double> string_wiring_loss_kwh;

    explicit Partial(std::size_t n_strings = 0)
        : string_energy_kwh(n_strings, 0.0),
          string_wiring_loss_kwh(n_strings, 0.0) {}
};

Partial merge(Partial acc, const Partial& p) {
    acc.energy_kwh += p.energy_kwh;
    acc.ideal_energy_kwh += p.ideal_energy_kwh;
    acc.mismatch_loss_kwh += p.mismatch_loss_kwh;
    acc.wiring_loss_kwh += p.wiring_loss_kwh;
    for (std::size_t j = 0; j < acc.string_energy_kwh.size(); ++j) {
        acc.string_energy_kwh[j] += p.string_energy_kwh[j];
        acc.string_wiring_loss_kwh[j] += p.string_wiring_loss_kwh[j];
    }
    return acc;
}

}  // namespace

double anchor_irradiance_unchecked(const PanelGeometry& g, int x, int y,
                                   const solar::IrradianceField& field,
                                   long step, ModuleIrradiance mode) {
    if (mode == ModuleIrradiance::AnchorCell) {
        return field.cell_irradiance_unchecked(x, y, step);
    }
    // Footprint modes ride the batched row kernel one footprint row at a
    // time (kMaxRow-wide spans for an unreachably wide module — chunking
    // a row left to right does not change the fold order); the row
    // values are folded in the scalar (yy, xx) cell order, so the result
    // is bitwise-identical to the per-cell loop.
    constexpr int kMaxRow = 256;
    double buf[kMaxRow];
    if (mode == ModuleIrradiance::WorstCell) {
        double worst = std::numeric_limits<double>::infinity();
        for (int yy = y; yy < y + g.k2; ++yy)
            for (int xx = x; xx < x + g.k1; xx += kMaxRow) {
                const int xe = std::min(xx + kMaxRow, x + g.k1);
                field.cell_irradiance_row(yy, step, xx, xe, buf);
                for (int i = 0; i < xe - xx; ++i)
                    worst = std::min(worst, buf[i]);
            }
        return worst;
    }
    double acc = 0.0;
    for (int yy = y; yy < y + g.k2; ++yy)
        for (int xx = x; xx < x + g.k1; xx += kMaxRow) {
            const int xe = std::min(xx + kMaxRow, x + g.k1);
            field.cell_irradiance_row(yy, step, xx, xe, buf);
            for (int i = 0; i < xe - xx; ++i) acc += buf[i];
        }
    return acc / g.cell_count();
}

void anchor_irradiance_series(const PanelGeometry& g, int x, int y,
                              const solar::IrradianceField& field,
                              std::span<const long> steps,
                              ModuleIrradiance mode, double* out) {
    const std::size_t n = steps.size();
    if (n == 0) return;
    // Validate the step span once here, not once per footprint cell.
    const long n_steps = field.steps();
    for (const long s : steps)
        check_arg(s >= 0 && s < n_steps,
                  "anchor_irradiance_series: step out of range");
    if (mode == ModuleIrradiance::AnchorCell) {
        field.cell_irradiance_series_unchecked(x, y, steps, out);
        return;
    }
    // One batched series per footprint cell, folded elementwise in the
    // scalar (yy, xx) cell order: per step this performs exactly the
    // additions / mins of anchor_irradiance_unchecked.
    static thread_local std::vector<double> cell_buf;
    cell_buf.resize(n);
    if (mode == ModuleIrradiance::WorstCell) {
        std::fill(out, out + n,
                  std::numeric_limits<double>::infinity());
        for (int yy = y; yy < y + g.k2; ++yy)
            for (int xx = x; xx < x + g.k1; ++xx) {
                field.cell_irradiance_series_unchecked(xx, yy, steps,
                                                       cell_buf.data());
                for (std::size_t k = 0; k < n; ++k)
                    out[k] = std::min(out[k], cell_buf[k]);
            }
        return;
    }
    std::fill(out, out + n, 0.0);
    for (int yy = y; yy < y + g.k2; ++yy)
        for (int xx = x; xx < x + g.k1; ++xx) {
            field.cell_irradiance_series_unchecked(xx, yy, steps,
                                                   cell_buf.data());
            for (std::size_t k = 0; k < n; ++k) out[k] += cell_buf[k];
        }
    const double count = g.cell_count();
    for (std::size_t k = 0; k < n; ++k) out[k] /= count;
}

pv::OperatingPoint sample_operating_point(const pv::EmpiricalModuleModel& model,
                                          double g, double t_air,
                                          double thermal_k) {
    return model.operating_point(g, t_air + thermal_k * g);
}

double module_irradiance(const Floorplan& plan, int module_index,
                         const solar::IrradianceField& field, long step,
                         ModuleIrradiance mode) {
    check_arg(module_index >= 0 && module_index < plan.module_count(),
              "module_irradiance: index out of range");
    check_arg(step >= 0 && step < field.steps(),
              "module_irradiance: step out of range");
    const ModulePlacement& m =
        plan.modules[static_cast<std::size_t>(module_index)];
    check_arg(m.x >= 0 && m.y >= 0 &&
                  m.x + plan.geometry.k1 <= field.width() &&
                  m.y + plan.geometry.k2 <= field.height(),
              "module_irradiance: module footprint outside the field "
              "window");
    return module_irradiance_raw(plan, module_index, field, step, mode);
}

EvaluationResult evaluate_floorplan(const Floorplan& plan,
                                    const geo::PlacementArea& area,
                                    const solar::IrradianceField& field,
                                    const pv::EmpiricalModuleModel& model,
                                    const EvaluationOptions& options) {
    std::string why;
    check_arg(floorplan_feasible(plan, area, &why),
              "evaluate_floorplan: infeasible plan: " + why);
    check_arg(field.width() == area.width && field.height() == area.height,
              "evaluate_floorplan: field window does not match area");
    check_arg(options.step_stride >= 1,
              "evaluate_floorplan: step_stride must be >= 1");
    pv::check_topology(plan.topology, plan.module_count());
    // Boundary validation complete: feasibility puts every module
    // footprint inside the area (== the field window) and the step loops
    // below stay inside [0, steps) by construction, so the inner loops
    // use the unchecked field accessors.

    const int n_modules = plan.module_count();
    const int n_strings = plan.topology.strings;

    // Wiring overhead is a property of the geometry, not of time.
    const auto centers = plan.centers_m(area.cell_size);
    const auto extra_lengths =
        pv::panel_extra_lengths(centers, plan.topology, options.wiring);

    EvaluationResult result;
    result.strings.resize(static_cast<std::size_t>(n_strings));
    for (int j = 0; j < n_strings; ++j) {
        result.strings[static_cast<std::size_t>(j)].extra_cable_m =
            extra_lengths[static_cast<std::size_t>(j)];
        result.extra_cable_m += extra_lengths[static_cast<std::size_t>(j)];
    }
    result.wiring_cost_usd = pv::wiring_cost(extra_lengths, options.wiring);

    const double k_th = field.config().thermal_k;
    const double step_h = field.time_grid().step_hours();
    const long n_steps = field.steps();
    const long stride = options.step_stride;
    const long n_samples = (n_steps + stride - 1) / stride;

    // Shard the time axis over sampled steps; each shard accumulates its
    // own Partial and the partials merge in shard order.  Scratch
    // (sampled-step lists, the per-module irradiance series, the
    // operating-point vector) comes from a pool so a shard reuses the
    // previous shard's allocations instead of reallocating per shard.
    struct ShardScratch {
        std::vector<long> steps;
        std::vector<double> dt_h;
        std::vector<double> t_air;
        std::vector<double> g;  ///< n_modules x steps.size(), module-major
        std::vector<pv::OperatingPoint> points;
    };
    ScratchPool<ShardScratch> scratch_pool;

    const Partial total = parallel_reduce(
        0L, n_samples, kStepsPerShard, Partial(static_cast<std::size_t>(n_strings)),
        [&](long kb, long ke) {
            Partial p(static_cast<std::size_t>(n_strings));
            auto scratch = scratch_pool.acquire();
            // Resolve the shard's sampled daylight steps once, then build
            // each module's footprint-irradiance series through the
            // batched kernels (bitwise-identical per step to the scalar
            // per-cell walk this loop used to do).
            scratch->steps.clear();
            scratch->dt_h.clear();
            scratch->t_air.clear();
            for (long k = kb; k < ke; ++k) {
                const long s = k * stride;
                if (!field.is_daylight(s)) continue;
                scratch->steps.push_back(s);
                // The sampled step stands in for the next `stride` real
                // steps — except the last sample, which only represents
                // the steps that actually remain in the horizon.
                scratch->dt_h.push_back(
                    step_h *
                    static_cast<double>(std::min(stride, n_steps - s)));
                scratch->t_air.push_back(field.air_temperature(s));
            }
            const std::size_t nk = scratch->steps.size();
            if (nk == 0) return p;
            scratch->g.resize(static_cast<std::size_t>(n_modules) * nk);
            for (int i = 0; i < n_modules; ++i) {
                const ModulePlacement& m =
                    plan.modules[static_cast<std::size_t>(i)];
                anchor_irradiance_series(
                    plan.geometry, m.x, m.y, field, scratch->steps,
                    options.module_irradiance,
                    scratch->g.data() + static_cast<std::size_t>(i) * nk);
            }
            std::vector<pv::OperatingPoint>& points = scratch->points;
            points.resize(static_cast<std::size_t>(n_modules));
            for (std::size_t k = 0; k < nk; ++k) {
                const double dt_h = scratch->dt_h[k];
                const double t_air = scratch->t_air[k];
                for (int i = 0; i < n_modules; ++i) {
                    points[static_cast<std::size_t>(i)] =
                        sample_operating_point(
                            model,
                            scratch->g[static_cast<std::size_t>(i) * nk + k],
                            t_air, k_th);
                }
                const auto panel = pv::aggregate_panel(points, plan.topology);

                double wiring_w = 0.0;
                if (options.include_wiring_loss) {
                    for (int j = 0; j < n_strings; ++j) {
                        const double loss = pv::wiring_power_loss(
                            extra_lengths[static_cast<std::size_t>(j)],
                            panel.strings[static_cast<std::size_t>(j)]
                                .current_a,
                            options.wiring);
                        wiring_w += loss;
                        p.string_wiring_loss_kwh[static_cast<std::size_t>(
                            j)] += loss * dt_h / 1000.0;
                    }
                }

                const double net_w = std::max(0.0, panel.power_w - wiring_w);
                p.energy_kwh += net_w * dt_h / 1000.0;
                p.ideal_energy_kwh += panel.ideal_power_w * dt_h / 1000.0;
                p.mismatch_loss_kwh += panel.mismatch_loss_w * dt_h / 1000.0;
                p.wiring_loss_kwh += wiring_w * dt_h / 1000.0;
                for (int j = 0; j < n_strings; ++j) {
                    p.string_energy_kwh[static_cast<std::size_t>(j)] +=
                        panel.voltage_v *
                        panel.strings[static_cast<std::size_t>(j)]
                            .current_a *
                        dt_h / 1000.0;
                }
            }
            return p;
        },
        merge);

    result.energy_kwh = total.energy_kwh;
    result.ideal_energy_kwh = total.ideal_energy_kwh;
    result.mismatch_loss_kwh = total.mismatch_loss_kwh;
    result.wiring_loss_kwh = total.wiring_loss_kwh;
    for (int j = 0; j < n_strings; ++j) {
        result.strings[static_cast<std::size_t>(j)].energy_kwh =
            total.string_energy_kwh[static_cast<std::size_t>(j)];
        result.strings[static_cast<std::size_t>(j)].wiring_loss_kwh =
            total.string_wiring_loss_kwh[static_cast<std::size_t>(j)];
    }
    return result;
}

}  // namespace pvfp::core

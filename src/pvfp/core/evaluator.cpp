#include "pvfp/core/evaluator.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "pvfp/pv/array.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::core {

double module_irradiance(const Floorplan& plan, int module_index,
                         const solar::IrradianceField& field, long step,
                         ModuleIrradiance mode) {
    check_arg(module_index >= 0 && module_index < plan.module_count(),
              "module_irradiance: index out of range");
    const ModulePlacement& m =
        plan.modules[static_cast<std::size_t>(module_index)];
    const PanelGeometry& g = plan.geometry;
    if (mode == ModuleIrradiance::AnchorCell) {
        return field.cell_irradiance(m.x, m.y, step);
    }
    if (mode == ModuleIrradiance::WorstCell) {
        double worst = std::numeric_limits<double>::infinity();
        for (int yy = m.y; yy < m.y + g.k2; ++yy)
            for (int xx = m.x; xx < m.x + g.k1; ++xx)
                worst = std::min(worst,
                                 field.cell_irradiance(xx, yy, step));
        return worst;
    }
    double acc = 0.0;
    for (int yy = m.y; yy < m.y + g.k2; ++yy)
        for (int xx = m.x; xx < m.x + g.k1; ++xx)
            acc += field.cell_irradiance(xx, yy, step);
    return acc / g.cell_count();
}

EvaluationResult evaluate_floorplan(const Floorplan& plan,
                                    const geo::PlacementArea& area,
                                    const solar::IrradianceField& field,
                                    const pv::EmpiricalModuleModel& model,
                                    const EvaluationOptions& options) {
    std::string why;
    check_arg(floorplan_feasible(plan, area, &why),
              "evaluate_floorplan: infeasible plan: " + why);
    check_arg(field.width() == area.width && field.height() == area.height,
              "evaluate_floorplan: field window does not match area");
    check_arg(options.step_stride >= 1,
              "evaluate_floorplan: step_stride must be >= 1");
    pv::check_topology(plan.topology, plan.module_count());

    const int n_modules = plan.module_count();
    const int n_strings = plan.topology.strings;

    // Wiring overhead is a property of the geometry, not of time.
    const auto centers = plan.centers_m(area.cell_size);
    const auto extra_lengths =
        pv::panel_extra_lengths(centers, plan.topology, options.wiring);

    EvaluationResult result;
    result.strings.resize(static_cast<std::size_t>(n_strings));
    for (int j = 0; j < n_strings; ++j) {
        result.strings[static_cast<std::size_t>(j)].extra_cable_m =
            extra_lengths[static_cast<std::size_t>(j)];
        result.extra_cable_m += extra_lengths[static_cast<std::size_t>(j)];
    }
    result.wiring_cost_usd = pv::wiring_cost(extra_lengths, options.wiring);

    const double k_th = field.config().thermal_k;
    const double dt_h = field.time_grid().step_hours() *
                        static_cast<double>(options.step_stride);

    std::vector<pv::OperatingPoint> points(
        static_cast<std::size_t>(n_modules));
    for (long s = 0; s < field.steps(); s += options.step_stride) {
        if (!field.is_daylight(s)) continue;
        const double t_air = field.air_temperature(s);
        for (int i = 0; i < n_modules; ++i) {
            const double g = module_irradiance(plan, i, field, s,
                                               options.module_irradiance);
            const double tact = t_air + k_th * g;
            points[static_cast<std::size_t>(i)] =
                model.operating_point(g, tact);
        }
        const auto panel = pv::aggregate_panel(points, plan.topology);

        double wiring_w = 0.0;
        if (options.include_wiring_loss) {
            for (int j = 0; j < n_strings; ++j) {
                const double loss = pv::wiring_power_loss(
                    extra_lengths[static_cast<std::size_t>(j)],
                    panel.strings[static_cast<std::size_t>(j)].current_a,
                    options.wiring);
                wiring_w += loss;
                result.strings[static_cast<std::size_t>(j)]
                    .wiring_loss_kwh += loss * dt_h / 1000.0;
            }
        }

        const double net_w = std::max(0.0, panel.power_w - wiring_w);
        result.energy_kwh += net_w * dt_h / 1000.0;
        result.ideal_energy_kwh += panel.ideal_power_w * dt_h / 1000.0;
        result.mismatch_loss_kwh += panel.mismatch_loss_w * dt_h / 1000.0;
        result.wiring_loss_kwh += wiring_w * dt_h / 1000.0;
        for (int j = 0; j < n_strings; ++j) {
            result.strings[static_cast<std::size_t>(j)].energy_kwh +=
                panel.voltage_v *
                panel.strings[static_cast<std::size_t>(j)].current_a * dt_h /
                1000.0;
        }
    }
    return result;
}

}  // namespace pvfp::core

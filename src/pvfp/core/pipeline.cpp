#include "pvfp/core/pipeline.hpp"

#include <cmath>
#include <optional>
#include <utility>

#include "pvfp/obs/trace.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/parallel.hpp"

namespace pvfp::core {

PreparedScenario prepare_scenario(const RoofScenario& scenario,
                                  const ScenarioConfig& config) {
    PVFP_TRACE_SPAN("prepare_scenario");
    check_arg(config.cell_size > 0.0,
              "prepare_scenario: cell_size must be positive");

    // Section IV: DSM from GIS data at the grid pitch, so the solar-data
    // resolution coincides with the virtual grid (Sec. III-A).  GIS
    // scenarios carry a measured mosaic (aliased, not copied — windows
    // can be megabytes and a city run prepares thousands); procedural
    // ones rasterize their scene.
    std::shared_ptr<const geo::Raster> dsm_ptr = scenario.dsm;
    if (dsm_ptr) {
        check_arg(std::abs(dsm_ptr->cell_size() - config.cell_size) < 1e-9,
                  "prepare_scenario: scenario DSM cell size != "
                  "config.cell_size");
    } else {
        dsm_ptr = std::make_shared<const geo::Raster>(
            scenario.scene.rasterize(config.cell_size));
    }
    const geo::Raster& dsm = *dsm_ptr;

    // Suitable-area identification.
    geo::PlacementArea area = geo::extract_placement_area(
        dsm, scenario.scene, scenario.roof_index, config.area,
        scenario.placement_mask.get());

    // Shadow/horizon model for the placement window: the shared
    // provider (city/serve horizon cache) when configured, else a local
    // march over this scenario's own mosaic.
    std::optional<geo::HorizonMap> horizon;
    {
        PVFP_TRACE_SPAN("stage.horizon");
        if (config.horizon_provider) {
            horizon = config.horizon_provider(dsm, area.origin_col,
                                              area.origin_row, area.width,
                                              area.height, config.horizon);
            if (horizon) {
                check_arg(horizon->window_x0() == area.origin_col &&
                              horizon->window_y0() == area.origin_row &&
                              horizon->window_width() == area.width &&
                              horizon->window_height() == area.height &&
                              horizon->sectors() ==
                                  config.horizon.azimuth_sectors,
                          "prepare_scenario: horizon_provider window "
                          "mismatch");
            }
        }
        if (!horizon)
            horizon.emplace(dsm, area.origin_col, area.origin_row,
                            area.width, area.height, config.horizon);
    }

    // Sky state: the shared per-batch artifact when the caller prepared
    // one, else a private weather trace (synthetic stand-in for station
    // data) and per-step precompute for this scenario alone.
    std::shared_ptr<const solar::SharedSkyArtifact> sky = config.shared_sky;
    if (sky) {
        // The field reads its time grid from the artifact; a mismatched
        // config.grid would silently simulate a different horizon.
        check_arg(sky->grid.minutes_per_step() ==
                          config.grid.minutes_per_step() &&
                      sky->grid.start_day() == config.grid.start_day() &&
                      sky->grid.days() == config.grid.days(),
                  "prepare_scenario: shared_sky grid != config.grid");
    }
    if (!sky) {
        PVFP_TRACE_SPAN("stage.sky");
        sky = solar::make_shared_sky(
            config.location, config.grid,
            weather::generate_synthetic_weather(config.location, config.grid,
                                                config.weather),
            config.field.sky_model);
    }

    // Per-cell surface normals: DSM structure (undulation, obstacle
    // flanks) modulates the beam cell-by-cell.
    geo::NormalMap normals = geo::NormalMap::from_dsm(
        dsm, area.origin_col, area.origin_row, area.width, area.height);

    // Irradiance/temperature field on the roof plane.
    solar::FieldConfig field_config = config.field;
    field_config.location = config.location;
    std::optional<solar::IrradianceField> field;
    {
        PVFP_TRACE_SPAN("stage.field");
        field.emplace(std::move(*horizon), std::move(sky), area.tilt_rad,
                      area.azimuth_rad, field_config, std::move(normals));
    }

    // Suitability matrix (Section III-C).
    SuitabilityResult suitability;
    {
        PVFP_TRACE_SPAN("stage.suitability");
        suitability = compute_suitability(*field, area, config.suitability);
    }

    pv::EmpiricalModuleModel model(config.module);
    const PanelGeometry geometry =
        PanelGeometry::from_module(config.module, config.cell_size);

    return PreparedScenario{scenario.name,
                            std::move(dsm_ptr),
                            std::move(area),
                            std::move(*field),
                            std::move(suitability),
                            std::move(model),
                            geometry,
                            config};
}

PlacementComparison compare_placements(const PreparedScenario& prepared,
                                       const pv::Topology& topology,
                                       const GreedyOptions& greedy_options,
                                       const EvaluationOptions& eval_options) {
    PVFP_TRACE_SPAN("stage.place");
    PlacementComparison cmp;

    const CompactResult compact =
        place_compact(prepared.area, prepared.suitability.suitability,
                      prepared.geometry, topology);
    cmp.traditional = compact.plan;
    cmp.traditional_mode = compact.mode;

    cmp.proposed = place_greedy(prepared.area,
                                prepared.suitability.suitability,
                                prepared.geometry, topology, greedy_options,
                                &cmp.greedy_stats);

    cmp.traditional_eval =
        evaluate_floorplan(cmp.traditional, prepared.area, prepared.field,
                           prepared.model, eval_options);
    cmp.proposed_eval =
        evaluate_floorplan(cmp.proposed, prepared.area, prepared.field,
                           prepared.model, eval_options);
    return cmp;
}

std::vector<ScenarioReport> run_scenarios(
    std::span<const RoofScenario> scenarios, const ScenarioConfig& config,
    const BatchOptions& options) {
    check_arg(!options.topologies.empty(),
              "run_scenarios: no topologies to compare");

    const long n = static_cast<long>(scenarios.size());
    // Shared-weather batching: every scenario in the batch sees the same
    // site, grid, and weather options, so the env series and the per-step
    // sun/transposition precompute are prepared exactly once (its own
    // loops parallelize here, before the scenario fan-out) instead of
    // once per roof.  Bitwise-identical to the per-roof path.
    ScenarioConfig batch_config = config;
    if (!batch_config.shared_sky && n > 0) {
        batch_config.shared_sky = solar::make_shared_sky(
            config.location, config.grid,
            weather::generate_synthetic_weather(config.location, config.grid,
                                                config.weather),
            config.field.sky_model);
    }

    // PreparedScenario has no default constructor; build into optionals
    // (one slot per scenario — disjoint writes) and unwrap at the end.
    std::vector<std::optional<ScenarioReport>> slots(
        static_cast<std::size_t>(n));

    const auto process = [&](long i) {
        ScenarioReport report{
            prepare_scenario(scenarios[static_cast<std::size_t>(i)],
                             batch_config),
            {}};
        report.comparisons.reserve(options.topologies.size());
        for (const auto& topology : options.topologies)
            report.comparisons.push_back(
                compare_placements(report.prepared, topology,
                                   options.greedy, options.eval));
        slots[static_cast<std::size_t>(i)] = std::move(report);
    };

    const bool outer =
        options.policy == ParallelPolicy::OuterScenarios ||
        (options.policy == ParallelPolicy::Auto && n >= thread_count());
    if (outer && n > 1) {
        // One scenario per task; SerialScope keeps each scenario's inner
        // loops inline so the pool is not oversubscribed by nested
        // fan-out.
        parallel_for(0, n, 1, [&](long b, long e) {
            SerialScope serial;
            for (long i = b; i < e; ++i) process(i);
        });
    } else {
        // Few big roofs: let each scenario's horizon / field / evaluator
        // loops use the whole pool instead.
        for (long i = 0; i < n; ++i) process(i);
    }

    std::vector<ScenarioReport> reports;
    reports.reserve(static_cast<std::size_t>(n));
    for (auto& slot : slots) reports.push_back(std::move(*slot));
    return reports;
}

}  // namespace pvfp::core

#include "pvfp/core/exhaustive_placer.hpp"

#include <limits>

#include "pvfp/core/greedy_placer.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::core {
namespace {

struct SearchContext {
    const std::vector<ModulePlacement>* anchors = nullptr;
    const std::vector<double>* scores = nullptr;
    const PanelGeometry* geometry = nullptr;
    const PlacementObjective* objective = nullptr;  // may be null
    int n_modules = 0;
    long long max_nodes = 0;

    Floorplan current;
    double current_score = 0.0;  // separable objective accumulator
    Floorplan best;
    double best_value = -std::numeric_limits<double>::infinity();
    ExhaustiveStats stats;
};

void dfs(SearchContext& ctx, std::size_t first_anchor) {
    ++ctx.stats.nodes;
    if (ctx.stats.nodes > ctx.max_nodes)
        throw Infeasible(
            "place_exhaustive: node budget exceeded — the instance is too "
            "large for exhaustive search (the paper's O(N^Ng) point)");

    const int placed = ctx.current.module_count();
    if (placed == ctx.n_modules) {
        ++ctx.stats.leaves;
        const double value = (*ctx.objective)
                                 ? (*ctx.objective)(ctx.current)
                                 : ctx.current_score;
        if (value > ctx.best_value) {
            ctx.best_value = value;
            ctx.best = ctx.current;
        }
        return;
    }

    const auto& anchors = *ctx.anchors;
    // Not enough anchors left to finish: prune.
    const std::size_t remaining_needed =
        static_cast<std::size_t>(ctx.n_modules - placed);
    for (std::size_t a = first_anchor;
         a + remaining_needed <= anchors.size(); ++a) {
        const ModulePlacement& cand = anchors[a];
        bool overlaps = false;
        for (const auto& m : ctx.current.modules) {
            if (modules_overlap(cand, m, *ctx.geometry)) {
                overlaps = true;
                break;
            }
        }
        if (overlaps) continue;
        ctx.current.modules.push_back(cand);
        ctx.current_score += (*ctx.scores)[a];
        dfs(ctx, a + 1);
        ctx.current.modules.pop_back();
        ctx.current_score -= (*ctx.scores)[a];
    }
}

}  // namespace

Floorplan place_exhaustive(const geo::PlacementArea& area,
                           const pvfp::Grid2D<double>& suitability,
                           const PanelGeometry& geometry,
                           const pv::Topology& topology,
                           const PlacementObjective& objective,
                           const ExhaustiveOptions& options,
                           ExhaustiveStats* stats) {
    check_arg(suitability.width() == area.width &&
                  suitability.height() == area.height,
              "place_exhaustive: suitability does not match the area");
    const int n = topology.total();
    check_arg(n > 0, "place_exhaustive: empty topology");

    const auto anchors = enumerate_anchors(area, geometry);
    if (static_cast<int>(anchors.size()) < n)
        throw Infeasible("place_exhaustive: fewer anchors than modules");

    std::vector<double> scores(anchors.size());
    for (std::size_t a = 0; a < anchors.size(); ++a)
        scores[a] = anchor_score(suitability, geometry, anchors[a].x,
                                 anchors[a].y, AnchorScore::FootprintMean) *
                    geometry.cell_count();

    SearchContext ctx;
    ctx.anchors = &anchors;
    ctx.scores = &scores;
    ctx.geometry = &geometry;
    ctx.objective = &objective;
    ctx.n_modules = n;
    ctx.max_nodes = options.max_nodes;
    ctx.current.geometry = geometry;
    ctx.current.topology = topology;
    ctx.best.geometry = geometry;
    ctx.best.topology = topology;

    dfs(ctx, 0);

    if (ctx.best.module_count() != n)
        throw Infeasible(
            "place_exhaustive: no feasible combination of anchors");
    ctx.stats.best_objective = ctx.best_value;
    if (stats) *stats = ctx.stats;
    return ctx.best;
}

}  // namespace pvfp::core

#pragma once
/// \file suitability.hpp
/// The suitability metric of paper Section III-C.
///
/// For each valid grid cell, distill the year-long G and Tact traces into
/// a scalar: the k-th percentile of the irradiance distribution (k = 75 in
/// the paper; the mean is a poor summary because the distributions are
/// skewed toward small values), times a temperature correction factor f(T)
/// that "tracks dPmax/dT" — implemented as the module's linear power
/// derating evaluated at the percentile of the cell's actual temperature,
/// normalized to 1 at the reference temperature:
///
///   s_ij = pG75_ij * (p_off - gamma*Tp75_ij) / (p_off - gamma*Tref)
///
/// Percentiles are computed from fixed-range per-cell histograms (exact to
/// bin width) so a full year over ~10^4 cells fits in a few MB.

#include "pvfp/geo/suitable_area.hpp"
#include "pvfp/solar/irradiance.hpp"
#include "pvfp/util/grid2d.hpp"

namespace pvfp::core {

/// Knobs of the suitability computation (ablated in bench A1).
struct SuitabilityOptions {
    /// Percentile of the irradiance distribution (paper: 75).
    double percentile = 75.0;
    /// Use the mean instead of a percentile (the "obvious choice" the
    /// paper argues against; kept for the ablation).
    bool use_mean = false;
    /// Apply the temperature correction factor f(T).
    bool temperature_correction = true;
    /// Restrict the distribution to daylight steps (sun above horizon).
    /// Default false = the paper's convention (the percentile is taken
    /// over all NT samples).  This matters: with nights included (~50% of
    /// samples), p75 falls near the *median of the daylight distribution*,
    /// where part-day shading moves the ranking; restricted to daylight
    /// it saturates at the clear-sky envelope and loses discrimination.
    bool daylight_only = false;
    /// Linear power-derating model for f(T) (matches the empirical module
    /// model's corrected coefficients).
    double derating_offset = 1.12;
    double derating_per_k = 0.0048;
    double reference_temp_c = 25.0;
    /// Histogram ranges/resolution.
    int bins = 256;
    double g_max = 1400.0;       ///< W/m^2
    double t_min_c = -30.0;
    double t_max_c = 100.0;
    /// Evaluate only every k-th time step (>=1); speeds tests up.
    long step_stride = 1;
};

/// Output: per-cell statistics over the placement area window.  Cells
/// outside the valid mask hold 0.
struct SuitabilityResult {
    /// The metric s_ij driving the greedy ranking.
    pvfp::Grid2D<double> suitability;
    /// k-th percentile of irradiance [W/m^2] — the map of paper Fig. 6(b).
    pvfp::Grid2D<double> g_percentile;
    /// k-th percentile of module temperature [deg C].
    pvfp::Grid2D<double> t_percentile;
};

/// Compute the suitability matrix for \p area from \p field.  The field's
/// window must match the area's grid (same width/height).
SuitabilityResult compute_suitability(const solar::IrradianceField& field,
                                      const geo::PlacementArea& area,
                                      const SuitabilityOptions& options = {});

/// The temperature correction factor f(T) alone (exposed for tests).
double temperature_correction_factor(double t_c,
                                     const SuitabilityOptions& options);

}  // namespace pvfp::core

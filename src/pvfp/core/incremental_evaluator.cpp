#include "pvfp/core/incremental_evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "pvfp/obs/metrics.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/parallel.hpp"

namespace pvfp::core {
namespace {

/// Sampled time steps per shard — must match evaluate_floorplan's shard
/// grid so the incremental chunk-order fold reproduces the full pass's
/// floating-point summation tree.
constexpr long kStepsPerShard = 256;

/// Default anchor-cache memory budget when the caller passes capacity 0.
constexpr std::size_t kCacheBudgetBytes = 128ull << 20;

}  // namespace

IncrementalEvaluator::IncrementalEvaluator(
    Floorplan plan, const geo::PlacementArea& area,
    const solar::IrradianceField& field,
    const pv::EmpiricalModuleModel& model, const EvaluationOptions& options,
    std::size_t anchor_cache_capacity)
    : plan_(std::move(plan)), area_(area), field_(&field), model_(model),
      options_(options) {
    std::string why;
    check_arg(floorplan_feasible(plan_, area_, &why),
              "IncrementalEvaluator: infeasible plan: " + why);
    check_arg(field.width() == area.width && field.height() == area.height,
              "IncrementalEvaluator: field window does not match area");
    check_arg(options.step_stride >= 1,
              "IncrementalEvaluator: step_stride must be >= 1");
    pv::check_topology(plan_.topology, plan_.module_count());

    build_samples();

    if (anchor_cache_capacity == 0) {
        const std::size_t bytes_per_series =
            std::max<std::size_t>(1, samples_.size()) * 3 * sizeof(double);
        anchor_cache_capacity = std::clamp<std::size_t>(
            kCacheBudgetBytes / bytes_per_series, 16, 1 << 16);
    }
    cache_capacity_ = anchor_cache_capacity;

    const auto n = plan_.modules.size();
    module_ops_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        module_ops_[i] = series_for_anchor(plan_.modules[i]);
    extra_lengths_ = pv::panel_extra_lengths(
        plan_.centers_m(area_.cell_size), plan_.topology, options_.wiring);
    totals_ = accumulate(module_ops_, extra_lengths_);
    stats_.full_passes = 1;
}

void IncrementalEvaluator::build_samples() {
    const long n_steps = field_->steps();
    const long stride = options_.step_stride;
    const long n_grid = (n_steps + stride - 1) / stride;
    n_chunks_ = (n_grid + kStepsPerShard - 1) / kStepsPerShard;
    const double step_h = field_->time_grid().step_hours();
    samples_.reserve(static_cast<std::size_t>(n_grid));
    for (long k = 0; k < n_grid; ++k) {
        const long s = k * stride;
        if (!field_->is_daylight(s)) continue;
        Sample smp;
        smp.step = s;
        smp.chunk = k / kStepsPerShard;
        // Same trailing-interval clamp as evaluate_floorplan: the sampled
        // step is billed only for the real steps that remain.
        smp.dt_h =
            step_h * static_cast<double>(std::min(stride, n_steps - s));
        smp.t_air = field_->air_temperature(s);
        samples_.push_back(smp);
    }
    sample_steps_.reserve(samples_.size());
    for (const Sample& smp : samples_) sample_steps_.push_back(smp.step);
    chunk_offsets_.assign(static_cast<std::size_t>(n_chunks_) + 1, 0);
    // samples_ is in ascending chunk order: offsets by linear scan.
    std::size_t k = 0;
    for (long c = 0; c < n_chunks_; ++c) {
        chunk_offsets_[static_cast<std::size_t>(c)] = k;
        while (k < samples_.size() && samples_[k].chunk == c) ++k;
    }
    chunk_offsets_[static_cast<std::size_t>(n_chunks_)] = samples_.size();
}

std::shared_ptr<const IncrementalEvaluator::OpSeries>
IncrementalEvaluator::series_for_anchor(const ModulePlacement& anchor) {
    const long long key =
        static_cast<long long>(anchor.y) * area_.width + anchor.x;
    if (auto it = cache_.find(key); it != cache_.end()) {
        ++stats_.series_reused;
        return it->second;
    }
    // The committed plan may hold a series the cache has already evicted.
    for (std::size_t i = 0; i < plan_.modules.size(); ++i) {
        if (plan_.modules[i] == anchor && module_ops_[i]) {
            ++stats_.series_reused;
            return module_ops_[i];
        }
    }

    auto series = std::make_shared<OpSeries>();
    auto& ops = *series;
    ops.power_w.resize(samples_.size());
    ops.voltage_v.resize(samples_.size());
    ops.current_a.resize(samples_.size());
    const double k_th = field_->config().thermal_k;
    const ModuleIrradiance mode = options_.module_irradiance;
    // Disjoint per-sample writes on a fixed chunk grid: bitwise-identical
    // at any thread count.  Each chunk pulls its footprint-irradiance
    // span from the batched series kernel, then samples the empirical
    // model point by point — the same g values, hence the same bits, as
    // the former per-sample scalar walk.
    parallel_for(
        0, static_cast<long>(samples_.size()), kStepsPerShard,
        [&](long b, long e) {
            static thread_local std::vector<double> g_buf;
            g_buf.resize(static_cast<std::size_t>(e - b));
            anchor_irradiance_series(
                plan_.geometry, anchor.x, anchor.y, *field_,
                std::span<const long>(sample_steps_)
                    .subspan(static_cast<std::size_t>(b),
                             static_cast<std::size_t>(e - b)),
                mode, g_buf.data());
            for (long k = b; k < e; ++k) {
                const Sample& smp = samples_[static_cast<std::size_t>(k)];
                const pv::OperatingPoint op = sample_operating_point(
                    model_, g_buf[static_cast<std::size_t>(k - b)],
                    smp.t_air, k_th);
                ops.power_w[static_cast<std::size_t>(k)] = op.power_w;
                ops.voltage_v[static_cast<std::size_t>(k)] = op.voltage_v;
                ops.current_a[static_cast<std::size_t>(k)] = op.current_a;
            }
        });
    ++stats_.series_computed;

    cache_.emplace(key, series);
    cache_fifo_.push_back(key);
    while (cache_.size() > cache_capacity_ &&
           cache_evict_next_ < cache_fifo_.size()) {
        cache_.erase(cache_fifo_[cache_evict_next_++]);
    }
    return series;
}

IncrementalEvaluator::Totals IncrementalEvaluator::accumulate(
    std::span<const std::shared_ptr<const OpSeries>> ops,
    std::span<const double> extra_lengths) const {
    const int m = plan_.topology.series;
    const int n_str = plan_.topology.strings;
    const bool wiring_on = options_.include_wiring_loss;

    /// Per-shard accumulator mirroring evaluate_floorplan's Partial.
    struct Partial {
        double energy = 0.0;
        double ideal = 0.0;
        double mismatch = 0.0;
        double wiring = 0.0;
        std::vector<double> string_energy;
        std::vector<double> string_wiring;
        explicit Partial(std::size_t n = 0)
            : string_energy(n, 0.0), string_wiring(n, 0.0) {}
    };

    // One shard per map call (chunk size 1 over shard indices), merged in
    // shard order: the same summation tree as evaluate_floorplan.
    //
    // The per-sample work is phrased as elementwise passes over the
    // contiguous SoA operating-point streams — string voltage sums, the
    // series current min, the ideal-power sum, then the wiring / net
    // folds — so the compiler vectorizes each pass, while every
    // accumulator (p.energy, p.string_*, ...) is still folded sample by
    // sample in ascending k, string by string in ascending j: exactly
    // the summation order (hence the bits) of the former scalar loop and
    // of evaluate_floorplan.
    const Partial total = parallel_reduce(
        0L, n_chunks_, 1L, Partial(static_cast<std::size_t>(n_str)),
        [&](long cb, long ce) {
            Partial p(static_cast<std::size_t>(n_str));
            auto sc = acc_scratch_.acquire();
            for (long c = cb; c < ce; ++c) {
                const std::size_t kb =
                    chunk_offsets_[static_cast<std::size_t>(c)];
                const std::size_t ke =
                    chunk_offsets_[static_cast<std::size_t>(c) + 1];
                const std::size_t nk = ke - kb;
                if (nk == 0) continue;
                constexpr double kInf =
                    std::numeric_limits<double>::infinity();
                sc->v.assign(nk, 0.0);
                sc->min_v.assign(nk, kInf);
                sc->panel_i.assign(nk, 0.0);
                sc->ideal.assign(nk, 0.0);
                sc->volt.resize(nk);
                sc->power.resize(nk);
                sc->wiring.assign(nk, 0.0);
                sc->cur.resize(static_cast<std::size_t>(n_str) * nk);
                sc->loss.resize(static_cast<std::size_t>(n_str) * nk);

                double* const ideal = sc->ideal.data();
                double* const min_v = sc->min_v.data();
                double* const panel_i = sc->panel_i.data();
                for (int j = 0; j < n_str; ++j) {
                    double* const v = sc->v.data();
                    double* const cur =
                        sc->cur.data() + static_cast<std::size_t>(j) * nk;
                    std::fill(v, v + nk, 0.0);
                    std::fill(cur, cur + nk, kInf);
                    for (int i = 0; i < m; ++i) {
                        const OpSeries& s =
                            *ops[static_cast<std::size_t>(j * m + i)];
                        const double* const vol = s.voltage_v.data() + kb;
                        const double* const cu = s.current_a.data() + kb;
                        const double* const pw = s.power_w.data() + kb;
                        for (std::size_t k = 0; k < nk; ++k)
                            v[k] += vol[k];
                        for (std::size_t k = 0; k < nk; ++k)
                            cur[k] = std::min(cur[k], cu[k]);
                        for (std::size_t k = 0; k < nk; ++k)
                            ideal[k] += pw[k];
                    }
                    for (std::size_t k = 0; k < nk; ++k)
                        if (!std::isfinite(cur[k])) cur[k] = 0.0;
                    for (std::size_t k = 0; k < nk; ++k)
                        min_v[k] = std::min(min_v[k], v[k]);
                    for (std::size_t k = 0; k < nk; ++k)
                        panel_i[k] += cur[k];
                }
                double* const volt = sc->volt.data();
                double* const power = sc->power.data();
                for (std::size_t k = 0; k < nk; ++k)
                    volt[k] = std::isfinite(min_v[k]) ? min_v[k] : 0.0;
                for (std::size_t k = 0; k < nk; ++k)
                    power[k] = volt[k] * panel_i[k];

                double* const wiring = sc->wiring.data();
                if (wiring_on) {
                    for (int j = 0; j < n_str; ++j) {
                        const double extra =
                            extra_lengths[static_cast<std::size_t>(j)];
                        check_arg(extra >= 0.0,
                                  "wiring_power_loss: negative length");
                        // ((R * extra) * I) * I: the association of
                        // pv::wiring_power_loss.
                        const double rl =
                            options_.wiring.resistance_ohm_per_m * extra;
                        const double* const cur =
                            sc->cur.data() +
                            static_cast<std::size_t>(j) * nk;
                        double* const loss =
                            sc->loss.data() +
                            static_cast<std::size_t>(j) * nk;
                        for (std::size_t k = 0; k < nk; ++k)
                            loss[k] = rl * cur[k] * cur[k];
                        for (std::size_t k = 0; k < nk; ++k)
                            wiring[k] += loss[k];
                    }
                }

                // Sample-order fold into the shard partial (the
                // reduction the determinism contract pins).
                for (std::size_t k = 0; k < nk; ++k) {
                    const double dt_h = samples_[kb + k].dt_h;
                    if (wiring_on) {
                        for (int j = 0; j < n_str; ++j)
                            p.string_wiring[static_cast<std::size_t>(j)] +=
                                sc->loss[static_cast<std::size_t>(j) * nk +
                                         k] *
                                dt_h / 1000.0;
                    }
                    const double net =
                        std::max(0.0, power[k] - wiring[k]);
                    p.energy += net * dt_h / 1000.0;
                    p.ideal += ideal[k] * dt_h / 1000.0;
                    p.mismatch +=
                        std::max(0.0, ideal[k] - power[k]) * dt_h / 1000.0;
                    p.wiring += wiring[k] * dt_h / 1000.0;
                    for (int j = 0; j < n_str; ++j) {
                        p.string_energy[static_cast<std::size_t>(j)] +=
                            volt[k] *
                            sc->cur[static_cast<std::size_t>(j) * nk + k] *
                            dt_h / 1000.0;
                    }
                }
            }
            return p;
        },
        [](Partial acc, const Partial& p) {
            acc.energy += p.energy;
            acc.ideal += p.ideal;
            acc.mismatch += p.mismatch;
            acc.wiring += p.wiring;
            for (std::size_t j = 0; j < acc.string_energy.size(); ++j) {
                acc.string_energy[j] += p.string_energy[j];
                acc.string_wiring[j] += p.string_wiring[j];
            }
            return acc;
        });

    Totals out;
    out.energy_kwh = total.energy;
    out.ideal_energy_kwh = total.ideal;
    out.mismatch_loss_kwh = total.mismatch;
    out.wiring_loss_kwh = total.wiring;
    out.string_energy_kwh = total.string_energy;
    out.string_wiring_loss_kwh = total.string_wiring;
    return out;
}

EvaluationResult IncrementalEvaluator::result() const {
    const int n_str = plan_.topology.strings;
    EvaluationResult r;
    r.energy_kwh = totals_.energy_kwh;
    r.ideal_energy_kwh = totals_.ideal_energy_kwh;
    r.mismatch_loss_kwh = totals_.mismatch_loss_kwh;
    r.wiring_loss_kwh = totals_.wiring_loss_kwh;
    r.strings.resize(static_cast<std::size_t>(n_str));
    for (int j = 0; j < n_str; ++j) {
        auto& s = r.strings[static_cast<std::size_t>(j)];
        s.energy_kwh = totals_.string_energy_kwh[static_cast<std::size_t>(j)];
        s.extra_cable_m = extra_lengths_[static_cast<std::size_t>(j)];
        s.wiring_loss_kwh =
            totals_.string_wiring_loss_kwh[static_cast<std::size_t>(j)];
        r.extra_cable_m += extra_lengths_[static_cast<std::size_t>(j)];
    }
    r.wiring_cost_usd = pv::wiring_cost(extra_lengths_, options_.wiring);
    return r;
}

bool IncrementalEvaluator::move_feasible(int module_index,
                                         const ModulePlacement& anchor) const {
    check_arg(module_index >= 0 && module_index < plan_.module_count(),
              "IncrementalEvaluator: module index out of range");
    if (!anchor_fits(area_, plan_.geometry, anchor.x, anchor.y)) return false;
    for (std::size_t i = 0; i < plan_.modules.size(); ++i) {
        if (static_cast<int>(i) == module_index) continue;
        if (modules_overlap(anchor, plan_.modules[i], plan_.geometry))
            return false;
    }
    return true;
}

double IncrementalEvaluator::delta_move(int module_index,
                                        const ModulePlacement& anchor) {
    const std::pair<int, ModulePlacement> mv[1] = {{module_index, anchor}};
    return delta_update(mv);
}

double IncrementalEvaluator::delta_swap(int i, int j) {
    check_arg(i >= 0 && i < plan_.module_count() && j >= 0 &&
                  j < plan_.module_count(),
              "IncrementalEvaluator: swap index out of range");
    const std::pair<int, ModulePlacement> mv[2] = {
        {i, plan_.modules[static_cast<std::size_t>(j)]},
        {j, plan_.modules[static_cast<std::size_t>(i)]}};
    return delta_update(mv);
}

double IncrementalEvaluator::delta_update(
    std::span<const std::pair<int, ModulePlacement>> moves) {
    check_arg(!pending_.has_value(),
              "IncrementalEvaluator: a proposal is already pending — "
              "commit() or rollback() first");
    ++stats_.proposals;

    Pending pend;
    pend.modules = plan_.modules;
    for (const auto& [idx, anchor] : moves) {
        check_arg(idx >= 0 && idx < plan_.module_count(),
                  "IncrementalEvaluator: module index out of range");
        pend.modules[static_cast<std::size_t>(idx)] = anchor;
    }
    std::vector<int> changed;
    for (std::size_t i = 0; i < pend.modules.size(); ++i)
        if (!(pend.modules[i] == plan_.modules[i]))
            changed.push_back(static_cast<int>(i));

    // Targeted feasibility: only changed footprints against the area, and
    // only pairs involving a changed module — never a full-plan pass.
    for (int idx : changed) {
        const ModulePlacement& mp =
            pend.modules[static_cast<std::size_t>(idx)];
        if (!anchor_fits(area_, plan_.geometry, mp.x, mp.y)) {
            ++stats_.rejected;
            throw InvalidArgument(
                "IncrementalEvaluator: proposed footprint of module " +
                std::to_string(idx) + " leaves the placement area");
        }
        for (std::size_t o = 0; o < pend.modules.size(); ++o) {
            if (static_cast<int>(o) == idx) continue;
            if (modules_overlap(mp, pend.modules[o], plan_.geometry)) {
                ++stats_.rejected;
                throw InvalidArgument(
                    "IncrementalEvaluator: proposed modules " +
                    std::to_string(idx) + " and " + std::to_string(o) +
                    " overlap");
            }
        }
    }

    pend.ops = module_ops_;
    for (int idx : changed)
        pend.ops[static_cast<std::size_t>(idx)] =
            series_for_anchor(pend.modules[static_cast<std::size_t>(idx)]);

    // Wiring overhead changes only for the strings that lost or gained a
    // module position.
    pend.extra_lengths = extra_lengths_;
    const int m = plan_.topology.series;
    std::vector<int> affected_strings;
    for (int idx : changed) {
        const int j = idx / m;
        if (std::find(affected_strings.begin(), affected_strings.end(), j) ==
            affected_strings.end())
            affected_strings.push_back(j);
    }
    std::vector<pv::ModulePosition> positions(static_cast<std::size_t>(m));
    for (int j : affected_strings) {
        for (int i = 0; i < m; ++i)
            positions[static_cast<std::size_t>(i)] = module_center_m(
                pend.modules[static_cast<std::size_t>(j * m + i)],
                plan_.geometry, area_.cell_size);
        pend.extra_lengths[static_cast<std::size_t>(j)] =
            pv::string_extra_length(positions, options_.wiring);
    }

    pend.totals = accumulate(pend.ops, pend.extra_lengths);
    const double energy = pend.totals.energy_kwh;
    pending_ = std::move(pend);
    return energy;
}

void IncrementalEvaluator::commit() {
    check_arg(pending_.has_value(),
              "IncrementalEvaluator::commit: no pending proposal");
    plan_.modules = std::move(pending_->modules);
    module_ops_ = std::move(pending_->ops);
    extra_lengths_ = std::move(pending_->extra_lengths);
    totals_ = std::move(pending_->totals);
    pending_.reset();
    ++stats_.commits;
}

void IncrementalEvaluator::rollback() {
    check_arg(pending_.has_value(),
              "IncrementalEvaluator::rollback: no pending proposal");
    pending_.reset();
    ++stats_.rollbacks;
}

double IncrementalEvaluator::sync_to(
    std::span<const ModulePlacement> modules) {
    check_arg(modules.size() == plan_.modules.size(),
              "IncrementalEvaluator::sync_to: module count mismatch");
    std::vector<std::pair<int, ModulePlacement>> moves;
    for (std::size_t i = 0; i < modules.size(); ++i)
        if (!(modules[i] == plan_.modules[i]))
            moves.emplace_back(static_cast<int>(i), modules[i]);
    if (!moves.empty()) {
        delta_update(moves);
        commit();
    }
    return totals_.energy_kwh;
}

PlacementObjective make_incremental_objective(
    IncrementalEvaluator& evaluator) {
    return [&evaluator](const Floorplan& candidate) {
        const Floorplan& committed = evaluator.plan();
        check_arg(candidate.module_count() == committed.module_count() &&
                      candidate.geometry.k1 == committed.geometry.k1 &&
                      candidate.geometry.k2 == committed.geometry.k2 &&
                      candidate.topology.series ==
                          committed.topology.series &&
                      candidate.topology.strings ==
                          committed.topology.strings,
                  "make_incremental_objective: candidate plan shape does "
                  "not match the evaluator");
        return evaluator.sync_to(candidate.modules);
    };
}

std::vector<double> ideal_anchor_energies(
    std::span<const ModulePlacement> anchors, const PanelGeometry& geometry,
    const solar::IrradianceField& field,
    const pv::EmpiricalModuleModel& model, const EvaluationOptions& options) {
    check_arg(options.step_stride >= 1,
              "ideal_anchor_energies: step_stride must be >= 1");
    for (const auto& a : anchors)
        check_arg(a.x >= 0 && a.y >= 0 && a.x + geometry.k1 <= field.width() &&
                      a.y + geometry.k2 <= field.height(),
                  "ideal_anchor_energies: anchor footprint outside the "
                  "field window");

    const long n_steps = field.steps();
    const long stride = options.step_stride;
    const long n_grid = (n_steps + stride - 1) / stride;
    const double step_h = field.time_grid().step_hours();
    const double k_th = field.config().thermal_k;
    std::vector<long> step_ids;
    std::vector<double> dt_h;
    std::vector<double> t_air;
    step_ids.reserve(static_cast<std::size_t>(n_grid));
    for (long k = 0; k < n_grid; ++k) {
        const long s = k * stride;
        if (!field.is_daylight(s)) continue;
        step_ids.push_back(s);
        dt_h.push_back(step_h *
                       static_cast<double>(std::min(stride, n_steps - s)));
        t_air.push_back(field.air_temperature(s));
    }

    std::vector<double> out(anchors.size(), 0.0);
    // Disjoint per-anchor writes, each a serial in-order sum over steps
    // (fed by the batched series kernel): deterministic at any thread
    // count and any SIMD level.
    parallel_for(0, static_cast<long>(anchors.size()), 8, [&](long b, long e) {
        static thread_local std::vector<double> g_buf;
        g_buf.resize(step_ids.size());
        for (long a = b; a < e; ++a) {
            const ModulePlacement& anchor =
                anchors[static_cast<std::size_t>(a)];
            anchor_irradiance_series(geometry, anchor.x, anchor.y, field,
                                     step_ids, options.module_irradiance,
                                     g_buf.data());
            double acc = 0.0;
            for (std::size_t k = 0; k < step_ids.size(); ++k) {
                const pv::OperatingPoint op = sample_operating_point(
                    model, g_buf[k], t_air[k], k_th);
                acc += op.power_w * dt_h[k] / 1000.0;
            }
            out[static_cast<std::size_t>(a)] = acc;
        }
    });
    return out;
}

IncrementalEvaluator::~IncrementalEvaluator() {
    if (!obs::enabled()) return;
    obs::MetricsRegistry& reg = obs::registry();
    const auto fold = [&](const char* name, long value) {
        if (value > 0)
            reg.counter(name).add(static_cast<std::uint64_t>(value));
    };
    fold("core.incremental.full_passes", stats_.full_passes);
    fold("core.incremental.proposals", stats_.proposals);
    fold("core.incremental.commits", stats_.commits);
    fold("core.incremental.rollbacks", stats_.rollbacks);
    fold("core.incremental.rejected", stats_.rejected);
    fold("core.incremental.series_computed", stats_.series_computed);
    fold("core.incremental.series_reused", stats_.series_reused);
}

}  // namespace pvfp::core

#pragma once
/// \file bnb_placer.hpp
/// Branch-and-bound optimal placer for the linearized objective.
///
/// The placement problem with a separable (per-anchor) objective is a
/// 0/1 integer program: maximize sum(score_a * x_a) s.t. chosen anchors do
/// not overlap and sum(x_a) = N — a weighted independent-set/packing ILP.
/// Rather than shipping an external solver (the reproduction bans
/// dependencies), this module solves it exactly by depth-first branch and
/// bound: anchors sorted by score descending; the upper bound adds the top
/// (N - placed) remaining scores ignoring overlap (a valid LP-style
/// relaxation).  Practical for the small/medium instances used to audit
/// the greedy heuristic's optimality gap; the full roofs remain greedy
/// territory, as the paper argues.

#include "pvfp/core/layout.hpp"
#include "pvfp/util/grid2d.hpp"

namespace pvfp::core {

struct BnbOptions {
    long long max_nodes = 50'000'000;
};

struct BnbStats {
    long long nodes = 0;
    long long pruned = 0;
    double best_objective = 0.0;
};

/// Exact maximizer of the footprint-suitability sum.  Throws Infeasible
/// when no N-subset of anchors is overlap-free or the node budget is hit.
Floorplan place_bnb(const geo::PlacementArea& area,
                    const pvfp::Grid2D<double>& suitability,
                    const PanelGeometry& geometry,
                    const pv::Topology& topology,
                    const BnbOptions& options = {}, BnbStats* stats = nullptr);

}  // namespace pvfp::core

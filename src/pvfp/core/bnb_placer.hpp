#pragma once
/// \file bnb_placer.hpp
/// Branch-and-bound optimal placer for the linearized objective.
///
/// The placement problem with a separable (per-anchor) objective is a
/// 0/1 integer program: maximize sum(score_a * x_a) s.t. chosen anchors do
/// not overlap and sum(x_a) = N — a weighted independent-set/packing ILP.
/// Rather than shipping an external solver (the reproduction bans
/// dependencies), this module solves it exactly by depth-first branch and
/// bound: anchors sorted by score descending; the upper bound adds the top
/// (N - placed) remaining scores ignoring overlap (a valid LP-style
/// relaxation).  Practical for the small/medium instances used to audit
/// the greedy heuristic's optimality gap; the full roofs remain greedy
/// territory, as the paper argues.

#include "pvfp/core/incremental_evaluator.hpp"
#include "pvfp/core/layout.hpp"
#include "pvfp/util/grid2d.hpp"

namespace pvfp::core {

struct BnbOptions {
    long long max_nodes = 50'000'000;
};

struct BnbStats {
    long long nodes = 0;
    long long pruned = 0;
    double best_objective = 0.0;
};

/// Exact maximizer of the footprint-suitability sum.  Throws Infeasible
/// when no N-subset of anchors is overlap-free or the node budget is hit.
Floorplan place_bnb(const geo::PlacementArea& area,
                    const pvfp::Grid2D<double>& suitability,
                    const PanelGeometry& geometry,
                    const pv::Topology& topology,
                    const BnbOptions& options = {}, BnbStats* stats = nullptr);

/// Exact maximizer of the *true yearly energy* (the objective of
/// evaluate_floorplan) over anchor sets on small instances.  Anchors are
/// ranked by their ideal per-module energy (ideal_anchor_energies); the
/// bound "placed ideal + top remaining ideals" is a valid relaxation
/// because series/parallel mismatch and wiring can only lose energy
/// relative to per-module MPPT, and leaves are scored exactly through an
/// IncrementalEvaluator — consecutive DFS leaves share long prefixes, so
/// each leaf is a delta instead of a full evaluate_floorplan.  Each
/// chosen set is scored under the canonical *row-major* series-first
/// assignment — the same assignment place_exhaustive gives that set — so
/// both searches agree on the optimum (neither optimizes over
/// permutations within a set; use delta_swap/annealing for that axis).
/// The mismatch/wiring slack makes this bound looser than the linearized
/// one, so the practical reach is audit-sized instances (the paper's
/// point about exhaustive search stands).  Throws Infeasible like
/// place_bnb; stats->best_objective reports energy [kWh].
Floorplan place_bnb_energy(const geo::PlacementArea& area,
                           const solar::IrradianceField& field,
                           const pv::EmpiricalModuleModel& model,
                           const PanelGeometry& geometry,
                           const pv::Topology& topology,
                           const EvaluationOptions& eval_options = {},
                           const BnbOptions& options = {},
                           BnbStats* stats = nullptr);

}  // namespace pvfp::core

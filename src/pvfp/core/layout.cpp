#include "pvfp/core/layout.hpp"

#include <cmath>
#include <string>

#include "pvfp/util/error.hpp"

namespace pvfp::core {

PanelGeometry PanelGeometry::from_module(const pv::ModuleSpec& spec, double s,
                                         bool portrait) {
    check_arg(s > 0.0, "PanelGeometry: grid pitch must be positive");
    const double w = portrait ? spec.height_m : spec.width_m;
    const double h = portrait ? spec.width_m : spec.height_m;
    const double k1f = w / s;
    const double k2f = h / s;
    const int k1 = static_cast<int>(std::lround(k1f));
    const int k2 = static_cast<int>(std::lround(k2f));
    check_arg(k1 > 0 && k2 > 0 && std::abs(k1f - k1) < 1e-9 &&
                  std::abs(k2f - k2) < 1e-9,
              "PanelGeometry: module dimensions must be integer multiples "
              "of the grid pitch s (paper Section III-A)");
    return PanelGeometry{k1, k2};
}

pv::ModulePosition module_center_m(const ModulePlacement& m,
                                   const PanelGeometry& geometry,
                                   double cell_size) {
    return pv::ModulePosition{
        (m.x + geometry.k1 / 2.0) * cell_size,
        (m.y + geometry.k2 / 2.0) * cell_size,
    };
}

pv::ModulePosition Floorplan::center_m(int index, double cell_size) const {
    check_arg(index >= 0 && index < module_count(),
              "Floorplan::center_m: index out of range");
    return module_center_m(modules[static_cast<std::size_t>(index)], geometry,
                           cell_size);
}

std::vector<pv::ModulePosition> Floorplan::centers_m(double cell_size) const {
    std::vector<pv::ModulePosition> out;
    out.reserve(modules.size());
    for (int i = 0; i < module_count(); ++i)
        out.push_back(center_m(i, cell_size));
    return out;
}

bool anchor_fits(const geo::PlacementArea& area, const PanelGeometry& g,
                 int x, int y) {
    if (x < 0 || y < 0 || x + g.k1 > area.width || y + g.k2 > area.height)
        return false;
    for (int yy = y; yy < y + g.k2; ++yy)
        for (int xx = x; xx < x + g.k1; ++xx)
            if (!area.valid(xx, yy)) return false;
    return true;
}

bool modules_overlap(const ModulePlacement& a, const ModulePlacement& b,
                     const PanelGeometry& g) {
    return a.x < b.x + g.k1 && b.x < a.x + g.k1 && a.y < b.y + g.k2 &&
           b.y < a.y + g.k2;
}

bool floorplan_feasible(const Floorplan& plan, const geo::PlacementArea& area,
                        std::string* why) {
    for (std::size_t i = 0; i < plan.modules.size(); ++i) {
        const ModulePlacement& m = plan.modules[i];
        if (!anchor_fits(area, plan.geometry, m.x, m.y)) {
            if (why)
                *why = "module " + std::to_string(i) +
                       " does not fit valid area at (" + std::to_string(m.x) +
                       "," + std::to_string(m.y) + ")";
            return false;
        }
        for (std::size_t j = i + 1; j < plan.modules.size(); ++j) {
            if (modules_overlap(m, plan.modules[j], plan.geometry)) {
                if (why)
                    *why = "modules " + std::to_string(i) + " and " +
                           std::to_string(j) + " overlap";
                return false;
            }
        }
    }
    return true;
}

double center_distance_cells(const ModulePlacement& a,
                             const ModulePlacement& b,
                             const PanelGeometry& /*g*/) {
    // Same geometry for both, so anchor distance equals center distance.
    return std::hypot(static_cast<double>(a.x - b.x),
                      static_cast<double>(a.y - b.y));
}

std::vector<ModulePlacement> enumerate_anchors(const geo::PlacementArea& area,
                                               const PanelGeometry& g) {
    std::vector<ModulePlacement> anchors;
    for (int y = 0; y + g.k2 <= area.height; ++y) {
        for (int x = 0; x + g.k1 <= area.width; ++x) {
            if (anchor_fits(area, g, x, y)) anchors.push_back({x, y});
        }
    }
    return anchors;
}

}  // namespace pvfp::core

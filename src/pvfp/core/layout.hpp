#pragma once
/// \file layout.hpp
/// Placement-domain types shared by all placers: module footprints on the
/// virtual grid (paper Section III-A), floorplans (the algorithm's output
/// "array of N grid coordinates"), and their feasibility predicates.

#include <vector>

#include "pvfp/geo/suitable_area.hpp"
#include "pvfp/pv/array.hpp"
#include "pvfp/pv/module.hpp"
#include "pvfp/pv/wiring.hpp"
#include "pvfp/util/grid2d.hpp"

namespace pvfp::core {

/// Module footprint in grid cells: the paper's w = k1*s, h = k2*s with
/// s = 20 cm and the 160x80 cm module -> k1 = 8, k2 = 4.
struct PanelGeometry {
    int k1 = 8;  ///< cells along x
    int k2 = 4;  ///< cells along y

    int cell_count() const { return k1 * k2; }

    /// Derive from a module spec and grid pitch; throws InvalidArgument
    /// when the module dimensions are not integer multiples of \p s
    /// (the paper's condition on the choice of s).
    static PanelGeometry from_module(const pv::ModuleSpec& spec, double s,
                                     bool portrait = false);
};

/// One placed module: top-left covered cell in area coordinates.
struct ModulePlacement {
    int x = 0;
    int y = 0;

    bool operator==(const ModulePlacement&) const = default;
};

/// Center of a geometry-sized module anchored at \p m on the roof plane
/// [m].  The one shared kernel behind Floorplan::center_m and the
/// incremental evaluator's per-string wiring recomputation, so both
/// produce the same bits.
pv::ModulePosition module_center_m(const ModulePlacement& m,
                                   const PanelGeometry& geometry,
                                   double cell_size);

/// A complete placement in *series-first* order: modules[j*m + i] is the
/// i-th module of string j (paper Fig. 5, line 4).
struct Floorplan {
    std::vector<ModulePlacement> modules;
    PanelGeometry geometry;
    pv::Topology topology;

    int module_count() const { return static_cast<int>(modules.size()); }

    /// Center of module \p index on the roof plane [m].
    pv::ModulePosition center_m(int index, double cell_size) const;
    /// All centers, series-first order.
    std::vector<pv::ModulePosition> centers_m(double cell_size) const;
};

/// True when a module anchored at (x,y) lies fully on valid cells of
/// \p area (in-bounds and every covered cell valid).
bool anchor_fits(const geo::PlacementArea& area, const PanelGeometry& g,
                 int x, int y);

/// True when two same-geometry modules at \p a and \p b overlap.
bool modules_overlap(const ModulePlacement& a, const ModulePlacement& b,
                     const PanelGeometry& g);

/// Full feasibility: every module fits and no pair overlaps; throws
/// nothing, returns false with the first violation in \p why (optional).
bool floorplan_feasible(const Floorplan& plan, const geo::PlacementArea& area,
                        std::string* why = nullptr);

/// Euclidean center distance between two placements [cells].
double center_distance_cells(const ModulePlacement& a,
                             const ModulePlacement& b,
                             const PanelGeometry& g);

/// Enumerate all anchors whose footprint fits \p area, row-major order.
std::vector<ModulePlacement> enumerate_anchors(const geo::PlacementArea& area,
                                               const PanelGeometry& g);

}  // namespace pvfp::core

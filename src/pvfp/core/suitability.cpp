#include "pvfp/core/suitability.hpp"

#include <algorithm>

#include "pvfp/solar/irradiance_kernels.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/parallel.hpp"
#include "pvfp/util/stats.hpp"

namespace pvfp::core {

double temperature_correction_factor(double t_c,
                                     const SuitabilityOptions& options) {
    const double denom =
        options.derating_offset -
        options.derating_per_k * options.reference_temp_c;
    check_arg(denom > 0.0,
              "temperature_correction_factor: derating model degenerate at "
              "the reference temperature");
    const double num =
        options.derating_offset - options.derating_per_k * t_c;
    return std::max(0.0, num / denom);
}

SuitabilityResult compute_suitability(const solar::IrradianceField& field,
                                      const geo::PlacementArea& area,
                                      const SuitabilityOptions& options) {
    check_arg(field.width() == area.width && field.height() == area.height,
              "compute_suitability: field window does not match area");
    check_arg(options.percentile >= 0.0 && options.percentile <= 100.0,
              "compute_suitability: percentile out of [0,100]");
    check_arg(options.bins >= 8, "compute_suitability: too few bins");
    check_arg(options.step_stride >= 1,
              "compute_suitability: step_stride must be >= 1");
    check_arg(options.g_max > 0.0 && options.t_max_c > options.t_min_c,
              "compute_suitability: invalid histogram ranges");

    const int w = area.width;
    const int h = area.height;

    // Collect the list of valid cells once; histograms only for them.
    std::vector<std::pair<int, int>> cells;
    cells.reserve(static_cast<std::size_t>(area.valid_count));
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            if (area.valid(x, y)) cells.emplace_back(x, y);
    check_arg(!cells.empty(), "compute_suitability: no valid cells");

    std::vector<pvfp::Histogram> g_hist(
        cells.size(), pvfp::Histogram(0.0, options.g_max, options.bins));
    std::vector<pvfp::Histogram> t_hist(
        cells.size(),
        pvfp::Histogram(options.t_min_c, options.t_max_c, options.bins));

    // Resolve the sampled time axis once (stride + daylight filter), then
    // sweep it per cell: cells own disjoint histograms, so the cell loop
    // parallelizes with deterministic results (histogram bin counts are
    // order-independent integers).
    std::vector<long> sampled;
    std::vector<double> sampled_t_air;
    for (long s = 0; s < field.steps(); s += options.step_stride) {
        if (options.daylight_only && !field.is_daylight(s)) continue;
        sampled.push_back(s);
        sampled_t_air.push_back(field.air_temperature(s));
    }

    const double k_th = field.config().thermal_k;
    // Bin axes mirroring the Histogram construction above, for the
    // fused binning pass (bin_series replicates Histogram::bin_index
    // exactly — integer indices, so the fusion is deterministic by
    // construction at any SIMD level).
    const solar::detail::BinAxis g_axis{0.0, options.g_max,
                                        g_hist[0].bin_width(),
                                        options.bins};
    const solar::detail::BinAxis t_axis{options.t_min_c, options.t_max_c,
                                        t_hist[0].bin_width(),
                                        options.bins};
    // Each cell's time sweep runs through the batched series kernel
    // (bitwise-identical to the scalar per-step walk), then the fused
    // binning pass turns the series plus the module-temperature model
    // into bin indices in one vectorized sweep; the histograms just
    // count.  Scratch is pooled across chunks.  The sampled axis is
    // built from [0, steps()) above and the cells come from the
    // window-matched area, so the unchecked entry applies.
    struct BinScratch {
        std::vector<double> g;
        std::vector<std::int32_t> g_bins;
        std::vector<std::int32_t> t_bins;
    };
    ScratchPool<BinScratch> scratch_pool;
    parallel_for(
        0, static_cast<long>(cells.size()), 32, [&](long cb, long ce) {
            auto scratch = scratch_pool.acquire();
            scratch->g.resize(sampled.size());
            scratch->g_bins.resize(sampled.size());
            scratch->t_bins.resize(sampled.size());
            for (long c = cb; c < ce; ++c) {
                const auto [x, y] = cells[static_cast<std::size_t>(c)];
                auto& gh = g_hist[static_cast<std::size_t>(c)];
                auto& th = t_hist[static_cast<std::size_t>(c)];
                field.cell_irradiance_series_unchecked(x, y, sampled,
                                                       scratch->g.data());
                solar::detail::bin_series(
                    scratch->g.data(), sampled.size(), sampled_t_air.data(),
                    k_th, g_axis, t_axis, scratch->g_bins.data(),
                    scratch->t_bins.data());
                for (std::size_t k = 0; k < sampled.size(); ++k) {
                    gh.add_bin(scratch->g_bins[k]);
                    th.add_bin(scratch->t_bins[k]);
                }
            }
        });

    SuitabilityResult out;
    out.suitability = pvfp::Grid2D<double>(w, h, 0.0);
    out.g_percentile = pvfp::Grid2D<double>(w, h, 0.0);
    out.t_percentile = pvfp::Grid2D<double>(w, h, 0.0);

    for (std::size_t c = 0; c < cells.size(); ++c) {
        const auto [x, y] = cells[c];
        const double gp = options.use_mean
                              ? g_hist[c].approx_mean()
                              : g_hist[c].percentile(options.percentile);
        const double tp = options.use_mean
                              ? t_hist[c].approx_mean()
                              : t_hist[c].percentile(options.percentile);
        out.g_percentile(x, y) = gp;
        out.t_percentile(x, y) = tp;
        double s_val = gp;
        if (options.temperature_correction)
            s_val *= temperature_correction_factor(tp, options);
        out.suitability(x, y) = s_val;
    }
    return out;
}

}  // namespace pvfp::core

#include "pvfp/core/string_row_placer.hpp"

#include <cmath>
#include <limits>

#include "pvfp/util/error.hpp"

namespace pvfp::core {

Floorplan place_string_rows(const geo::PlacementArea& area,
                            const pvfp::Grid2D<double>& suitability,
                            const PanelGeometry& geometry,
                            const pv::Topology& topology,
                            const StringRowOptions& options) {
    check_arg(suitability.width() == area.width &&
                  suitability.height() == area.height,
              "place_string_rows: suitability does not match the area");
    check_arg(options.row_distance_penalty >= 0.0,
              "place_string_rows: negative penalty");
    const int m = topology.series;
    const int n = topology.strings;
    check_arg(m > 0 && n > 0, "place_string_rows: degenerate topology");

    const int row_w = m * geometry.k1;
    const int row_h = geometry.k2;

    const pvfp::SummedAreaTable sat(suitability, &area.valid);
    const auto row_valid = [&](int x, int y) {
        if (x < 0 || y < 0 || x + row_w > area.width ||
            y + row_h > area.height)
            return false;
        for (int yy = y; yy < y + row_h; ++yy)
            for (int xx = x; xx < x + row_w; ++xx)
                if (!area.valid(xx, yy)) return false;
        return true;
    };

    pvfp::Grid2D<unsigned char> occupied(area.width, area.height, 0);
    const auto row_free = [&](int x, int y) {
        for (int yy = y; yy < y + row_h; ++yy)
            for (int xx = x; xx < x + row_w; ++xx)
                if (occupied(xx, yy)) return false;
        return true;
    };

    Floorplan plan;
    plan.geometry = geometry;
    plan.topology = topology;
    plan.modules.reserve(static_cast<std::size_t>(topology.total()));

    double prev_x = std::numeric_limits<double>::quiet_NaN();
    double prev_y = 0.0;
    for (int j = 0; j < n; ++j) {
        double best = -std::numeric_limits<double>::infinity();
        int bx = -1;
        int by = -1;
        for (int y = 0; y + row_h <= area.height; ++y) {
            for (int x = 0; x + row_w <= area.width; ++x) {
                if (!row_valid(x, y) || !row_free(x, y)) continue;
                double score = sat.rect_sum(x, y, row_w, row_h);
                if (!std::isnan(prev_x)) {
                    score -= options.row_distance_penalty *
                             std::hypot(x - prev_x, y - prev_y);
                }
                if (score > best) {
                    best = score;
                    bx = x;
                    by = y;
                }
            }
        }
        if (bx < 0)
            throw Infeasible(
                "place_string_rows: string " + std::to_string(j) +
                " does not fit (rigid rows need a clear " +
                std::to_string(row_w) + "-cell span)");
        for (int yy = by; yy < by + row_h; ++yy)
            for (int xx = bx; xx < bx + row_w; ++xx)
                occupied(xx, yy) = 1;
        for (int i = 0; i < m; ++i)
            plan.modules.push_back({bx + i * geometry.k1, by});
        prev_x = bx;
        prev_y = by;
    }
    return plan;
}

}  // namespace pvfp::core

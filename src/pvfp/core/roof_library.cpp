#include "pvfp/core/roof_library.hpp"

namespace pvfp::core {

using geo::BoxObstacle;
using geo::Building;
using geo::HeightRef;
using geo::MonopitchRoof;
using geo::PipeRun;
using geo::SceneBuilder;
using geo::Tree;

// The three scenes below are calibrated so that (a) the suitable-area
// geometry matches Table I (bounding boxes ~287x51 / 298x51 / 298x52 cells,
// Ng within a few percent of 9416 / 11892 / 11672), and (b) the irradiance
// field varies at module-block scale *everywhere*, as the paper's Fig. 6(b)
// maps show for the real roofs — tall pipe racks and risers cast moving
// shade bands across the surface, perimeter trees/poles sweep the southern
// strip in winter, and taller neighbours darken one end of each roof.

RoofScenario make_roof1() {
    SceneBuilder scene(100.0, 45.0);

    MonopitchRoof roof;
    roof.name = "roof1";
    roof.x = 10.0;
    roof.y = 15.0;
    roof.w = 57.4;  // 287 cells at s = 0.2 m (Table I: 287x51)
    roof.d = 10.2;  // 51 cells
    roof.eave_height = 6.0;
    roof.tilt_deg = 26.0;
    roof.azimuth_deg = 195.0;  // S/SW
    const int roof_index = scene.add_roof(roof);

    // Aged sheet-metal surface: sagging between trusses plus irregular
    // bumps (see RoofTexture docs — the Fig. 6(b) variance source).
    geo::RoofTexture texture;
    texture.undulation_amp_x = 0.02;
    texture.undulation_period_x = 6.0;
    texture.undulation_amp_y = 0.012;
    texture.undulation_period_y = 4.5;
    texture.noise_amp = 0.018;
    texture.noise_scale = 3.0;
    texture.seed = 101;
    scene.set_roof_texture(roof_index, texture);

    // Taller neighbour immediately east: morning shading of the east end.
    scene.add_building({68.5, 8.0, 17.0, 30.0, 18.0});

    // The paper: "pipes occupy a large space" on Roof 1.  Two east-west
    // mains on a raised rack plus north-south risers every ~15 m: the
    // rack's shadow sweeps a band north of it through the day, while the
    // spans between risers still admit an 8-module compact row.
    scene.add_pipe({14.0, 18.3, 62.0, 18.6, 0.6, 1.2});
    scene.add_pipe({30.0, 22.4, 62.0, 22.1, 0.6, 1.0});
    for (const double rx : {18.0, 33.0, 48.0, 63.0}) {
        scene.add_pipe({rx, 16.0, rx + 0.4, 24.6, 0.4, 0.8});
    }

    // Stair penthouses rising well above the roof plus HVAC units; the
    // southern one throws its midday shadow onto the mid-roof band.
    scene.add_box({24.0, 15.6, 5.0, 2.8, 3.2, HeightRef::Surface});
    scene.add_box({40.0, 21.8, 4.0, 2.5, 3.0, HeightRef::Surface});
    scene.add_box({57.0, 17.0, 2.5, 2.0, 1.4, HeightRef::Surface});
    scene.add_box({22.5, 20.0, 2.0, 2.0, 1.2, HeightRef::Surface});
    scene.add_box({15.0, 16.4, 0.8, 0.8, 1.8, HeightRef::Surface});

    // Vegetation barrier along the forecourt south of the roof plus a
    // few light poles: low-sun shading that grades the southern strip.
    scene.add_building({10.0, 28.8, 57.0, 2.0, 12.0});
    for (const double px : {20.0, 36.0, 52.0}) {
        scene.add_tree({px, 29.5, 1.0, 10.5});
    }

    return RoofScenario{"Roof 1", std::move(scene), roof_index, {}, {}};
}

RoofScenario make_roof2() {
    SceneBuilder scene(100.0, 45.0);

    MonopitchRoof roof;
    roof.name = "roof2";
    roof.x = 8.0;
    roof.y = 15.0;
    roof.w = 59.6;  // 298 cells (Table I: 298x51)
    roof.d = 10.2;  // 51 cells
    roof.eave_height = 6.0;
    roof.tilt_deg = 26.0;
    roof.azimuth_deg = 188.0;  // S, slightly W
    const int roof_index = scene.add_roof(roof);

    geo::RoofTexture texture;
    texture.undulation_amp_x = 0.02;
    texture.undulation_period_x = 6.5;
    texture.undulation_amp_y = 0.012;
    texture.undulation_period_y = 5.0;
    texture.noise_amp = 0.018;
    texture.noise_scale = 3.2;
    texture.seed = 202;
    scene.set_roof_texture(roof_index, texture);

    // Large eastern neighbour: the "right-hand side least irradiated"
    // pattern of Fig. 6(b).
    scene.add_building({69.0, 8.0, 19.0, 30.0, 19.0});
    // West wing of the same complex: evening shading of the west end.
    scene.add_building({0.0, 12.0, 7.0, 24.0, 12.5});

    // Stair tower and elevator penthouse rising well above the roof:
    // their shadows sweep many meters of the surface through the day —
    // the dominant amplitude-type heterogeneity on this roof.
    scene.add_box({28.0, 15.4, 5.0, 3.0, 3.5, HeightRef::Surface});
    scene.add_box({47.0, 19.0, 4.0, 3.0, 3.0, HeightRef::Surface});
    scene.add_box({37.0, 22.3, 4.0, 2.5, 3.0, HeightRef::Surface});

    // On-slope skylight strips (raised curbs shade their flanks).
    for (const double sx : {14.0, 23.0, 38.0, 59.0}) {
        scene.add_box({sx, 16.5, 1.2, 5.0, 0.8, HeightRef::Surface});
    }

    // Chimneys on the eastern half.
    scene.add_box({54.0, 21.5, 1.0, 1.0, 2.0, HeightRef::Surface});
    scene.add_box({61.0, 18.0, 1.0, 1.0, 2.0, HeightRef::Surface});

    // Dense tree line along the street south of the building (modeled as
    // a vegetation barrier with emergent crowns): winter shading that
    // grades the southern half of the roof.
    scene.add_building({8.0, 28.6, 60.0, 2.2, 12.5});
    for (int k = 0; k < 8; ++k) {
        scene.add_tree({11.0 + 7.0 * k, 31.0, 2.5, 12.5});
    }

    return RoofScenario{"Roof 2", std::move(scene), roof_index, {}, {}};
}

RoofScenario make_roof3() {
    SceneBuilder scene(100.0, 48.0);

    MonopitchRoof roof;
    roof.name = "roof3";
    roof.x = 10.0;
    roof.y = 15.0;
    roof.w = 59.6;  // 298 cells (Table I: 298x52)
    roof.d = 10.4;  // 52 cells
    roof.eave_height = 6.0;
    roof.tilt_deg = 26.0;
    roof.azimuth_deg = 202.0;  // SSW
    const int roof_index = scene.add_roof(roof);

    // The oldest building of the three: pronounced surface irregularity.
    geo::RoofTexture texture;
    texture.undulation_amp_x = 0.025;
    texture.undulation_period_x = 5.5;
    texture.undulation_amp_y = 0.015;
    texture.undulation_period_y = 4.6;
    texture.noise_amp = 0.02;
    texture.noise_scale = 2.8;
    texture.seed = 303;
    scene.set_roof_texture(roof_index, texture);

    // Western neighbour: evening shading of the west end.
    scene.add_building({0.5, 8.0, 9.0, 30.0, 17.0});

    // Stair tower plus scattered service boxes and raised conduits.
    scene.add_box({36.0, 15.4, 4.5, 3.0, 3.5, HeightRef::Surface});
    scene.add_box({52.0, 16.0, 4.0, 3.0, 3.0, HeightRef::Surface});
    scene.add_box({24.0, 22.2, 3.5, 2.5, 2.8, HeightRef::Surface});
    scene.add_box({20.0, 17.0, 2.0, 1.5, 1.4, HeightRef::Surface});
    scene.add_box({48.0, 17.5, 1.5, 1.5, 1.8, HeightRef::Surface});
    scene.add_box({58.0, 21.0, 2.0, 1.5, 1.2, HeightRef::Surface});
    scene.add_pipe({40.0, 22.8, 62.0, 23.0, 0.5, 1.0});
    scene.add_pipe({26.0, 16.2, 26.4, 24.8, 0.4, 0.8});

    // Dense tall tree row just south of the eave: strong winter shading
    // of the southern strip fading northward — the heterogeneity that
    // gives this roof the largest gains in Table I.
    scene.add_building({10.0, 28.4, 59.0, 2.2, 12.5});
    for (int k = 0; k < 9; ++k) {
        scene.add_tree({12.0 + 7.0 * k, 29.0, 3.0, 12.5});
    }

    return RoofScenario{"Roof 3", std::move(scene), roof_index, {}, {}};
}

std::vector<RoofScenario> make_paper_roofs() {
    std::vector<RoofScenario> roofs;
    roofs.push_back(make_roof1());
    roofs.push_back(make_roof2());
    roofs.push_back(make_roof3());
    return roofs;
}

RoofScenario make_residential() {
    SceneBuilder scene(30.0, 25.0);

    // Gable roof, ridge east-west; modules go on the south-facing plane.
    const int south_plane =
        scene.add_gable_roof("house", 9.0, 8.0, 12.0, 8.0, 4.0, 30.0);

    // Chimney near the ridge and a dormer on the south plane.
    scene.add_box({12.0, 12.4, 0.9, 0.9, 1.4, HeightRef::Surface});
    scene.add_box({16.5, 13.5, 2.0, 1.6, 1.3, HeightRef::Surface});

    // Garden tree south-west of the house.
    scene.add_tree({6.0, 19.0, 2.5, 9.0});

    return RoofScenario{"Residential", std::move(scene), south_plane, {}, {}};
}

RoofScenario make_toy(double width_m, double depth_m) {
    SceneBuilder scene(width_m + 8.0, depth_m + 8.0);

    MonopitchRoof roof;
    roof.name = "toy";
    roof.x = 2.0;
    roof.y = 3.0;
    roof.w = width_m;
    roof.d = depth_m;
    roof.eave_height = 3.0;
    roof.tilt_deg = 20.0;
    roof.azimuth_deg = 180.0;
    const int roof_index = scene.add_roof(roof);

    // One chimney and an eastern wall for a shading gradient.
    scene.add_box({roof.x + width_m * 0.35, roof.y + depth_m * 0.3, 0.6, 0.6,
                   1.2, HeightRef::Surface});
    scene.add_building(
        {roof.x + width_m + 0.8, roof.y - 1.0, 2.0, depth_m + 2.0, 8.0});

    return RoofScenario{"Toy", std::move(scene), roof_index, {}, {}};
}

}  // namespace pvfp::core

#include "pvfp/core/bnb_placer.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "pvfp/core/greedy_placer.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::core {
namespace {

struct Search {
    std::vector<ModulePlacement> anchors;  // sorted by score desc
    std::vector<double> scores;            // aligned with anchors
    const PanelGeometry* geometry = nullptr;
    int n_modules = 0;
    long long max_nodes = 0;

    std::vector<ModulePlacement> current;
    double current_score = 0.0;
    std::vector<ModulePlacement> best;
    double best_score = -std::numeric_limits<double>::infinity();
    BnbStats stats;

    /// Upper bound: current score + sum of the r highest remaining scores
    /// starting at index \p from (overlap ignored — a valid relaxation
    /// because scores are sorted descending).
    double bound(std::size_t from, int remaining) const {
        double b = current_score;
        for (std::size_t a = from;
             a < anchors.size() && remaining > 0; ++a, --remaining)
            b += scores[a];
        return (remaining > 0)
                   ? -std::numeric_limits<double>::infinity()
                   : b;
    }

    void dfs(std::size_t from) {
        ++stats.nodes;
        if (stats.nodes > max_nodes)
            throw Infeasible("place_bnb: node budget exceeded");

        const int placed = static_cast<int>(current.size());
        if (placed == n_modules) {
            if (current_score > best_score) {
                best_score = current_score;
                best = current;
            }
            return;
        }
        const int remaining = n_modules - placed;
        if (bound(from, remaining) <= best_score) {
            ++stats.pruned;
            return;
        }
        for (std::size_t a = from;
             a + static_cast<std::size_t>(remaining) <= anchors.size();
             ++a) {
            // Re-check the bound as we move right: it only gets weaker.
            if (bound(a, remaining) <= best_score) {
                ++stats.pruned;
                return;
            }
            const ModulePlacement& cand = anchors[a];
            bool overlaps = false;
            for (const auto& m : current) {
                if (modules_overlap(cand, m, *geometry)) {
                    overlaps = true;
                    break;
                }
            }
            if (overlaps) continue;
            current.push_back(cand);
            current_score += scores[a];
            dfs(a + 1);
            current.pop_back();
            current_score -= scores[a];
        }
    }
};

/// True-energy search: the same anchor-ordered DFS, but scores are the
/// separable ideal-energy upper bounds and leaves are scored exactly via
/// delta updates against the previously scored leaf.
struct EnergySearch {
    std::vector<ModulePlacement> anchors;  // sorted by ideal energy desc
    std::vector<double> ideals;            // aligned with anchors
    const geo::PlacementArea* area = nullptr;
    const solar::IrradianceField* field = nullptr;
    const pv::EmpiricalModuleModel* model = nullptr;
    const EvaluationOptions* eval_options = nullptr;
    PanelGeometry geometry;
    pv::Topology topology;
    int n_modules = 0;
    long long max_nodes = 0;

    std::vector<ModulePlacement> current;
    std::vector<ModulePlacement> scratch;  // row-major leaf assignment
    std::optional<IncrementalEvaluator> evaluator;
    std::vector<ModulePlacement> best;
    double best_energy = -std::numeric_limits<double>::infinity();
    BnbStats stats;

    /// The ideal-energy bound carries ~1e-12 kWh of summation noise; a
    /// pruning margin keeps the search exact despite it (prune only when
    /// the bound is clearly not beatable).
    static constexpr double kBoundSlack = 1e-9;

    double placed_ideal = 0.0;

    /// Upper bound on any completion: ideal energy of the placed modules
    /// plus the top remaining ideals (overlap ignored — a valid
    /// relaxation because ideals are sorted descending).
    double bound(std::size_t from, int remaining) const {
        double b = placed_ideal;
        for (std::size_t a = from;
             a < anchors.size() && remaining > 0; ++a, --remaining)
            b += ideals[a];
        return (remaining > 0)
                   ? -std::numeric_limits<double>::infinity()
                   : b;
    }

    /// Score the current (complete) anchor set.  The series-first
    /// assignment matters to the objective (string min-currents, wiring
    /// order), so the set is canonicalized to row-major order — exactly
    /// the assignment place_exhaustive gives the same set, which is what
    /// makes the two searches agree on the optimum.
    double leaf_energy() {
        scratch = current;
        std::sort(scratch.begin(), scratch.end(),
                  [](const ModulePlacement& a, const ModulePlacement& b) {
                      if (a.y != b.y) return a.y < b.y;
                      return a.x < b.x;
                  });
        if (!evaluator.has_value()) {
            Floorplan plan;
            plan.geometry = geometry;
            plan.topology = topology;
            plan.modules = scratch;
            evaluator.emplace(std::move(plan), *area, *field, *model,
                              *eval_options);
            return evaluator->energy_kwh();
        }
        return evaluator->sync_to(scratch);
    }

    void dfs(std::size_t from) {
        ++stats.nodes;
        if (stats.nodes > max_nodes)
            throw Infeasible("place_bnb_energy: node budget exceeded");

        const int placed = static_cast<int>(current.size());
        if (placed == n_modules) {
            const double energy = leaf_energy();
            if (energy > best_energy) {
                best_energy = energy;
                best = scratch;  // the canonical assignment that was scored
            }
            return;
        }
        const int remaining = n_modules - placed;
        if (bound(from, remaining) <= best_energy - kBoundSlack) {
            ++stats.pruned;
            return;
        }
        for (std::size_t a = from;
             a + static_cast<std::size_t>(remaining) <= anchors.size();
             ++a) {
            if (bound(a, remaining) <= best_energy - kBoundSlack) {
                ++stats.pruned;
                return;
            }
            const ModulePlacement& cand = anchors[a];
            bool overlaps = false;
            for (const auto& m : current) {
                if (modules_overlap(cand, m, geometry)) {
                    overlaps = true;
                    break;
                }
            }
            if (overlaps) continue;
            current.push_back(cand);
            placed_ideal += ideals[a];
            dfs(a + 1);
            current.pop_back();
            placed_ideal -= ideals[a];
        }
    }
};

}  // namespace

Floorplan place_bnb(const geo::PlacementArea& area,
                    const pvfp::Grid2D<double>& suitability,
                    const PanelGeometry& geometry,
                    const pv::Topology& topology, const BnbOptions& options,
                    BnbStats* stats) {
    check_arg(suitability.width() == area.width &&
                  suitability.height() == area.height,
              "place_bnb: suitability does not match the area");
    const int n = topology.total();
    check_arg(n > 0, "place_bnb: empty topology");

    Search search;
    search.geometry = &geometry;
    search.n_modules = n;
    search.max_nodes = options.max_nodes;

    // Anchors sorted by score descending; greedy seed gives a strong
    // incumbent so pruning bites immediately.
    auto anchors = enumerate_anchors(area, geometry);
    if (static_cast<int>(anchors.size()) < n)
        throw Infeasible("place_bnb: fewer anchors than modules");
    std::vector<std::pair<double, ModulePlacement>> ranked;
    ranked.reserve(anchors.size());
    for (const auto& a : anchors) {
        ranked.emplace_back(
            anchor_score(suitability, geometry, a.x, a.y,
                         AnchorScore::FootprintMean) *
                geometry.cell_count(),
            a);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  if (a.second.y != b.second.y) return a.second.y < b.second.y;
                  return a.second.x < b.second.x;
              });
    search.anchors.reserve(ranked.size());
    search.scores.reserve(ranked.size());
    for (const auto& [s, a] : ranked) {
        search.anchors.push_back(a);
        search.scores.push_back(s);
    }

    // Incumbent from the greedy heuristic (threshold disabled: pure score).
    try {
        GreedyOptions gopt;
        gopt.enable_distance_threshold = false;
        const Floorplan seed =
            place_greedy(area, suitability, geometry, topology, gopt);
        double seed_score = 0.0;
        for (const auto& m : seed.modules)
            seed_score += anchor_score(suitability, geometry, m.x, m.y,
                                       AnchorScore::FootprintMean) *
                          geometry.cell_count();
        search.best = seed.modules;
        search.best_score = seed_score;
    } catch (const Infeasible&) {
        // B&B will decide feasibility on its own.
    }

    search.dfs(0);

    if (static_cast<int>(search.best.size()) != n)
        throw Infeasible("place_bnb: no feasible anchor combination");

    Floorplan plan;
    plan.geometry = geometry;
    plan.topology = topology;
    plan.modules = std::move(search.best);
    if (stats) {
        *stats = search.stats;
        stats->best_objective = search.best_score;
    }
    return plan;
}

Floorplan place_bnb_energy(const geo::PlacementArea& area,
                           const solar::IrradianceField& field,
                           const pv::EmpiricalModuleModel& model,
                           const PanelGeometry& geometry,
                           const pv::Topology& topology,
                           const EvaluationOptions& eval_options,
                           const BnbOptions& options, BnbStats* stats) {
    check_arg(field.width() == area.width && field.height() == area.height,
              "place_bnb_energy: field window does not match area");
    const int n = topology.total();
    check_arg(n > 0, "place_bnb_energy: empty topology");

    auto anchors = enumerate_anchors(area, geometry);
    if (static_cast<int>(anchors.size()) < n)
        throw Infeasible("place_bnb_energy: fewer anchors than modules");
    const auto ideals =
        ideal_anchor_energies(anchors, geometry, field, model, eval_options);

    // Sort by ideal energy descending (deterministic y,x tie-break) so
    // the DFS descends the strongest branch first: the first leaf is a
    // greedy-by-ideal incumbent and pruning bites immediately.
    std::vector<std::pair<double, ModulePlacement>> ranked;
    ranked.reserve(anchors.size());
    for (std::size_t a = 0; a < anchors.size(); ++a)
        ranked.emplace_back(ideals[a], anchors[a]);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  if (a.second.y != b.second.y) return a.second.y < b.second.y;
                  return a.second.x < b.second.x;
              });

    EnergySearch search;
    search.anchors.reserve(ranked.size());
    search.ideals.reserve(ranked.size());
    for (const auto& [ideal, anchor] : ranked) {
        search.anchors.push_back(anchor);
        search.ideals.push_back(ideal);
    }
    search.area = &area;
    search.field = &field;
    search.model = &model;
    search.eval_options = &eval_options;
    search.geometry = geometry;
    search.topology = topology;
    search.n_modules = n;
    search.max_nodes = options.max_nodes;

    search.dfs(0);

    if (static_cast<int>(search.best.size()) != n)
        throw Infeasible("place_bnb_energy: no feasible anchor combination");

    Floorplan plan;
    plan.geometry = geometry;
    plan.topology = topology;
    plan.modules = std::move(search.best);
    if (stats) {
        *stats = search.stats;
        stats->best_objective = search.best_energy;
    }
    return plan;
}

}  // namespace pvfp::core

#pragma once
/// \file incremental_evaluator.hpp
/// Delta-evaluation of the yearly-energy objective for the search placers.
///
/// evaluate_floorplan recomputes every module's footprint irradiance and
/// operating point at every sampled step for every candidate plan, so the
/// annealing / branch-and-bound / exhaustive extensions pay
/// O(steps x modules x footprint cells) per probe even though a probe
/// changes one or two modules.  The IncrementalEvaluator performs that
/// full pass once, caches per-module per-sampled-step operating points
/// (keyed by anchor — a module's operating point depends only on where it
/// sits, so revisited anchors cost nothing), and answers
/// delta_move / delta_swap / delta_update proposals by recomputing only
/// the affected modules' series and re-aggregating the cached ones.
/// commit()/rollback() turn it into the proposal engine of
/// refine_annealing.  Cost per proposal: the moved module's series is
/// O(steps x footprint cells) — and free when its anchor is cached —
/// plus an O(steps x modules) re-aggregation of cached points whose
/// constant is tiny (a few flops per point vs the footprint-irradiance
/// and empirical-model work the full pass pays per module).  Swaps skip
/// the series work entirely.
///
/// Exactness contract (enforced by tests/core/test_incremental_evaluator
/// and the differential harness tests/integration/test_delta_equivalence):
/// committed totals match a fresh evaluate_floorplan of the committed plan
/// to <= 1e-9 kWh at every point of any move/swap/rollback sequence.  The
/// per-sample aggregation replicates evaluate_floorplan's arithmetic — the
/// same shared kernels (anchor_irradiance_unchecked,
/// sample_operating_point), the same series/string accumulation order, the
/// same fixed 256-sample chunk grid folded in chunk order — so results are
/// also bitwise-identical at any thread count.

#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pvfp/core/evaluator.hpp"
#include "pvfp/core/exhaustive_placer.hpp"
#include "pvfp/core/layout.hpp"
#include "pvfp/util/parallel.hpp"

namespace pvfp::core {

/// Counters for tests and benches.  full_passes stays 1 for the lifetime
/// of an evaluator: every proposal is validated and evaluated through
/// targeted per-module work, never a full-plan pass.
struct IncrementalStats {
    long full_passes = 0;     ///< complete O(modules x steps) evaluations
    long proposals = 0;       ///< delta_move/delta_swap/delta_update calls
    long commits = 0;
    long rollbacks = 0;
    long rejected = 0;        ///< proposals rejected by the targeted check
    long series_computed = 0; ///< anchor op-series built from the field
    long series_reused = 0;   ///< anchor op-series served from cache/plan
};

/// Incremental (delta) evaluator over one prepared irradiance field.
/// The field must outlive the evaluator; the placement area is copied.
/// Not thread-safe: one evaluator serves one (serial) search loop, and
/// fans its own heavy passes out through util/parallel internally.
class IncrementalEvaluator {
public:
    /// Runs the one full evaluation pass (parallel, deterministic) and
    /// caches every per-module operating-point series.  Throws
    /// InvalidArgument on an infeasible plan, a field/area mismatch, or a
    /// bad stride — the same boundary checks as evaluate_floorplan.
    /// \p anchor_cache_capacity bounds the number of memoized anchor
    /// series beyond the ones the committed plan holds; 0 picks a default
    /// from a ~128 MB budget.
    IncrementalEvaluator(Floorplan plan, const geo::PlacementArea& area,
                         const solar::IrradianceField& field,
                         const pv::EmpiricalModuleModel& model,
                         const EvaluationOptions& options = {},
                         std::size_t anchor_cache_capacity = 0);

    /// The committed plan (pending proposals are not visible here).
    const Floorplan& plan() const { return plan_; }
    const geo::PlacementArea& area() const { return area_; }
    const EvaluationOptions& options() const { return options_; }

    /// Committed net energy [kWh] — the objective.
    double energy_kwh() const { return totals_.energy_kwh; }
    /// Committed totals assembled into the evaluate_floorplan result type.
    EvaluationResult result() const;

    /// Targeted feasibility of relocating one module: the proposed
    /// footprint against the area plus overlap against the other
    /// committed modules — O(modules), never a full-plan re-validation.
    bool move_feasible(int module_index, const ModulePlacement& anchor) const;

    /// Propose relocating \p module_index to \p anchor; returns the
    /// proposed plan's net energy [kWh].  The proposal is pending until
    /// commit() or rollback(); proposing twice without resolving throws.
    /// Throws InvalidArgument when the targeted feasibility check fails.
    double delta_move(int module_index, const ModulePlacement& anchor);

    /// Propose exchanging the series positions of modules \p i and \p j
    /// (changes mismatch grouping and wiring, not covered cells).  Costs
    /// only re-aggregation: both anchors' series are already cached.
    double delta_swap(int i, int j);

    /// General form: propose relocating several modules at once.
    /// Feasibility is checked on the final state only, so plans that are
    /// unreachable through single feasible moves (e.g. consecutive
    /// exhaustive-search leaves) can be reached in one delta.
    double delta_update(std::span<const std::pair<int, ModulePlacement>> moves);

    /// Commit the committed plan directly to \p modules (same count,
    /// series-first order): diffs against the current plan and applies
    /// the difference as one committed delta.  Returns the new energy.
    /// This is the one sync primitive behind make_incremental_objective,
    /// exhaustive/bnb leaf scoring, and the annealing best-plan restore.
    double sync_to(std::span<const ModulePlacement> modules);

    /// Accept / discard the pending proposal.  Throws when none is
    /// pending.
    void commit();
    void rollback();
    bool has_pending() const { return pending_.has_value(); }

    const IncrementalStats& stats() const { return stats_; }

    /// Folds this evaluator's lifetime stats into the global obs
    /// registry (`core.incremental.*` counters) when telemetry is on —
    /// proposal/commit totals are a pure function of the search
    /// workload, so the exported counters stay deterministic.
    ~IncrementalEvaluator();

private:
    /// Per-anchor operating points over the sampled steps, stored as
    /// structure-of-arrays so accumulate()'s per-sample folds run over
    /// contiguous branch-free streams (the SIMD target named by the
    /// ROADMAP).  Same bytes as the former vector<OperatingPoint>.
    struct OpSeries {
        std::vector<double> power_w;
        std::vector<double> voltage_v;
        std::vector<double> current_a;
    };

    /// One daylight sampled step of the stride grid.
    struct Sample {
        long step = 0;     ///< real step index into the field
        long chunk = 0;    ///< fixed 256-sample shard (thread-independent)
        double dt_h = 0.0; ///< hours this sample is billed for
        double t_air = 0.0;
    };

    /// Reusable per-chunk buffers of accumulate(); pooled across
    /// proposals so a delta probe does not reallocate.
    struct AccScratch {
        std::vector<double> v;        ///< string voltage sum per sample
        std::vector<double> min_v;    ///< min over strings
        std::vector<double> panel_i;  ///< current sum over strings
        std::vector<double> ideal;
        std::vector<double> volt;
        std::vector<double> power;
        std::vector<double> wiring;
        std::vector<double> cur;   ///< n_strings x samples, string-major
        std::vector<double> loss;  ///< n_strings x samples, string-major
    };

    /// The time-dependent slice of EvaluationResult.
    struct Totals {
        double energy_kwh = 0.0;
        double ideal_energy_kwh = 0.0;
        double mismatch_loss_kwh = 0.0;
        double wiring_loss_kwh = 0.0;
        std::vector<double> string_energy_kwh;
        std::vector<double> string_wiring_loss_kwh;
    };

    struct Pending {
        std::vector<ModulePlacement> modules;
        std::vector<std::shared_ptr<const OpSeries>> ops;
        std::vector<double> extra_lengths;
        Totals totals;
    };

    void build_samples();
    std::shared_ptr<const OpSeries> series_for_anchor(
        const ModulePlacement& anchor);
    Totals accumulate(
        std::span<const std::shared_ptr<const OpSeries>> ops,
        std::span<const double> extra_lengths) const;

    Floorplan plan_;
    geo::PlacementArea area_;
    const solar::IrradianceField* field_;
    pv::EmpiricalModuleModel model_;
    EvaluationOptions options_;

    std::vector<Sample> samples_;
    /// samples_[k].step, flattened for the batched series kernels.
    std::vector<long> sample_steps_;
    /// samples_ index range of shard c is [chunk_offsets_[c],
    /// chunk_offsets_[c+1]); shards are merged in this order.
    std::vector<std::size_t> chunk_offsets_;
    long n_chunks_ = 0;
    mutable ScratchPool<AccScratch> acc_scratch_;

    std::vector<std::shared_ptr<const OpSeries>> module_ops_;
    std::vector<double> extra_lengths_;
    Totals totals_;

    std::unordered_map<long long, std::shared_ptr<const OpSeries>> cache_;
    std::vector<long long> cache_fifo_;
    std::size_t cache_capacity_ = 0;
    std::size_t cache_evict_next_ = 0;

    std::optional<Pending> pending_;
    IncrementalStats stats_;
};

/// Adapt an evaluator into a PlacementObjective for the search placers:
/// each call diffs the candidate plan against the evaluator's committed
/// plan, applies the difference as one delta_update, commits, and returns
/// the net energy.  Consecutive exhaustive-search leaves share long DFS
/// prefixes, so leaf scoring costs O(steps x changed modules) instead of
/// a full evaluate_floorplan.  The candidate must share the evaluator's
/// module count, geometry, and topology.
PlacementObjective make_incremental_objective(IncrementalEvaluator& evaluator);

/// Ideal (mismatch- and wiring-free) energy [kWh] a module would extract
/// at each anchor: the yearly integral of its maximum power.  This is a
/// *separable upper bound* on any module's net contribution — series/
/// parallel aggregation and wiring can only lose energy relative to
/// per-module MPPT — which is what place_bnb_energy's bound relies on.
std::vector<double> ideal_anchor_energies(
    std::span<const ModulePlacement> anchors, const PanelGeometry& geometry,
    const solar::IrradianceField& field,
    const pv::EmpiricalModuleModel& model,
    const EvaluationOptions& options = {});

}  // namespace pvfp::core

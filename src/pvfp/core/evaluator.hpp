#pragma once
/// \file evaluator.hpp
/// Yearly energy evaluation of a floorplan (the objective of the paper's
/// optimization, Section III-A: "maximize the energy extracted in the
/// interval [0, NT]").
///
/// Per time step: each module sees the mean plane-of-array irradiance over
/// its footprint cells (option: worst cell), its actual temperature
/// Tact = Tair + k*G, and operates at its empirical maximum power point;
/// modules aggregate through the series-parallel min-rules (pv::array) and
/// the sparse placement pays the per-string wiring loss R*Lextra*I^2
/// (pv::wiring).  Integration uses the midpoint rule over the TimeGrid.

#include <span>

#include "pvfp/core/layout.hpp"
#include "pvfp/pv/wiring.hpp"
#include "pvfp/solar/irradiance.hpp"

namespace pvfp::core {

/// How a multi-cell module aggregates its footprint irradiance.
enum class ModuleIrradiance {
    FootprintMean,  ///< average over covered cells (default, physical)
    WorstCell,      ///< pessimistic: minimum over covered cells
    /// The paper's granularity: the module takes the G/T of its anchor
    /// grid point ("each grid point has a specific value of G and T",
    /// Section III-A).  Cell-scale variance then transfers 1:1 into
    /// module output instead of averaging out — required to reproduce
    /// Table I magnitudes; see the evaluation-granularity ablation.
    AnchorCell,
};

struct EvaluationOptions {
    pv::WiringSpec wiring{};
    bool include_wiring_loss = true;
    ModuleIrradiance module_irradiance = ModuleIrradiance::FootprintMean;
    /// Evaluate every k-th step; each sampled step is billed for the real
    /// steps it represents (k, clamped for the trailing interval when the
    /// horizon is not a multiple of k).  Exact at 1.
    long step_stride = 1;
};

/// Per-string breakdown.
struct StringEnergy {
    double energy_kwh = 0.0;       ///< string share of panel energy (V*Ij)
    double extra_cable_m = 0.0;
    double wiring_loss_kwh = 0.0;
};

/// Totals over the horizon.
struct EvaluationResult {
    /// Net extracted energy (panel minus wiring losses) [kWh].
    double energy_kwh = 0.0;
    /// Energy with ideal per-module MPPT (no mismatch, no wiring) [kWh].
    double ideal_energy_kwh = 0.0;
    /// Series/parallel mismatch loss [kWh].
    double mismatch_loss_kwh = 0.0;
    /// Wiring loss [kWh] and material.
    double wiring_loss_kwh = 0.0;
    double extra_cable_m = 0.0;
    double wiring_cost_usd = 0.0;
    std::vector<StringEnergy> strings;

    double net_mwh() const { return energy_kwh / 1000.0; }
};

/// Evaluate \p plan against \p field with \p model.  The floorplan must be
/// feasible on the field's window (checked).
EvaluationResult evaluate_floorplan(const Floorplan& plan,
                                    const geo::PlacementArea& area,
                                    const solar::IrradianceField& field,
                                    const pv::EmpiricalModuleModel& model,
                                    const EvaluationOptions& options = {});

/// Footprint irradiance of one module at one step (exposed for tests);
/// validates the module index, the step, and that the module footprint
/// lies inside the field window.
double module_irradiance(const Floorplan& plan, int module_index,
                         const solar::IrradianceField& field, long step,
                         ModuleIrradiance mode);

/// Footprint irradiance of a geometry-sized footprint anchored at (x, y):
/// the exact per-module kernel of evaluate_floorplan, shared with the
/// IncrementalEvaluator so both compute bitwise-identical values.
/// Preconditions (footprint inside the field window, step in range) are
/// debug-asserted only — validate at the call-site boundary.
double anchor_irradiance_unchecked(const PanelGeometry& geometry, int x, int y,
                                   const solar::IrradianceField& field,
                                   long step, ModuleIrradiance mode);

/// Batched footprint irradiance: out[k] = anchor_irradiance_unchecked of
/// the footprint anchored at (x, y) at steps[k] — bitwise identical to
/// the per-step scalar loop (it rides the field's batched series kernel
/// and folds footprint cells in the scalar cell order).  This is the
/// per-anchor hot path of the IncrementalEvaluator's series build, the
/// evaluate_floorplan time shards, and ideal_anchor_energies.
/// Preconditions as anchor_irradiance_unchecked; the step span is
/// validated here, once, not per footprint cell.
void anchor_irradiance_series(const PanelGeometry& geometry, int x, int y,
                              const solar::IrradianceField& field,
                              std::span<const long> steps,
                              ModuleIrradiance mode, double* out);

/// Operating point of one module seeing irradiance \p g at air temperature
/// \p t_air: Tact = Tair + k*G (paper Section III-B1), then the empirical
/// maximum-power model.  Deliberately a non-inline shared kernel so the
/// full and incremental evaluators produce the same bits.
pv::OperatingPoint sample_operating_point(const pv::EmpiricalModuleModel& model,
                                          double g, double t_air,
                                          double thermal_k);

}  // namespace pvfp::core

#pragma once
/// \file table.hpp
/// Plain-text table formatting for the benchmark harnesses: every bench
/// prints its reproduction of a paper table/figure as an aligned ASCII
/// table so the output can be eyeballed against the paper.

#include <iosfwd>
#include <string>
#include <vector>

namespace pvfp {

/// Column alignment inside a TextTable.
enum class Align { Left, Right };

/// An aligned monospace table with a header row and optional separators.
///
/// Usage:
/// \code
///   TextTable t({"Roof", "N", "MWh"});
///   t.add_row({"Roof 1", "16", "3.43"});
///   t.print(std::cout);
/// \endcode
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    /// Set the alignment of column \p c (default: Right for all).
    void set_align(std::size_t c, Align align);

    /// Append a data row; width must match the header.
    void add_row(std::vector<std::string> cells);
    /// Append a horizontal separator line.
    void add_separator();

    std::size_t row_count() const { return rows_.size(); }

    /// Render with column padding, header underline and outer borders.
    void print(std::ostream& os) const;
    /// Render to a string (used by tests).
    std::string to_string() const;

    /// Format helper: fixed-decimal double.
    static std::string num(double value, int decimals = 2);
    /// Format helper: percentage with sign, e.g. "+19.37".
    static std::string pct(double fraction, int decimals = 2);

private:
    struct Row {
        bool separator = false;
        std::vector<std::string> cells;
    };

    std::vector<std::string> header_;
    std::vector<Align> aligns_;
    std::vector<Row> rows_;
};

}  // namespace pvfp

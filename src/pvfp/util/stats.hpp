#pragma once
/// \file stats.hpp
/// Descriptive statistics used by the suitability metric (Section III-C of
/// the paper): exact percentiles over sample vectors, streaming moments, and
/// fixed-range histograms for memory-bounded per-cell percentile estimation
/// over a full year of 15-minute samples.

#include <cstdint>
#include <span>
#include <vector>

namespace pvfp {

/// Exact \p p-th percentile (p in [0,100]) of \p samples using linear
/// interpolation between closest ranks (the "type 7" estimator used by
/// numpy.percentile).  Throws InvalidArgument on empty input or p outside
/// [0,100].  The input is copied; the caller's data is left untouched.
double percentile(std::span<const double> samples, double p);

/// Exact percentile that *consumes* (partially reorders) \p samples,
/// avoiding the copy.  Same estimator as percentile().
double percentile_in_place(std::vector<double>& samples, double p);

/// Arithmetic mean; throws InvalidArgument on empty input.
double mean(std::span<const double> samples);

/// Unbiased sample variance (n-1 denominator); needs n >= 2.
double variance(std::span<const double> samples);

/// Square root of variance().
double stddev(std::span<const double> samples);

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// Numerically stable for year-long 15-minute series (35k+ samples).
class RunningStats {
public:
    void add(double x);
    /// Merge another accumulator into this one (parallel reduction).
    void merge(const RunningStats& other);

    std::int64_t count() const { return n_; }
    /// Mean of the samples seen so far; throws when empty.
    double mean() const;
    /// Unbiased sample variance; throws when count() < 2.
    double variance() const;
    double stddev() const;
    /// Smallest/largest sample; throw when empty.
    double min() const;
    double max() const;

private:
    std::int64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Fixed-range histogram with uniform bins and 32-bit counts.
///
/// The floorplanner needs the 75th percentile of irradiance *per grid cell*
/// over ~35,040 time steps and ~10,000 cells; storing raw samples would take
/// gigabytes.  A 256-bin histogram over [0, 1200] W/m^2 resolves percentiles
/// to ~4.7 W/m^2, far below the variability that the metric exploits, at 1KB
/// per cell.  Values outside the range are clamped into the edge bins (they
/// are counted, not dropped).
class Histogram {
public:
    /// \p lo < \p hi, \p bins >= 1.
    Histogram(double lo, double hi, int bins);

    void add(double x);
    /// Add \p n occurrences of \p x at once.
    void add(double x, std::uint32_t n);
    /// Add \p n occurrences directly into bin \p i — the fused binning
    /// path (solar::detail::bin_series precomputes indices in batch).
    /// Precondition (debug-asserted): 0 <= i < bin_count().
    void add_bin(int i, std::uint32_t n = 1);

    /// Percentile via cumulative counts with linear interpolation inside the
    /// containing bin.  Throws when the histogram is empty.
    double percentile(double p) const;

    /// Approximate mean using bin centers; throws when empty.
    double approx_mean() const;

    std::uint64_t total() const { return total_; }
    int bin_count() const { return static_cast<int>(counts_.size()); }
    double lo() const { return lo_; }
    double hi() const { return hi_; }
    std::uint32_t bin(int i) const;
    /// Lower edge of bin \p i.
    double bin_lower(int i) const;
    double bin_width() const { return width_; }

    /// Index of the bin receiving value \p x (after clamping).
    int bin_index(double x) const;

private:
    double lo_;
    double hi_;
    double width_;
    std::uint64_t total_ = 0;
    std::vector<std::uint32_t> counts_;
};

}  // namespace pvfp

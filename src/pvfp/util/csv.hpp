#pragma once
/// \file csv.hpp
/// Minimal CSV reading/writing for weather traces and experiment outputs.
/// Supports a header row, comment lines starting with '#', and RFC-4180
/// style quoting for fields containing commas/quotes/newlines.

#include <iosfwd>
#include <string>
#include <vector>

namespace pvfp {

/// An in-memory CSV table: one header row plus data rows of equal width.
class CsvTable {
public:
    CsvTable() = default;
    /// Create with the given column names.
    explicit CsvTable(std::vector<std::string> header);

    const std::vector<std::string>& header() const { return header_; }
    std::size_t column_count() const { return header_.size(); }
    std::size_t row_count() const { return rows_.size(); }

    /// Index of the column named \p name; throws InvalidArgument when the
    /// column does not exist.
    std::size_t column(const std::string& name) const;
    /// True when a column named \p name exists.
    bool has_column(const std::string& name) const;

    /// Append a row; its width must match the header.
    void add_row(std::vector<std::string> row);

    const std::vector<std::string>& row(std::size_t r) const;
    /// Cell (r, c) as string; bounds-checked.
    const std::string& cell(std::size_t r, std::size_t c) const;
    /// Cell parsed as double; throws IoError when not numeric.
    double cell_as_double(std::size_t r, std::size_t c) const;
    /// Cell in column \p name of row \p r parsed as double.
    double cell_as_double(std::size_t r, const std::string& name) const;

    /// Serialize to a stream with proper quoting.
    void write(std::ostream& os) const;
    /// Serialize to a file; throws IoError on failure.
    void write_file(const std::string& path) const;

    /// Parse from a stream; first non-comment line is the header.
    static CsvTable read(std::istream& is);
    /// Parse from a file; throws IoError when the file cannot be opened.
    static CsvTable read_file(const std::string& path);

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Split one CSV line into fields honoring quotes.  Exposed for testing.
std::vector<std::string> csv_split_line(const std::string& line);

/// Quote a field if it contains characters that require quoting.
std::string csv_escape_field(const std::string& field);

}  // namespace pvfp

#pragma once
/// \file error.hpp
/// Error types and precondition checking used across all pvfp libraries.
///
/// Following the project convention (C++ Core Guidelines I.5/I.10), public
/// API preconditions are enforced with exceptions so that misuse is caught
/// early and is testable; internal invariants use assert.

#include <stdexcept>
#include <string>

namespace pvfp {

/// Base class of every exception thrown by pvfp libraries.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition of a public API.
class InvalidArgument : public Error {
public:
    explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An I/O operation (raster, CSV, ...) failed or met malformed content.
class IoError : public Error {
public:
    explicit IoError(const std::string& what) : Error(what) {}
};

/// A solver/placer could not produce a feasible result
/// (e.g. more modules requested than the roof can host).
class Infeasible : public Error {
public:
    explicit Infeasible(const std::string& what) : Error(what) {}
};

/// Throw InvalidArgument with \p message unless \p condition holds.
inline void check_arg(bool condition, const std::string& message) {
    if (!condition) throw InvalidArgument(message);
}

/// Literal-message overload: avoids constructing a std::string on the
/// success path, so boundary checks stay free in hot code.
inline void check_arg(bool condition, const char* message) {
    if (!condition) throw InvalidArgument(message);
}

/// Throw IoError with \p message unless \p condition holds.
inline void check_io(bool condition, const std::string& message) {
    if (!condition) throw IoError(message);
}

}  // namespace pvfp

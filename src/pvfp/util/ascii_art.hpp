#pragma once
/// \file ascii_art.hpp
/// Terminal rendering of rasters and floorplans.  Reproduces the *visual*
/// artifacts of the paper: Fig. 6(b) irradiance heatmaps and Fig. 7
/// placement maps — as ASCII, since the harness is a terminal program.

#include <string>

#include "pvfp/util/grid2d.hpp"

namespace pvfp {

/// Options for heatmap rendering.
struct HeatmapOptions {
    /// Maximum number of character columns; wider grids are downsampled by
    /// box-averaging.  (Terminal cells are ~2x taller than wide, so the
    /// vertical axis is downsampled twice as aggressively.)
    int max_width = 110;
    /// When true, scale to [min,max] of the data; otherwise use lo/hi below.
    bool autoscale = true;
    double lo = 0.0;
    double hi = 1.0;
    /// Cells where the mask (if given) is false render as blanks.
    const Grid2D<unsigned char>* mask = nullptr;
};

/// Render \p grid as an ASCII heatmap using a 10-level ramp " .:-=+*#%@".
/// Returns a multi-line string terminated by '\n'.
std::string render_heatmap(const Grid2D<double>& grid,
                           const HeatmapOptions& options = {});

/// Render a floorplan: background is the validity mask ('.' valid, ' '
/// invalid), modules are drawn as rectangles labelled by their series-string
/// letter ('A', 'B', ...).  \p module_cells holds, per placed module, the
/// top-left cell (x,y), footprint (w,h) in cells, and string index.
struct ModuleBox {
    int x = 0;
    int y = 0;
    int w = 0;
    int h = 0;
    int string_index = 0;
};

std::string render_floorplan(const Grid2D<unsigned char>& valid,
                             const std::vector<ModuleBox>& modules,
                             int max_width = 110);

/// A one-line legend mapping ramp characters to value ranges.
std::string heatmap_legend(double lo, double hi, const std::string& unit);

}  // namespace pvfp

#include "pvfp/util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "pvfp/util/error.hpp"

namespace pvfp {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)),
      aligns_(header_.size(), Align::Right) {
    check_arg(!header_.empty(), "TextTable: header must not be empty");
}

void TextTable::set_align(std::size_t c, Align align) {
    check_arg(c < aligns_.size(), "TextTable::set_align: column out of range");
    aligns_[c] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
    check_arg(cells.size() == header_.size(),
              "TextTable::add_row: row width does not match header");
    rows_.push_back(Row{false, std::move(cells)});
}

void TextTable::add_separator() { rows_.push_back(Row{true, {}}); }

void TextTable::print(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto& row : rows_) {
        if (row.separator) continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    const auto print_line = [&](char fill) {
        os << '+';
        for (std::size_t w : widths) {
            for (std::size_t i = 0; i < w + 2; ++i) os << fill;
            os << '+';
        }
        os << '\n';
    };
    const auto print_cells = [&](const std::vector<std::string>& cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const auto pad = widths[c] - cells[c].size();
            os << ' ';
            if (aligns_[c] == Align::Right)
                os << std::string(pad, ' ') << cells[c];
            else
                os << cells[c] << std::string(pad, ' ');
            os << " |";
        }
        os << '\n';
    };

    print_line('-');
    print_cells(header_);
    print_line('=');
    for (const auto& row : rows_) {
        if (row.separator)
            print_line('-');
        else
            print_cells(row.cells);
    }
    print_line('-');
}

std::string TextTable::to_string() const {
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

std::string TextTable::num(double value, int decimals) {
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << value;
    return oss.str();
}

std::string TextTable::pct(double fraction, int decimals) {
    std::ostringstream oss;
    oss << std::showpos << std::fixed << std::setprecision(decimals)
        << fraction * 100.0;
    return oss.str();
}

}  // namespace pvfp

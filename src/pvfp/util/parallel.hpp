#pragma once
/// \file parallel.hpp
/// Deterministic parallel execution substrate shared by every hot path.
///
/// A lazily-initialized global thread pool executes range loops split into
/// *fixed-size chunks whose boundaries depend only on the range and the
/// chunk size — never on the thread count*.  Chunks that write disjoint
/// state therefore produce bitwise-identical results at any parallelism,
/// and parallel_reduce combines its per-chunk partials sequentially in
/// chunk order, so floating-point accumulation is reproducible too:
/// PVFP_THREADS=1 and PVFP_THREADS=64 give the same bits.
///
/// The pool size comes from the PVFP_THREADS environment variable when
/// set (>= 1), else std::thread::hardware_concurrency(), and can be
/// changed at a quiescent point with set_thread_count().  The submitting
/// thread always participates in the work (a pool of T threads runs
/// T-1 workers plus the caller), which also makes nested parallel_for
/// calls deadlock-free: a blocked caller first drains its own chunks.

#include <algorithm>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "pvfp/util/error.hpp"

namespace pvfp {

/// Number of threads parallel loops will use (>= 1).
int thread_count();

/// Override the pool size: \p n >= 1 sets it, \p n == 0 restores the
/// default (PVFP_THREADS env, else hardware concurrency).  Joins and
/// respawns the workers; must only be called while no parallel work is
/// in flight (benches/tests sweeping thread counts at sync points).
void set_thread_count(int n);

/// While an instance is alive on a thread, parallel loops issued from
/// that thread run inline (sequentially, same chunk order).  Used by the
/// batch runner's outer-loop policy so concurrently processed scenarios
/// do not each fan out again.
class SerialScope {
public:
    SerialScope();
    ~SerialScope();
    SerialScope(const SerialScope&) = delete;
    SerialScope& operator=(const SerialScope&) = delete;
};

/// True when the calling thread is inside a SerialScope.
bool in_serial_scope();

/// Run body(chunk_index) for every index in [0, n_chunks).  Chunks run
/// concurrently on the pool (the caller included); the call returns when
/// all chunks finished.  The first exception thrown by a chunk is
/// rethrown here after the group drains; unclaimed chunks are skipped
/// *best-effort* — chunks claimed before or concurrently with the
/// failure still run to completion, so bodies must not rely on an
/// exception cancelling their siblings.
void parallel_for_chunks(long n_chunks,
                         const std::function<void(long)>& body);

/// Split [begin, end) into chunks of \p chunk iterations (the last chunk
/// may be short) and run body(chunk_begin, chunk_end) for each.  The
/// chunk grid depends only on (begin, end, chunk): deterministic at any
/// thread count for bodies with disjoint writes.
void parallel_for(long begin, long end, long chunk,
                  const std::function<void(long, long)>& body);

/// A free-list of reusable scratch objects for parallel loop bodies.
/// A chunk body acquires a lease, works in the scratch object, and the
/// lease returns it to the pool on destruction, so a loop of hundreds of
/// chunks allocates at most thread_count() objects instead of one per
/// chunk (the evaluator's per-shard operating-point vectors, the batched
/// kernels' irradiance buffers).  Scratch objects are interchangeable by
/// contract — bodies must fully (re)initialize what they read — so reuse
/// never affects results.  Thread-safe; typically declared on the stack
/// right before the parallel loop that uses it.
template <typename T>
class ScratchPool {
public:
    /// RAII handle on one scratch object.
    class Lease {
    public:
        Lease(ScratchPool& pool, std::unique_ptr<T> obj)
            : pool_(&pool), obj_(std::move(obj)) {}
        ~Lease() {
            if (obj_) pool_->release(std::move(obj_));
        }
        Lease(Lease&& other) noexcept
            : pool_(other.pool_), obj_(std::move(other.obj_)) {}
        Lease& operator=(Lease&&) = delete;
        Lease(const Lease&) = delete;
        Lease& operator=(const Lease&) = delete;

        T& operator*() { return *obj_; }
        T* operator->() { return obj_.get(); }

    private:
        ScratchPool* pool_;
        std::unique_ptr<T> obj_;
    };

    /// Pop a pooled object, or default-construct the pool's first few.
    Lease acquire() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!free_.empty()) {
                std::unique_ptr<T> obj = std::move(free_.back());
                free_.pop_back();
                return Lease(*this, std::move(obj));
            }
        }
        return Lease(*this, std::make_unique<T>());
    }

private:
    void release(std::unique_ptr<T> obj) {
        std::lock_guard<std::mutex> lock(mutex_);
        free_.push_back(std::move(obj));
    }

    std::mutex mutex_;
    std::vector<std::unique_ptr<T>> free_;
};

/// Deterministic map-reduce: map(chunk_begin, chunk_end) -> T per chunk,
/// then combine(acc, partial) folded *sequentially in chunk order* over
/// \p init.  Reproducible at any parallelism because both the chunk grid
/// and the fold order are fixed.
template <typename T, typename Map, typename Combine>
T parallel_reduce(long begin, long end, long chunk, T init, Map&& map,
                  Combine&& combine) {
    if (begin >= end) return init;
    check_arg(chunk > 0, "parallel_reduce: chunk must be positive");
    const long n_chunks = (end - begin + chunk - 1) / chunk;
    std::vector<T> partials(static_cast<std::size_t>(n_chunks), init);
    parallel_for_chunks(n_chunks, [&](long ci) {
        const long b = begin + ci * chunk;
        const long e = std::min(end, b + chunk);
        partials[static_cast<std::size_t>(ci)] = map(b, e);
    });
    T acc = std::move(init);
    for (auto& p : partials) acc = combine(std::move(acc), std::move(p));
    return acc;
}

}  // namespace pvfp

#include "pvfp/util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

namespace pvfp {
namespace {

thread_local int t_serial_depth = 0;

/// One parallel_for call: a grid of chunks claimed by atomic increment.
/// Any thread (worker or the submitting caller) repeatedly claims the
/// next chunk index; when a chunk throws, the remaining chunks are
/// claimed but skipped so the group still drains and the caller can
/// rethrow the first error.
struct TaskGroup {
    long n_chunks = 0;
    const std::function<void(long)>* body = nullptr;
    std::atomic<long> next{0};
    std::atomic<long> remaining{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;  // first error; guarded by mutex
    std::mutex mutex;
    std::condition_variable done;

    bool exhausted() const {
        return next.load(std::memory_order_relaxed) >= n_chunks;
    }
};

void run_group_chunks(TaskGroup& group) {
    for (;;) {
        const long ci = group.next.fetch_add(1, std::memory_order_relaxed);
        if (ci >= group.n_chunks) return;
        if (!group.failed.load(std::memory_order_relaxed)) {
            try {
                (*group.body)(ci);
            } catch (...) {
                std::lock_guard<std::mutex> lock(group.mutex);
                if (!group.error) group.error = std::current_exception();
                group.failed.store(true, std::memory_order_relaxed);
            }
        }
        if (group.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Last chunk: wake the waiting caller.  Taking the mutex
            // pairs with the caller's wait so the notification cannot be
            // lost between its predicate check and its sleep.
            std::lock_guard<std::mutex> lock(group.mutex);
            group.done.notify_all();
        }
    }
}

int default_thread_count() {
    if (const char* env = std::getenv("PVFP_THREADS")) {
        char* end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1 && v <= 4096)
            return static_cast<int>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

/// The global pool: T-1 worker threads (the caller is the T-th).  Workers
/// sleep until a group is queued, then help drain it.  Groups stay in the
/// queue until their chunks are all claimed, so several workers pick up
/// the same group concurrently.
class Pool {
public:
    static Pool& instance() {
        static Pool pool;
        return pool;
    }

    int threads() {
        std::lock_guard<std::mutex> lock(mutex_);
        return configured_;
    }

    void resize(int n) {
        std::unique_lock<std::mutex> lock(mutex_);
        const int want = n == 0 ? default_thread_count() : n;
        if (want == configured_) return;
        stop_workers(lock);
        configured_ = want;
        // Workers respawn lazily on the next submit.
    }

    void submit(const std::shared_ptr<TaskGroup>& group) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ensure_workers();
            queue_.push_back(group);
        }
        wake_.notify_all();
    }

    ~Pool() {
        std::unique_lock<std::mutex> lock(mutex_);
        stop_workers(lock);
    }

private:
    Pool() : configured_(default_thread_count()) {}

    void ensure_workers() {  // requires mutex_ held
        if (!workers_.empty() || configured_ <= 1) return;
        stop_ = false;
        workers_.reserve(static_cast<std::size_t>(configured_ - 1));
        for (int i = 0; i < configured_ - 1; ++i)
            workers_.emplace_back([this] { worker_loop(); });
    }

    void stop_workers(std::unique_lock<std::mutex>& lock) {
        if (workers_.empty()) return;
        stop_ = true;
        wake_.notify_all();
        std::vector<std::thread> workers = std::move(workers_);
        workers_.clear();
        lock.unlock();
        for (auto& w : workers) w.join();
        lock.lock();
        stop_ = false;
    }

    void worker_loop() {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (stop_) return;
            std::shared_ptr<TaskGroup> group = queue_.front();
            if (group->exhausted()) {
                queue_.pop_front();
                continue;
            }
            lock.unlock();
            run_group_chunks(*group);
            lock.lock();
            if (!queue_.empty() && queue_.front() == group)
                queue_.pop_front();
        }
    }

    std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<std::shared_ptr<TaskGroup>> queue_;
    std::vector<std::thread> workers_;
    bool stop_ = false;
    int configured_ = 1;
};

}  // namespace

int thread_count() { return Pool::instance().threads(); }

void set_thread_count(int n) {
    check_arg(n >= 0, "set_thread_count: thread count must be >= 0");
    Pool::instance().resize(n);
}

SerialScope::SerialScope() { ++t_serial_depth; }
SerialScope::~SerialScope() { --t_serial_depth; }

bool in_serial_scope() { return t_serial_depth > 0; }

void parallel_for_chunks(long n_chunks,
                         const std::function<void(long)>& body) {
    check_arg(n_chunks >= 0, "parallel_for_chunks: negative chunk count");
    if (n_chunks == 0) return;
    if (n_chunks == 1 || in_serial_scope() || thread_count() == 1) {
        // Inline path: same chunk grid, same order — bitwise identical to
        // the pooled path for deterministic bodies by construction.
        for (long ci = 0; ci < n_chunks; ++ci) body(ci);
        return;
    }
    auto group = std::make_shared<TaskGroup>();
    group->n_chunks = n_chunks;
    group->body = &body;
    group->remaining.store(n_chunks, std::memory_order_relaxed);
    Pool::instance().submit(group);
    // The caller helps: drains chunks until none are left to claim...
    run_group_chunks(*group);
    // ...then waits for chunks other threads are still running.
    std::unique_lock<std::mutex> lock(group->mutex);
    group->done.wait(lock, [&] {
        return group->remaining.load(std::memory_order_acquire) == 0;
    });
    if (group->error) std::rethrow_exception(group->error);
}

void parallel_for(long begin, long end, long chunk,
                  const std::function<void(long, long)>& body) {
    if (begin >= end) return;
    check_arg(chunk > 0, "parallel_for: chunk must be positive");
    const long n_chunks = (end - begin + chunk - 1) / chunk;
    parallel_for_chunks(n_chunks, [&](long ci) {
        const long b = begin + ci * chunk;
        body(b, std::min(end, b + chunk));
    });
}

}  // namespace pvfp

#pragma once
/// \file cli.hpp
/// Checked command-line value parsing shared by the example CLIs.
///
/// A bare std::stoi/std::atof on a flag value turns `--shard=abc` into
/// an uncaught exception (or a silent 0) instead of a usage message, so
/// every CLI routes its numeric flags through these helpers: full-string
/// parses that name the offending flag and value in one UsageError,
/// which the binaries translate into their usage text and exit code 2.
/// Header-only; the heavy lifting is std::from_chars / strtod with an
/// all-characters-consumed check.

#include <cerrno>
#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>

#include "pvfp/util/error.hpp"

namespace pvfp::cli {

/// A malformed or out-of-range command-line value: the message names the
/// flag and the rejected text.  CLIs catch this, print usage, exit 2.
class UsageError : public Error {
public:
    explicit UsageError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void bad_value(const std::string& flag,
                                   const std::string& value,
                                   const char* expected) {
    throw UsageError("bad value for " + flag + ": '" + value + "' (" +
                     expected + ")");
}

template <typename I>
I parse_integer(const std::string& flag, const std::string& value,
                const char* expected, I min, I max) {
    I out{};
    const char* begin = value.data();
    const char* end = begin + value.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    if (ec != std::errc() || ptr != end || value.empty())
        bad_value(flag, value, expected);
    if (out < min || out > max)
        throw UsageError("bad value for " + flag + ": '" + value +
                         "' (out of range [" + std::to_string(min) + ", " +
                         std::to_string(max) + "])");
    return out;
}

}  // namespace detail

/// Parse a whole-string integer in [\p min, \p max]; throws UsageError
/// naming \p flag on any other input (empty, trailing garbage, overflow).
inline int parse_int(const std::string& flag, const std::string& value,
                     int min = std::numeric_limits<int>::min(),
                     int max = std::numeric_limits<int>::max()) {
    return detail::parse_integer<int>(flag, value, "expected an integer",
                                      min, max);
}

inline long parse_long(const std::string& flag, const std::string& value,
                       long min = std::numeric_limits<long>::min(),
                       long max = std::numeric_limits<long>::max()) {
    return detail::parse_integer<long>(flag, value, "expected an integer",
                                       min, max);
}

inline std::uint64_t parse_u64(
    const std::string& flag, const std::string& value,
    std::uint64_t min = 0,
    std::uint64_t max = std::numeric_limits<std::uint64_t>::max()) {
    return detail::parse_integer<std::uint64_t>(
        flag, value, "expected an unsigned integer", min, max);
}

/// Parse a whole-string finite double; throws UsageError naming \p flag
/// on malformed input, trailing garbage, or a value outside
/// [\p min, \p max].
inline double parse_double(
    const std::string& flag, const std::string& value,
    double min = std::numeric_limits<double>::lowest(),
    double max = std::numeric_limits<double>::max()) {
    if (value.empty()) detail::bad_value(flag, value, "expected a number");
    errno = 0;
    char* end = nullptr;
    const double out = std::strtod(value.c_str(), &end);
    if (end != value.c_str() + value.size() || errno == ERANGE)
        detail::bad_value(flag, value, "expected a number");
    if (!(out >= min && out <= max))  // also rejects NaN
        detail::bad_value(flag, value, "number out of range");
    return out;
}

}  // namespace pvfp::cli

#include "pvfp/util/csv.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

#include "pvfp/util/error.hpp"

namespace pvfp {

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
    check_arg(!header_.empty(), "CsvTable: header must not be empty");
}

std::size_t CsvTable::column(const std::string& name) const {
    const auto it = std::find(header_.begin(), header_.end(), name);
    check_arg(it != header_.end(), "CsvTable: no column named '" + name + "'");
    return static_cast<std::size_t>(it - header_.begin());
}

bool CsvTable::has_column(const std::string& name) const {
    return std::find(header_.begin(), header_.end(), name) != header_.end();
}

void CsvTable::add_row(std::vector<std::string> row) {
    check_arg(row.size() == header_.size(),
              "CsvTable::add_row: row width does not match header");
    rows_.push_back(std::move(row));
}

const std::vector<std::string>& CsvTable::row(std::size_t r) const {
    check_arg(r < rows_.size(), "CsvTable::row: row index out of range");
    return rows_[r];
}

const std::string& CsvTable::cell(std::size_t r, std::size_t c) const {
    const auto& rr = row(r);
    check_arg(c < rr.size(), "CsvTable::cell: column index out of range");
    return rr[c];
}

double CsvTable::cell_as_double(std::size_t r, std::size_t c) const {
    const std::string& s = cell(r, c);
    double value = 0.0;
    const auto* begin = s.data();
    const auto* end = s.data() + s.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    check_io(ec == std::errc{} && ptr == end,
             "CsvTable: cell '" + s + "' is not a number");
    return value;
}

double CsvTable::cell_as_double(std::size_t r, const std::string& name) const {
    return cell_as_double(r, column(name));
}

std::string csv_escape_field(const std::string& field) {
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"') out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

std::vector<std::string> csv_split_line(const std::string& line) {
    std::vector<std::string> fields;
    std::string current;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char ch = line[i];
        if (in_quotes) {
            if (ch == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    current += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                current += ch;
            }
        } else if (ch == '"') {
            in_quotes = true;
        } else if (ch == ',') {
            fields.push_back(std::move(current));
            current.clear();
        } else if (ch == '\r') {
            // Tolerate CRLF files.
        } else {
            current += ch;
        }
    }
    fields.push_back(std::move(current));
    return fields;
}

void CsvTable::write(std::ostream& os) const {
    for (std::size_t c = 0; c < header_.size(); ++c) {
        if (c) os << ',';
        os << csv_escape_field(header_[c]);
    }
    os << '\n';
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) os << ',';
            os << csv_escape_field(row[c]);
        }
        os << '\n';
    }
}

void CsvTable::write_file(const std::string& path) const {
    std::ofstream os(path);
    check_io(os.good(), "CsvTable: cannot open '" + path + "' for writing");
    write(os);
    check_io(os.good(), "CsvTable: write to '" + path + "' failed");
}

CsvTable CsvTable::read(std::istream& is) {
    CsvTable table;
    std::string line;
    bool have_header = false;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#') continue;
        auto fields = csv_split_line(line);
        if (!have_header) {
            table.header_ = std::move(fields);
            check_io(!table.header_.empty(), "CsvTable: empty header");
            have_header = true;
        } else {
            check_io(fields.size() == table.header_.size(),
                     "CsvTable: row width does not match header");
            table.rows_.push_back(std::move(fields));
        }
    }
    check_io(have_header, "CsvTable: no header found");
    return table;
}

CsvTable CsvTable::read_file(const std::string& path) {
    std::ifstream is(path);
    check_io(is.good(), "CsvTable: cannot open '" + path + "'");
    return read(is);
}

}  // namespace pvfp

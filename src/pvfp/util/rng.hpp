#pragma once
/// \file rng.hpp
/// Deterministic random number generation for the synthetic weather
/// generator and the stochastic placers.
///
/// std::mt19937 is portable but std::*_distribution results differ between
/// standard libraries; to make every experiment byte-reproducible across
/// toolchains the project ships its own xoshiro256** generator plus the few
/// distributions it needs.  Header-only by design: the generator is tiny and
/// hot (inner loop of the weather synthesis).

#include <cstdint>
#include <cmath>

#include "pvfp/util/error.hpp"
#include "pvfp/util/math.hpp"

namespace pvfp {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (the public-domain reference implementation).
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256**: small, fast, high-quality 64-bit PRNG (Blackman & Vigna).
class Rng {
public:
    /// Seed deterministically; equal seeds give equal streams on every
    /// platform.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
        SplitMix64 sm(seed);
        for (auto& word : state_) word = sm.next();
    }

    /// Next raw 64-bit value.
    std::uint64_t next_u64() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform() {
        // 53 high bits -> double mantissa.
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) {
        check_arg(hi >= lo, "Rng::uniform: hi must be >= lo");
        return lo + (hi - lo) * uniform();
    }

    /// Uniform integer in [0, n); n must be positive.  Uses rejection
    /// sampling, so the distribution is exactly uniform.
    std::uint64_t uniform_int(std::uint64_t n) {
        check_arg(n > 0, "Rng::uniform_int: n must be positive");
        const std::uint64_t threshold = (0ULL - n) % n;  // 2^64 mod n
        for (;;) {
            const std::uint64_t r = next_u64();
            if (r >= threshold) return r % n;
        }
    }

    /// Bernoulli trial with success probability \p p in [0,1].
    bool bernoulli(double p) { return uniform() < p; }

    /// Standard normal via Box-Muller (deterministic, no cached spare to
    /// keep the stream position predictable: one normal == two uniforms).
    double normal() {
        // Avoid log(0).
        const double u1 = 1.0 - uniform();
        const double u2 = uniform();
        return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
    }

    /// Normal with the given mean and standard deviation.
    double normal(double mu, double sigma) {
        check_arg(sigma >= 0.0, "Rng::normal: sigma must be non-negative");
        return mu + sigma * normal();
    }

    /// Pick an index in [0, weights_size) with probability proportional to
    /// weights[i]; weights must be non-negative with positive sum.
    template <typename Container>
    std::size_t weighted_choice(const Container& weights) {
        double sum = 0.0;
        for (double w : weights) {
            check_arg(w >= 0.0, "Rng::weighted_choice: negative weight");
            sum += w;
        }
        check_arg(sum > 0.0, "Rng::weighted_choice: zero total weight");
        double r = uniform() * sum;
        std::size_t i = 0;
        for (double w : weights) {
            if (r < w) return i;
            r -= w;
            ++i;
        }
        return i - 1;  // numerical edge: return the last index
    }

private:
    static std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

}  // namespace pvfp

#pragma once
/// \file grid2d.hpp
/// Grid2D<T>: a bounds-checked, row-major 2D array.
///
/// This is the in-memory workhorse for everything gridded in the project:
/// DSM rasters (via geo::Raster), validity masks, suitability matrices.
/// Coordinates are (col, row) = (x, y) with (0,0) at the *top-left*; +x goes
/// right (east in map terms), +y goes down (south).  All placement code uses
/// the same convention so indices can be passed around without conversion.

#include <cstddef>
#include <utility>
#include <vector>

#include "pvfp/util/error.hpp"

namespace pvfp {

template <typename T>
class Grid2D {
public:
    Grid2D() = default;

    /// Create a \p width x \p height grid filled with \p fill.
    Grid2D(int width, int height, T fill = T{})
        : width_(width), height_(height),
          cells_(static_cast<std::size_t>(check_dims(width, height)), fill) {}

    int width() const { return width_; }
    int height() const { return height_; }
    /// Total number of cells (width*height).
    std::size_t size() const { return cells_.size(); }
    bool empty() const { return cells_.empty(); }

    /// True when (x,y) addresses a cell of the grid.
    bool in_bounds(int x, int y) const {
        return x >= 0 && x < width_ && y >= 0 && y < height_;
    }

    /// Checked element access; throws InvalidArgument when out of bounds.
    T& at(int x, int y) {
        check_arg(in_bounds(x, y), "Grid2D::at: index out of bounds");
        return cells_[index(x, y)];
    }
    const T& at(int x, int y) const {
        check_arg(in_bounds(x, y), "Grid2D::at: index out of bounds");
        return cells_[index(x, y)];
    }

    /// Unchecked element access for hot loops; caller guarantees bounds.
    T& operator()(int x, int y) { return cells_[index(x, y)]; }
    const T& operator()(int x, int y) const { return cells_[index(x, y)]; }

    /// Row-major linear index of (x,y).
    std::size_t index(int x, int y) const {
        return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
               static_cast<std::size_t>(x);
    }

    /// Set every cell to \p value.
    void fill(const T& value) {
        std::fill(cells_.begin(), cells_.end(), value);
    }

    /// Raw storage, row-major.  Useful for bulk statistics.
    const std::vector<T>& data() const { return cells_; }
    std::vector<T>& data() { return cells_; }

    bool operator==(const Grid2D&) const = default;

private:
    static long long check_dims(int width, int height) {
        check_arg(width >= 0 && height >= 0,
                  "Grid2D: dimensions must be non-negative");
        return static_cast<long long>(width) * height;
    }

    int width_ = 0;
    int height_ = 0;
    std::vector<T> cells_;
};

/// Summed-area table over a Grid2D<double>, enabling O(1) rectangle sums.
/// Used by the compact ("traditional") placer to score every anchor of a
/// block footprint in one pass.
class SummedAreaTable {
public:
    SummedAreaTable() = default;

    /// Build from \p grid; cells where \p mask is false contribute 0.
    /// \p mask may be empty (all cells contribute).
    explicit SummedAreaTable(const Grid2D<double>& grid,
                             const Grid2D<unsigned char>* mask = nullptr)
        : width_(grid.width()), height_(grid.height()),
          sum_(static_cast<std::size_t>(width_ + 1) * (height_ + 1), 0.0) {
        if (mask != nullptr) {
            check_arg(mask->width() == width_ && mask->height() == height_,
                      "SummedAreaTable: mask dimensions mismatch");
        }
        for (int y = 0; y < height_; ++y) {
            for (int x = 0; x < width_; ++x) {
                const double v =
                    (mask == nullptr || (*mask)(x, y)) ? grid(x, y) : 0.0;
                s(x + 1, y + 1) = v + s(x, y + 1) + s(x + 1, y) - s(x, y);
            }
        }
    }

    /// Sum of the rectangle with top-left (x0,y0) and size w x h.
    /// The rectangle must lie inside the grid.
    double rect_sum(int x0, int y0, int w, int h) const {
        check_arg(x0 >= 0 && y0 >= 0 && w >= 0 && h >= 0 &&
                      x0 + w <= width_ && y0 + h <= height_,
                  "SummedAreaTable::rect_sum: rectangle out of bounds");
        return s(x0 + w, y0 + h) - s(x0, y0 + h) - s(x0 + w, y0) + s(x0, y0);
    }

    int width() const { return width_; }
    int height() const { return height_; }

private:
    double& s(int x, int y) {
        return sum_[static_cast<std::size_t>(y) * (width_ + 1) + x];
    }
    const double& s(int x, int y) const {
        return sum_[static_cast<std::size_t>(y) * (width_ + 1) + x];
    }

    int width_ = 0;
    int height_ = 0;
    std::vector<double> sum_;
};

}  // namespace pvfp

#include "pvfp/util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "pvfp/util/error.hpp"

namespace pvfp {

double percentile(std::span<const double> samples, double p) {
    std::vector<double> copy(samples.begin(), samples.end());
    return percentile_in_place(copy, p);
}

double percentile_in_place(std::vector<double>& samples, double p) {
    check_arg(!samples.empty(), "percentile: empty sample set");
    check_arg(p >= 0.0 && p <= 100.0, "percentile: p must be in [0,100]");
    const std::size_t n = samples.size();
    if (n == 1) return samples.front();

    // Type-7 estimator: virtual index h = (n-1) * p/100, interpolate
    // between floor(h) and floor(h)+1 order statistics.
    const double h = (static_cast<double>(n) - 1.0) * (p / 100.0);
    const auto lo_rank = static_cast<std::size_t>(h);
    const double frac = h - static_cast<double>(lo_rank);

    auto lo_it = samples.begin() + static_cast<std::ptrdiff_t>(lo_rank);
    std::nth_element(samples.begin(), lo_it, samples.end());
    const double lo_val = *lo_it;
    if (frac == 0.0 || lo_rank + 1 == n) return lo_val;
    // The (lo_rank+1)-th order statistic is the minimum of the tail that
    // nth_element left to the right of lo_it.
    const double hi_val =
        *std::min_element(lo_it + 1, samples.end());
    return lo_val + frac * (hi_val - lo_val);
}

double mean(std::span<const double> samples) {
    check_arg(!samples.empty(), "mean: empty sample set");
    double acc = 0.0;
    for (double x : samples) acc += x;
    return acc / static_cast<double>(samples.size());
}

double variance(std::span<const double> samples) {
    check_arg(samples.size() >= 2, "variance: need at least 2 samples");
    const double m = mean(samples);
    double acc = 0.0;
    for (double x : samples) acc += (x - m) * (x - m);
    return acc / static_cast<double>(samples.size() - 1);
}

double stddev(std::span<const double> samples) {
    return std::sqrt(variance(samples));
}

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto total = n_ + other.n_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) /
                           static_cast<double>(total);
    mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ = total;
}

double RunningStats::mean() const {
    check_arg(n_ > 0, "RunningStats::mean: no samples");
    return mean_;
}

double RunningStats::variance() const {
    check_arg(n_ >= 2, "RunningStats::variance: need at least 2 samples");
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
    check_arg(n_ > 0, "RunningStats::min: no samples");
    return min_;
}

double RunningStats::max() const {
    check_arg(n_ > 0, "RunningStats::max: no samples");
    return max_;
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / bins),
      counts_(static_cast<std::size_t>(bins), 0) {
    check_arg(hi > lo, "Histogram: hi must exceed lo");
    check_arg(bins >= 1, "Histogram: need at least one bin");
}

int Histogram::bin_index(double x) const {
    if (x <= lo_) return 0;
    if (x >= hi_) return bin_count() - 1;
    const int i = static_cast<int>((x - lo_) / width_);
    return std::min(i, bin_count() - 1);
}

void Histogram::add(double x) { add(x, 1); }

void Histogram::add(double x, std::uint32_t n) {
    counts_[static_cast<std::size_t>(bin_index(x))] += n;
    total_ += n;
}

void Histogram::add_bin(int i, std::uint32_t n) {
    assert(i >= 0 && i < bin_count());
    counts_[static_cast<std::size_t>(i)] += n;
    total_ += n;
}

std::uint32_t Histogram::bin(int i) const {
    check_arg(i >= 0 && i < bin_count(), "Histogram::bin: index out of range");
    return counts_[static_cast<std::size_t>(i)];
}

double Histogram::bin_lower(int i) const {
    check_arg(i >= 0 && i <= bin_count(),
              "Histogram::bin_lower: index out of range");
    return lo_ + width_ * i;
}

double Histogram::percentile(double p) const {
    check_arg(total_ > 0, "Histogram::percentile: empty histogram");
    check_arg(p >= 0.0 && p <= 100.0,
              "Histogram::percentile: p must be in [0,100]");
    const double target = (p / 100.0) * static_cast<double>(total_);
    std::uint64_t cum = 0;
    for (int i = 0; i < bin_count(); ++i) {
        const std::uint32_t c = counts_[static_cast<std::size_t>(i)];
        if (static_cast<double>(cum) + c >= target) {
            if (c == 0) return bin_lower(i);
            // Linear interpolation of the cumulative distribution within
            // the bin: fraction of the bin's mass below the target.
            const double frac =
                (target - static_cast<double>(cum)) / static_cast<double>(c);
            return bin_lower(i) + frac * width_;
        }
        cum += c;
    }
    return hi_;
}

double Histogram::approx_mean() const {
    check_arg(total_ > 0, "Histogram::approx_mean: empty histogram");
    double acc = 0.0;
    for (int i = 0; i < bin_count(); ++i) {
        acc += static_cast<double>(counts_[static_cast<std::size_t>(i)]) *
               (bin_lower(i) + 0.5 * width_);
    }
    return acc / static_cast<double>(total_);
}

}  // namespace pvfp

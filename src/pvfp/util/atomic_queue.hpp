#pragma once
/// \file atomic_queue.hpp
/// Bounded lock-free multi-producer queue — the serving plane's request
/// path (ROADMAP "always-on ranking service").
///
/// The daemon's accept/parse threads must never stall behind a worker
/// holding a mutex mid-computation, so the hand-off between them is a
/// fixed-capacity ring buffer in the audio-thread idiom: every slot
/// carries a sequence ticket, producers claim slots by CAS on the
/// enqueue cursor, consumers by CAS on the dequeue cursor, and the
/// ticket handshake orders the value transfer without any lock (the
/// classic Vyukov bounded queue).  try_push/try_pop are lock-free and
/// wait-free of each other; the blocking push/pop convenience wrappers
/// layer C++20 atomic waits on top for the daemon's idle periods — a
/// sleeping consumer costs nothing, a producer wakes it with one
/// notify, and the fast path stays CAS-only.
///
/// Capacity is rounded up to a power of two.  Values are moved in and
/// out; the queue never allocates after construction.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "pvfp/util/error.hpp"

namespace pvfp {

template <typename T>
class AtomicQueue {
public:
    /// \p capacity: minimum number of buffered items (>= 1); the ring is
    /// sized to the next power of two.
    explicit AtomicQueue(std::size_t capacity) {
        check_arg(capacity >= 1, "AtomicQueue: capacity must be >= 1");
        // Minimum ring size 2: in a 1-cell ring the published ticket
        // (pos + 1) equals the next enqueue position, so a full ring
        // would look free and the unconsumed value be overwritten.
        std::size_t n = 2;
        while (n < capacity) n <<= 1;
        cells_ = std::vector<Cell>(n);
        mask_ = n - 1;
        for (std::size_t i = 0; i < n; ++i)
            cells_[i].ticket.store(i, std::memory_order_relaxed);
    }

    AtomicQueue(const AtomicQueue&) = delete;
    AtomicQueue& operator=(const AtomicQueue&) = delete;

    std::size_t capacity() const { return mask_ + 1; }

    /// Enqueue without blocking; false when the ring is full.  Takes an
    /// rvalue reference (not by value) so a failed push leaves the
    /// caller's value untouched for the retry in the blocking wrapper.
    bool try_push(T&& value) {
        Cell* cell;
        std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const std::size_t ticket =
                cell->ticket.load(std::memory_order_acquire);
            const std::intptr_t dif = static_cast<std::intptr_t>(ticket) -
                                      static_cast<std::intptr_t>(pos);
            if (dif == 0) {
                if (enqueue_pos_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                return false;  // full: the slot is still owned by a reader
            } else {
                pos = enqueue_pos_.load(std::memory_order_relaxed);
            }
        }
        cell->value = std::move(value);
        cell->ticket.store(pos + 1, std::memory_order_release);
        pushed_.fetch_add(1, std::memory_order_release);
        pushed_.notify_one();
        return true;
    }

    bool try_push(const T& value) {
        T copy(value);
        return try_push(std::move(copy));
    }

    /// Dequeue without blocking; false when the ring is empty.
    bool try_pop(T& out) {
        Cell* cell;
        std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const std::size_t ticket =
                cell->ticket.load(std::memory_order_acquire);
            const std::intptr_t dif = static_cast<std::intptr_t>(ticket) -
                                      static_cast<std::intptr_t>(pos + 1);
            if (dif == 0) {
                if (dequeue_pos_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                return false;  // empty: no writer has published this slot
            } else {
                pos = dequeue_pos_.load(std::memory_order_relaxed);
            }
        }
        out = std::move(cell->value);
        cell->ticket.store(pos + mask_ + 1, std::memory_order_release);
        popped_.fetch_add(1, std::memory_order_release);
        popped_.notify_one();
        return true;
    }

    /// Enqueue, sleeping (atomic wait, no mutex) while the ring is full.
    void push(T value) {
        for (;;) {
            const std::uint64_t seen =
                popped_.load(std::memory_order_acquire);
            if (try_push(std::move(value))) return;
            // Full: sleep until a consumer frees a slot.  try_push moved
            // nothing on failure, so the value is still ours to retry.
            popped_.wait(seen, std::memory_order_acquire);
        }
    }

    /// Approximate buffered items (pushed minus popped): exact when
    /// quiescent, a racy-but-consistent estimate under traffic — enough
    /// for the telemetry queue-depth gauge.
    std::size_t approx_size() const {
        const std::uint64_t pushed = pushed_.load(std::memory_order_acquire);
        const std::uint64_t popped = popped_.load(std::memory_order_acquire);
        return pushed >= popped ? static_cast<std::size_t>(pushed - popped)
                                : 0;
    }

    /// Dequeue, sleeping (atomic wait, no mutex) while the ring is empty.
    T pop() {
        T out;
        for (;;) {
            const std::uint64_t seen =
                pushed_.load(std::memory_order_acquire);
            if (try_pop(out)) return out;
            pushed_.wait(seen, std::memory_order_acquire);
        }
    }

private:
    struct Cell {
        std::atomic<std::size_t> ticket{0};
        T value{};
    };

    std::vector<Cell> cells_;
    std::size_t mask_ = 0;
    alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
    alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
    /// Monotonic op counters backing the blocking waits only; the
    /// lock-free fast path never waits on them.
    alignas(64) std::atomic<std::uint64_t> pushed_{0};
    alignas(64) std::atomic<std::uint64_t> popped_{0};
};

}  // namespace pvfp

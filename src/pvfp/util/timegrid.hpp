#pragma once
/// \file timegrid.hpp
/// Discretization of the simulation horizon.
///
/// The paper evaluates placements over one year at 15-minute intervals
/// (Section IV).  A TimeGrid maps a step index to (day-of-year, hour of
/// local clock time); samples are taken at interval *centers* so that
/// energy integration (sum * dt) is midpoint-rule accurate.  A non-leap
/// year is assumed (the paper's horizon is "one year").

#include "pvfp/util/error.hpp"

namespace pvfp {

class TimeGrid {
public:
    /// \p minutes_per_step must divide 24*60; \p start_day is the first
    /// day-of-year (1 = Jan 1st); \p days is the horizon length.
    explicit TimeGrid(int minutes_per_step = 15, int start_day = 1,
                      int days = 365)
        : minutes_per_step_(minutes_per_step), start_day_(start_day),
          days_(days) {
        check_arg(minutes_per_step > 0 && 1440 % minutes_per_step == 0,
                  "TimeGrid: minutes_per_step must divide 1440");
        check_arg(start_day >= 1 && start_day <= 365,
                  "TimeGrid: start_day must be in [1,365]");
        check_arg(days >= 1, "TimeGrid: need at least one day");
    }

    int minutes_per_step() const { return minutes_per_step_; }
    int days() const { return days_; }
    int start_day() const { return start_day_; }
    int steps_per_day() const { return 1440 / minutes_per_step_; }
    long total_steps() const {
        return static_cast<long>(days_) * steps_per_day();
    }
    /// Step duration in hours (for energy integration).
    double step_hours() const { return minutes_per_step_ / 60.0; }

    /// Day-of-year of step \p s, wrapped into [1,365] so multi-year or
    /// offset horizons stay valid.
    int day_of_year(long s) const {
        check_arg(s >= 0 && s < total_steps(), "TimeGrid: step out of range");
        const long day = (start_day_ - 1 + s / steps_per_day()) % 365;
        return static_cast<int>(day) + 1;
    }

    /// Local clock hour at the *center* of step \p s, in [0,24).
    double hour_of_day(long s) const {
        check_arg(s >= 0 && s < total_steps(), "TimeGrid: step out of range");
        const long step_in_day = s % steps_per_day();
        return (static_cast<double>(step_in_day) + 0.5) * minutes_per_step_ /
               60.0;
    }

    bool operator==(const TimeGrid&) const = default;

private:
    int minutes_per_step_;
    int start_day_;
    int days_;
};

}  // namespace pvfp

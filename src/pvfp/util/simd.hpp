#pragma once
/// \file simd.hpp
/// Runtime SIMD dispatch for the batched irradiance kernels.
///
/// The batched kernels (solar/irradiance_kernels) ship three
/// implementations: a branch-free scalar loop the compiler can
/// auto-vectorize, a hand-written AVX2 path, and a hand-written AVX-512
/// path whose masked loads/stores remove the scalar tail loops.  Which
/// one runs is a pure runtime decision — the library binary is
/// portable — resolved from, in priority order:
///
///   1. a set_simd_level() override (tests and benches toggling paths),
///   2. the PVFP_SIMD environment variable
///      ("scalar"/"off"/"0" forces scalar, "avx2" forces AVX2, "avx512"
///      forces AVX-512 — an InvalidArgument when the CPU lacks the
///      level, as is any unrecognized value, so a CI job forcing a
///      level fails loudly instead of silently testing the wrong
///      kernels — "auto"/unset detects), and
///   3. CPU detection (auto runs the widest level the CPU has).
///
/// Determinism contract: all paths compute elementwise-identical IEEE
/// arithmetic (same operations, same association, no FMA contraction —
/// the build sets -ffp-contract=off), so switching levels never changes
/// a single bit of any result.  tests/solar/test_batched_kernels pins
/// this.

namespace pvfp {

/// Kernel implementation tiers, in increasing width.
enum class SimdLevel {
    Scalar,  ///< portable loops (still auto-vectorizable)
    Avx2,    ///< 4-wide double / 8-wide float intrinsics
    Avx512,  ///< 8-wide double intrinsics with masked tails
};

/// True when the executing CPU supports AVX2.
bool cpu_supports_avx2();

/// True when the executing CPU supports the AVX-512 subset the kernels
/// use (avx512f + avx512vl: foundation ops plus 256-bit masked forms).
bool cpu_supports_avx512();

/// The level the batched kernels dispatch to right now.
SimdLevel simd_level();

/// Force a level (Avx2/Avx512 throw InvalidArgument when the CPU lacks
/// them).  Only call at a quiescent point — the setting is global.
void set_simd_level(SimdLevel level);

/// Restore the default resolution (PVFP_SIMD env, then CPU detection);
/// throws InvalidArgument on a bad PVFP_SIMD value, like startup does.
void set_simd_level_auto();

/// Human-readable name of a level ("scalar" / "avx2" / "avx512") for
/// bench banners.
const char* simd_level_name(SimdLevel level);

}  // namespace pvfp

#include "pvfp/util/ascii_art.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "pvfp/util/error.hpp"

namespace pvfp {
namespace {

constexpr const char* kRamp = " .:-=+*#%@";
constexpr int kRampLevels = 10;

char ramp_char(double t) {
    const int idx = std::clamp(static_cast<int>(t * kRampLevels), 0,
                               kRampLevels - 1);
    return kRamp[idx];
}

}  // namespace

std::string render_heatmap(const Grid2D<double>& grid,
                           const HeatmapOptions& options) {
    check_arg(!grid.empty(), "render_heatmap: empty grid");
    if (options.mask != nullptr) {
        check_arg(options.mask->width() == grid.width() &&
                      options.mask->height() == grid.height(),
                  "render_heatmap: mask dimensions mismatch");
    }

    // Downsampling factors: terminal characters are roughly twice as tall
    // as they are wide, so sample y twice as coarsely to keep aspect.
    const int sx = std::max(1, (grid.width() + options.max_width - 1) /
                                   options.max_width);
    const int sy = 2 * sx;
    const int out_w = (grid.width() + sx - 1) / sx;
    const int out_h = (grid.height() + sy - 1) / sy;

    double lo = options.lo;
    double hi = options.hi;
    if (options.autoscale) {
        lo = std::numeric_limits<double>::infinity();
        hi = -std::numeric_limits<double>::infinity();
        for (int y = 0; y < grid.height(); ++y) {
            for (int x = 0; x < grid.width(); ++x) {
                if (options.mask && !(*options.mask)(x, y)) continue;
                lo = std::min(lo, grid(x, y));
                hi = std::max(hi, grid(x, y));
            }
        }
        if (!(lo < hi)) {  // constant or fully masked grid
            lo = lo - 0.5;
            hi = lo + 1.0;
        }
    }

    std::ostringstream oss;
    for (int oy = 0; oy < out_h; ++oy) {
        for (int ox = 0; ox < out_w; ++ox) {
            double acc = 0.0;
            int count = 0;
            for (int y = oy * sy; y < std::min((oy + 1) * sy, grid.height());
                 ++y) {
                for (int x = ox * sx;
                     x < std::min((ox + 1) * sx, grid.width()); ++x) {
                    if (options.mask && !(*options.mask)(x, y)) continue;
                    acc += grid(x, y);
                    ++count;
                }
            }
            if (count == 0) {
                oss << ' ';
            } else {
                const double t = (acc / count - lo) / (hi - lo);
                oss << ramp_char(t);
            }
        }
        oss << '\n';
    }
    return oss.str();
}

std::string render_floorplan(const Grid2D<unsigned char>& valid,
                             const std::vector<ModuleBox>& modules,
                             int max_width) {
    check_arg(!valid.empty(), "render_floorplan: empty validity grid");
    check_arg(max_width > 0, "render_floorplan: max_width must be positive");

    const int sx =
        std::max(1, (valid.width() + max_width - 1) / max_width);
    const int sy = 2 * sx;
    const int out_w = (valid.width() + sx - 1) / sx;
    const int out_h = (valid.height() + sy - 1) / sy;

    // Paint module interiors into a label grid; -1 = background.
    Grid2D<int> label(valid.width(), valid.height(), -1);
    for (const auto& box : modules) {
        for (int y = box.y; y < box.y + box.h; ++y) {
            for (int x = box.x; x < box.x + box.w; ++x) {
                check_arg(label.in_bounds(x, y),
                          "render_floorplan: module box out of bounds");
                label(x, y) = box.string_index;
            }
        }
    }

    std::ostringstream oss;
    for (int oy = 0; oy < out_h; ++oy) {
        for (int ox = 0; ox < out_w; ++ox) {
            // Majority vote within the sample box: module label wins over
            // background so thin modules stay visible after downsampling.
            int best_label = -1;
            int valid_count = 0;
            int total = 0;
            for (int y = oy * sy; y < std::min((oy + 1) * sy, valid.height());
                 ++y) {
                for (int x = ox * sx;
                     x < std::min((ox + 1) * sx, valid.width()); ++x) {
                    ++total;
                    if (label(x, y) >= 0) best_label = label(x, y);
                    if (valid(x, y)) ++valid_count;
                }
            }
            if (best_label >= 0)
                oss << static_cast<char>('A' + (best_label % 26));
            else if (valid_count * 2 >= total)
                oss << '.';
            else
                oss << ' ';
        }
        oss << '\n';
    }
    return oss.str();
}

std::string heatmap_legend(double lo, double hi, const std::string& unit) {
    std::ostringstream oss;
    oss << "legend: ";
    for (int i = 0; i < kRampLevels; ++i) {
        const double v = lo + (hi - lo) * (i + 0.5) / kRampLevels;
        oss << '\'' << kRamp[i] << "'=" << static_cast<long long>(v);
        if (i + 1 < kRampLevels) oss << ' ';
    }
    oss << ' ' << unit;
    return oss.str();
}

}  // namespace pvfp

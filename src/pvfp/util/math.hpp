#pragma once
/// \file math.hpp
/// Small numeric helpers and physical constants shared by the solar and
/// geometry code.  Angles follow one convention project-wide: radians in
/// computation, degrees only at API boundaries that say so in their names.

#include <algorithm>
#include <cmath>

namespace pvfp {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Solar constant: mean extraterrestrial normal irradiance [W/m^2].
inline constexpr double kSolarConstant = 1367.0;

/// Degrees -> radians.
constexpr double deg2rad(double deg) { return deg * kPi / 180.0; }
/// Radians -> degrees.
constexpr double rad2deg(double rad) { return rad * 180.0 / kPi; }

/// Linear interpolation between \p a and \p b with weight \p t in [0,1].
constexpr double lerp(double a, double b, double t) { return a + (b - a) * t; }

/// Wrap an angle in radians into [0, 2*pi).
inline double wrap_two_pi(double a) {
    a = std::fmod(a, kTwoPi);
    return a < 0.0 ? a + kTwoPi : a;
}

/// Wrap an angle in radians into (-pi, pi].
inline double wrap_pi(double a) {
    a = wrap_two_pi(a);
    return a > kPi ? a - kTwoPi : a;
}

/// Smallest absolute angular difference |a-b| on the circle, in radians;
/// the result lies in [0, pi].
inline double angle_distance(double a, double b) {
    return std::abs(wrap_pi(a - b));
}

}  // namespace pvfp

#include "pvfp/util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "pvfp/util/error.hpp"

namespace pvfp {
namespace {

bool detect_avx2() {
#if defined(__x86_64__) || defined(__amd64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

bool detect_avx512() {
#if defined(__x86_64__) || defined(__amd64__) || defined(__i386__)
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512vl") != 0;
#else
    return false;
#endif
}

/// Resolve the default level from PVFP_SIMD and the CPU.  Explicit
/// requests are strict: "avx2"/"avx512" on a CPU without the level, or
/// an unrecognized value, throws instead of silently degrading — a CI
/// job that forces a level must fail loudly rather than test the wrong
/// kernels.
SimdLevel resolve_default() {
    const char* env = std::getenv("PVFP_SIMD");
    if (env == nullptr || std::strcmp(env, "auto") == 0) {
        if (cpu_supports_avx512()) return SimdLevel::Avx512;
        return cpu_supports_avx2() ? SimdLevel::Avx2 : SimdLevel::Scalar;
    }
    if (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "off") == 0 ||
        std::strcmp(env, "0") == 0)
        return SimdLevel::Scalar;
    if (std::strcmp(env, "avx2") == 0) {
        check_arg(cpu_supports_avx2(),
                  "PVFP_SIMD=avx2 requested but the CPU has no AVX2");
        return SimdLevel::Avx2;
    }
    if (std::strcmp(env, "avx512") == 0) {
        check_arg(cpu_supports_avx512(),
                  "PVFP_SIMD=avx512 requested but the CPU has no "
                  "AVX-512F/VL");
        return SimdLevel::Avx512;
    }
    throw InvalidArgument(std::string("PVFP_SIMD: unrecognized value \"") +
                          env + "\" (use scalar|avx2|avx512|auto)");
}

/// Current level, encoded as int so the hot-path read is one relaxed
/// atomic load; -1 = not yet resolved.
std::atomic<int> g_level{-1};

}  // namespace

bool cpu_supports_avx2() {
    static const bool supported = detect_avx2();
    return supported;
}

bool cpu_supports_avx512() {
    static const bool supported = detect_avx512();
    return supported;
}

SimdLevel simd_level() {
    int v = g_level.load(std::memory_order_relaxed);
    if (v < 0) {
        v = static_cast<int>(resolve_default());
        g_level.store(v, std::memory_order_relaxed);
    }
    return static_cast<SimdLevel>(v);
}

void set_simd_level(SimdLevel level) {
    check_arg(level != SimdLevel::Avx2 || cpu_supports_avx2(),
              "set_simd_level: AVX2 requested but not supported by this CPU");
    check_arg(level != SimdLevel::Avx512 || cpu_supports_avx512(),
              "set_simd_level: AVX-512 requested but not supported by this "
              "CPU");
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void set_simd_level_auto() {
    g_level.store(static_cast<int>(resolve_default()),
                  std::memory_order_relaxed);
}

const char* simd_level_name(SimdLevel level) {
    switch (level) {
        case SimdLevel::Avx512: return "avx512";
        case SimdLevel::Avx2: return "avx2";
        default: return "scalar";
    }
}

}  // namespace pvfp

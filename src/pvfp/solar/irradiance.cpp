#include "pvfp/solar/irradiance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "pvfp/solar/irradiance_kernels.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/parallel.hpp"
#include "pvfp/util/simd.hpp"

namespace pvfp::solar {
namespace {

/// Member-initializer guard: the artifact ctor reads its time grid from
/// the artifact, which must exist before any member touches it.
const pvfp::TimeGrid& sky_grid_checked(
    const std::shared_ptr<const SharedSkyArtifact>& sky) {
    check_arg(sky != nullptr, "IrradianceField: null sky artifact");
    return sky->grid;
}

}  // namespace

IrradianceField::IrradianceField(geo::HorizonMap horizon,
                                 std::vector<EnvSample> env,
                                 const pvfp::TimeGrid& grid, double tilt_rad,
                                 double azimuth_rad,
                                 const FieldConfig& config,
                                 geo::NormalMap normals)
    // Self-contained path: prepare a private sky artifact for this env
    // series and delegate.  One implementation of the per-step math —
    // the shared-sky batch path and this path produce the same bits.
    : IrradianceField(std::move(horizon),
                      make_shared_sky(config.location, grid, std::move(env),
                                      config.sky_model),
                      tilt_rad, azimuth_rad, config, std::move(normals)) {}

IrradianceField::IrradianceField(geo::HorizonMap horizon,
                                 std::shared_ptr<const SharedSkyArtifact> sky,
                                 double tilt_rad, double azimuth_rad,
                                 const FieldConfig& config,
                                 geo::NormalMap normals)
    : horizon_(std::move(horizon)), grid_(sky_grid_checked(sky)),
      tilt_rad_(tilt_rad), azimuth_rad_(azimuth_rad), config_(config),
      normals_(std::move(normals)) {
    check_arg(tilt_rad >= 0.0 && tilt_rad <= kPi / 2.0,
              "IrradianceField: tilt out of range");
    check_arg(config.thermal_k >= 0.0,
              "IrradianceField: thermal_k must be non-negative");
    // The precomputed sun positions and circumsolar split embed the
    // artifact's site and sky model; a mismatched FieldConfig would
    // silently compute a different physics than asked for.
    check_arg(config.location.latitude_deg == sky->location.latitude_deg &&
                  config.location.longitude_deg ==
                      sky->location.longitude_deg &&
                  config.location.timezone_hours ==
                      sky->location.timezone_hours,
              "IrradianceField: config.location != sky artifact location");
    check_arg(config.sky_model == sky->sky_model,
              "IrradianceField: config.sky_model != sky artifact model");
    has_normals_ = normals_.width() > 0;
    if (has_normals_) {
        check_arg(normals_.width() == horizon_.window_width() &&
                      normals_.height() == horizon_.window_height(),
                  "IrradianceField: normal map does not match the window");
    }
    // The batch kernels address horizon sector planes through int32
    // offsets; a window large enough to overflow them would not fit in
    // memory anyway, but fail loudly rather than wrap.
    check_arg(horizon_.cell_count() *
                      static_cast<long long>(horizon_.sectors()) <=
                  std::numeric_limits<std::int32_t>::max(),
              "IrradianceField: horizon map too large for batch kernels");

    // Uniform plane normal: leans toward the downslope azimuth.
    plane_e_ = std::sin(tilt_rad_) * std::sin(azimuth_rad_);
    plane_n_ = std::sin(tilt_rad_) * std::cos(azimuth_rad_);
    plane_u_ = std::cos(tilt_rad_);

    const std::size_t n = sky->env.size();
    beam_eq_.resize(n);
    sky_diffuse_.resize(n);
    reflected_.resize(n);
    temp_air_.resize(n);
    sun_azimuth_.resize(n);
    sun_elevation_.resize(n);
    sun_e_.resize(n);
    sun_n_.resize(n);
    sun_u_.resize(n);
    daylight_.resize(n);
    hor_off0_.resize(n);
    hor_off1_.resize(n);
    hor_frac_.resize(n);

    const int sectors = horizon_.sectors();
    const std::int32_t ncells =
        static_cast<std::int32_t>(horizon_.cell_count());
    const SharedSkyArtifact& a = *sky;

    // Per-roof finish: round the shared per-step precompute into the
    // float SoA planes and apply the only tilt-dependent transposition
    // factors (isotropic-sky and ground-reflected projections).  The
    // expensive per-step work — sun position, circumsolar split — was
    // done once in the artifact; this loop is two multiplies and a
    // handful of casts per step, chunked deterministically.
    parallel_for(0, grid_.total_steps(), 4096, [&](long sb, long se) {
    for (long s = sb; s < se; ++s) {
        const std::size_t si = static_cast<std::size_t>(s);
        const EnvSample& e = a.env[si];
        sun_azimuth_[si] = static_cast<float>(a.sun_azimuth[si]);
        sun_elevation_[si] = static_cast<float>(a.sun_elevation[si]);
        daylight_[si] = a.daylight[si];
        temp_air_[si] = static_cast<float>(e.temp_air_c);
        sun_e_[si] = static_cast<float>(a.sun_e[si]);
        sun_n_[si] = static_cast<float>(a.sun_n[si]);
        sun_u_[si] = static_cast<float>(a.sun_u[si]);

        float beam_eq_f = 0.0f;
        float sky_diffuse_f = 0.0f;
        float reflected_f = 0.0f;
        if (e.ghi > 0.0 || e.dhi > 0.0) {
            beam_eq_f = static_cast<float>(a.beam_eq[si]);
            // Isotropic sky share and ground-reflected term on the plane.
            sky_diffuse_f = static_cast<float>(
                a.dhi_iso[si] * (1.0 + std::cos(tilt_rad_)) / 2.0);
            reflected_f = static_cast<float>(
                e.ghi * config_.albedo * (1.0 - std::cos(tilt_rad_)) / 2.0);
        }
        beam_eq_[si] = beam_eq_f;
        sky_diffuse_[si] = sky_diffuse_f;
        reflected_[si] = reflected_f;

        // Horizon interpolation weights for this step's sun azimuth —
        // exactly the arithmetic of HorizonMap::horizon_at_unchecked, so
        // the batch kernels reproduce the scalar lookup bit for bit.
        const double pos =
            wrap_two_pi(static_cast<double>(sun_azimuth_[si])) / kTwoPi *
            sectors;
        const int s0 = static_cast<int>(pos) % sectors;
        const int s1 = (s0 + 1) % sectors;
        hor_off0_[si] = static_cast<std::int32_t>(s0) * ncells;
        hor_off1_[si] = static_cast<std::int32_t>(s1) * ncells;
        hor_frac_[si] = pos - std::floor(pos);
    }
    });

    // Daylight-packed twins: compact every per-step quantity the series
    // kernels touch over daylight steps only, in step order.  A stride-1
    // daylight sweep (the evaluator shards, suitability with
    // daylight_only sampling) then maps to a contiguous packed run and
    // runs unit-stride with no gathers — see
    // cell_irradiance_series_unchecked.  Pure bitwise copies; ~50% of
    // steps are daylight, so this costs about half a plane set of extra
    // memory (accounted in serve::ResidentState's budget).
    step_to_packed_.assign(n, -1);
    long nd = 0;
    for (std::size_t si = 0; si < n; ++si)
        if (daylight_[si] != 0) ++nd;
    p_beam_eq_.resize(static_cast<std::size_t>(nd));
    p_sky_diffuse_.resize(static_cast<std::size_t>(nd));
    p_reflected_.resize(static_cast<std::size_t>(nd));
    p_sun_elevation_.resize(static_cast<std::size_t>(nd));
    p_sun_e_.resize(static_cast<std::size_t>(nd));
    p_sun_n_.resize(static_cast<std::size_t>(nd));
    p_sun_u_.resize(static_cast<std::size_t>(nd));
    p_hor_off0_.resize(static_cast<std::size_t>(nd));
    p_hor_off1_.resize(static_cast<std::size_t>(nd));
    p_hor_frac_.resize(static_cast<std::size_t>(nd));
    packed_to_step_.reserve(static_cast<std::size_t>(nd));
    for (std::size_t si = 0; si < n; ++si) {
        if (daylight_[si] == 0) continue;
        const std::size_t p = packed_to_step_.size();
        step_to_packed_[si] = static_cast<long>(p);
        p_beam_eq_[p] = beam_eq_[si];
        p_sky_diffuse_[p] = sky_diffuse_[si];
        p_reflected_[p] = reflected_[si];
        p_sun_elevation_[p] = sun_elevation_[si];
        p_sun_e_[p] = sun_e_[si];
        p_sun_n_[p] = sun_n_[si];
        p_sun_u_[p] = sun_u_[si];
        p_hor_off0_[p] = hor_off0_[si];
        p_hor_off1_[p] = hor_off1_[si];
        p_hor_frac_[p] = hor_frac_[si];
        packed_to_step_.push_back(static_cast<long>(si));
    }
}

double IrradianceField::cell_irradiance(int x, int y, long s) const {
    check_step(s);
    check_arg(x >= 0 && x < width() && y >= 0 && y < height(),
              "IrradianceField: cell out of range");
    return cell_irradiance_unchecked(x, y, s);
}

double IrradianceField::cell_irradiance_unchecked(int x, int y,
                                                  long s) const {
    // Innermost scalar hot path (per cell per step): the iteration
    // domain is validated once at the public call-site boundary.
    assert(s >= 0 && s < static_cast<long>(daylight_.size()));
    const std::size_t si = static_cast<std::size_t>(s);
    double g = reflected_[si];
    g += horizon_.sky_view_factor_unchecked(x, y) * sky_diffuse_[si];
    if (beam_eq_[si] > 0.0f &&
        !horizon_.is_shaded_unchecked(x, y, sun_azimuth_[si],
                                      sun_elevation_[si])) {
        double cosi;
        if (has_normals_) {
            cosi = normals_.east(x, y) * sun_e_[si] +
                   normals_.north(x, y) * sun_n_[si] +
                   normals_.up(x, y) * sun_u_[si];
        } else {
            cosi = plane_e_ * sun_e_[si] + plane_n_ * sun_n_[si] +
                   plane_u_ * sun_u_[si];
        }
        if (cosi > 0.0) g += beam_eq_[si] * cosi;
    }
    return g;
}

detail::FieldView IrradianceField::view() const {
    detail::FieldView v;
    v.beam_eq = beam_eq_.data();
    v.sky_diffuse = sky_diffuse_.data();
    v.reflected = reflected_.data();
    v.sun_elevation = sun_elevation_.data();
    v.sun_e = sun_e_.data();
    v.sun_n = sun_n_.data();
    v.sun_u = sun_u_.data();
    v.hor_off0 = hor_off0_.data();
    v.hor_off1 = hor_off1_.data();
    v.hor_frac = hor_frac_.data();
    v.p_beam_eq = p_beam_eq_.data();
    v.p_sky_diffuse = p_sky_diffuse_.data();
    v.p_reflected = p_reflected_.data();
    v.p_sun_elevation = p_sun_elevation_.data();
    v.p_sun_e = p_sun_e_.data();
    v.p_sun_n = p_sun_n_.data();
    v.p_sun_u = p_sun_u_.data();
    v.p_hor_off0 = p_hor_off0_.data();
    v.p_hor_off1 = p_hor_off1_.data();
    v.p_hor_frac = p_hor_frac_.data();
    v.angles = horizon_.angles_data();
    v.svf = horizon_.svf_data();
    if (has_normals_) {
        v.norm_e = normals_.east.data().data();
        v.norm_n = normals_.north.data().data();
        v.norm_u = normals_.up.data().data();
    }
    v.plane_e = plane_e_;
    v.plane_n = plane_n_;
    v.plane_u = plane_u_;
    v.width = width();
    return v;
}

void IrradianceField::cell_irradiance_row(int y, long s, int x0, int x1,
                                          double* out) const {
    check_step(s);
    check_arg(y >= 0 && y < height() && x0 >= 0 && x0 <= x1 &&
                  x1 <= width(),
              "IrradianceField: row span out of range");
    if (x0 == x1) return;
    const detail::FieldView v = view();
    const SimdLevel lvl = simd_level();
    if (lvl == SimdLevel::Avx512 && detail::avx512_kernels_compiled())
        detail::cell_row_avx512(v, y, s, x0, x1, out);
    else if (lvl != SimdLevel::Scalar && detail::avx2_kernels_compiled())
        detail::cell_row_avx2(v, y, s, x0, x1, out);
    else
        detail::cell_row_scalar(v, y, s, x0, x1, out);
}

void IrradianceField::cell_irradiance_series(int x, int y,
                                             std::span<const long> steps,
                                             double* out) const {
    check_arg(x >= 0 && x < width() && y >= 0 && y < height(),
              "IrradianceField: cell out of range");
    const long n_steps = this->steps();
    for (const long s : steps)
        check_arg(s >= 0 && s < n_steps,
                  "IrradianceField: step out of range");
    cell_irradiance_series_unchecked(x, y, steps, out);
}

void IrradianceField::cell_irradiance_series_unchecked(
    int x, int y, std::span<const long> steps, double* out) const {
    assert(x >= 0 && x < width() && y >= 0 && y < height());
    if (steps.empty()) return;
    // Packed fast path: when the step span is a contiguous daylight run
    // (every daylight step between steps.front() and steps.back(), in
    // order — exactly what the stride-1 evaluator shards and
    // daylight-filtered suitability sampling produce), sweep the packed
    // planes unit-stride instead of gathering.  The O(n) detection scan
    // is a table walk, far cheaper than the gathers it replaces; any
    // mismatch (night step first, strides, scrambled order) falls back
    // to the gather kernel.
    const long p0 = step_to_packed_[static_cast<std::size_t>(steps[0])];
    if (p0 >= 0) {
        bool contiguous = true;
        for (std::size_t k = 1; k < steps.size(); ++k) {
            if (step_to_packed_[static_cast<std::size_t>(steps[k])] !=
                p0 + static_cast<long>(k)) {
                contiguous = false;
                break;
            }
        }
        if (contiguous) {
            cell_irradiance_packed_unchecked(
                x, y, p0, p0 + static_cast<long>(steps.size()), out);
            return;
        }
    }
    const detail::FieldView v = view();
    const SimdLevel lvl = simd_level();
    if (lvl == SimdLevel::Avx512 && detail::avx512_kernels_compiled())
        detail::cell_series_avx512(v, x, y, steps.data(), steps.size(),
                                   out);
    else if (lvl != SimdLevel::Scalar && detail::avx2_kernels_compiled())
        detail::cell_series_avx2(v, x, y, steps.data(), steps.size(), out);
    else
        detail::cell_series_scalar(v, x, y, steps.data(), steps.size(),
                                   out);
}

void IrradianceField::cell_irradiance_packed(int x, int y, long p0, long p1,
                                             double* out) const {
    check_arg(x >= 0 && x < width() && y >= 0 && y < height(),
              "IrradianceField: cell out of range");
    check_arg(p0 >= 0 && p0 <= p1 && p1 <= packed_steps(),
              "IrradianceField: packed range out of range");
    cell_irradiance_packed_unchecked(x, y, p0, p1, out);
}

void IrradianceField::cell_irradiance_packed_unchecked(int x, int y,
                                                       long p0, long p1,
                                                       double* out) const {
    assert(x >= 0 && x < width() && y >= 0 && y < height());
    assert(p0 >= 0 && p0 <= p1 && p1 <= packed_steps());
    if (p0 == p1) return;
    const detail::FieldView v = view();
    const SimdLevel lvl = simd_level();
    if (lvl == SimdLevel::Avx512 && detail::avx512_kernels_compiled())
        detail::cell_packed_avx512(v, x, y, p0, p1, out);
    else if (lvl != SimdLevel::Scalar && detail::avx2_kernels_compiled())
        detail::cell_packed_avx2(v, x, y, p0, p1, out);
    else
        detail::cell_packed_scalar(v, x, y, p0, p1, out);
}

double IrradianceField::cell_module_temperature(int x, int y, long s) const {
    return air_temperature(s) + config_.thermal_k * cell_irradiance(x, y, s);
}

double IrradianceField::plane_irradiance_unshaded(long s) const {
    check_step(s);
    const std::size_t si = static_cast<std::size_t>(s);
    const double cosi = plane_e_ * sun_e_[si] + plane_n_ * sun_n_[si] +
                        plane_u_ * sun_u_[si];
    return beam_eq_[si] * std::max(0.0, cosi) + sky_diffuse_[si] +
           reflected_[si];
}

double IrradianceField::unshaded_insolation_kwh_m2() const {
    double wh = 0.0;
    for (long s = 0; s < steps(); ++s)
        wh += plane_irradiance_unshaded(s) * grid_.step_hours();
    return wh / 1000.0;
}

}  // namespace pvfp::solar

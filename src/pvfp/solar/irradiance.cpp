#include "pvfp/solar/irradiance.hpp"

#include <algorithm>
#include <cmath>

#include "pvfp/util/error.hpp"
#include "pvfp/util/parallel.hpp"

namespace pvfp::solar {

IrradianceField::IrradianceField(geo::HorizonMap horizon,
                                 std::vector<EnvSample> env,
                                 const pvfp::TimeGrid& grid, double tilt_rad,
                                 double azimuth_rad,
                                 const FieldConfig& config,
                                 geo::NormalMap normals)
    : horizon_(std::move(horizon)), grid_(grid), tilt_rad_(tilt_rad),
      azimuth_rad_(azimuth_rad), config_(config),
      normals_(std::move(normals)) {
    check_arg(static_cast<long>(env.size()) == grid_.total_steps(),
              "IrradianceField: env series length != time grid steps");
    check_arg(tilt_rad >= 0.0 && tilt_rad <= kPi / 2.0,
              "IrradianceField: tilt out of range");
    check_arg(config.thermal_k >= 0.0,
              "IrradianceField: thermal_k must be non-negative");
    has_normals_ = normals_.width() > 0;
    if (has_normals_) {
        check_arg(normals_.width() == horizon_.window_width() &&
                      normals_.height() == horizon_.window_height(),
                  "IrradianceField: normal map does not match the window");
    }

    // Uniform plane normal: leans toward the downslope azimuth.
    plane_e_ = std::sin(tilt_rad_) * std::sin(azimuth_rad_);
    plane_n_ = std::sin(tilt_rad_) * std::cos(azimuth_rad_);
    plane_u_ = std::cos(tilt_rad_);

    // Per-step precompute (sun position + transposition for each of the
    // ~35,040 steps) parallelized over step chunks: each step writes only
    // its own steps_ slot, so the fixed chunk grid keeps the result
    // bitwise-identical at any thread count.
    steps_.resize(env.size());
    parallel_for(0, grid_.total_steps(), 512, [&](long sb, long se) {
    for (long s = sb; s < se; ++s) {
        const EnvSample& e = env[static_cast<std::size_t>(s)];
        check_arg(e.ghi >= 0.0 && e.dni >= 0.0 && e.dhi >= 0.0,
                  "IrradianceField: negative irradiance in env series");
        StepData d;
        const int doy = grid_.day_of_year(s);
        const double hour = grid_.hour_of_day(s);
        const SunPosition sun = sun_position(config_.location, doy, hour);
        d.sun_azimuth = static_cast<float>(sun.azimuth_rad);
        d.sun_elevation = static_cast<float>(sun.elevation_rad);
        d.daylight = sun.elevation_rad > 0.0;
        d.temp_air = static_cast<float>(e.temp_air_c);
        const double cos_el = std::cos(sun.elevation_rad);
        d.sun_e = static_cast<float>(cos_el * std::sin(sun.azimuth_rad));
        d.sun_n = static_cast<float>(cos_el * std::cos(sun.azimuth_rad));
        d.sun_u = static_cast<float>(std::sin(sun.elevation_rad));

        if (e.ghi > 0.0 || e.dhi > 0.0) {
            // Normal-equivalent beam magnitude: DNI plus, for Hay-Davies,
            // the circumsolar share of the diffuse (guarded near the
            // horizon exactly like the transposition model).
            double beam_eq = 0.0;
            if (d.daylight) {
                beam_eq = e.dni;
                if (config_.sky_model == SkyModel::HayDavies &&
                    e.dhi > 0.0) {
                    const double a = std::clamp(
                        e.dni / extraterrestrial_normal_irradiance(doy),
                        0.0, 1.0);
                    const double sin_el_guard =
                        std::max(std::sin(sun.elevation_rad), 0.01745);
                    beam_eq += e.dhi * a / sin_el_guard;
                }
            }
            d.beam_eq = static_cast<float>(beam_eq);

            // Isotropic sky share and ground-reflected term on the plane.
            double dhi_iso = e.dhi;
            if (config_.sky_model == SkyModel::HayDavies) {
                const double a = std::clamp(
                    e.dni / extraterrestrial_normal_irradiance(doy), 0.0,
                    1.0);
                dhi_iso = e.dhi * (1.0 - (d.daylight ? a : 0.0));
            }
            d.sky_diffuse = static_cast<float>(
                dhi_iso * (1.0 + std::cos(tilt_rad_)) / 2.0);
            d.reflected = static_cast<float>(
                e.ghi * config_.albedo * (1.0 - std::cos(tilt_rad_)) / 2.0);
        }
        steps_[static_cast<std::size_t>(s)] = d;
    }
    });
}

double IrradianceField::cell_irradiance(int x, int y, long s) const {
    check_arg(s >= 0 && s < static_cast<long>(steps_.size()),
              "IrradianceField: step out of range");
    check_arg(x >= 0 && x < width() && y >= 0 && y < height(),
              "IrradianceField: cell out of range");
    return cell_irradiance_unchecked(x, y, s);
}

double IrradianceField::cell_irradiance_unchecked(int x, int y,
                                                  long s) const {
    const StepData& d = step(s);
    double g = d.reflected;
    g += horizon_.sky_view_factor_unchecked(x, y) * d.sky_diffuse;
    if (d.beam_eq > 0.0f &&
        !horizon_.is_shaded_unchecked(x, y, d.sun_azimuth,
                                      d.sun_elevation)) {
        double cosi;
        if (has_normals_) {
            cosi = normals_.east(x, y) * d.sun_e +
                   normals_.north(x, y) * d.sun_n +
                   normals_.up(x, y) * d.sun_u;
        } else {
            cosi = plane_e_ * d.sun_e + plane_n_ * d.sun_n +
                   plane_u_ * d.sun_u;
        }
        if (cosi > 0.0) g += d.beam_eq * cosi;
    }
    return g;
}

double IrradianceField::cell_module_temperature(int x, int y, long s) const {
    return air_temperature(s) + config_.thermal_k * cell_irradiance(x, y, s);
}

double IrradianceField::plane_irradiance_unshaded(long s) const {
    const StepData& d = checked_step(s);
    const double cosi =
        plane_e_ * d.sun_e + plane_n_ * d.sun_n + plane_u_ * d.sun_u;
    return d.beam_eq * std::max(0.0, cosi) + d.sky_diffuse + d.reflected;
}

double IrradianceField::unshaded_insolation_kwh_m2() const {
    double wh = 0.0;
    for (long s = 0; s < steps(); ++s)
        wh += plane_irradiance_unshaded(s) * grid_.step_hours();
    return wh / 1000.0;
}

}  // namespace pvfp::solar

#include "pvfp/solar/sunpos.hpp"

#include <cmath>

#include "pvfp/util/error.hpp"

namespace pvfp::solar {
namespace {

/// Day angle Gamma [rad] (Spencer's independent variable).
double day_angle(int doy) {
    check_arg(doy >= 1 && doy <= 366, "day_angle: doy must be in [1,366]");
    return kTwoPi * (doy - 1) / 365.0;
}

}  // namespace

double solar_declination(int doy) {
    const double g = day_angle(doy);
    return 0.006918 - 0.399912 * std::cos(g) + 0.070257 * std::sin(g) -
           0.006758 * std::cos(2 * g) + 0.000907 * std::sin(2 * g) -
           0.002697 * std::cos(3 * g) + 0.00148 * std::sin(3 * g);
}

double equation_of_time_minutes(int doy) {
    const double g = day_angle(doy);
    return 229.18 * (0.000075 + 0.001868 * std::cos(g) -
                     0.032077 * std::sin(g) - 0.014615 * std::cos(2 * g) -
                     0.04089 * std::sin(2 * g));
}

double eccentricity_factor(int doy) {
    const double g = day_angle(doy);
    return 1.00011 + 0.034221 * std::cos(g) + 0.00128 * std::sin(g) +
           0.000719 * std::cos(2 * g) + 0.000077 * std::sin(2 * g);
}

double extraterrestrial_normal_irradiance(int doy) {
    return kSolarConstant * eccentricity_factor(doy);
}

double solar_time_hours(const Location& loc, int doy, double clock_hour) {
    // Longitude correction: 4 minutes per degree offset from the time-zone
    // meridian (15 deg per hour), plus the equation of time.
    const double tz_meridian = 15.0 * loc.timezone_hours;
    const double minutes = equation_of_time_minutes(doy) +
                           4.0 * (loc.longitude_deg - tz_meridian);
    return clock_hour + minutes / 60.0;
}

double hour_angle_rad(const Location& loc, int doy, double clock_hour) {
    const double t_solar = solar_time_hours(loc, doy, clock_hour);
    return deg2rad(15.0 * (t_solar - 12.0));
}

SunPosition sun_position(const Location& loc, int doy, double clock_hour) {
    const double phi = deg2rad(loc.latitude_deg);
    const double delta = solar_declination(doy);
    const double h = hour_angle_rad(loc, doy, clock_hour);

    // Sun unit vector in the local horizon frame (north, east, up).
    const double up = std::sin(phi) * std::sin(delta) +
                      std::cos(phi) * std::cos(delta) * std::cos(h);
    const double north = std::cos(phi) * std::sin(delta) -
                         std::sin(phi) * std::cos(delta) * std::cos(h);
    const double east = -std::cos(delta) * std::sin(h);

    SunPosition pos;
    pos.elevation_rad = std::asin(std::clamp(up, -1.0, 1.0));
    pos.azimuth_rad = wrap_two_pi(std::atan2(east, north));
    return pos;
}

SunPosition sun_position_acos(const Location& loc, int doy,
                              double clock_hour) {
    const double phi = deg2rad(loc.latitude_deg);
    const double delta = solar_declination(doy);
    const double h = hour_angle_rad(loc, doy, clock_hour);

    const double sin_el = std::sin(phi) * std::sin(delta) +
                          std::cos(phi) * std::cos(delta) * std::cos(h);
    const double el = std::asin(std::clamp(sin_el, -1.0, 1.0));

    SunPosition pos;
    pos.elevation_rad = el;
    const double cos_el = std::cos(el);
    if (std::abs(cos_el) < 1e-12) {
        pos.azimuth_rad = 0.0;  // sun at zenith: azimuth undefined
        return pos;
    }
    const double cos_az = std::clamp(
        (std::sin(delta) - sin_el * std::sin(phi)) / (cos_el * std::cos(phi)),
        -1.0, 1.0);
    const double az_from_north = std::acos(cos_az);  // in [0, pi]
    // Morning (h < 0): sun in the eastern half; afternoon: mirror west.
    pos.azimuth_rad =
        (h <= 0.0) ? az_from_north : kTwoPi - az_from_north;
    return pos;
}

double day_length_hours(const Location& loc, int doy) {
    const double phi = deg2rad(loc.latitude_deg);
    const double delta = solar_declination(doy);
    const double x = -std::tan(phi) * std::tan(delta);
    if (x <= -1.0) return 24.0;  // polar day
    if (x >= 1.0) return 0.0;    // polar night
    const double ws = std::acos(x);  // sunset hour angle
    return 2.0 * rad2deg(ws) / 15.0;
}

}  // namespace pvfp::solar

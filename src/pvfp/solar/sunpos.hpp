#pragma once
/// \file sunpos.hpp
/// Solar ephemeris: declination, equation of time, sun azimuth/elevation.
///
/// Accuracy target is the one relevant to rooftop shading at a 15-minute
/// resolution (paper Section IV): a fraction of a degree, met by Spencer's
/// Fourier fits (Spencer 1971, as tabulated in Iqbal, "An Introduction to
/// Solar Radiation").  Two independent trigonometric paths to the azimuth
/// are provided and cross-checked in the tests.

#include "pvfp/util/math.hpp"

namespace pvfp::solar {

/// Geographic location and clock convention of the input time stamps.
struct Location {
    double latitude_deg = 45.07;    ///< +N (default: Torino)
    double longitude_deg = 7.69;    ///< +E
    double timezone_hours = 1.0;    ///< local clock = UTC + this (CET)
};

/// Horizontal sun coordinates.
struct SunPosition {
    double azimuth_rad = 0.0;    ///< clockwise from North, [0, 2*pi)
    double elevation_rad = 0.0;  ///< above the horizon (negative = below)

    double zenith_rad() const { return kPi / 2.0 - elevation_rad; }
};

/// Solar declination [rad] for day-of-year \p doy in [1, 365] (Spencer).
double solar_declination(int doy);

/// Equation of time [minutes] for day-of-year \p doy (Spencer).
double equation_of_time_minutes(int doy);

/// Eccentricity correction factor E0 = (r0/r)^2 (Spencer); multiplies the
/// solar constant to give the extraterrestrial normal irradiance.
double eccentricity_factor(int doy);

/// Extraterrestrial normal irradiance [W/m^2] on day \p doy.
double extraterrestrial_normal_irradiance(int doy);

/// Apparent solar time [hours] given local clock hour and location.
double solar_time_hours(const Location& loc, int doy, double clock_hour);

/// Hour angle [rad] (0 at solar noon, negative in the morning).
double hour_angle_rad(const Location& loc, int doy, double clock_hour);

/// Sun position from latitude, declination and hour angle using the
/// vector (atan2) formulation.
SunPosition sun_position(const Location& loc, int doy, double clock_hour);

/// Alternate derivation of the same quantity through the acos-based
/// spherical-trig path; used as an independent cross-check in tests.
SunPosition sun_position_acos(const Location& loc, int doy,
                              double clock_hour);

/// Day length [hours] from the sunset hour angle.
double day_length_hours(const Location& loc, int doy);

}  // namespace pvfp::solar

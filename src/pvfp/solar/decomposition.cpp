#include "pvfp/solar/decomposition.hpp"

#include <algorithm>
#include <cmath>

#include "pvfp/util/error.hpp"

namespace pvfp::solar {

double clearness_index(double ghi, double elevation_rad, int doy) {
    check_arg(ghi >= 0.0, "clearness_index: negative GHI");
    if (elevation_rad <= 0.0) return 0.0;
    const double top =
        extraterrestrial_normal_irradiance(doy) * std::sin(elevation_rad);
    if (top <= 0.0) return 0.0;
    return std::clamp(ghi / top, 0.0, 1.25);
}

double erbs_diffuse_fraction(double kt) {
    check_arg(kt >= 0.0, "erbs_diffuse_fraction: negative kt");
    if (kt <= 0.22) return 1.0 - 0.09 * kt;
    if (kt <= 0.80) {
        const double kt2 = kt * kt;
        return 0.9511 - 0.1604 * kt + 4.388 * kt2 - 16.638 * kt2 * kt +
               12.336 * kt2 * kt2;
    }
    return 0.165;
}

double engerer2_diffuse_fraction(double kt, double zenith_rad,
                                 double apparent_solar_time_hours,
                                 double dktc, double kde) {
    // Engerer2 (2015) parameter set.  The logistic core keeps the fraction
    // in (C, 1); kde adds back cloud-enhancement diffuse.
    constexpr double kC = 4.2336e-2;
    constexpr double kB0 = -3.7912;
    constexpr double kB1 = 7.5479;
    constexpr double kB2 = -1.0036e-2;
    constexpr double kB3 = 3.1480e-3;
    constexpr double kB4 = -5.3146;
    constexpr double kB5 = 1.7073;
    const double z_deg = rad2deg(zenith_rad);
    const double logistic =
        1.0 / (1.0 + std::exp(kB0 + kB1 * kt + kB2 * apparent_solar_time_hours +
                              kB3 * z_deg + kB4 * dktc));
    const double f = kC + (1.0 - kC) * logistic + kB5 * kde;
    return std::clamp(f, 0.0, 1.0);
}

namespace {

Decomposition finalize(double ghi, double fraction, double elevation_rad,
                       int doy) {
    Decomposition out;
    out.dhi = fraction * ghi;
    const double sin_el = std::sin(elevation_rad);
    if (sin_el <= 1e-6) {
        out.dhi = ghi;  // all diffuse at grazing sun
        out.dni = 0.0;
        return out;
    }
    const double dni_raw = (ghi - out.dhi) / sin_el;
    const double dni_cap = extraterrestrial_normal_irradiance(doy);
    out.dni = std::clamp(dni_raw, 0.0, dni_cap);
    // Keep consistency GHI = DNI*sin(el) + DHI after capping.
    out.dhi = std::max(0.0, ghi - out.dni * sin_el);
    return out;
}

}  // namespace

Decomposition decompose_erbs(double ghi, double elevation_rad, int doy) {
    check_arg(ghi >= 0.0, "decompose_erbs: negative GHI");
    if (elevation_rad <= 0.0 || ghi == 0.0) return {};
    const double kt = clearness_index(ghi, elevation_rad, doy);
    return finalize(ghi, erbs_diffuse_fraction(kt), elevation_rad, doy);
}

Decomposition decompose_engerer2(double ghi, double ghi_clear,
                                 double elevation_rad, int doy,
                                 double apparent_solar_time_hours) {
    check_arg(ghi >= 0.0, "decompose_engerer2: negative GHI");
    check_arg(ghi_clear >= 0.0, "decompose_engerer2: negative clear-sky GHI");
    if (elevation_rad <= 0.0 || ghi == 0.0) return {};
    const double kt = clearness_index(ghi, elevation_rad, doy);
    const double ktc = clearness_index(ghi_clear, elevation_rad, doy);
    const double dktc = ktc - kt;
    // Cloud-enhancement proxy: excess of measured over clear-sky global.
    const double kde =
        (ghi_clear > 0.0) ? std::max(0.0, 1.0 - ghi_clear / ghi) : 0.0;
    const double zen = kPi / 2.0 - elevation_rad;
    const double f = engerer2_diffuse_fraction(
        kt, zen, apparent_solar_time_hours, dktc, kde);
    return finalize(ghi, f, elevation_rad, doy);
}

}  // namespace pvfp::solar

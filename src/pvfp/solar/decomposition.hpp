#pragma once
/// \file decomposition.hpp
/// Global-horizontal -> direct/diffuse decomposition models.
///
/// Paper Section IV: "If the weather station only provides global
/// horizontal radiation, incident radiation is derived through
/// state-of-the-art decomposition models [18]" ([18] = Engerer 2015).
/// Implemented here: the classic Erbs correlation (hourly heritage,
/// robust) and an Engerer2-style minute-resolution logistic model.

#include "pvfp/solar/sunpos.hpp"

namespace pvfp::solar {

/// Result of a decomposition: beam normal + diffuse horizontal.
struct Decomposition {
    double dni = 0.0;
    double dhi = 0.0;
};

/// Clearness index kt = GHI / (E0 * Gsc * sin(elevation)); clamped to
/// [0, 1.25] to tame sensor spikes near sunrise.  Returns 0 for sun at or
/// below the horizon.
double clearness_index(double ghi, double elevation_rad, int doy);

/// Erbs, Klein & Duffie (1982) diffuse fraction as a function of kt.
double erbs_diffuse_fraction(double kt);

/// Engerer2-style diffuse fraction (Engerer 2015, Solar Energy 116):
/// logistic in kt, apparent solar time, zenith and the clear-sky deviation
/// dktc = ktc - kt, plus the cloud-enhancement term kde.
/// Coefficients follow the published Engerer2 fit.
double engerer2_diffuse_fraction(double kt, double zenith_rad,
                                 double apparent_solar_time_hours,
                                 double dktc, double kde);

/// Decompose \p ghi at the given sun elevation using Erbs; DNI is bounded
/// by the extraterrestrial normal irradiance.
Decomposition decompose_erbs(double ghi, double elevation_rad, int doy);

/// Decompose using the Engerer2-style model.  \p ghi_clear is the
/// clear-sky GHI used for dktc/kde (pass 0 to degrade to kt-only).
Decomposition decompose_engerer2(double ghi, double ghi_clear,
                                 double elevation_rad, int doy,
                                 double apparent_solar_time_hours);

}  // namespace pvfp::solar

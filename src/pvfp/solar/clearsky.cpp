#include "pvfp/solar/clearsky.hpp"

#include <algorithm>
#include <cmath>

#include "pvfp/util/error.hpp"

namespace pvfp::solar {

double relative_air_mass(double elevation_rad, double altitude_m) {
    // Kasten & Young (1989) with station-pressure scaling.
    const double el_deg = rad2deg(elevation_rad);
    const double pressure_ratio = std::exp(-altitude_m / 8434.5);
    const double denom =
        std::sin(elevation_rad) +
        0.50572 * std::pow(el_deg + 6.07995, -1.6364);
    check_arg(denom > 0.0, "relative_air_mass: sun too far below horizon");
    return pressure_ratio / denom;
}

double rayleigh_optical_thickness(double air_mass) {
    check_arg(air_mass > 0.0, "rayleigh_optical_thickness: bad air mass");
    const double m = air_mass;
    if (m <= 20.0) {
        return 1.0 / (6.6296 + 1.7513 * m - 0.1202 * m * m +
                      0.0065 * m * m * m - 0.00013 * m * m * m * m);
    }
    return 1.0 / (10.4 + 0.718 * m);
}

ClearSky esra_clear_sky(double elevation_rad, int doy, double linke,
                        double altitude_m) {
    check_arg(linke > 0.0, "esra_clear_sky: Linke turbidity must be > 0");
    ClearSky out;
    if (elevation_rad <= 0.0) return out;

    const double i0 = extraterrestrial_normal_irradiance(doy);
    const double m = relative_air_mass(elevation_rad, altitude_m);
    const double dr = rayleigh_optical_thickness(m);

    // Beam (Rigollier et al. 2000, eq. for the beam transmittance).
    out.dni = i0 * std::exp(-0.8662 * linke * m * dr);

    // Diffuse: transmission at zenith Trd(TL) times the solar-elevation
    // function Fd(gamma_s, TL).
    const double tl = linke;
    const double trd =
        -1.5843e-2 + 3.0543e-2 * tl + 3.797e-4 * tl * tl;
    double a1 = 2.6463e-1 - 6.1581e-2 * tl + 3.1408e-3 * tl * tl;
    if (a1 * trd < 2.0e-3) a1 = 2.0e-3 / trd;
    const double a2 = 2.0402 + 1.8945e-2 * tl - 1.1161e-2 * tl * tl;
    const double a3 = -1.3025 + 3.9231e-2 * tl + 8.5079e-3 * tl * tl;
    const double s = std::sin(elevation_rad);
    const double fd = a1 + a2 * s + a3 * s * s;
    out.dhi = std::max(0.0, i0 * trd * fd);

    out.ghi = out.dni * s + out.dhi;
    return out;
}

LinkeTurbidity::LinkeTurbidity(const std::array<double, 12>& monthly)
    : monthly_(monthly) {
    for (double v : monthly_)
        check_arg(v > 0.0, "LinkeTurbidity: values must be positive");
}

LinkeTurbidity LinkeTurbidity::torino_profile() {
    // Po valley: winter fog/clear mix, hazy humid summers.  Values in the
    // band PVGIS reports for the area (TL ~ 2.5 winter to ~4 summer).
    return LinkeTurbidity({2.6, 2.8, 3.2, 3.5, 3.7, 3.9, 3.9, 3.8, 3.4, 3.0,
                           2.7, 2.5});
}

double LinkeTurbidity::at_day(int doy) const {
    check_arg(doy >= 1 && doy <= 366, "LinkeTurbidity::at_day: bad doy");
    // Interpolate between mid-month anchors (day 15 of each 30.42-day
    // nominal month), wrapping around the year end.
    const double month_len = 365.0 / 12.0;
    const double pos = (static_cast<double>(doy) - 1.0) / month_len - 0.5;
    const int m0 =
        static_cast<int>(std::floor(pos)) % 12;
    const int i0 = (m0 + 12) % 12;
    const int i1 = (i0 + 1) % 12;
    const double frac = pos - std::floor(pos);
    return lerp(monthly_[static_cast<std::size_t>(i0)],
                monthly_[static_cast<std::size_t>(i1)], frac);
}

}  // namespace pvfp::solar

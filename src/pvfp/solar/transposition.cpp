#include "pvfp/solar/transposition.hpp"

#include <algorithm>
#include <cmath>

#include "pvfp/util/error.hpp"

namespace pvfp::solar {

double cos_incidence(const SunPosition& sun, double tilt_rad,
                     double azimuth_rad) {
    // cos(theta) = cos(beta)*sin(el) + sin(beta)*cos(el)*cos(az_sun - az_surf)
    return std::cos(tilt_rad) * std::sin(sun.elevation_rad) +
           std::sin(tilt_rad) * std::cos(sun.elevation_rad) *
               std::cos(sun.azimuth_rad - azimuth_rad);
}

namespace {

void check_inputs(double dni, double dhi, double ghi, double tilt_rad,
                  double albedo) {
    check_arg(dni >= 0.0 && dhi >= 0.0 && ghi >= 0.0,
              "transposition: negative irradiance input");
    check_arg(tilt_rad >= 0.0 && tilt_rad <= kPi / 2.0,
              "transposition: tilt must be in [0, pi/2]");
    check_arg(albedo >= 0.0 && albedo <= 1.0,
              "transposition: albedo must be in [0,1]");
}

}  // namespace

TiltedIrradiance isotropic_tilted(double dni, double dhi, double ghi,
                                  const SunPosition& sun, double tilt_rad,
                                  double azimuth_rad, double albedo,
                                  int /*doy*/) {
    check_inputs(dni, dhi, ghi, tilt_rad, albedo);
    TiltedIrradiance out;
    if (sun.elevation_rad > 0.0) {
        const double cosi =
            std::max(0.0, cos_incidence(sun, tilt_rad, azimuth_rad));
        out.beam = dni * cosi;
    }
    out.sky_diffuse = dhi * (1.0 + std::cos(tilt_rad)) / 2.0;
    out.ground_reflected = ghi * albedo * (1.0 - std::cos(tilt_rad)) / 2.0;
    return out;
}

TiltedIrradiance hay_davies_tilted(double dni, double dhi, double ghi,
                                   const SunPosition& sun, double tilt_rad,
                                   double azimuth_rad, double albedo,
                                   int doy) {
    check_inputs(dni, dhi, ghi, tilt_rad, albedo);
    TiltedIrradiance out;
    out.ground_reflected = ghi * albedo * (1.0 - std::cos(tilt_rad)) / 2.0;

    const double sin_el = std::sin(sun.elevation_rad);
    if (sun.elevation_rad <= 0.0) {
        // Night: only isotropic diffuse (usually zero anyway).
        out.sky_diffuse = dhi * (1.0 + std::cos(tilt_rad)) / 2.0;
        return out;
    }

    const double cosi =
        std::max(0.0, cos_incidence(sun, tilt_rad, azimuth_rad));
    // Anisotropy index: fraction of diffuse treated as circumsolar.
    const double e0n = extraterrestrial_normal_irradiance(doy);
    const double a = std::clamp(dni / e0n, 0.0, 1.0);
    // Beam ratio Rb guarded near the horizon (standard practice caps the
    // low-sun blow-up).
    const double rb = cosi / std::max(sin_el, 0.01745);  // sin(1 deg)

    out.beam = dni * cosi + dhi * a * rb;
    out.sky_diffuse = dhi * (1.0 - a) * (1.0 + std::cos(tilt_rad)) / 2.0;
    return out;
}

TiltedIrradiance transpose(SkyModel model, double dni, double dhi, double ghi,
                           const SunPosition& sun, double tilt_rad,
                           double azimuth_rad, double albedo, int doy) {
    switch (model) {
        case SkyModel::Isotropic:
            return isotropic_tilted(dni, dhi, ghi, sun, tilt_rad, azimuth_rad,
                                    albedo, doy);
        case SkyModel::HayDavies:
            return hay_davies_tilted(dni, dhi, ghi, sun, tilt_rad,
                                     azimuth_rad, albedo, doy);
    }
    throw InvalidArgument("transpose: unknown sky model");
}

}  // namespace pvfp::solar

/// \file irradiance_avx2.cpp
/// Hand-written AVX2 twins of the scalar batch kernels.  Compiled with
/// per-function target("avx2") attributes so the library binary stays
/// portable; the functions are only ever called after runtime dispatch
/// (util/simd.hpp) has confirmed CPU support.
///
/// Bitwise contract: only _mm256 mul/add/sub/min-free elementwise ops —
/// never FMA — in exactly the association of the scalar kernels, and
/// the masked beam term is a bitwise AND against a full compare mask
/// (+0.0 where dark), which matches the scalar `? : 0.0`.  Per-cell
/// normal cosi stays in float lanes (the scalar path's float
/// arithmetic) and widens after, uniform-plane cosi runs in double
/// lanes, also matching.

#include "pvfp/solar/irradiance_kernels.hpp"

#if (defined(__x86_64__) || defined(__amd64__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define PVFP_AVX2_KERNELS 1
#include <immintrin.h>
#else
#define PVFP_AVX2_KERNELS 0
#endif

namespace pvfp::solar::detail {

bool avx2_kernels_compiled() { return PVFP_AVX2_KERNELS != 0; }

#if PVFP_AVX2_KERNELS

namespace {

__attribute__((target("avx2"))) inline __m256d load4_ps_pd(const float* p) {
    return _mm256_cvtps_pd(_mm_loadu_ps(p));
}

}  // namespace

__attribute__((target("avx2"))) void cell_row_avx2(const FieldView& f,
                                                   int y, long s, int x0,
                                                   int x1, double* out) {
    const std::size_t si = static_cast<std::size_t>(s);
    const int n = x1 - x0;
    const float elev_f = f.sun_elevation[si];
    const bool beam_on =
        f.beam_eq[si] > 0.0f && static_cast<double>(elev_f) > 0.0;

    const long ci0 = static_cast<long>(y) * f.width + x0;
    const float* svf = f.svf + ci0;
    const __m256d refl_v = _mm256_set1_pd(f.reflected[si]);
    const __m256d sky_v = _mm256_set1_pd(f.sky_diffuse[si]);

    const bool uniform = f.norm_e == nullptr;
    double cosi_u = 0.0;
    if (uniform) {
        cosi_u = f.plane_e * static_cast<double>(f.sun_e[si]) +
                 f.plane_n * static_cast<double>(f.sun_n[si]) +
                 f.plane_u * static_cast<double>(f.sun_u[si]);
    }

    int i = 0;
    if (!beam_on || (uniform && !(cosi_u > 0.0))) {
        // No beam contribution anywhere in the row: base term only.
        for (; i + 4 <= n; i += 4) {
            const __m256d base = _mm256_add_pd(
                refl_v, _mm256_mul_pd(load4_ps_pd(svf + i), sky_v));
            _mm256_storeu_pd(out + i, base);
        }
        for (; i < n; ++i)
            out[i] = static_cast<double>(f.reflected[si]) +
                     static_cast<double>(svf[i]) *
                         static_cast<double>(f.sky_diffuse[si]);
        return;
    }

    const __m256d beam_v = _mm256_set1_pd(f.beam_eq[si]);
    const __m256d elev_v = _mm256_set1_pd(elev_f);
    const __m256d frac_v = _mm256_set1_pd(f.hor_frac[si]);
    const float* a0p = f.angles + f.hor_off0[si] + ci0;
    const float* a1p = f.angles + f.hor_off1[si] + ci0;

    if (uniform) {
        const __m256d add_v = _mm256_mul_pd(beam_v, _mm256_set1_pd(cosi_u));
        for (; i + 4 <= n; i += 4) {
            const __m256d base = _mm256_add_pd(
                refl_v, _mm256_mul_pd(load4_ps_pd(svf + i), sky_v));
            const __m256d a0 = load4_ps_pd(a0p + i);
            const __m256d a1 = load4_ps_pd(a1p + i);
            const __m256d h = _mm256_add_pd(
                a0, _mm256_mul_pd(_mm256_sub_pd(a1, a0), frac_v));
            const __m256d lit = _mm256_cmp_pd(elev_v, h, _CMP_GE_OQ);
            _mm256_storeu_pd(
                out + i, _mm256_add_pd(base, _mm256_and_pd(lit, add_v)));
        }
    } else {
        const __m128 se_v = _mm_set1_ps(f.sun_e[si]);
        const __m128 sn_v = _mm_set1_ps(f.sun_n[si]);
        const __m128 su_v = _mm_set1_ps(f.sun_u[si]);
        const float* ne = f.norm_e + ci0;
        const float* nn = f.norm_n + ci0;
        const float* nu = f.norm_u + ci0;
        const __m256d zero = _mm256_setzero_pd();
        for (; i + 4 <= n; i += 4) {
            const __m256d base = _mm256_add_pd(
                refl_v, _mm256_mul_pd(load4_ps_pd(svf + i), sky_v));
            const __m256d a0 = load4_ps_pd(a0p + i);
            const __m256d a1 = load4_ps_pd(a1p + i);
            const __m256d h = _mm256_add_pd(
                a0, _mm256_mul_pd(_mm256_sub_pd(a1, a0), frac_v));
            // cosi in float lanes — the scalar path's float arithmetic —
            // widened only for the compare and the beam product.
            const __m128 cosi_ps = _mm_add_ps(
                _mm_add_ps(_mm_mul_ps(_mm_loadu_ps(ne + i), se_v),
                           _mm_mul_ps(_mm_loadu_ps(nn + i), sn_v)),
                _mm_mul_ps(_mm_loadu_ps(nu + i), su_v));
            const __m256d cosi = _mm256_cvtps_pd(cosi_ps);
            const __m256d lit = _mm256_and_pd(
                _mm256_cmp_pd(elev_v, h, _CMP_GE_OQ),
                _mm256_cmp_pd(cosi, zero, _CMP_GT_OQ));
            const __m256d add =
                _mm256_and_pd(lit, _mm256_mul_pd(beam_v, cosi));
            _mm256_storeu_pd(out + i, _mm256_add_pd(base, add));
        }
    }
    if (i < n) cell_row_scalar(f, y, s, x0 + i, x1, out + i);
}

__attribute__((target("avx2"))) void cell_series_avx2(
    const FieldView& f, int x, int y, const long* steps, std::size_t n,
    double* out) {
    const long ci = static_cast<long>(y) * f.width + x;
    const float* angles_cell = f.angles + ci;
    const __m256d svf_v = _mm256_set1_pd(f.svf[ci]);
    const __m256d zero = _mm256_setzero_pd();

    const bool uniform = f.norm_e == nullptr;
    __m128 ne_v{}, nn_v{}, nu_v{};
    __m256d pe_v{}, pn_v{}, pu_v{};
    if (uniform) {
        pe_v = _mm256_set1_pd(f.plane_e);
        pn_v = _mm256_set1_pd(f.plane_n);
        pu_v = _mm256_set1_pd(f.plane_u);
    } else {
        ne_v = _mm_set1_ps(f.norm_e[ci]);
        nn_v = _mm_set1_ps(f.norm_n[ci]);
        nu_v = _mm_set1_ps(f.norm_u[ci]);
    }

    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        const __m256i idx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(steps + k));
        const __m256d refl =
            _mm256_cvtps_pd(_mm256_i64gather_ps(f.reflected, idx, 4));
        const __m256d sky =
            _mm256_cvtps_pd(_mm256_i64gather_ps(f.sky_diffuse, idx, 4));
        const __m256d base =
            _mm256_add_pd(refl, _mm256_mul_pd(svf_v, sky));

        const __m256d beam =
            _mm256_cvtps_pd(_mm256_i64gather_ps(f.beam_eq, idx, 4));
        const __m256d elev =
            _mm256_cvtps_pd(_mm256_i64gather_ps(f.sun_elevation, idx, 4));
        const __m256d frac = _mm256_i64gather_pd(f.hor_frac, idx, 8);
        const __m128i off0 = _mm256_i64gather_epi32(
            reinterpret_cast<const int*>(f.hor_off0), idx, 4);
        const __m128i off1 = _mm256_i64gather_epi32(
            reinterpret_cast<const int*>(f.hor_off1), idx, 4);
        const __m256d a0 =
            _mm256_cvtps_pd(_mm_i32gather_ps(angles_cell, off0, 4));
        const __m256d a1 =
            _mm256_cvtps_pd(_mm_i32gather_ps(angles_cell, off1, 4));
        const __m256d h = _mm256_add_pd(
            a0, _mm256_mul_pd(_mm256_sub_pd(a1, a0), frac));

        const __m128 se_ps = _mm256_i64gather_ps(f.sun_e, idx, 4);
        const __m128 sn_ps = _mm256_i64gather_ps(f.sun_n, idx, 4);
        const __m128 su_ps = _mm256_i64gather_ps(f.sun_u, idx, 4);
        __m256d cosi;
        if (uniform) {
            cosi = _mm256_add_pd(
                _mm256_add_pd(
                    _mm256_mul_pd(pe_v, _mm256_cvtps_pd(se_ps)),
                    _mm256_mul_pd(pn_v, _mm256_cvtps_pd(sn_ps))),
                _mm256_mul_pd(pu_v, _mm256_cvtps_pd(su_ps)));
        } else {
            const __m128 cosi_ps = _mm_add_ps(
                _mm_add_ps(_mm_mul_ps(ne_v, se_ps),
                           _mm_mul_ps(nn_v, sn_ps)),
                _mm_mul_ps(nu_v, su_ps));
            cosi = _mm256_cvtps_pd(cosi_ps);
        }

        const __m256d lit = _mm256_and_pd(
            _mm256_and_pd(_mm256_cmp_pd(beam, zero, _CMP_GT_OQ),
                          _mm256_cmp_pd(elev, zero, _CMP_GT_OQ)),
            _mm256_and_pd(_mm256_cmp_pd(elev, h, _CMP_GE_OQ),
                          _mm256_cmp_pd(cosi, zero, _CMP_GT_OQ)));
        const __m256d add = _mm256_and_pd(lit, _mm256_mul_pd(beam, cosi));
        _mm256_storeu_pd(out + k, _mm256_add_pd(base, add));
    }
    if (k < n) cell_series_scalar(f, x, y, steps + k, n - k, out + k);
}

__attribute__((target("avx2"))) void cell_packed_avx2(const FieldView& f,
                                                      int x, int y, long p0,
                                                      long p1, double* out) {
    // Unit-stride twin of cell_series_avx2 over the daylight-packed
    // planes: every gather becomes a contiguous load (the horizon
    // angle lookups stay gathers — they index the per-cell angle
    // planes by sector offset, which varies per step).
    const long ci = static_cast<long>(y) * f.width + x;
    const float* angles_cell = f.angles + ci;
    const __m256d svf_v = _mm256_set1_pd(f.svf[ci]);
    const __m256d zero = _mm256_setzero_pd();
    const std::size_t n = static_cast<std::size_t>(p1 - p0);
    const float* beam_p = f.p_beam_eq + p0;
    const float* sky_p = f.p_sky_diffuse + p0;
    const float* refl_p = f.p_reflected + p0;
    const float* elev_p = f.p_sun_elevation + p0;
    const float* se_p = f.p_sun_e + p0;
    const float* sn_p = f.p_sun_n + p0;
    const float* su_p = f.p_sun_u + p0;
    const std::int32_t* off0_p = f.p_hor_off0 + p0;
    const std::int32_t* off1_p = f.p_hor_off1 + p0;
    const double* frac_p = f.p_hor_frac + p0;

    const bool uniform = f.norm_e == nullptr;
    __m128 ne_v{}, nn_v{}, nu_v{};
    __m256d pe_v{}, pn_v{}, pu_v{};
    if (uniform) {
        pe_v = _mm256_set1_pd(f.plane_e);
        pn_v = _mm256_set1_pd(f.plane_n);
        pu_v = _mm256_set1_pd(f.plane_u);
    } else {
        ne_v = _mm_set1_ps(f.norm_e[ci]);
        nn_v = _mm_set1_ps(f.norm_n[ci]);
        nu_v = _mm_set1_ps(f.norm_u[ci]);
    }

    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        const __m256d refl = load4_ps_pd(refl_p + k);
        const __m256d sky = load4_ps_pd(sky_p + k);
        const __m256d base =
            _mm256_add_pd(refl, _mm256_mul_pd(svf_v, sky));

        const __m256d beam = load4_ps_pd(beam_p + k);
        const __m256d elev = load4_ps_pd(elev_p + k);
        const __m256d frac = _mm256_loadu_pd(frac_p + k);
        const __m128i off0 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(off0_p + k));
        const __m128i off1 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(off1_p + k));
        const __m256d a0 =
            _mm256_cvtps_pd(_mm_i32gather_ps(angles_cell, off0, 4));
        const __m256d a1 =
            _mm256_cvtps_pd(_mm_i32gather_ps(angles_cell, off1, 4));
        const __m256d h = _mm256_add_pd(
            a0, _mm256_mul_pd(_mm256_sub_pd(a1, a0), frac));

        const __m128 se_ps = _mm_loadu_ps(se_p + k);
        const __m128 sn_ps = _mm_loadu_ps(sn_p + k);
        const __m128 su_ps = _mm_loadu_ps(su_p + k);
        __m256d cosi;
        if (uniform) {
            cosi = _mm256_add_pd(
                _mm256_add_pd(
                    _mm256_mul_pd(pe_v, _mm256_cvtps_pd(se_ps)),
                    _mm256_mul_pd(pn_v, _mm256_cvtps_pd(sn_ps))),
                _mm256_mul_pd(pu_v, _mm256_cvtps_pd(su_ps)));
        } else {
            const __m128 cosi_ps = _mm_add_ps(
                _mm_add_ps(_mm_mul_ps(ne_v, se_ps),
                           _mm_mul_ps(nn_v, sn_ps)),
                _mm_mul_ps(nu_v, su_ps));
            cosi = _mm256_cvtps_pd(cosi_ps);
        }

        const __m256d lit = _mm256_and_pd(
            _mm256_and_pd(_mm256_cmp_pd(beam, zero, _CMP_GT_OQ),
                          _mm256_cmp_pd(elev, zero, _CMP_GT_OQ)),
            _mm256_and_pd(_mm256_cmp_pd(elev, h, _CMP_GE_OQ),
                          _mm256_cmp_pd(cosi, zero, _CMP_GT_OQ)));
        const __m256d add = _mm256_and_pd(lit, _mm256_mul_pd(beam, cosi));
        _mm256_storeu_pd(out + k, _mm256_add_pd(base, add));
    }
    if (k < n) cell_packed_scalar(f, x, y, p0 + static_cast<long>(k), p1,
                                  out + k);
}

#else  // !PVFP_AVX2_KERNELS

void cell_row_avx2(const FieldView& f, int y, long s, int x0, int x1,
                   double* out) {
    cell_row_scalar(f, y, s, x0, x1, out);
}

void cell_series_avx2(const FieldView& f, int x, int y, const long* steps,
                      std::size_t n, double* out) {
    cell_series_scalar(f, x, y, steps, n, out);
}

void cell_packed_avx2(const FieldView& f, int x, int y, long p0, long p1,
                      double* out) {
    cell_packed_scalar(f, x, y, p0, p1, out);
}

#endif  // PVFP_AVX2_KERNELS

}  // namespace pvfp::solar::detail

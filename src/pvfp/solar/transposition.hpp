#pragma once
/// \file transposition.hpp
/// Transposition of horizontal irradiance components onto the tilted roof
/// plane ("incident global radiation" in paper Section IV, via [17]).
///
/// Two sky models are provided: isotropic (Liu-Jordan) and Hay-Davies
/// (anisotropic with a circumsolar fraction).  Each returns the components
/// separately so the shadow engine can attenuate beam+circumsolar with the
/// binary sun-visibility bit and the isotropic part with the sky-view
/// factor of the cell.

#include "pvfp/solar/sunpos.hpp"

namespace pvfp::solar {

/// Cosine of the angle of incidence of the sun on a plane with the given
/// tilt (from horizontal) and azimuth (downslope direction, clockwise from
/// North).  Negative values mean the sun is behind the plane.
double cos_incidence(const SunPosition& sun, double tilt_rad,
                     double azimuth_rad);

/// Irradiance on the tilted plane, split by shading behaviour.
struct TiltedIrradiance {
    /// Beam component (plus circumsolar diffuse for Hay-Davies): blocked
    /// when the cell is shaded from the sun.
    double beam = 0.0;
    /// Isotropic sky diffuse: attenuated by the cell's sky-view factor.
    double sky_diffuse = 0.0;
    /// Ground-reflected component (albedo).
    double ground_reflected = 0.0;

    double total() const { return beam + sky_diffuse + ground_reflected; }
};

/// Sky-model selector used by the irradiance field.
enum class SkyModel {
    Isotropic,
    HayDavies,
};

/// Liu-Jordan isotropic transposition.
TiltedIrradiance isotropic_tilted(double dni, double dhi, double ghi,
                                  const SunPosition& sun, double tilt_rad,
                                  double azimuth_rad, double albedo, int doy);

/// Hay-Davies transposition: anisotropy index A = DNI/E0n routes part of
/// the diffuse into the circumsolar (beam-like) component.
TiltedIrradiance hay_davies_tilted(double dni, double dhi, double ghi,
                                   const SunPosition& sun, double tilt_rad,
                                   double azimuth_rad, double albedo,
                                   int doy);

/// Dispatch on \p model.
TiltedIrradiance transpose(SkyModel model, double dni, double dhi, double ghi,
                           const SunPosition& sun, double tilt_rad,
                           double azimuth_rad, double albedo, int doy);

}  // namespace pvfp::solar

#pragma once
/// \file sky_kernels.hpp
/// Internal elementwise kernels of the batched sky precompute
/// (prepare_sky_artifact).
///
/// The per-step sky prepare splits into scalar-libm passes (the
/// trigonometry: hour-angle cos/sin, asin/atan2 of the sun vector —
/// libm is not vectorizable under the bitwise contract) and two pure
/// elementwise passes that are, implemented here with scalar/AVX2/
/// AVX-512 twins dispatched at runtime like the irradiance kernels:
///
///  - the *geometry* pass: sun-vector components from the per-day
///    ephemeris constants and the per-step hour-angle cos/sin;
///  - the *transposition* pass: normal-equivalent beam magnitude and
///    isotropic diffuse share from the env series.
///
/// Bitwise contract: every twin computes the same IEEE operations in
/// the same association as prepare_sky_artifact_reference's inline
/// expressions (no FMA — the build sets -ffp-contract=off), and the
/// branch structure is replicated with masks whose selected values
/// match the scalar branches exactly, so the artifact is
/// bitwise-identical at every SIMD level.
/// tests/solar/test_sky_artifact pins this against the reference
/// implementation across latitudes and sky models.

#include <cstddef>
#include <cstdint>

namespace pvfp::solar::detail {

/// Per-day ephemeris constants hoisted out of the step loop.  The
/// reference computes, per step,
///   up    = sin(phi)*sin(delta) + (cos(phi)*cos(delta))*cos(h)
///   north = cos(phi)*sin(delta) - (sin(phi)*cos(delta))*cos(h)
///   east  = (-cos(delta))*sin(h)
/// where phi (latitude) is constant and delta (declination) only
/// changes per day — so the four products and -cos(delta) hoist with
/// unchanged association, leaving one mul+add per component per step.
struct DayGeometry {
    double a;              ///< sin(phi) * sin(delta)
    double b;              ///< cos(phi) * cos(delta)
    double c;              ///< cos(phi) * sin(delta)
    double d;              ///< sin(phi) * cos(delta)
    double neg_cos_delta;  ///< -cos(delta)
};

/// Geometry pass over one same-day run of \p n steps: from the
/// hour-angle cos/sin, produce the sun vector's up component clamped
/// to [-1, 1] (ready for asin), and the unnormalized north/east
/// components (ready for atan2).
void sky_geometry_scalar(const double* cos_h, const double* sin_h,
                         std::size_t n, const DayGeometry& day,
                         double* up_clamped, double* north, double* east);
void sky_geometry_avx2(const double* cos_h, const double* sin_h,
                       std::size_t n, const DayGeometry& day,
                       double* up_clamped, double* north, double* east);
void sky_geometry_avx512(const double* cos_h, const double* sin_h,
                         std::size_t n, const DayGeometry& day,
                         double* up_clamped, double* north, double* east);
/// Runtime-dispatched entry (pvfp::simd_level()).
void sky_geometry(const double* cos_h, const double* sin_h, std::size_t n,
                  const DayGeometry& day, double* up_clamped, double* north,
                  double* east);

/// Transposition pass over one same-day run of \p n steps: the
/// reference's per-step beam_eq / dhi_iso computation —
///   no input (ghi<=0 && dhi<=0):        beam_eq = dhi_iso = 0
///   a = hay ? clamp(dni/eo, 0, 1) : 0
///   beam_eq = daylight ? dni + [dhi>0 && hay] (dhi*a)/max(sin_el, 0.01745)
///                      : 0
///   dhi_iso = hay ? dhi * (1 - (daylight ? a : 0)) : dhi
/// with \p eo the day's extraterrestrial normal irradiance and
/// \p daylight the per-step flag bytes.
void sky_transposition_scalar(const double* ghi, const double* dni,
                              const double* dhi, const double* sin_el,
                              const std::uint8_t* daylight, std::size_t n,
                              double eo, bool hay, double* beam_eq,
                              double* dhi_iso);
void sky_transposition_avx2(const double* ghi, const double* dni,
                            const double* dhi, const double* sin_el,
                            const std::uint8_t* daylight, std::size_t n,
                            double eo, bool hay, double* beam_eq,
                            double* dhi_iso);
void sky_transposition_avx512(const double* ghi, const double* dni,
                              const double* dhi, const double* sin_el,
                              const std::uint8_t* daylight, std::size_t n,
                              double eo, bool hay, double* beam_eq,
                              double* dhi_iso);
/// Runtime-dispatched entry (pvfp::simd_level()).
void sky_transposition(const double* ghi, const double* dni,
                       const double* dhi, const double* sin_el,
                       const std::uint8_t* daylight, std::size_t n,
                       double eo, bool hay, double* beam_eq,
                       double* dhi_iso);

}  // namespace pvfp::solar::detail

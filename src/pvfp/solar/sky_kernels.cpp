/// \file sky_kernels.cpp
/// Elementwise kernels of the batched sky precompute: scalar reference
/// loops plus hand-written AVX2/AVX-512 twins (per-function target
/// attributes — the binary stays portable; runtime dispatch only
/// routes to a twin after CPU detection).  See sky_kernels.hpp for the
/// bitwise contract; the mask algebra below leans on the operands
/// being non-negative (validated env, clamped a, guarded divisor), so
/// an AND against a full compare mask or a masked add of +0.0
/// reproduces the scalar branches bit for bit.

#include "pvfp/solar/sky_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "pvfp/solar/irradiance_kernels.hpp"
#include "pvfp/util/simd.hpp"

#if (defined(__x86_64__) || defined(__amd64__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define PVFP_SKY_SIMD 1
#include <immintrin.h>
#else
#define PVFP_SKY_SIMD 0
#endif

namespace pvfp::solar::detail {

void sky_geometry_scalar(const double* cos_h, const double* sin_h,
                         std::size_t n, const DayGeometry& day,
                         double* up_clamped, double* north, double* east) {
    for (std::size_t i = 0; i < n; ++i) {
        const double up = day.a + day.b * cos_h[i];
        up_clamped[i] = std::clamp(up, -1.0, 1.0);
        north[i] = day.c - day.d * cos_h[i];
        east[i] = day.neg_cos_delta * sin_h[i];
    }
}

void sky_transposition_scalar(const double* ghi, const double* dni,
                              const double* dhi, const double* sin_el,
                              const std::uint8_t* daylight, std::size_t n,
                              double eo, bool hay, double* beam_eq,
                              double* dhi_iso) {
    for (std::size_t i = 0; i < n; ++i) {
        if (!(ghi[i] > 0.0 || dhi[i] > 0.0)) {
            beam_eq[i] = 0.0;
            dhi_iso[i] = 0.0;
            continue;
        }
        double a = 0.0;
        if (hay) a = std::clamp(dni[i] / eo, 0.0, 1.0);
        double be = 0.0;
        if (daylight[i] != 0) {
            be = dni[i];
            if (hay && dhi[i] > 0.0) {
                const double guard = std::max(sin_el[i], 0.01745);
                be += dhi[i] * a / guard;
            }
        }
        beam_eq[i] = be;
        dhi_iso[i] =
            hay ? dhi[i] * (1.0 - (daylight[i] != 0 ? a : 0.0)) : dhi[i];
    }
}

void sky_geometry(const double* cos_h, const double* sin_h, std::size_t n,
                  const DayGeometry& day, double* up_clamped, double* north,
                  double* east) {
    const SimdLevel lvl = simd_level();
    if (lvl == SimdLevel::Avx512 && avx512_kernels_compiled())
        sky_geometry_avx512(cos_h, sin_h, n, day, up_clamped, north, east);
    else if (lvl != SimdLevel::Scalar && avx2_kernels_compiled())
        sky_geometry_avx2(cos_h, sin_h, n, day, up_clamped, north, east);
    else
        sky_geometry_scalar(cos_h, sin_h, n, day, up_clamped, north, east);
}

void sky_transposition(const double* ghi, const double* dni,
                       const double* dhi, const double* sin_el,
                       const std::uint8_t* daylight, std::size_t n,
                       double eo, bool hay, double* beam_eq,
                       double* dhi_iso) {
    const SimdLevel lvl = simd_level();
    if (lvl == SimdLevel::Avx512 && avx512_kernels_compiled())
        sky_transposition_avx512(ghi, dni, dhi, sin_el, daylight, n, eo,
                                 hay, beam_eq, dhi_iso);
    else if (lvl != SimdLevel::Scalar && avx2_kernels_compiled())
        sky_transposition_avx2(ghi, dni, dhi, sin_el, daylight, n, eo, hay,
                               beam_eq, dhi_iso);
    else
        sky_transposition_scalar(ghi, dni, dhi, sin_el, daylight, n, eo,
                                 hay, beam_eq, dhi_iso);
}

#if PVFP_SKY_SIMD

__attribute__((target("avx2"))) void sky_geometry_avx2(
    const double* cos_h, const double* sin_h, std::size_t n,
    const DayGeometry& day, double* up_clamped, double* north,
    double* east) {
    const __m256d a_v = _mm256_set1_pd(day.a);
    const __m256d b_v = _mm256_set1_pd(day.b);
    const __m256d c_v = _mm256_set1_pd(day.c);
    const __m256d d_v = _mm256_set1_pd(day.d);
    const __m256d ncd_v = _mm256_set1_pd(day.neg_cos_delta);
    const __m256d lo = _mm256_set1_pd(-1.0);
    const __m256d hi = _mm256_set1_pd(1.0);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d ch = _mm256_loadu_pd(cos_h + i);
        const __m256d sh = _mm256_loadu_pd(sin_h + i);
        const __m256d up = _mm256_add_pd(a_v, _mm256_mul_pd(b_v, ch));
        _mm256_storeu_pd(up_clamped + i,
                         _mm256_min_pd(_mm256_max_pd(up, lo), hi));
        _mm256_storeu_pd(north + i,
                         _mm256_sub_pd(c_v, _mm256_mul_pd(d_v, ch)));
        _mm256_storeu_pd(east + i, _mm256_mul_pd(ncd_v, sh));
    }
    if (i < n)
        sky_geometry_scalar(cos_h + i, sin_h + i, n - i, day,
                            up_clamped + i, north + i, east + i);
}

__attribute__((target("avx2"))) void sky_transposition_avx2(
    const double* ghi, const double* dni, const double* dhi,
    const double* sin_el, const std::uint8_t* daylight, std::size_t n,
    double eo, bool hay, double* beam_eq, double* dhi_iso) {
    const __m256d zero = _mm256_setzero_pd();
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d eo_v = _mm256_set1_pd(eo);
    const __m256d guard_floor = _mm256_set1_pd(0.01745);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d ghi_v = _mm256_loadu_pd(ghi + i);
        const __m256d dni_v = _mm256_loadu_pd(dni + i);
        const __m256d dhi_v = _mm256_loadu_pd(dhi + i);
        const __m256d m_in =
            _mm256_or_pd(_mm256_cmp_pd(ghi_v, zero, _CMP_GT_OQ),
                         _mm256_cmp_pd(dhi_v, zero, _CMP_GT_OQ));
        const __m256d m_day = _mm256_castsi256_pd(_mm256_setr_epi64x(
            daylight[i] != 0 ? -1 : 0, daylight[i + 1] != 0 ? -1 : 0,
            daylight[i + 2] != 0 ? -1 : 0, daylight[i + 3] != 0 ? -1 : 0));

        __m256d be;
        __m256d iso;
        if (hay) {
            const __m256d a = _mm256_min_pd(
                _mm256_max_pd(_mm256_div_pd(dni_v, eo_v), zero), one);
            const __m256d guard =
                _mm256_max_pd(_mm256_loadu_pd(sin_el + i), guard_floor);
            const __m256d circ =
                _mm256_div_pd(_mm256_mul_pd(dhi_v, a), guard);
            const __m256d m_dhi = _mm256_cmp_pd(dhi_v, zero, _CMP_GT_OQ);
            // dni + masked +0.0 when dhi is off: bitwise no-op for the
            // non-negative dni, matching the scalar skipped `+=`.
            be = _mm256_add_pd(dni_v, _mm256_and_pd(m_dhi, circ));
            const __m256d a_day = _mm256_and_pd(m_day, a);
            iso = _mm256_mul_pd(dhi_v, _mm256_sub_pd(one, a_day));
        } else {
            be = dni_v;
            iso = dhi_v;
        }
        be = _mm256_and_pd(_mm256_and_pd(m_day, m_in), be);
        iso = _mm256_and_pd(m_in, iso);
        _mm256_storeu_pd(beam_eq + i, be);
        _mm256_storeu_pd(dhi_iso + i, iso);
    }
    if (i < n)
        sky_transposition_scalar(ghi + i, dni + i, dhi + i, sin_el + i,
                                 daylight + i, n - i, eo, hay, beam_eq + i,
                                 dhi_iso + i);
}

namespace {

/// Mask with the low min(rem, 8) bits set.
inline __mmask8 sky_tail_mask(std::size_t rem) {
    return rem >= 8 ? static_cast<__mmask8>(0xFF)
                    : static_cast<__mmask8>((1u << rem) - 1u);
}

/// Daylight flag bytes to a lane mask (byte loads stay scalar: the
/// kernels only gate on avx512f+vl, not the BW subset masked byte
/// loads would need).
inline __mmask8 daylight_mask(const std::uint8_t* daylight,
                              std::size_t rem) {
    unsigned m = 0;
    const std::size_t take = rem < 8 ? rem : 8;
    for (std::size_t j = 0; j < take; ++j)
        if (daylight[j] != 0) m |= 1u << j;
    return static_cast<__mmask8>(m);
}

}  // namespace

__attribute__((target("avx512f,avx512vl"))) void sky_geometry_avx512(
    const double* cos_h, const double* sin_h, std::size_t n,
    const DayGeometry& day, double* up_clamped, double* north,
    double* east) {
    const __m512d a_v = _mm512_set1_pd(day.a);
    const __m512d b_v = _mm512_set1_pd(day.b);
    const __m512d c_v = _mm512_set1_pd(day.c);
    const __m512d d_v = _mm512_set1_pd(day.d);
    const __m512d ncd_v = _mm512_set1_pd(day.neg_cos_delta);
    const __m512d lo = _mm512_set1_pd(-1.0);
    const __m512d hi = _mm512_set1_pd(1.0);
    for (std::size_t i = 0; i < n; i += 8) {
        const __mmask8 m = sky_tail_mask(n - i);
        const __m512d ch = _mm512_maskz_loadu_pd(m, cos_h + i);
        const __m512d sh = _mm512_maskz_loadu_pd(m, sin_h + i);
        const __m512d up = _mm512_add_pd(a_v, _mm512_mul_pd(b_v, ch));
        _mm512_mask_storeu_pd(up_clamped + i, m,
                              _mm512_min_pd(_mm512_max_pd(up, lo), hi));
        _mm512_mask_storeu_pd(
            north + i, m, _mm512_sub_pd(c_v, _mm512_mul_pd(d_v, ch)));
        _mm512_mask_storeu_pd(east + i, m, _mm512_mul_pd(ncd_v, sh));
    }
}

__attribute__((target("avx512f,avx512vl"))) void sky_transposition_avx512(
    const double* ghi, const double* dni, const double* dhi,
    const double* sin_el, const std::uint8_t* daylight, std::size_t n,
    double eo, bool hay, double* beam_eq, double* dhi_iso) {
    const __m512d zero = _mm512_setzero_pd();
    const __m512d one = _mm512_set1_pd(1.0);
    const __m512d eo_v = _mm512_set1_pd(eo);
    const __m512d guard_floor = _mm512_set1_pd(0.01745);
    for (std::size_t i = 0; i < n; i += 8) {
        const __mmask8 m = sky_tail_mask(n - i);
        const __m512d ghi_v = _mm512_maskz_loadu_pd(m, ghi + i);
        const __m512d dni_v = _mm512_maskz_loadu_pd(m, dni + i);
        const __m512d dhi_v = _mm512_maskz_loadu_pd(m, dhi + i);
        const __mmask8 m_in = static_cast<__mmask8>(
            _mm512_cmp_pd_mask(ghi_v, zero, _CMP_GT_OQ) |
            _mm512_cmp_pd_mask(dhi_v, zero, _CMP_GT_OQ));
        const __mmask8 m_day = daylight_mask(daylight + i, n - i);

        __m512d be;
        __m512d iso;
        if (hay) {
            const __m512d a = _mm512_min_pd(
                _mm512_max_pd(_mm512_div_pd(dni_v, eo_v), zero), one);
            const __m512d guard = _mm512_max_pd(
                _mm512_maskz_loadu_pd(m, sin_el + i), guard_floor);
            const __m512d circ =
                _mm512_div_pd(_mm512_mul_pd(dhi_v, a), guard);
            const __mmask8 m_dhi =
                _mm512_cmp_pd_mask(dhi_v, zero, _CMP_GT_OQ);
            be = _mm512_mask_add_pd(dni_v, m_dhi, dni_v, circ);
            const __m512d a_day = _mm512_maskz_mov_pd(m_day, a);
            iso = _mm512_mul_pd(dhi_v, _mm512_sub_pd(one, a_day));
        } else {
            be = dni_v;
            iso = dhi_v;
        }
        be = _mm512_maskz_mov_pd(static_cast<__mmask8>(m_day & m_in), be);
        iso = _mm512_maskz_mov_pd(m_in, iso);
        _mm512_mask_storeu_pd(beam_eq + i, m, be);
        _mm512_mask_storeu_pd(dhi_iso + i, m, iso);
    }
}

#else  // !PVFP_SKY_SIMD

void sky_geometry_avx2(const double* cos_h, const double* sin_h,
                       std::size_t n, const DayGeometry& day,
                       double* up_clamped, double* north, double* east) {
    sky_geometry_scalar(cos_h, sin_h, n, day, up_clamped, north, east);
}

void sky_geometry_avx512(const double* cos_h, const double* sin_h,
                         std::size_t n, const DayGeometry& day,
                         double* up_clamped, double* north, double* east) {
    sky_geometry_scalar(cos_h, sin_h, n, day, up_clamped, north, east);
}

void sky_transposition_avx2(const double* ghi, const double* dni,
                            const double* dhi, const double* sin_el,
                            const std::uint8_t* daylight, std::size_t n,
                            double eo, bool hay, double* beam_eq,
                            double* dhi_iso) {
    sky_transposition_scalar(ghi, dni, dhi, sin_el, daylight, n, eo, hay,
                             beam_eq, dhi_iso);
}

void sky_transposition_avx512(const double* ghi, const double* dni,
                              const double* dhi, const double* sin_el,
                              const std::uint8_t* daylight, std::size_t n,
                              double eo, bool hay, double* beam_eq,
                              double* dhi_iso) {
    sky_transposition_scalar(ghi, dni, dhi, sin_el, daylight, n, eo, hay,
                             beam_eq, dhi_iso);
}

#endif  // PVFP_SKY_SIMD

}  // namespace pvfp::solar::detail

#pragma once
/// \file irradiance.hpp
/// The spatio-temporal irradiance/temperature field G[i,j,t], T[i,j,t] of
/// paper Section III-A, evaluated lazily.
///
/// Storing the full matrices for ~12,000 cells x 35,040 steps would take
/// gigabytes; instead the field factorizes exactly the way the physics
/// does:
///
///   G(cell, t) = visible(cell, t) * beam_plane(t)
///              + svf(cell) * sky_diffuse_plane(t)
///              + ground_reflected_plane(t)
///
/// where the three plane terms depend only on t (one transposition per
/// step, the roof plane is uniform) and the two cell factors come from the
/// horizon map (O(1) per query).  Module temperature follows the paper's
/// Tact = Tair + k*G with k = alpha/h_c (Section III-B1, [12][13]).
///
/// Per-step state is stored as structure-of-arrays planes (one
/// contiguous array per physical quantity) and the horizon interpolation
/// weights (sector pair + fraction, fixed per step) are precomputed, so
/// the two batched entry points — cell_irradiance_row (fixed step, span
/// of cells) and cell_irradiance_series (fixed cell, span of steps) —
/// run as branch-free SIMD-friendly loops.  Both are *bitwise identical*
/// to the scalar cell_irradiance_unchecked per cell, at any SIMD level
/// (see util/simd.hpp for the dispatch contract).
///
/// The per-step planes additionally carry *daylight-packed* twins: the
/// same quantities compacted over daylight steps only, in step order.
/// cell_irradiance_series detects contiguous daylight runs (the default
/// stride-1 sweeps of the evaluator and suitability) and sweeps the
/// packed planes unit-stride — no gathers, no night lanes — via
/// cell_irradiance_packed; packed_to_step()/packed_index() map between
/// the two step domains.

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pvfp/geo/horizon.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/solar/sky_artifact.hpp"
#include "pvfp/solar/sunpos.hpp"
#include "pvfp/solar/transposition.hpp"
#include "pvfp/util/timegrid.hpp"

namespace pvfp::solar {

/// Static configuration of the field.
struct FieldConfig {
    Location location;
    SkyModel sky_model = SkyModel::HayDavies;
    /// Ground albedo for the reflected component.
    double albedo = 0.2;
    /// Temperature coupling k = alpha/h_c [K m^2 / W]: Tact = Tair + k*G.
    /// Default alpha=0.5, h_c=15 W/(K m^2) -> 1/30, i.e. +33 K at STC
    /// irradiance, consistent with NOCT-class modules (paper Sec III-B1).
    double thermal_k = 1.0 / 30.0;
};

namespace detail {

/// Raw pointer view of the field's SoA planes, consumed by the scalar
/// and AVX2 batch kernels (irradiance_kernels.hpp).  Pointers stay valid
/// for the lifetime of the owning IrradianceField.
struct FieldView {
    // Step-indexed planes (one entry per time step).
    const float* beam_eq = nullptr;
    const float* sky_diffuse = nullptr;
    const float* reflected = nullptr;
    const float* sun_elevation = nullptr;
    const float* sun_e = nullptr;
    const float* sun_n = nullptr;
    const float* sun_u = nullptr;
    /// Horizon interpolation per step: angle-plane offsets of the two
    /// sectors bracketing the sun azimuth (already multiplied by the
    /// cell count) and the interpolation fraction.
    const std::int32_t* hor_off0 = nullptr;
    const std::int32_t* hor_off1 = nullptr;
    const double* hor_frac = nullptr;
    // Daylight-packed step planes: the same per-step quantities
    // compacted over daylight steps only, in step order, so stride-1
    // daylight sweeps read them unit-stride with no gathers and no
    // night lanes.  Values are bitwise copies of the step planes above
    // (the packed kernels recompute nothing).
    const float* p_beam_eq = nullptr;
    const float* p_sky_diffuse = nullptr;
    const float* p_reflected = nullptr;
    const float* p_sun_elevation = nullptr;
    const float* p_sun_e = nullptr;
    const float* p_sun_n = nullptr;
    const float* p_sun_u = nullptr;
    const std::int32_t* p_hor_off0 = nullptr;
    const std::int32_t* p_hor_off1 = nullptr;
    const double* p_hor_frac = nullptr;
    // Cell-indexed planes (row-major over the window).
    const float* angles = nullptr;  ///< sector-major horizon planes
    const float* svf = nullptr;
    const float* norm_e = nullptr;  ///< nullptr => uniform plane normal
    const float* norm_n = nullptr;
    const float* norm_u = nullptr;
    // Uniform plane normal (east, north, up).
    double plane_e = 0.0;
    double plane_n = 0.0;
    double plane_u = 1.0;
    int width = 0;  ///< window width: row stride of the cell planes
};

}  // namespace detail

/// Lazily-evaluated per-cell irradiance and module temperature over a
/// placement-area window (the HorizonMap's window).
class IrradianceField {
public:
    /// \p horizon: per-cell horizons for the placement window (moved in).
    /// \p env: one sample per TimeGrid step (size must match).
    /// \p tilt_rad / \p azimuth_rad: roof plane orientation.
    /// \p normals: optional per-cell surface normals (same window); when
    /// empty, every cell uses the uniform plane normal.  Per-cell normals
    /// make the beam term respond to DSM surface structure — the
    /// fine-grain G variance of the paper's Fig. 6(b).
    IrradianceField(geo::HorizonMap horizon, std::vector<EnvSample> env,
                    const pvfp::TimeGrid& grid, double tilt_rad,
                    double azimuth_rad, const FieldConfig& config = {},
                    geo::NormalMap normals = {});

    /// Shared-sky constructor (ROADMAP "shared-weather batching"): build
    /// from a SharedSkyArtifact prepared once per batch instead of a
    /// private env series.  The time grid comes from the artifact;
    /// \p config.location and \p config.sky_model must match the
    /// artifact's exactly (checked), since the precomputed sun positions
    /// and circumsolar split embed them.  Bitwise identical to the
    /// self-contained constructor above for the same inputs — that
    /// constructor now delegates here.
    IrradianceField(geo::HorizonMap horizon,
                    std::shared_ptr<const SharedSkyArtifact> sky,
                    double tilt_rad, double azimuth_rad,
                    const FieldConfig& config = {},
                    geo::NormalMap normals = {});

    int width() const { return horizon_.window_width(); }
    int height() const { return horizon_.window_height(); }
    long steps() const { return grid_.total_steps(); }
    const pvfp::TimeGrid& time_grid() const { return grid_; }
    const FieldConfig& config() const { return config_; }
    double tilt_rad() const { return tilt_rad_; }
    double azimuth_rad() const { return azimuth_rad_; }
    const geo::HorizonMap& horizon() const { return horizon_; }

    /// True when the sun is above the horizon at step \p s.
    bool is_daylight(long s) const {
        check_step(s);
        return daylight_[static_cast<std::size_t>(s)] != 0;
    }

    /// Number of daylight steps — the length of the packed step planes.
    long packed_steps() const {
        return static_cast<long>(packed_to_step_.size());
    }

    /// Original step index of packed index \p p (ascending in p).
    std::span<const long> packed_to_step() const { return packed_to_step_; }

    /// Packed index of step \p s, or -1 when \p s is a night step.
    long packed_index(long s) const {
        check_step(s);
        return step_to_packed_[static_cast<std::size_t>(s)];
    }

    /// Sun position at step \p s.
    SunPosition sun(long s) const {
        check_step(s);
        return SunPosition{sun_azimuth_[static_cast<std::size_t>(s)],
                           sun_elevation_[static_cast<std::size_t>(s)]};
    }

    /// Ambient air temperature [deg C] at step \p s.
    double air_temperature(long s) const {
        check_step(s);
        return temp_air_[static_cast<std::size_t>(s)];
    }

    /// Plane-of-array irradiance [W/m^2] at cell (x,y) (window-local
    /// coordinates) and step \p s, including shading.  Validates the
    /// cell and step (throws InvalidArgument).
    double cell_irradiance(int x, int y, long s) const;

    /// Unchecked fast path of cell_irradiance for inner loops that have
    /// already validated their iteration domain once at the boundary
    /// (evaluator, suitability).  Precondition (debug-asserted): cell
    /// inside the window and 0 <= s < steps().
    double cell_irradiance_unchecked(int x, int y, long s) const;

    /// Batched row kernel: out[i] = cell_irradiance of cell (x0+i, y) at
    /// step \p s for i in [0, x1-x0).  Bitwise identical to calling
    /// cell_irradiance_unchecked per cell, at any SIMD level; validates
    /// the row, span, and step once (throws InvalidArgument).  This is
    /// the fixed-step hot path of compute_suitability, the Fig. 6 maps,
    /// and the footprint modes of anchor_irradiance_unchecked.
    void cell_irradiance_row(int y, long s, int x0, int x1,
                             double* out) const;

    /// Batched series kernel: out[k] = cell_irradiance of cell (x, y) at
    /// steps[k].  Bitwise identical to the scalar loop at any SIMD
    /// level; validates the cell and every step once (throws
    /// InvalidArgument).  This is the fixed-cell hot path of the
    /// IncrementalEvaluator's per-anchor series build.
    void cell_irradiance_series(int x, int y, std::span<const long> steps,
                                double* out) const;

    /// Unchecked fast path of cell_irradiance_series for callers that
    /// validated the cell and step span once at their own boundary
    /// (anchor_irradiance_series sweeping a footprint, suitability's
    /// per-cell sweep over one prevalidated sampled axis).
    /// Preconditions (debug-asserted): cell inside the window, every
    /// steps[k] in [0, steps()).
    void cell_irradiance_series_unchecked(int x, int y,
                                          std::span<const long> steps,
                                          double* out) const;

    /// Packed series kernel: out[k] = cell_irradiance of cell (x, y) at
    /// step packed_to_step()[p0 + k] for k in [0, p1 - p0) — the
    /// gather-free unit-stride sweep over daylight steps.  Bitwise
    /// identical to cell_irradiance_series on the corresponding original
    /// steps at any SIMD level.  cell_irradiance_series_unchecked calls
    /// this automatically when its step span is a contiguous daylight
    /// run (the stride-1 evaluator/suitability sweeps), so callers only
    /// need it when they already think in packed indices.  Validates the
    /// cell and packed range (throws InvalidArgument).
    void cell_irradiance_packed(int x, int y, long p0, long p1,
                                double* out) const;

    /// Unchecked fast path of cell_irradiance_packed.  Preconditions
    /// (debug-asserted): cell inside the window,
    /// 0 <= p0 <= p1 <= packed_steps().
    void cell_irradiance_packed_unchecked(int x, int y, long p0, long p1,
                                          double* out) const;

    /// Module temperature [deg C] at the cell: Tair + k * G.
    double cell_module_temperature(int x, int y, long s) const;

    /// Unshaded plane-of-array irradiance at step \p s (diagnostics: what a
    /// horizon-free cell with SVF=1 would receive).
    double plane_irradiance_unshaded(long s) const;

    /// Yearly unshaded plane-of-array insolation [kWh/m^2] (diagnostics).
    double unshaded_insolation_kwh_m2() const;

    /// Raw SoA plane view consumed by the batched kernels
    /// (irradiance_kernels.hpp).  Internal surface, exposed for the
    /// kernel micro-benchmarks and differential tests; pointers are
    /// invalidated by destroying the field.
    detail::FieldView view() const;

private:
    /// Validating step guard backing the public per-step methods.
    void check_step(long s) const {
        check_arg(s >= 0 && s < static_cast<long>(daylight_.size()),
                  "IrradianceField: step out of range");
    }

    geo::HorizonMap horizon_;
    pvfp::TimeGrid grid_;
    double tilt_rad_;
    double azimuth_rad_;
    FieldConfig config_;
    geo::NormalMap normals_;  ///< empty => uniform plane normal
    bool has_normals_ = false;
    /// Uniform plane normal (east, north, up).
    double plane_e_ = 0.0;
    double plane_n_ = 0.0;
    double plane_u_ = 1.0;

    // Per-step SoA planes (formerly one array-of-structs).  beam_eq is
    // the beam(+circumsolar) normal-equivalent magnitude [W/m^2]: a
    // cell's plane-of-array beam is beam_eq * max(0, n_cell . s).
    std::vector<float> beam_eq_;
    std::vector<float> sky_diffuse_;  ///< isotropic sky diffuse, in plane
    std::vector<float> reflected_;    ///< ground-reflected, in plane
    std::vector<float> temp_air_;
    std::vector<float> sun_azimuth_;
    std::vector<float> sun_elevation_;
    /// Sun unit vector (east, north, up).
    std::vector<float> sun_e_;
    std::vector<float> sun_n_;
    std::vector<float> sun_u_;
    std::vector<std::uint8_t> daylight_;
    /// Precomputed horizon interpolation per step: the batch kernels
    /// look up angles[hor_off{0,1}[s] + cell] and lerp with hor_frac[s];
    /// values replicate HorizonMap::horizon_at_unchecked bit for bit.
    std::vector<std::int32_t> hor_off0_;
    std::vector<std::int32_t> hor_off1_;
    std::vector<double> hor_frac_;
    /// Daylight-packed twins of the step planes above (bitwise copies,
    /// daylight steps only, in step order) plus the index maps between
    /// the two domains.  step_to_packed_ is -1 on night steps.
    std::vector<float> p_beam_eq_;
    std::vector<float> p_sky_diffuse_;
    std::vector<float> p_reflected_;
    std::vector<float> p_sun_elevation_;
    std::vector<float> p_sun_e_;
    std::vector<float> p_sun_n_;
    std::vector<float> p_sun_u_;
    std::vector<std::int32_t> p_hor_off0_;
    std::vector<std::int32_t> p_hor_off1_;
    std::vector<double> p_hor_frac_;
    std::vector<long> packed_to_step_;
    std::vector<long> step_to_packed_;
};

}  // namespace pvfp::solar

#pragma once
/// \file irradiance.hpp
/// The spatio-temporal irradiance/temperature field G[i,j,t], T[i,j,t] of
/// paper Section III-A, evaluated lazily.
///
/// Storing the full matrices for ~12,000 cells x 35,040 steps would take
/// gigabytes; instead the field factorizes exactly the way the physics
/// does:
///
///   G(cell, t) = visible(cell, t) * beam_plane(t)
///              + svf(cell) * sky_diffuse_plane(t)
///              + ground_reflected_plane(t)
///
/// where the three plane terms depend only on t (one transposition per
/// step, the roof plane is uniform) and the two cell factors come from the
/// horizon map (O(1) per query).  Module temperature follows the paper's
/// Tact = Tair + k*G with k = alpha/h_c (Section III-B1, [12][13]).

#include <cassert>
#include <vector>

#include "pvfp/geo/horizon.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/solar/sunpos.hpp"
#include "pvfp/solar/transposition.hpp"
#include "pvfp/util/timegrid.hpp"

namespace pvfp::solar {

/// One time step of weather on the horizontal plane, as produced by the
/// weather substrate (synthetic generator or station CSV import).
struct EnvSample {
    double ghi = 0.0;         ///< global horizontal irradiance [W/m^2]
    double dni = 0.0;         ///< beam normal irradiance [W/m^2]
    double dhi = 0.0;         ///< diffuse horizontal irradiance [W/m^2]
    double temp_air_c = 20.0; ///< ambient air temperature [deg C]
};

/// Static configuration of the field.
struct FieldConfig {
    Location location;
    SkyModel sky_model = SkyModel::HayDavies;
    /// Ground albedo for the reflected component.
    double albedo = 0.2;
    /// Temperature coupling k = alpha/h_c [K m^2 / W]: Tact = Tair + k*G.
    /// Default alpha=0.5, h_c=15 W/(K m^2) -> 1/30, i.e. +33 K at STC
    /// irradiance, consistent with NOCT-class modules (paper Sec III-B1).
    double thermal_k = 1.0 / 30.0;
};

/// Lazily-evaluated per-cell irradiance and module temperature over a
/// placement-area window (the HorizonMap's window).
class IrradianceField {
public:
    /// \p horizon: per-cell horizons for the placement window (moved in).
    /// \p env: one sample per TimeGrid step (size must match).
    /// \p tilt_rad / \p azimuth_rad: roof plane orientation.
    /// \p normals: optional per-cell surface normals (same window); when
    /// empty, every cell uses the uniform plane normal.  Per-cell normals
    /// make the beam term respond to DSM surface structure — the
    /// fine-grain G variance of the paper's Fig. 6(b).
    IrradianceField(geo::HorizonMap horizon, std::vector<EnvSample> env,
                    const pvfp::TimeGrid& grid, double tilt_rad,
                    double azimuth_rad, const FieldConfig& config = {},
                    geo::NormalMap normals = {});

    int width() const { return horizon_.window_width(); }
    int height() const { return horizon_.window_height(); }
    long steps() const { return grid_.total_steps(); }
    const pvfp::TimeGrid& time_grid() const { return grid_; }
    const FieldConfig& config() const { return config_; }
    double tilt_rad() const { return tilt_rad_; }
    double azimuth_rad() const { return azimuth_rad_; }
    const geo::HorizonMap& horizon() const { return horizon_; }

    /// True when the sun is above the horizon at step \p s.
    bool is_daylight(long s) const { return checked_step(s).daylight; }

    /// Sun position at step \p s.
    SunPosition sun(long s) const {
        const StepData& d = checked_step(s);
        return SunPosition{d.sun_azimuth, d.sun_elevation};
    }

    /// Ambient air temperature [deg C] at step \p s.
    double air_temperature(long s) const {
        return checked_step(s).temp_air;
    }

    /// Plane-of-array irradiance [W/m^2] at cell (x,y) (window-local
    /// coordinates) and step \p s, including shading.  Validates the
    /// cell and step (throws InvalidArgument).
    double cell_irradiance(int x, int y, long s) const;

    /// Unchecked fast path of cell_irradiance for inner loops that have
    /// already validated their iteration domain once at the boundary
    /// (evaluator, suitability).  Precondition (debug-asserted): cell
    /// inside the window and 0 <= s < steps().
    double cell_irradiance_unchecked(int x, int y, long s) const;

    /// Module temperature [deg C] at the cell: Tair + k * G.
    double cell_module_temperature(int x, int y, long s) const;

    /// Unshaded plane-of-array irradiance at step \p s (diagnostics: what a
    /// horizon-free cell with SVF=1 would receive).
    double plane_irradiance_unshaded(long s) const;

    /// Yearly unshaded plane-of-array insolation [kWh/m^2] (diagnostics).
    double unshaded_insolation_kwh_m2() const;

private:
    struct StepData {
        /// Beam(+circumsolar) normal-equivalent magnitude [W/m^2]; the
        /// cell's plane-of-array beam is beam_eq * max(0, n_cell . s).
        float beam_eq = 0.0f;
        float sky_diffuse = 0.0f;    ///< isotropic sky diffuse on the plane
        float reflected = 0.0f;      ///< ground-reflected on the plane
        float temp_air = 0.0f;
        float sun_azimuth = 0.0f;
        float sun_elevation = 0.0f;
        /// Sun unit vector (east, north, up).
        float sun_e = 0.0f;
        float sun_n = 0.0f;
        float sun_u = 0.0f;
        bool daylight = false;
    };

    const StepData& step(long s) const {
        // Innermost hot path (per cell per step): the step range is
        // validated once at the public call-site boundary; keep only a
        // debug assert here.
        assert(s >= 0 && s < static_cast<long>(steps_.size()));
        return steps_[static_cast<std::size_t>(s)];
    }

    /// Validating accessor backing the public per-step methods.
    const StepData& checked_step(long s) const {
        check_arg(s >= 0 && s < static_cast<long>(steps_.size()),
                  "IrradianceField: step out of range");
        return steps_[static_cast<std::size_t>(s)];
    }

    geo::HorizonMap horizon_;
    pvfp::TimeGrid grid_;
    double tilt_rad_;
    double azimuth_rad_;
    FieldConfig config_;
    geo::NormalMap normals_;  ///< empty => uniform plane normal
    bool has_normals_ = false;
    /// Uniform plane normal (east, north, up).
    double plane_e_ = 0.0;
    double plane_n_ = 0.0;
    double plane_u_ = 1.0;
    std::vector<StepData> steps_;
};

}  // namespace pvfp::solar

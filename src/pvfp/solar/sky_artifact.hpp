#pragma once
/// \file sky_artifact.hpp
/// The shared per-batch sky precompute (ROADMAP "shared-weather
/// batching").
///
/// Everything the irradiance field derives *per time step* from the
/// weather trace and the site — sun position, the sun unit vector, the
/// normal-equivalent beam magnitude and the isotropic share of the
/// diffuse — depends only on (location, time grid, env series, sky
/// model).  None of it depends on the roof.  A batch of thousands of
/// roofs at one site therefore pays that ~35k-step trigonometry exactly
/// once by preparing a SharedSkyArtifact up front and handing it
/// (immutably, by shared_ptr) to every IrradianceField it builds; the
/// per-roof remainder is two tilt-dependent multiplies per step.
///
/// The artifact path is *bitwise identical* to the self-contained
/// IrradianceField constructor: the per-step arithmetic here is the same
/// double-precision expression sequence that constructor used to run
/// inline, and the field casts to its float SoA planes exactly as
/// before.  The self-contained constructor now simply prepares a private
/// artifact and delegates, so there is one implementation to trust.

#include <cstdint>
#include <memory>
#include <vector>

#include "pvfp/solar/sunpos.hpp"
#include "pvfp/solar/transposition.hpp"
#include "pvfp/util/timegrid.hpp"

namespace pvfp::solar {

/// One time step of weather on the horizontal plane, as produced by the
/// weather substrate (synthetic generator or station CSV import).
struct EnvSample {
    double ghi = 0.0;         ///< global horizontal irradiance [W/m^2]
    double dni = 0.0;         ///< beam normal irradiance [W/m^2]
    double dhi = 0.0;         ///< diffuse horizontal irradiance [W/m^2]
    double temp_air_c = 20.0; ///< ambient air temperature [deg C]
};

/// Roof-independent per-step sky state: env series, sun positions, and
/// the transposition terms that do not involve the roof plane.  Prepared
/// once per (location, grid, env, sky model) and consumed immutably by
/// any number of IrradianceFields.
struct SharedSkyArtifact {
    Location location;
    pvfp::TimeGrid grid{};
    SkyModel sky_model = SkyModel::HayDavies;
    /// The validated env series (one sample per grid step).
    std::vector<EnvSample> env;

    // Per-step precompute, all full precision (the field rounds to its
    // float planes exactly like the inline path did).
    std::vector<double> sun_azimuth;    ///< [rad], clockwise from North
    std::vector<double> sun_elevation;  ///< [rad]
    std::vector<std::uint8_t> daylight; ///< sun above horizon
    /// Sun unit vector (east, north, up).
    std::vector<double> sun_e;
    std::vector<double> sun_n;
    std::vector<double> sun_u;
    /// Normal-equivalent beam magnitude [W/m^2]: DNI plus, under
    /// Hay-Davies, the circumsolar share of the diffuse (horizon-guarded
    /// exactly like the transposition model).
    std::vector<double> beam_eq;
    /// Isotropic share of DHI [W/m^2] (DHI minus the circumsolar share
    /// under Hay-Davies; DHI itself under the isotropic model).  The
    /// per-roof in-plane sky diffuse is dhi_iso * (1 + cos(tilt)) / 2.
    std::vector<double> dhi_iso;

    long steps() const { return static_cast<long>(env.size()); }
};

/// Prepare the artifact: validates \p env (size and non-negativity) and
/// runs the per-step sun-position + transposition precompute over the
/// deterministic parallel substrate (fixed chunks — same bits at any
/// thread count).  The sweep is batched: per-day ephemeris constants are
/// hoisted (association preserved) and the elementwise geometry /
/// transposition passes run through runtime-dispatched SIMD kernels
/// (sky_kernels.hpp), bitwise-identical to the reference below at every
/// SIMD level.
SharedSkyArtifact prepare_sky_artifact(const Location& location,
                                       const pvfp::TimeGrid& grid,
                                       std::vector<EnvSample> env,
                                       SkyModel sky_model);

/// The original unbatched per-step loop (one sun_position call plus the
/// inline transposition block per step).  Kept as the differential
/// oracle: tests pin prepare_sky_artifact against it bitwise across
/// latitudes and sky models, and the micro benchmarks use it as the
/// cold-start baseline.
SharedSkyArtifact prepare_sky_artifact_reference(const Location& location,
                                                 const pvfp::TimeGrid& grid,
                                                 std::vector<EnvSample> env,
                                                 SkyModel sky_model);

/// Convenience overload returning a shared handle ready to hand to many
/// fields/scenarios.
std::shared_ptr<const SharedSkyArtifact> make_shared_sky(
    const Location& location, const pvfp::TimeGrid& grid,
    std::vector<EnvSample> env, SkyModel sky_model);

}  // namespace pvfp::solar

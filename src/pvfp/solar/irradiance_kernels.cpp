#include "pvfp/solar/irradiance_kernels.hpp"

#include <algorithm>

#include "pvfp/util/simd.hpp"

namespace pvfp::solar::detail {

// Bitwise contract with cell_irradiance_unchecked, which computes
//   g  = (double)reflected;
//   g += svf * (double)sky_diffuse;                    // svf widened
//   if (beam_eq > 0 && elev > 0 && elev >= lerp(a0, a1, frac)) {
//       cosi = ...;                                     // see below
//       if (cosi > 0) g += (double)beam_eq * cosi;
//   }
// so every path below forms ((reflected + svf*sky) + masked_add) with a
// masked_add of exactly +0.0 when the beam is off — adding +0.0 is a
// bitwise no-op for the non-negative g.  The cosi arithmetic matters:
// with per-cell normals it is *float* arithmetic widened at the end
// (float normal components times float sun components, the scalar
// path's expression), with the uniform plane it is double arithmetic.

void cell_row_scalar(const FieldView& f, int y, long s, int x0, int x1,
                     double* out) {
    const std::size_t si = static_cast<std::size_t>(s);
    const double reflected = f.reflected[si];
    const double sky = f.sky_diffuse[si];
    const long ci0 = static_cast<long>(y) * f.width + x0;
    const float* svf = f.svf + ci0;
    const int n = x1 - x0;

    const float elev_f = f.sun_elevation[si];
    if (!(f.beam_eq[si] > 0.0f) || !(static_cast<double>(elev_f) > 0.0)) {
        for (int i = 0; i < n; ++i)
            out[i] = reflected + static_cast<double>(svf[i]) * sky;
        return;
    }

    const double beam = f.beam_eq[si];
    const double elev = elev_f;
    const double frac = f.hor_frac[si];
    const float* a0p = f.angles + f.hor_off0[si] + ci0;
    const float* a1p = f.angles + f.hor_off1[si] + ci0;

    if (f.norm_e != nullptr) {
        const float se = f.sun_e[si];
        const float sn = f.sun_n[si];
        const float su = f.sun_u[si];
        const float* ne = f.norm_e + ci0;
        const float* nn = f.norm_n + ci0;
        const float* nu = f.norm_u + ci0;
        for (int i = 0; i < n; ++i) {
            const double base =
                reflected + static_cast<double>(svf[i]) * sky;
            const double a0 = a0p[i];
            const double a1 = a1p[i];
            const double h = a0 + (a1 - a0) * frac;
            const double cosi = ne[i] * se + nn[i] * sn + nu[i] * su;
            const double add =
                (elev >= h && cosi > 0.0) ? beam * cosi : 0.0;
            out[i] = base + add;
        }
        return;
    }

    // Uniform plane: cosi depends only on the step; hoist it (and the
    // whole beam contribution) out of the cell loop.
    const double cosi = f.plane_e * static_cast<double>(f.sun_e[si]) +
                        f.plane_n * static_cast<double>(f.sun_n[si]) +
                        f.plane_u * static_cast<double>(f.sun_u[si]);
    if (!(cosi > 0.0)) {
        for (int i = 0; i < n; ++i)
            out[i] = reflected + static_cast<double>(svf[i]) * sky;
        return;
    }
    const double add = beam * cosi;
    for (int i = 0; i < n; ++i) {
        const double base = reflected + static_cast<double>(svf[i]) * sky;
        const double a0 = a0p[i];
        const double a1 = a1p[i];
        const double h = a0 + (a1 - a0) * frac;
        out[i] = base + (elev >= h ? add : 0.0);
    }
}

void cell_series_scalar(const FieldView& f, int x, int y, const long* steps,
                        std::size_t n, double* out) {
    const long ci = static_cast<long>(y) * f.width + x;
    const double svf = f.svf[ci];
    const float* angles_cell = f.angles + ci;

    if (f.norm_e != nullptr) {
        const float ne = f.norm_e[ci];
        const float nn = f.norm_n[ci];
        const float nu = f.norm_u[ci];
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t si = static_cast<std::size_t>(steps[k]);
            const double base =
                static_cast<double>(f.reflected[si]) +
                svf * static_cast<double>(f.sky_diffuse[si]);
            const double elev = f.sun_elevation[si];
            const double a0 = angles_cell[f.hor_off0[si]];
            const double a1 = angles_cell[f.hor_off1[si]];
            const double h = a0 + (a1 - a0) * f.hor_frac[si];
            const double cosi =
                ne * f.sun_e[si] + nn * f.sun_n[si] + nu * f.sun_u[si];
            const bool lit = f.beam_eq[si] > 0.0f && elev > 0.0 &&
                             elev >= h && cosi > 0.0;
            const double add =
                lit ? static_cast<double>(f.beam_eq[si]) * cosi : 0.0;
            out[k] = base + add;
        }
        return;
    }

    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t si = static_cast<std::size_t>(steps[k]);
        const double base = static_cast<double>(f.reflected[si]) +
                            svf * static_cast<double>(f.sky_diffuse[si]);
        const double elev = f.sun_elevation[si];
        const double a0 = angles_cell[f.hor_off0[si]];
        const double a1 = angles_cell[f.hor_off1[si]];
        const double h = a0 + (a1 - a0) * f.hor_frac[si];
        const double cosi =
            f.plane_e * static_cast<double>(f.sun_e[si]) +
            f.plane_n * static_cast<double>(f.sun_n[si]) +
            f.plane_u * static_cast<double>(f.sun_u[si]);
        const bool lit = f.beam_eq[si] > 0.0f && elev > 0.0 && elev >= h &&
                         cosi > 0.0;
        const double add =
            lit ? static_cast<double>(f.beam_eq[si]) * cosi : 0.0;
        out[k] = base + add;
    }
}

void cell_packed_scalar(const FieldView& f, int x, int y, long p0, long p1,
                        double* out) {
    // Unit-stride twin of cell_series_scalar over the daylight-packed
    // planes.  The packed planes are bitwise copies of the step planes,
    // so computing the identical expression over them reproduces the
    // series kernel (and thus the scalar reference) bit for bit.  The
    // full lit condition stays: a daylight step can still have
    // beam_eq == 0 (no beam in the weather series) and the float-cast
    // sun elevation of a barely-risen sun can round to 0.0f.
    const long ci = static_cast<long>(y) * f.width + x;
    const double svf = f.svf[ci];
    const float* angles_cell = f.angles + ci;
    const std::size_t n = static_cast<std::size_t>(p1 - p0);
    const float* beam_p = f.p_beam_eq + p0;
    const float* sky_p = f.p_sky_diffuse + p0;
    const float* refl_p = f.p_reflected + p0;
    const float* elev_p = f.p_sun_elevation + p0;
    const float* se_p = f.p_sun_e + p0;
    const float* sn_p = f.p_sun_n + p0;
    const float* su_p = f.p_sun_u + p0;
    const std::int32_t* off0_p = f.p_hor_off0 + p0;
    const std::int32_t* off1_p = f.p_hor_off1 + p0;
    const double* frac_p = f.p_hor_frac + p0;

    if (f.norm_e != nullptr) {
        const float ne = f.norm_e[ci];
        const float nn = f.norm_n[ci];
        const float nu = f.norm_u[ci];
        for (std::size_t k = 0; k < n; ++k) {
            const double base = static_cast<double>(refl_p[k]) +
                                svf * static_cast<double>(sky_p[k]);
            const double elev = elev_p[k];
            const double a0 = angles_cell[off0_p[k]];
            const double a1 = angles_cell[off1_p[k]];
            const double h = a0 + (a1 - a0) * frac_p[k];
            const double cosi =
                ne * se_p[k] + nn * sn_p[k] + nu * su_p[k];
            const bool lit = beam_p[k] > 0.0f && elev > 0.0 && elev >= h &&
                             cosi > 0.0;
            const double add =
                lit ? static_cast<double>(beam_p[k]) * cosi : 0.0;
            out[k] = base + add;
        }
        return;
    }

    for (std::size_t k = 0; k < n; ++k) {
        const double base = static_cast<double>(refl_p[k]) +
                            svf * static_cast<double>(sky_p[k]);
        const double elev = elev_p[k];
        const double a0 = angles_cell[off0_p[k]];
        const double a1 = angles_cell[off1_p[k]];
        const double h = a0 + (a1 - a0) * frac_p[k];
        const double cosi = f.plane_e * static_cast<double>(se_p[k]) +
                            f.plane_n * static_cast<double>(sn_p[k]) +
                            f.plane_u * static_cast<double>(su_p[k]);
        const bool lit =
            beam_p[k] > 0.0f && elev > 0.0 && elev >= h && cosi > 0.0;
        const double add =
            lit ? static_cast<double>(beam_p[k]) * cosi : 0.0;
        out[k] = base + add;
    }
}

namespace {

/// Histogram::bin_index(x) replicated branch-free: clamp the linear
/// index before the int cast (the cast is only defined inside int
/// range; x far past hi must not reach it un-clamped), then apply the
/// two boundary overrides exactly as the branchy original does.  For
/// lo < x < hi the clamped cast equals min((int)((x-lo)/width),
/// bins-1) because truncation is monotone.
inline std::int32_t bin_index_branchfree(double x, const BinAxis& a) {
    const double top = static_cast<double>(a.bins - 1);
    const double v = std::min((x - a.lo) / a.width, top);
    std::int32_t i = static_cast<std::int32_t>(std::max(v, 0.0));
    if (x <= a.lo) i = 0;
    if (x >= a.hi) i = a.bins - 1;
    return i;
}

}  // namespace

void bin_series_scalar(const double* g, std::size_t n, const double* t_air,
                       double k_th, const BinAxis& ga, const BinAxis& ta,
                       std::int32_t* g_bins, std::int32_t* t_bins) {
    for (std::size_t k = 0; k < n; ++k) {
        g_bins[k] = bin_index_branchfree(g[k], ga);
        const double t = t_air[k] + k_th * g[k];
        t_bins[k] = bin_index_branchfree(t, ta);
    }
}

void bin_series(const double* g, std::size_t n, const double* t_air,
                double k_th, const BinAxis& ga, const BinAxis& ta,
                std::int32_t* g_bins, std::int32_t* t_bins) {
    if (simd_level() == SimdLevel::Avx512 && avx512_kernels_compiled())
        bin_series_avx512(g, n, t_air, k_th, ga, ta, g_bins, t_bins);
    else
        bin_series_scalar(g, n, t_air, k_th, ga, ta, g_bins, t_bins);
}

}  // namespace pvfp::solar::detail

#pragma once
/// \file irradiance_kernels.hpp
/// Internal batched irradiance kernels over a FieldView (SoA planes).
///
/// Two shapes, two implementations each:
///  - row kernel:    fixed step, contiguous span of cells in one row;
///  - series kernel: fixed cell, arbitrary span of steps.
///
/// The scalar implementations are branch-free inner loops (horizon lerp
/// + compare instead of is_shaded branching, masked beam term) written
/// so GCC/Clang auto-vectorize them; the AVX2 implementations are
/// hand-written intrinsics selected at runtime (util/simd.hpp).  Both
/// compute the *same IEEE operations in the same association* as
/// IrradianceField::cell_irradiance_unchecked — no FMA (the build sets
/// -ffp-contract=off), no reassociation — so every implementation is
/// bitwise-identical per cell.  tests/solar/test_batched_kernels pins
/// this property across roofs, sky models, normals on/off, and SIMD
/// on/off.
///
/// Preconditions (debug-asserted by the callers, validated at the
/// IrradianceField boundary): row/cell inside the window, steps in
/// range, out sized to the span.

#include <cstddef>

#include "pvfp/solar/irradiance.hpp"

namespace pvfp::solar::detail {

/// out[i] = G(x0 + i, y, s) for i in [0, x1 - x0).
void cell_row_scalar(const FieldView& f, int y, long s, int x0, int x1,
                     double* out);

/// out[k] = G(x, y, steps[k]) for k in [0, n).
void cell_series_scalar(const FieldView& f, int x, int y, const long* steps,
                        std::size_t n, double* out);

/// True when this build carries the AVX2 kernels (x86-64 compilers);
/// callers must additionally check pvfp::cpu_supports_avx2() / the
/// dispatch level before calling them.
bool avx2_kernels_compiled();

/// AVX2 twins of the scalar kernels; fall back to the scalar kernels on
/// builds where avx2_kernels_compiled() is false.
void cell_row_avx2(const FieldView& f, int y, long s, int x0, int x1,
                   double* out);
void cell_series_avx2(const FieldView& f, int x, int y, const long* steps,
                      std::size_t n, double* out);

}  // namespace pvfp::solar::detail

#pragma once
/// \file irradiance_kernels.hpp
/// Internal batched irradiance kernels over a FieldView (SoA planes).
///
/// Three shapes, up to three implementations each:
///  - row kernel:    fixed step, contiguous span of cells in one row;
///  - series kernel: fixed cell, arbitrary span of steps (gathers);
///  - packed kernel: fixed cell, contiguous run of *daylight-packed*
///    steps (unit-stride loads over the packed planes — the gather-free
///    fast path of cell_irradiance_series for stride-1 daylight sweeps).
///
/// The scalar implementations are branch-free inner loops (horizon lerp
/// + compare instead of is_shaded branching, masked beam term) written
/// so GCC/Clang auto-vectorize them; the AVX2 and AVX-512 paths are
/// hand-written intrinsics selected at runtime (util/simd.hpp), the
/// AVX-512 ones using masked loads/stores so no scalar tail loop
/// remains.  All compute the *same IEEE operations in the same
/// association* as IrradianceField::cell_irradiance_unchecked — no FMA
/// (the build sets -ffp-contract=off), no reassociation — so every
/// implementation is bitwise-identical per cell.
/// tests/solar/test_batched_kernels pins this property across roofs,
/// sky models, normals on/off, and SIMD levels.
///
/// Preconditions (debug-asserted by the callers, validated at the
/// IrradianceField boundary): row/cell inside the window, steps in
/// range, packed runs inside [0, n_packed), out sized to the span.

#include <cstddef>
#include <cstdint>

#include "pvfp/solar/irradiance.hpp"

namespace pvfp::solar::detail {

/// out[i] = G(x0 + i, y, s) for i in [0, x1 - x0).
void cell_row_scalar(const FieldView& f, int y, long s, int x0, int x1,
                     double* out);

/// out[k] = G(x, y, steps[k]) for k in [0, n).
void cell_series_scalar(const FieldView& f, int x, int y, const long* steps,
                        std::size_t n, double* out);

/// out[k] = G(x, y, packed_to_step[p0 + k]) for k in [0, p1 - p0):
/// unit-stride sweep over the daylight-packed planes.
void cell_packed_scalar(const FieldView& f, int x, int y, long p0, long p1,
                        double* out);

/// True when this build carries the AVX2 kernels (x86-64 compilers);
/// callers must additionally check pvfp::cpu_supports_avx2() / the
/// dispatch level before calling them.
bool avx2_kernels_compiled();

/// Same gate for the AVX-512 kernels (needs avx512f + avx512vl at run
/// time, checked by pvfp::cpu_supports_avx512()).
bool avx512_kernels_compiled();

/// AVX2 twins of the scalar kernels; fall back to the scalar kernels on
/// builds where avx2_kernels_compiled() is false.
void cell_row_avx2(const FieldView& f, int y, long s, int x0, int x1,
                   double* out);
void cell_series_avx2(const FieldView& f, int x, int y, const long* steps,
                      std::size_t n, double* out);
void cell_packed_avx2(const FieldView& f, int x, int y, long p0, long p1,
                      double* out);

/// AVX-512 twins (masked tails — no scalar remainder loop); fall back
/// to the scalar kernels on builds where avx512_kernels_compiled() is
/// false.
void cell_row_avx512(const FieldView& f, int y, long s, int x0, int x1,
                     double* out);
void cell_series_avx512(const FieldView& f, int x, int y, const long* steps,
                        std::size_t n, double* out);
void cell_packed_avx512(const FieldView& f, int x, int y, long p0, long p1,
                        double* out);

/// One histogram axis for the fused suitability binning: the fixed
/// bin grid of a pvfp::Histogram(lo, hi, bins).  width must equal
/// (hi - lo) / bins exactly as the Histogram constructor computes it.
struct BinAxis {
    double lo = 0.0;
    double hi = 1.0;
    double width = 0.0;
    int bins = 1;
};

/// Fused suitability binning: for each sample k, g_bins[k] is the
/// Histogram::bin_index of g[k] on \p ga and t_bins[k] the bin_index of
/// t_air[k] + k_th * g[k] on \p ta — exactly the per-sample arithmetic
/// compute_suitability used to run after the series kernel, now a
/// branch-free elementwise pass (with an AVX-512 twin) fused onto the
/// kernel output.  Bin indices are integers, so this is trivially
/// deterministic; the expressions still replicate Histogram::bin_index
/// case for case.
void bin_series_scalar(const double* g, std::size_t n, const double* t_air,
                       double k_th, const BinAxis& ga, const BinAxis& ta,
                       std::int32_t* g_bins, std::int32_t* t_bins);
void bin_series_avx512(const double* g, std::size_t n, const double* t_air,
                       double k_th, const BinAxis& ga, const BinAxis& ta,
                       std::int32_t* g_bins, std::int32_t* t_bins);

/// Dispatch helper used by compute_suitability: bin_series at the
/// current simd_level().
void bin_series(const double* g, std::size_t n, const double* t_air,
                double k_th, const BinAxis& ga, const BinAxis& ta,
                std::int32_t* g_bins, std::int32_t* t_bins);

}  // namespace pvfp::solar::detail

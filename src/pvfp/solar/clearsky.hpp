#pragma once
/// \file clearsky.hpp
/// ESRA clear-sky irradiance model (Rigollier, Bauer & Wald 2000) — the
/// model behind PVGIS, which the paper cites ([11], [17]) as its source of
/// clear-sky and turbidity handling.  Atmospheric opacity is captured by
/// the Linke turbidity factor TL (air-mass-2 convention), the same
/// coefficient the paper uses to account for air pollution.

#include <array>

#include "pvfp/solar/sunpos.hpp"

namespace pvfp::solar {

/// Clear-sky irradiance components on the *horizontal* plane plus the
/// direct normal component.  All in W/m^2.
struct ClearSky {
    double ghi = 0.0;  ///< global horizontal
    double dni = 0.0;  ///< beam normal
    double dhi = 0.0;  ///< diffuse horizontal
};

/// Kasten-Young relative optical air mass for the given solar elevation,
/// with a pressure correction for \p altitude_m above sea level.
/// Returns +inf-like large values as the sun approaches the horizon;
/// callers gate on elevation > 0.
double relative_air_mass(double elevation_rad, double altitude_m = 0.0);

/// Rayleigh optical thickness delta_R(m) (Kasten 1996 piecewise fit, as
/// used by ESRA).
double rayleigh_optical_thickness(double air_mass);

/// ESRA clear-sky at solar \p elevation_rad on day \p doy with Linke
/// turbidity \p linke (typical range 2..7).  Elevation <= 0 yields zeros.
ClearSky esra_clear_sky(double elevation_rad, int doy, double linke,
                        double altitude_m = 0.0);

/// Monthly Linke turbidity profile with linear interpolation over the day
/// of year (wrap-around December->January).
class LinkeTurbidity {
public:
    /// \p monthly: 12 values, January first.
    explicit LinkeTurbidity(const std::array<double, 12>& monthly);

    /// A reasonable Po-valley profile (hazier summers, clearer winters),
    /// consistent with the PVGIS climatology the paper builds on.
    static LinkeTurbidity torino_profile();

    /// Turbidity on day-of-year \p doy (interpolating between mid-months).
    double at_day(int doy) const;

private:
    std::array<double, 12> monthly_;
};

}  // namespace pvfp::solar

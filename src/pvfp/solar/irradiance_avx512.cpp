/// \file irradiance_avx512.cpp
/// Hand-written AVX-512 twins of the scalar batch kernels, compiled
/// with per-function target("avx512f,avx512vl") so the binary stays
/// portable; runtime dispatch (util/simd.hpp) only routes here after
/// cpu_supports_avx512() has confirmed both subsets.
///
/// Two wins over the AVX2 tier: 8 double lanes per iteration instead
/// of 4, and masked loads/stores on the final partial vector, so there
/// is *no scalar tail loop* — short spans (the 1-31-step evaluator
/// shard remainders, narrow footprint rows) run entirely in vector
/// code.
///
/// Bitwise contract, as in irradiance_avx2.cpp: elementwise mul/add/sub
/// only — never FMA — in exactly the scalar kernels' association.  The
/// masked beam term uses _mm512_maskz_mul_pd (a +0.0 in dark lanes),
/// which matches the scalar `? : 0.0` because the base term is always
/// >= +0.0, so base + (+0.0) is a bitwise no-op.  Per-cell-normal cosi
/// stays in float lanes and widens after; uniform-plane cosi runs in
/// double lanes.  Masked-off gather lanes use index 0 (never read);
/// masked-off load lanes read as 0.0 and their results are never
/// stored.

#include "pvfp/solar/irradiance_kernels.hpp"

#if (defined(__x86_64__) || defined(__amd64__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define PVFP_AVX512_KERNELS 1
#include <immintrin.h>
#else
#define PVFP_AVX512_KERNELS 0
#endif

namespace pvfp::solar::detail {

bool avx512_kernels_compiled() { return PVFP_AVX512_KERNELS != 0; }

#if PVFP_AVX512_KERNELS

#define PVFP_AVX512 __attribute__((target("avx512f,avx512vl")))

namespace {

/// Mask with the low min(rem, 8) bits set: all-on for full vectors,
/// the partial tail mask otherwise.
inline __mmask8 tail_mask(std::size_t rem) {
    return rem >= 8 ? static_cast<__mmask8>(0xFF)
                    : static_cast<__mmask8>((1u << rem) - 1u);
}

/// Masked load of 8 floats widened to 8 doubles (masked lanes 0.0).
PVFP_AVX512 inline __m512d load8_ps_pd(__mmask8 m, const float* p) {
    return _mm512_cvtps_pd(_mm256_maskz_loadu_ps(m, p));
}

}  // namespace

PVFP_AVX512 void cell_row_avx512(const FieldView& f, int y, long s, int x0,
                                 int x1, double* out) {
    const std::size_t si = static_cast<std::size_t>(s);
    const std::size_t n = static_cast<std::size_t>(x1 - x0);
    const float elev_f = f.sun_elevation[si];
    const bool beam_on =
        f.beam_eq[si] > 0.0f && static_cast<double>(elev_f) > 0.0;

    const long ci0 = static_cast<long>(y) * f.width + x0;
    const float* svf = f.svf + ci0;
    const __m512d refl_v = _mm512_set1_pd(f.reflected[si]);
    const __m512d sky_v = _mm512_set1_pd(f.sky_diffuse[si]);

    const bool uniform = f.norm_e == nullptr;
    double cosi_u = 0.0;
    if (uniform) {
        cosi_u = f.plane_e * static_cast<double>(f.sun_e[si]) +
                 f.plane_n * static_cast<double>(f.sun_n[si]) +
                 f.plane_u * static_cast<double>(f.sun_u[si]);
    }

    if (!beam_on || (uniform && !(cosi_u > 0.0))) {
        // No beam contribution anywhere in the row: base term only.
        for (std::size_t i = 0; i < n; i += 8) {
            const __mmask8 m = tail_mask(n - i);
            const __m512d base = _mm512_add_pd(
                refl_v, _mm512_mul_pd(load8_ps_pd(m, svf + i), sky_v));
            _mm512_mask_storeu_pd(out + i, m, base);
        }
        return;
    }

    const __m512d beam_v = _mm512_set1_pd(f.beam_eq[si]);
    const __m512d elev_v = _mm512_set1_pd(elev_f);
    const __m512d frac_v = _mm512_set1_pd(f.hor_frac[si]);
    const __m512d zero = _mm512_setzero_pd();
    const float* a0p = f.angles + f.hor_off0[si] + ci0;
    const float* a1p = f.angles + f.hor_off1[si] + ci0;

    if (uniform) {
        const __m512d add_v = _mm512_mul_pd(beam_v, _mm512_set1_pd(cosi_u));
        for (std::size_t i = 0; i < n; i += 8) {
            const __mmask8 m = tail_mask(n - i);
            const __m512d base = _mm512_add_pd(
                refl_v, _mm512_mul_pd(load8_ps_pd(m, svf + i), sky_v));
            const __m512d a0 = load8_ps_pd(m, a0p + i);
            const __m512d a1 = load8_ps_pd(m, a1p + i);
            const __m512d h = _mm512_add_pd(
                a0, _mm512_mul_pd(_mm512_sub_pd(a1, a0), frac_v));
            const __mmask8 lit = _mm512_cmp_pd_mask(elev_v, h, _CMP_GE_OQ);
            const __m512d add = _mm512_maskz_mov_pd(lit, add_v);
            _mm512_mask_storeu_pd(out + i, m, _mm512_add_pd(base, add));
        }
        return;
    }

    const __m256 se_v = _mm256_set1_ps(f.sun_e[si]);
    const __m256 sn_v = _mm256_set1_ps(f.sun_n[si]);
    const __m256 su_v = _mm256_set1_ps(f.sun_u[si]);
    const float* ne = f.norm_e + ci0;
    const float* nn = f.norm_n + ci0;
    const float* nu = f.norm_u + ci0;
    for (std::size_t i = 0; i < n; i += 8) {
        const __mmask8 m = tail_mask(n - i);
        const __m512d base = _mm512_add_pd(
            refl_v, _mm512_mul_pd(load8_ps_pd(m, svf + i), sky_v));
        const __m512d a0 = load8_ps_pd(m, a0p + i);
        const __m512d a1 = load8_ps_pd(m, a1p + i);
        const __m512d h = _mm512_add_pd(
            a0, _mm512_mul_pd(_mm512_sub_pd(a1, a0), frac_v));
        // cosi in float lanes — the scalar path's float arithmetic —
        // widened only for the compare and the beam product.
        const __m256 cosi_ps = _mm256_add_ps(
            _mm256_add_ps(
                _mm256_mul_ps(_mm256_maskz_loadu_ps(m, ne + i), se_v),
                _mm256_mul_ps(_mm256_maskz_loadu_ps(m, nn + i), sn_v)),
            _mm256_mul_ps(_mm256_maskz_loadu_ps(m, nu + i), su_v));
        const __m512d cosi = _mm512_cvtps_pd(cosi_ps);
        const __mmask8 lit = static_cast<__mmask8>(
            _mm512_cmp_pd_mask(elev_v, h, _CMP_GE_OQ) &
            _mm512_cmp_pd_mask(cosi, zero, _CMP_GT_OQ));
        const __m512d add = _mm512_maskz_mul_pd(lit, beam_v, cosi);
        _mm512_mask_storeu_pd(out + i, m, _mm512_add_pd(base, add));
    }
}

PVFP_AVX512 void cell_series_avx512(const FieldView& f, int x, int y,
                                    const long* steps, std::size_t n,
                                    double* out) {
    const long ci = static_cast<long>(y) * f.width + x;
    const float* angles_cell = f.angles + ci;
    const __m512d svf_v = _mm512_set1_pd(f.svf[ci]);
    const __m512d zero = _mm512_setzero_pd();
    const __m256 zero_ps = _mm256_setzero_ps();
    const __m256i zero_epi32 = _mm256_setzero_si256();
    const __m512d zero_pd = _mm512_setzero_pd();

    const bool uniform = f.norm_e == nullptr;
    __m256 ne_v{}, nn_v{}, nu_v{};
    __m512d pe_v{}, pn_v{}, pu_v{};
    if (uniform) {
        pe_v = _mm512_set1_pd(f.plane_e);
        pn_v = _mm512_set1_pd(f.plane_n);
        pu_v = _mm512_set1_pd(f.plane_u);
    } else {
        ne_v = _mm256_set1_ps(f.norm_e[ci]);
        nn_v = _mm256_set1_ps(f.norm_n[ci]);
        nu_v = _mm256_set1_ps(f.norm_u[ci]);
    }

    for (std::size_t k = 0; k < n; k += 8) {
        const __mmask8 m = tail_mask(n - k);
        // Masked index load: masked-off lanes hold index 0, but every
        // gather below is masked with m too, so those lanes are never
        // dereferenced.
        const __m512i idx = _mm512_maskz_loadu_epi64(m, steps + k);
        const __m512d refl = _mm512_cvtps_pd(
            _mm512_mask_i64gather_ps(zero_ps, m, idx, f.reflected, 4));
        const __m512d sky = _mm512_cvtps_pd(
            _mm512_mask_i64gather_ps(zero_ps, m, idx, f.sky_diffuse, 4));
        const __m512d base =
            _mm512_add_pd(refl, _mm512_mul_pd(svf_v, sky));

        const __m512d beam = _mm512_cvtps_pd(
            _mm512_mask_i64gather_ps(zero_ps, m, idx, f.beam_eq, 4));
        const __m512d elev = _mm512_cvtps_pd(
            _mm512_mask_i64gather_ps(zero_ps, m, idx, f.sun_elevation, 4));
        const __m512d frac =
            _mm512_mask_i64gather_pd(zero_pd, m, idx, f.hor_frac, 8);
        const __m256i off0 = _mm512_mask_i64gather_epi32(
            zero_epi32, m, idx, reinterpret_cast<const int*>(f.hor_off0),
            4);
        const __m256i off1 = _mm512_mask_i64gather_epi32(
            zero_epi32, m, idx, reinterpret_cast<const int*>(f.hor_off1),
            4);
        const __m512d a0 = _mm512_cvtps_pd(
            _mm256_mmask_i32gather_ps(zero_ps, m, off0, angles_cell, 4));
        const __m512d a1 = _mm512_cvtps_pd(
            _mm256_mmask_i32gather_ps(zero_ps, m, off1, angles_cell, 4));
        const __m512d h = _mm512_add_pd(
            a0, _mm512_mul_pd(_mm512_sub_pd(a1, a0), frac));

        const __m256 se_ps =
            _mm512_mask_i64gather_ps(zero_ps, m, idx, f.sun_e, 4);
        const __m256 sn_ps =
            _mm512_mask_i64gather_ps(zero_ps, m, idx, f.sun_n, 4);
        const __m256 su_ps =
            _mm512_mask_i64gather_ps(zero_ps, m, idx, f.sun_u, 4);
        __m512d cosi;
        if (uniform) {
            cosi = _mm512_add_pd(
                _mm512_add_pd(
                    _mm512_mul_pd(pe_v, _mm512_cvtps_pd(se_ps)),
                    _mm512_mul_pd(pn_v, _mm512_cvtps_pd(sn_ps))),
                _mm512_mul_pd(pu_v, _mm512_cvtps_pd(su_ps)));
        } else {
            const __m256 cosi_ps = _mm256_add_ps(
                _mm256_add_ps(_mm256_mul_ps(ne_v, se_ps),
                              _mm256_mul_ps(nn_v, sn_ps)),
                _mm256_mul_ps(nu_v, su_ps));
            cosi = _mm512_cvtps_pd(cosi_ps);
        }

        const __mmask8 lit = static_cast<__mmask8>(
            _mm512_cmp_pd_mask(beam, zero, _CMP_GT_OQ) &
            _mm512_cmp_pd_mask(elev, zero, _CMP_GT_OQ) &
            _mm512_cmp_pd_mask(elev, h, _CMP_GE_OQ) &
            _mm512_cmp_pd_mask(cosi, zero, _CMP_GT_OQ));
        const __m512d add = _mm512_maskz_mul_pd(lit, beam, cosi);
        _mm512_mask_storeu_pd(out + k, m, _mm512_add_pd(base, add));
    }
}

PVFP_AVX512 void cell_packed_avx512(const FieldView& f, int x, int y,
                                    long p0, long p1, double* out) {
    // Unit-stride twin of cell_series_avx512 over the daylight-packed
    // planes: contiguous masked loads everywhere except the per-cell
    // horizon angle lookups, which stay (masked) gathers by sector
    // offset.
    const long ci = static_cast<long>(y) * f.width + x;
    const float* angles_cell = f.angles + ci;
    const __m512d svf_v = _mm512_set1_pd(f.svf[ci]);
    const __m512d zero = _mm512_setzero_pd();
    const __m256 zero_ps = _mm256_setzero_ps();
    const std::size_t n = static_cast<std::size_t>(p1 - p0);
    const float* beam_p = f.p_beam_eq + p0;
    const float* sky_p = f.p_sky_diffuse + p0;
    const float* refl_p = f.p_reflected + p0;
    const float* elev_p = f.p_sun_elevation + p0;
    const float* se_p = f.p_sun_e + p0;
    const float* sn_p = f.p_sun_n + p0;
    const float* su_p = f.p_sun_u + p0;
    const std::int32_t* off0_p = f.p_hor_off0 + p0;
    const std::int32_t* off1_p = f.p_hor_off1 + p0;
    const double* frac_p = f.p_hor_frac + p0;

    const bool uniform = f.norm_e == nullptr;
    __m256 ne_v{}, nn_v{}, nu_v{};
    __m512d pe_v{}, pn_v{}, pu_v{};
    if (uniform) {
        pe_v = _mm512_set1_pd(f.plane_e);
        pn_v = _mm512_set1_pd(f.plane_n);
        pu_v = _mm512_set1_pd(f.plane_u);
    } else {
        ne_v = _mm256_set1_ps(f.norm_e[ci]);
        nn_v = _mm256_set1_ps(f.norm_n[ci]);
        nu_v = _mm256_set1_ps(f.norm_u[ci]);
    }

    for (std::size_t k = 0; k < n; k += 8) {
        const __mmask8 m = tail_mask(n - k);
        const __m512d refl = load8_ps_pd(m, refl_p + k);
        const __m512d sky = load8_ps_pd(m, sky_p + k);
        const __m512d base =
            _mm512_add_pd(refl, _mm512_mul_pd(svf_v, sky));

        const __m512d beam = load8_ps_pd(m, beam_p + k);
        const __m512d elev = load8_ps_pd(m, elev_p + k);
        const __m512d frac = _mm512_maskz_loadu_pd(m, frac_p + k);
        const __m256i off0 = _mm256_maskz_loadu_epi32(m, off0_p + k);
        const __m256i off1 = _mm256_maskz_loadu_epi32(m, off1_p + k);
        const __m512d a0 = _mm512_cvtps_pd(
            _mm256_mmask_i32gather_ps(zero_ps, m, off0, angles_cell, 4));
        const __m512d a1 = _mm512_cvtps_pd(
            _mm256_mmask_i32gather_ps(zero_ps, m, off1, angles_cell, 4));
        const __m512d h = _mm512_add_pd(
            a0, _mm512_mul_pd(_mm512_sub_pd(a1, a0), frac));

        const __m256 se_ps = _mm256_maskz_loadu_ps(m, se_p + k);
        const __m256 sn_ps = _mm256_maskz_loadu_ps(m, sn_p + k);
        const __m256 su_ps = _mm256_maskz_loadu_ps(m, su_p + k);
        __m512d cosi;
        if (uniform) {
            cosi = _mm512_add_pd(
                _mm512_add_pd(
                    _mm512_mul_pd(pe_v, _mm512_cvtps_pd(se_ps)),
                    _mm512_mul_pd(pn_v, _mm512_cvtps_pd(sn_ps))),
                _mm512_mul_pd(pu_v, _mm512_cvtps_pd(su_ps)));
        } else {
            const __m256 cosi_ps = _mm256_add_ps(
                _mm256_add_ps(_mm256_mul_ps(ne_v, se_ps),
                              _mm256_mul_ps(nn_v, sn_ps)),
                _mm256_mul_ps(nu_v, su_ps));
            cosi = _mm512_cvtps_pd(cosi_ps);
        }

        const __mmask8 lit = static_cast<__mmask8>(
            _mm512_cmp_pd_mask(beam, zero, _CMP_GT_OQ) &
            _mm512_cmp_pd_mask(elev, zero, _CMP_GT_OQ) &
            _mm512_cmp_pd_mask(elev, h, _CMP_GE_OQ) &
            _mm512_cmp_pd_mask(cosi, zero, _CMP_GT_OQ));
        const __m512d add = _mm512_maskz_mul_pd(lit, beam, cosi);
        _mm512_mask_storeu_pd(out + k, m, _mm512_add_pd(base, add));
    }
}

PVFP_AVX512 void bin_series_avx512(const double* g, std::size_t n,
                                   const double* t_air, double k_th,
                                   const BinAxis& ga, const BinAxis& ta,
                                   std::int32_t* g_bins,
                                   std::int32_t* t_bins) {
    // Vector twin of bin_series_scalar: same clamp-then-truncate with
    // the same boundary overrides (division is IEEE-exact, truncation
    // matches the scalar int cast), so indices — integers — agree
    // exactly.
    const __m512d g_lo = _mm512_set1_pd(ga.lo);
    const __m512d g_hi = _mm512_set1_pd(ga.hi);
    const __m512d g_w = _mm512_set1_pd(ga.width);
    const __m512d g_top = _mm512_set1_pd(static_cast<double>(ga.bins - 1));
    const __m256i g_last = _mm256_set1_epi32(ga.bins - 1);
    const __m512d t_lo = _mm512_set1_pd(ta.lo);
    const __m512d t_hi = _mm512_set1_pd(ta.hi);
    const __m512d t_w = _mm512_set1_pd(ta.width);
    const __m512d t_top = _mm512_set1_pd(static_cast<double>(ta.bins - 1));
    const __m256i t_last = _mm256_set1_epi32(ta.bins - 1);
    const __m512d kth_v = _mm512_set1_pd(k_th);
    const __m512d zero = _mm512_setzero_pd();
    const __m256i zero_i = _mm256_setzero_si256();

    for (std::size_t k = 0; k < n; k += 8) {
        const __mmask8 m = tail_mask(n - k);
        const __m512d gv = _mm512_maskz_loadu_pd(m, g + k);

        __m512d v = _mm512_div_pd(_mm512_sub_pd(gv, g_lo), g_w);
        v = _mm512_max_pd(_mm512_min_pd(v, g_top), zero);
        __m256i gi = _mm512_cvttpd_epi32(v);
        gi = _mm256_mask_mov_epi32(
            gi, _mm512_cmp_pd_mask(gv, g_lo, _CMP_LE_OQ), zero_i);
        gi = _mm256_mask_mov_epi32(
            gi, _mm512_cmp_pd_mask(gv, g_hi, _CMP_GE_OQ), g_last);
        _mm256_mask_storeu_epi32(g_bins + k, m, gi);

        const __m512d ta_v = _mm512_maskz_loadu_pd(m, t_air + k);
        const __m512d tv =
            _mm512_add_pd(ta_v, _mm512_mul_pd(kth_v, gv));
        v = _mm512_div_pd(_mm512_sub_pd(tv, t_lo), t_w);
        v = _mm512_max_pd(_mm512_min_pd(v, t_top), zero);
        __m256i ti = _mm512_cvttpd_epi32(v);
        ti = _mm256_mask_mov_epi32(
            ti, _mm512_cmp_pd_mask(tv, t_lo, _CMP_LE_OQ), zero_i);
        ti = _mm256_mask_mov_epi32(
            ti, _mm512_cmp_pd_mask(tv, t_hi, _CMP_GE_OQ), t_last);
        _mm256_mask_storeu_epi32(t_bins + k, m, ti);
    }
}

#undef PVFP_AVX512

#else  // !PVFP_AVX512_KERNELS

void cell_row_avx512(const FieldView& f, int y, long s, int x0, int x1,
                     double* out) {
    cell_row_scalar(f, y, s, x0, x1, out);
}

void cell_series_avx512(const FieldView& f, int x, int y, const long* steps,
                        std::size_t n, double* out) {
    cell_series_scalar(f, x, y, steps, n, out);
}

void cell_packed_avx512(const FieldView& f, int x, int y, long p0, long p1,
                        double* out) {
    cell_packed_scalar(f, x, y, p0, p1, out);
}

void bin_series_avx512(const double* g, std::size_t n, const double* t_air,
                       double k_th, const BinAxis& ga, const BinAxis& ta,
                       std::int32_t* g_bins, std::int32_t* t_bins) {
    bin_series_scalar(g, n, t_air, k_th, ga, ta, g_bins, t_bins);
}

#endif  // PVFP_AVX512_KERNELS

}  // namespace pvfp::solar::detail

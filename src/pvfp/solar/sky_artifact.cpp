#include "pvfp/solar/sky_artifact.hpp"

#include <algorithm>
#include <cmath>

#include "pvfp/solar/sky_kernels.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/parallel.hpp"

namespace pvfp::solar {
namespace {

SharedSkyArtifact make_validated_artifact(const Location& location,
                                          const pvfp::TimeGrid& grid,
                                          std::vector<EnvSample> env,
                                          SkyModel sky_model) {
    check_arg(static_cast<long>(env.size()) == grid.total_steps(),
              "prepare_sky_artifact: env series length != time grid steps");
    for (const EnvSample& e : env) {
        check_arg(e.ghi >= 0.0 && e.dni >= 0.0 && e.dhi >= 0.0,
                  "prepare_sky_artifact: negative irradiance in env series");
    }

    SharedSkyArtifact sky;
    sky.location = location;
    sky.grid = grid;
    sky.sky_model = sky_model;
    sky.env = std::move(env);

    const std::size_t n = sky.env.size();
    sky.sun_azimuth.resize(n);
    sky.sun_elevation.resize(n);
    sky.daylight.resize(n);
    sky.sun_e.resize(n);
    sky.sun_n.resize(n);
    sky.sun_u.resize(n);
    sky.beam_eq.resize(n);
    sky.dhi_iso.resize(n);
    return sky;
}

}  // namespace

SharedSkyArtifact prepare_sky_artifact(const Location& location,
                                       const pvfp::TimeGrid& grid,
                                       std::vector<EnvSample> env,
                                       SkyModel sky_model) {
    SharedSkyArtifact sky =
        make_validated_artifact(location, grid, std::move(env), sky_model);
    const bool hay = sky_model == SkyModel::HayDavies;

    // Per-day ephemeris tables: declination, equation of time, and the
    // extraterrestrial irradiance only change once per day, so the
    // reference's per-step recomputation hoists here — with unchanged
    // association (see DayGeometry), keeping every downstream bit equal
    // to prepare_sky_artifact_reference.
    const long spd = grid.steps_per_day();
    const long days = grid.days();
    const double phi = deg2rad(location.latitude_deg);
    const double sin_phi = std::sin(phi);
    const double cos_phi = std::cos(phi);
    const double tz_meridian = 15.0 * location.timezone_hours;
    std::vector<detail::DayGeometry> day_geo(static_cast<std::size_t>(days));
    std::vector<double> day_m60(static_cast<std::size_t>(days));
    std::vector<double> day_eo(static_cast<std::size_t>(days));
    for (long d = 0; d < days; ++d) {
        const std::size_t di = static_cast<std::size_t>(d);
        const int doy = grid.day_of_year(d * spd);
        const double delta = solar_declination(doy);
        const double sin_delta = std::sin(delta);
        const double cos_delta = std::cos(delta);
        day_geo[di] = detail::DayGeometry{
            sin_phi * sin_delta, cos_phi * cos_delta, cos_phi * sin_delta,
            sin_phi * cos_delta, -cos_delta};
        const double minutes = equation_of_time_minutes(doy) +
                               4.0 * (location.longitude_deg - tz_meridian);
        day_m60[di] = minutes / 60.0;
        day_eo[di] = extraterrestrial_normal_irradiance(doy);
    }

    // The per-step sweep splits into four passes per chunk: scalar libm
    // trig of the hour angle, the SIMD geometry kernel, scalar libm
    // angles + sun vector, and the SIMD transposition kernel.  Each step
    // writes only its own slots, so the fixed chunk grid keeps the
    // result bitwise-identical at any thread count — and the kernels
    // keep it bitwise-identical at any SIMD level.
    parallel_for(0, grid.total_steps(), 512, [&](long sb, long se) {
        const std::size_t cn = static_cast<std::size_t>(se - sb);
        std::vector<double> cos_h(cn);
        std::vector<double> sin_h(cn);
        std::vector<double> up(cn);
        std::vector<double> north(cn);
        std::vector<double> east(cn);
        std::vector<double> sin_el(cn);
        std::vector<double> ghi(cn);
        std::vector<double> dni(cn);
        std::vector<double> dhi(cn);

        for (long s = sb; s < se; ++s) {
            const std::size_t i = static_cast<std::size_t>(s - sb);
            const double t_solar =
                grid.hour_of_day(s) + day_m60[static_cast<std::size_t>(
                                          s / spd)];
            const double h = deg2rad(15.0 * (t_solar - 12.0));
            cos_h[i] = std::cos(h);
            sin_h[i] = std::sin(h);
        }
        for (long r0 = sb; r0 < se;) {
            const long d = r0 / spd;
            const long r1 = std::min(se, (d + 1) * spd);
            const std::size_t off = static_cast<std::size_t>(r0 - sb);
            detail::sky_geometry(cos_h.data() + off, sin_h.data() + off,
                                 static_cast<std::size_t>(r1 - r0),
                                 day_geo[static_cast<std::size_t>(d)],
                                 up.data() + off, north.data() + off,
                                 east.data() + off);
            r0 = r1;
        }
        for (long s = sb; s < se; ++s) {
            const std::size_t i = static_cast<std::size_t>(s - sb);
            const std::size_t si = static_cast<std::size_t>(s);
            // up is already clamped to [-1, 1] by the geometry kernel,
            // exactly as sun_position clamps before asin.
            const double el = std::asin(up[i]);
            const double az = wrap_two_pi(std::atan2(east[i], north[i]));
            sky.sun_azimuth[si] = az;
            sky.sun_elevation[si] = el;
            sky.daylight[si] = el > 0.0 ? 1 : 0;
            const double cos_el = std::cos(el);
            sky.sun_e[si] = cos_el * std::sin(az);
            sky.sun_n[si] = cos_el * std::cos(az);
            const double s_el = std::sin(el);
            sky.sun_u[si] = s_el;
            sin_el[i] = s_el;
            const EnvSample& e = sky.env[si];
            ghi[i] = e.ghi;
            dni[i] = e.dni;
            dhi[i] = e.dhi;
        }
        for (long r0 = sb; r0 < se;) {
            const long d = r0 / spd;
            const long r1 = std::min(se, (d + 1) * spd);
            const std::size_t off = static_cast<std::size_t>(r0 - sb);
            const std::size_t ri = static_cast<std::size_t>(r0);
            detail::sky_transposition(
                ghi.data() + off, dni.data() + off, dhi.data() + off,
                sin_el.data() + off, sky.daylight.data() + ri,
                static_cast<std::size_t>(r1 - r0),
                day_eo[static_cast<std::size_t>(d)], hay,
                sky.beam_eq.data() + ri, sky.dhi_iso.data() + ri);
            r0 = r1;
        }
    });
    return sky;
}

SharedSkyArtifact prepare_sky_artifact_reference(const Location& location,
                                                 const pvfp::TimeGrid& grid,
                                                 std::vector<EnvSample> env,
                                                 SkyModel sky_model) {
    SharedSkyArtifact sky =
        make_validated_artifact(location, grid, std::move(env), sky_model);
    const bool hay = sky_model == SkyModel::HayDavies;

    // Per-step precompute (sun position + roof-independent transposition
    // terms for each of the ~35,040 steps) parallelized over step chunks:
    // each step writes only its own slots, so the fixed chunk grid keeps
    // the result bitwise-identical at any thread count.
    parallel_for(0, grid.total_steps(), 512, [&](long sb, long se) {
    for (long s = sb; s < se; ++s) {
        const std::size_t si = static_cast<std::size_t>(s);
        const EnvSample& e = sky.env[si];
        const int doy = grid.day_of_year(s);
        const double hour = grid.hour_of_day(s);
        const SunPosition sun = sun_position(location, doy, hour);
        const bool daylight = sun.elevation_rad > 0.0;
        sky.sun_azimuth[si] = sun.azimuth_rad;
        sky.sun_elevation[si] = sun.elevation_rad;
        sky.daylight[si] = daylight ? 1 : 0;
        const double cos_el = std::cos(sun.elevation_rad);
        sky.sun_e[si] = cos_el * std::sin(sun.azimuth_rad);
        sky.sun_n[si] = cos_el * std::cos(sun.azimuth_rad);
        sky.sun_u[si] = std::sin(sun.elevation_rad);

        double beam_eq = 0.0;
        double dhi_iso = 0.0;
        if (e.ghi > 0.0 || e.dhi > 0.0) {
            // Extraterrestrial normal irradiance feeds both the
            // circumsolar share and the isotropic split under Hay-Davies.
            double a = 0.0;
            if (hay) {
                a = std::clamp(e.dni / extraterrestrial_normal_irradiance(doy),
                               0.0, 1.0);
            }
            // Normal-equivalent beam magnitude: DNI plus, for Hay-Davies,
            // the circumsolar share of the diffuse (guarded near the
            // horizon exactly like the transposition model).
            if (daylight) {
                beam_eq = e.dni;
                if (hay && e.dhi > 0.0) {
                    const double sin_el_guard =
                        std::max(std::sin(sun.elevation_rad), 0.01745);
                    beam_eq += e.dhi * a / sin_el_guard;
                }
            }
            dhi_iso = e.dhi;
            if (hay) dhi_iso = e.dhi * (1.0 - (daylight ? a : 0.0));
        }
        sky.beam_eq[si] = beam_eq;
        sky.dhi_iso[si] = dhi_iso;
    }
    });
    return sky;
}

std::shared_ptr<const SharedSkyArtifact> make_shared_sky(
    const Location& location, const pvfp::TimeGrid& grid,
    std::vector<EnvSample> env, SkyModel sky_model) {
    return std::make_shared<const SharedSkyArtifact>(
        prepare_sky_artifact(location, grid, std::move(env), sky_model));
}

}  // namespace pvfp::solar

#include "pvfp/solar/sky_artifact.hpp"

#include <algorithm>
#include <cmath>

#include "pvfp/util/error.hpp"
#include "pvfp/util/parallel.hpp"

namespace pvfp::solar {

SharedSkyArtifact prepare_sky_artifact(const Location& location,
                                       const pvfp::TimeGrid& grid,
                                       std::vector<EnvSample> env,
                                       SkyModel sky_model) {
    check_arg(static_cast<long>(env.size()) == grid.total_steps(),
              "prepare_sky_artifact: env series length != time grid steps");
    for (const EnvSample& e : env) {
        check_arg(e.ghi >= 0.0 && e.dni >= 0.0 && e.dhi >= 0.0,
                  "prepare_sky_artifact: negative irradiance in env series");
    }

    SharedSkyArtifact sky;
    sky.location = location;
    sky.grid = grid;
    sky.sky_model = sky_model;
    sky.env = std::move(env);

    const std::size_t n = sky.env.size();
    sky.sun_azimuth.resize(n);
    sky.sun_elevation.resize(n);
    sky.daylight.resize(n);
    sky.sun_e.resize(n);
    sky.sun_n.resize(n);
    sky.sun_u.resize(n);
    sky.beam_eq.resize(n);
    sky.dhi_iso.resize(n);

    const bool hay = sky_model == SkyModel::HayDavies;

    // Per-step precompute (sun position + roof-independent transposition
    // terms for each of the ~35,040 steps) parallelized over step chunks:
    // each step writes only its own slots, so the fixed chunk grid keeps
    // the result bitwise-identical at any thread count.
    parallel_for(0, grid.total_steps(), 512, [&](long sb, long se) {
    for (long s = sb; s < se; ++s) {
        const std::size_t si = static_cast<std::size_t>(s);
        const EnvSample& e = sky.env[si];
        const int doy = grid.day_of_year(s);
        const double hour = grid.hour_of_day(s);
        const SunPosition sun = sun_position(location, doy, hour);
        const bool daylight = sun.elevation_rad > 0.0;
        sky.sun_azimuth[si] = sun.azimuth_rad;
        sky.sun_elevation[si] = sun.elevation_rad;
        sky.daylight[si] = daylight ? 1 : 0;
        const double cos_el = std::cos(sun.elevation_rad);
        sky.sun_e[si] = cos_el * std::sin(sun.azimuth_rad);
        sky.sun_n[si] = cos_el * std::cos(sun.azimuth_rad);
        sky.sun_u[si] = std::sin(sun.elevation_rad);

        double beam_eq = 0.0;
        double dhi_iso = 0.0;
        if (e.ghi > 0.0 || e.dhi > 0.0) {
            // Extraterrestrial normal irradiance feeds both the
            // circumsolar share and the isotropic split under Hay-Davies.
            double a = 0.0;
            if (hay) {
                a = std::clamp(e.dni / extraterrestrial_normal_irradiance(doy),
                               0.0, 1.0);
            }
            // Normal-equivalent beam magnitude: DNI plus, for Hay-Davies,
            // the circumsolar share of the diffuse (guarded near the
            // horizon exactly like the transposition model).
            if (daylight) {
                beam_eq = e.dni;
                if (hay && e.dhi > 0.0) {
                    const double sin_el_guard =
                        std::max(std::sin(sun.elevation_rad), 0.01745);
                    beam_eq += e.dhi * a / sin_el_guard;
                }
            }
            dhi_iso = e.dhi;
            if (hay) dhi_iso = e.dhi * (1.0 - (daylight ? a : 0.0));
        }
        sky.beam_eq[si] = beam_eq;
        sky.dhi_iso[si] = dhi_iso;
    }
    });
    return sky;
}

std::shared_ptr<const SharedSkyArtifact> make_shared_sky(
    const Location& location, const pvfp::TimeGrid& grid,
    std::vector<EnvSample> env, SkyModel sky_model) {
    return std::make_shared<const SharedSkyArtifact>(
        prepare_sky_artifact(location, grid, std::move(env), sky_model));
}

}  // namespace pvfp::solar

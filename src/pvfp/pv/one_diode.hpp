#pragma once
/// \file one_diode.hpp
/// One-diode (5-parameter) PV model — the physics behind the I-V curves of
/// paper Fig. 2(a), provided as a validation reference for the empirical
/// model and to support the bypass-diode/partial-shading extension.
///
///   I = Iph - I0*(exp((V + I*Rs)/(n*Ns*Vt)) - 1) - (V + I*Rs)/Rsh
///
/// with photocurrent Iph scaled by irradiance and temperature, saturation
/// current I0 following the usual T^3*exp(-Eg/kT) law, and thermal voltage
/// Vt = k*T/q per cell.

#include <vector>

#include "pvfp/pv/module.hpp"

namespace pvfp::pv {

/// Electrical parameters of the one-diode module model at STC.
struct OneDiodeParams {
    double iph_ref_a = 7.40;    ///< photocurrent at STC [A]
    double i0_ref_a = 1e-9;     ///< diode saturation current at STC [A]
    double ideality = 1.30;     ///< diode ideality factor n
    double rs_ohm = 0.35;       ///< series resistance
    double rsh_ohm = 300.0;     ///< shunt resistance
    int cells_in_series = 50;   ///< Ns
    double isc_temp_coeff = 0.0005;  ///< alpha_Isc [A/K] relative: dIsc/dT / Isc
    double bandgap_ev = 1.12;   ///< silicon
};

/// One-diode model of a full module (or of a bypass-protected substring
/// when \p cells_in_series is set to a fraction of the module).
class OneDiodeModel {
public:
    explicit OneDiodeModel(OneDiodeParams params = {});

    /// Fit parameters so the model reproduces \p spec's STC datasheet
    /// points (Isc, Voc, and approximately Pmp): Iph from Isc, I0 from
    /// Voc, Rs tuned by bisection so the maximum power matches Pmp.
    static OneDiodeModel fit_datasheet(const ModuleSpec& spec,
                                       double ideality = 1.30,
                                       double rsh_ohm = 300.0);

    const OneDiodeParams& params() const { return params_; }

    /// Current [A] at terminal voltage \p v, irradiance \p g [W/m^2] and
    /// cell temperature \p t_c [deg C].  Solved by Newton iteration on the
    /// implicit equation; monotone decreasing in v.
    double current_at(double v, double g, double t_c) const;

    /// Terminal voltage [V] at imposed current \p i (inverse of
    /// current_at; bisection).  Returns a negative voltage (down to
    /// \p v_min) when \p i exceeds the available photocurrent.
    double voltage_at(double i, double g, double t_c,
                      double v_min = -1.0) const;

    /// Open-circuit voltage at the given conditions [V].
    double open_circuit_voltage(double g, double t_c) const;

    /// Short-circuit current at the given conditions [A].
    double short_circuit_current(double g, double t_c) const;

    /// Maximum power point via golden-section search on V in [0, Voc].
    OperatingPoint max_power_point(double g, double t_c) const;

    /// Sampled I-V curve with \p samples points from V=0 to Voc.
    struct IvPoint {
        double v = 0.0;
        double i = 0.0;
    };
    std::vector<IvPoint> iv_curve(double g, double t_c,
                                  int samples = 100) const;

private:
    /// Iph and I0 at the given conditions.
    void scaled_params(double g, double t_c, double& iph, double& i0,
                       double& vt_total) const;

    OneDiodeParams params_;
};

/// A module made of bypass-protected substrings in series, each substring
/// modeled by a one-diode model with its own irradiance — the mechanism
/// behind the mismatch/shading behaviour described in paper Section II-B.
class BypassedModule {
public:
    /// \p substring_count bypass groups (typically 3); the per-substring
    /// model gets cells_in_series / substring_count cells.
    BypassedModule(const OneDiodeModel& module_model, int substring_count,
                   double bypass_drop_v = 0.5);

    int substring_count() const { return static_cast<int>(substrings_); }

    /// Module voltage at imposed current \p i with per-substring
    /// irradiances \p g (size must equal substring_count) at \p t_c.
    /// Substrings that cannot carry \p i are bypassed at -bypass_drop_v.
    double voltage_at(double i, const std::vector<double>& g,
                      double t_c) const;

    /// Module MPP under (possibly non-uniform) irradiance: scan over
    /// current.  With uniform irradiance this approaches the plain model's
    /// MPP; under partial shading the curve has multiple local maxima and
    /// the scan picks the global one.
    OperatingPoint max_power_point(const std::vector<double>& g,
                                   double t_c) const;

private:
    OneDiodeModel substring_model_;
    std::size_t substrings_;
    double bypass_drop_v_;
    double full_isc_ref_;
};

}  // namespace pvfp::pv

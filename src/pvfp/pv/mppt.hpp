#pragma once
/// \file mppt.hpp
/// Maximum-power-point tracking utilities (paper Section II-B: "an MPPT
/// permits the extraction of the maximum power output ... at different
/// irradiances and temperatures").
///
/// The paper's energy model assumes an ideal per-module MPPT; this module
/// provides the generic search machinery (golden-section on smooth curves,
/// global scan on multi-modal curves from partial shading) used by the
/// one-diode extension and its benches.

#include <functional>
#include <vector>

#include "pvfp/pv/module.hpp"

namespace pvfp::pv {

/// Maximize a unimodal function on [lo, hi] by golden-section search.
/// Returns the argmax; \p iterations of ~60 give ~1e-12 interval shrink.
double golden_section_max(const std::function<double(double)>& f, double lo,
                          double hi, int iterations = 60);

/// A sampled power-voltage curve.
struct PvCurvePoint {
    double v = 0.0;
    double p = 0.0;
};

/// Global MPP of a sampled curve: coarse scan over the samples followed by
/// golden-section refinement between the neighbors of the best sample.
/// Robust to the multiple local maxima of partially-shaded curves.
OperatingPoint track_mpp(const std::function<double(double)>& current_at_v,
                         double v_max, int coarse_samples = 200);

/// Fraction of ideal power retained: sum of per-module MPP powers vs the
/// power of the composed series/parallel operating point.  Utility for the
/// mismatch studies.
double mppt_efficiency(double panel_power_w, double ideal_power_w);

}  // namespace pvfp::pv

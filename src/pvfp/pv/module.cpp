#include "pvfp/pv/module.hpp"

#include <algorithm>

#include "pvfp/util/error.hpp"

namespace pvfp::pv {

EmpiricalModuleModel::EmpiricalModuleModel(ModuleSpec spec)
    : spec_(std::move(spec)) {
    check_arg(spec_.width_m > 0.0 && spec_.height_m > 0.0,
              "EmpiricalModuleModel: module dimensions must be positive");
    check_arg(spec_.p_max_ref_w > 0.0 && spec_.vmp_ref_v > 0.0,
              "EmpiricalModuleModel: reference power/voltage must be "
              "positive");
    check_arg(spec_.cells_in_series > 0,
              "EmpiricalModuleModel: cells_in_series must be positive");
}

double EmpiricalModuleModel::power(double g, double tact_c) const {
    check_arg(g >= 0.0, "EmpiricalModuleModel::power: negative irradiance");
    const double derate = spec_.p_offset - spec_.p_temp_coeff * tact_c;
    return std::max(0.0, spec_.p_max_ref_w * derate * 1e-3 * g);
}

double EmpiricalModuleModel::voltage(double g, double tact_c) const {
    check_arg(g >= 0.0, "EmpiricalModuleModel::voltage: negative irradiance");
    if (g == 0.0) return 0.0;  // no illumination, no operating point
    const double derate = spec_.v_offset - spec_.v_temp_coeff * tact_c;
    const double g_term = spec_.v_g_offset + spec_.v_g_slope * g;
    return std::max(0.0, spec_.vmp_ref_v * derate * g_term);
}

double EmpiricalModuleModel::current(double g, double tact_c) const {
    const double v = voltage(g, tact_c);
    if (v <= 0.0) return 0.0;
    return power(g, tact_c) / v;
}

OperatingPoint EmpiricalModuleModel::operating_point(double g,
                                                     double tact_c) const {
    OperatingPoint op;
    op.power_w = power(g, tact_c);
    op.voltage_v = voltage(g, tact_c);
    op.current_a = (op.voltage_v > 0.0) ? op.power_w / op.voltage_v : 0.0;
    return op;
}

double EmpiricalModuleModel::actual_temperature(double t_air_c, double g,
                                                double thermal_k) {
    check_arg(g >= 0.0,
              "EmpiricalModuleModel::actual_temperature: negative G");
    check_arg(thermal_k >= 0.0,
              "EmpiricalModuleModel::actual_temperature: negative k");
    return t_air_c + thermal_k * g;
}

}  // namespace pvfp::pv

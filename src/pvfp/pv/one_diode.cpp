#include "pvfp/pv/one_diode.hpp"

#include <algorithm>
#include <cmath>

#include "pvfp/util/error.hpp"

namespace pvfp::pv {
namespace {

constexpr double kBoltzmann = 1.380649e-23;  // J/K
constexpr double kElectronCharge = 1.602176634e-19;  // C
constexpr double kTRefK = 298.15;  // 25 degC
constexpr double kGRef = 1000.0;   // W/m^2

double thermal_voltage(double t_c) {
    return kBoltzmann * (t_c + 273.15) / kElectronCharge;
}

}  // namespace

OneDiodeModel::OneDiodeModel(OneDiodeParams params) : params_(params) {
    check_arg(params_.iph_ref_a > 0.0 && params_.i0_ref_a > 0.0,
              "OneDiodeModel: currents must be positive");
    check_arg(params_.ideality >= 1.0 && params_.ideality <= 2.0,
              "OneDiodeModel: ideality factor out of the physical range");
    check_arg(params_.rs_ohm >= 0.0 && params_.rsh_ohm > 0.0,
              "OneDiodeModel: resistances invalid");
    check_arg(params_.cells_in_series > 0,
              "OneDiodeModel: cells_in_series must be positive");
}

void OneDiodeModel::scaled_params(double g, double t_c, double& iph,
                                  double& i0, double& vt_total) const {
    check_arg(g >= 0.0, "OneDiodeModel: negative irradiance");
    const double t_k = t_c + 273.15;
    check_arg(t_k > 0.0, "OneDiodeModel: temperature below absolute zero");
    iph = params_.iph_ref_a * (g / kGRef) *
          (1.0 + params_.isc_temp_coeff * (t_c - 25.0));
    const double eg_j = params_.bandgap_ev * kElectronCharge;
    i0 = params_.i0_ref_a * std::pow(t_k / kTRefK, 3.0) *
         std::exp(eg_j / kBoltzmann * (1.0 / kTRefK - 1.0 / t_k));
    vt_total = params_.ideality * params_.cells_in_series *
               thermal_voltage(t_c);
}

double OneDiodeModel::current_at(double v, double g, double t_c) const {
    double iph = 0.0;
    double i0 = 0.0;
    double vt = 0.0;
    scaled_params(g, t_c, iph, i0, vt);

    // Newton iteration on f(I) = Iph - I0*(exp((V+I*Rs)/vt)-1)
    //                            - (V+I*Rs)/Rsh - I.
    double i = std::max(0.0, iph);  // good starting point left of the knee
    for (int iter = 0; iter < 60; ++iter) {
        const double x = (v + i * params_.rs_ohm) / vt;
        const double e = std::exp(std::min(x, 80.0));  // overflow guard
        const double f =
            iph - i0 * (e - 1.0) - (v + i * params_.rs_ohm) / params_.rsh_ohm -
            i;
        const double df = -i0 * e * params_.rs_ohm / vt -
                          params_.rs_ohm / params_.rsh_ohm - 1.0;
        const double step = f / df;
        i -= step;
        if (std::abs(step) < 1e-12) break;
    }
    return i;
}

double OneDiodeModel::voltage_at(double i, double g, double t_c,
                                 double v_min) const {
    // current_at is strictly decreasing in v; bisection between v_min and
    // a voltage safely above Voc.
    double lo = v_min;
    double hi = open_circuit_voltage(std::max(g, 1.0), t_c) + 5.0;
    if (current_at(lo, g, t_c) < i) return lo;  // cannot carry i even at v_min
    for (int iter = 0; iter < 80; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (current_at(mid, g, t_c) >= i)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double OneDiodeModel::open_circuit_voltage(double g, double t_c) const {
    if (g <= 0.0) return 0.0;
    double iph = 0.0;
    double i0 = 0.0;
    double vt = 0.0;
    scaled_params(g, t_c, iph, i0, vt);
    // Ignore Rsh for the bracket top, then bisect current_at(v)=0.
    const double voc_est = vt * std::log(iph / i0 + 1.0);
    double lo = 0.0;
    double hi = voc_est * 1.2 + 1.0;
    for (int iter = 0; iter < 80; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (current_at(mid, g, t_c) > 0.0)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double OneDiodeModel::short_circuit_current(double g, double t_c) const {
    return current_at(0.0, g, t_c);
}

OperatingPoint OneDiodeModel::max_power_point(double g, double t_c) const {
    OperatingPoint op;
    if (g <= 0.0) return op;
    const double voc = open_circuit_voltage(g, t_c);
    // Golden-section maximization of P(v) = v * I(v) on [0, voc].
    const double inv_phi = (std::sqrt(5.0) - 1.0) / 2.0;
    double a = 0.0;
    double b = voc;
    double x1 = b - inv_phi * (b - a);
    double x2 = a + inv_phi * (b - a);
    double f1 = x1 * current_at(x1, g, t_c);
    double f2 = x2 * current_at(x2, g, t_c);
    for (int iter = 0; iter < 60; ++iter) {
        if (f1 < f2) {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + inv_phi * (b - a);
            f2 = x2 * current_at(x2, g, t_c);
        } else {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - inv_phi * (b - a);
            f1 = x1 * current_at(x1, g, t_c);
        }
    }
    op.voltage_v = 0.5 * (a + b);
    op.current_a = current_at(op.voltage_v, g, t_c);
    op.power_w = op.voltage_v * op.current_a;
    return op;
}

std::vector<OneDiodeModel::IvPoint> OneDiodeModel::iv_curve(
    double g, double t_c, int samples) const {
    check_arg(samples >= 2, "OneDiodeModel::iv_curve: need >= 2 samples");
    std::vector<IvPoint> curve(static_cast<std::size_t>(samples));
    const double voc = open_circuit_voltage(g, t_c);
    for (int k = 0; k < samples; ++k) {
        const double v = voc * k / (samples - 1);
        curve[static_cast<std::size_t>(k)] = {v, current_at(v, g, t_c)};
    }
    return curve;
}

OneDiodeModel OneDiodeModel::fit_datasheet(const ModuleSpec& spec,
                                           double ideality, double rsh_ohm) {
    OneDiodeParams p;
    p.ideality = ideality;
    p.rsh_ohm = rsh_ohm;
    p.cells_in_series = spec.cells_in_series;
    const double vt_total =
        ideality * spec.cells_in_series * thermal_voltage(25.0);
    // Iph ~= Isc (Rs*Isc << Rsh), I0 from the open-circuit condition.
    p.iph_ref_a = spec.isc_ref_a;
    p.i0_ref_a =
        (p.iph_ref_a - spec.voc_ref_v / rsh_ohm) /
        (std::exp(spec.voc_ref_v / vt_total) - 1.0);
    check_arg(p.i0_ref_a > 0.0,
              "OneDiodeModel::fit_datasheet: inconsistent datasheet values");

    // Rs by bisection: increasing Rs monotonically lowers the maximum
    // power; match the datasheet Pmp.
    double lo = 0.0;
    double hi = 2.0;  // ohm, far above any real module
    for (int iter = 0; iter < 50; ++iter) {
        p.rs_ohm = 0.5 * (lo + hi);
        const OneDiodeModel candidate(p);
        const double pmp =
            candidate.max_power_point(kGRef, 25.0).power_w;
        if (pmp > spec.p_max_ref_w)
            lo = p.rs_ohm;
        else
            hi = p.rs_ohm;
    }
    p.rs_ohm = 0.5 * (lo + hi);
    return OneDiodeModel(p);
}

BypassedModule::BypassedModule(const OneDiodeModel& module_model,
                               int substring_count, double bypass_drop_v)
    : substring_model_(module_model),
      substrings_(static_cast<std::size_t>(substring_count)),
      bypass_drop_v_(bypass_drop_v),
      full_isc_ref_(module_model.params().iph_ref_a) {
    check_arg(substring_count > 0, "BypassedModule: need >= 1 substring");
    check_arg(bypass_drop_v >= 0.0, "BypassedModule: negative bypass drop");
    check_arg(module_model.params().cells_in_series %
                      substring_count ==
                  0,
              "BypassedModule: cells_in_series must divide evenly");
    OneDiodeParams p = module_model.params();
    // A substring is 1/n of the module: fewer cells *and* a 1/n share of
    // the lumped series/shunt resistances, so that n substrings in series
    // reproduce the full module exactly under uniform irradiance.
    p.cells_in_series /= substring_count;
    p.rs_ohm /= substring_count;
    p.rsh_ohm /= substring_count;
    substring_model_ = OneDiodeModel(p);
}

double BypassedModule::voltage_at(double i, const std::vector<double>& g,
                                  double t_c) const {
    check_arg(g.size() == substrings_,
              "BypassedModule: irradiance vector size mismatch");
    double v = 0.0;
    for (double gs : g) {
        // A substring carrying more than it can produce is clamped by its
        // bypass diode at -bypass_drop.
        const double vs =
            substring_model_.voltage_at(i, gs, t_c, -bypass_drop_v_);
        v += std::max(vs, -bypass_drop_v_);
    }
    return v;
}

OperatingPoint BypassedModule::max_power_point(const std::vector<double>& g,
                                               double t_c) const {
    check_arg(g.size() == substrings_,
              "BypassedModule: irradiance vector size mismatch");
    const double g_max = *std::max_element(g.begin(), g.end());
    if (g_max <= 0.0) return {};
    const double i_max =
        substring_model_.short_circuit_current(g_max, t_c);
    OperatingPoint best;
    constexpr int kScan = 400;
    for (int k = 1; k < kScan; ++k) {
        const double i = i_max * k / kScan;
        const double v = voltage_at(i, g, t_c);
        const double p = v * i;
        if (p > best.power_w) best = {p, v, i};
    }
    return best;
}

}  // namespace pvfp::pv

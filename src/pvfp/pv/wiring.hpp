#pragma once
/// \file wiring.hpp
/// Wiring-overhead model of the sparse placement (paper Section III-B2 and
/// Fig. 4).
///
/// For consecutive modules of a series string displaced by (dh, dv), the
/// extra cable beyond the default connector of length L is
///   extra = max(0, dh + dv - L)
/// and the string overhead is the sum over consecutive pairs.  The power
/// drop is R_unit * extra_length * I^2 (the string current flows through
/// the extra cable); parallel-side wiring is neglected per the paper
/// (combiner boxes are used either way).

#include <span>
#include <vector>

#include "pvfp/pv/array.hpp"

namespace pvfp::pv {

/// Cable/connector assumptions (paper Section V-C: AWG 10, ~7 mOhm/m,
/// ~1 $/m; the default connector spans one module width so a compact
/// side-by-side string needs no extra cable).
struct WiringSpec {
    double resistance_ohm_per_m = 0.007;
    double connector_length_m = 1.60;
    double cost_per_m = 1.0;
};

/// A module's center position on the roof plane [m].
struct ModulePosition {
    double x_m = 0.0;
    double y_m = 0.0;
};

/// Extra cable length [m] of one series string whose modules are visited
/// in placement order (paper's series-first enumeration).
double string_extra_length(std::span<const ModulePosition> string_modules,
                           const WiringSpec& spec);

/// Extra cable per string for a full panel in series-first order
/// (module j*m+i = module i of string j).
std::vector<double> panel_extra_lengths(
    std::span<const ModulePosition> modules, const Topology& topology,
    const WiringSpec& spec);

/// Instantaneous wiring power loss [W] of a string carrying \p current_a
/// through \p extra_length_m of extra cable.
double wiring_power_loss(double extra_length_m, double current_a,
                         const WiringSpec& spec);

/// One-off material cost [$] of the extra cable.
double wiring_cost(std::span<const double> extra_lengths,
                   const WiringSpec& spec);

}  // namespace pvfp::pv

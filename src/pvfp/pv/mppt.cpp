#include "pvfp/pv/mppt.hpp"

#include <cmath>

#include "pvfp/util/error.hpp"

namespace pvfp::pv {

double golden_section_max(const std::function<double(double)>& f, double lo,
                          double hi, int iterations) {
    check_arg(hi >= lo, "golden_section_max: hi < lo");
    check_arg(iterations > 0, "golden_section_max: iterations must be > 0");
    const double inv_phi = (std::sqrt(5.0) - 1.0) / 2.0;
    double a = lo;
    double b = hi;
    double x1 = b - inv_phi * (b - a);
    double x2 = a + inv_phi * (b - a);
    double f1 = f(x1);
    double f2 = f(x2);
    for (int k = 0; k < iterations; ++k) {
        if (f1 < f2) {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + inv_phi * (b - a);
            f2 = f(x2);
        } else {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - inv_phi * (b - a);
            f1 = f(x1);
        }
    }
    return 0.5 * (a + b);
}

OperatingPoint track_mpp(const std::function<double(double)>& current_at_v,
                         double v_max, int coarse_samples) {
    check_arg(v_max > 0.0, "track_mpp: v_max must be positive");
    check_arg(coarse_samples >= 3, "track_mpp: need >= 3 coarse samples");

    // Coarse scan finds the basin of the *global* maximum.
    double best_v = 0.0;
    double best_p = 0.0;
    for (int k = 0; k <= coarse_samples; ++k) {
        const double v = v_max * k / coarse_samples;
        const double p = v * current_at_v(v);
        if (p > best_p) {
            best_p = p;
            best_v = v;
        }
    }
    const double dv = v_max / coarse_samples;
    const double lo = std::max(0.0, best_v - dv);
    const double hi = std::min(v_max, best_v + dv);
    const double v_star = golden_section_max(
        [&](double v) { return v * current_at_v(v); }, lo, hi);

    OperatingPoint op;
    op.voltage_v = v_star;
    op.current_a = current_at_v(v_star);
    op.power_w = op.voltage_v * op.current_a;
    return op;
}

double mppt_efficiency(double panel_power_w, double ideal_power_w) {
    check_arg(panel_power_w >= 0.0 && ideal_power_w >= 0.0,
              "mppt_efficiency: negative power");
    if (ideal_power_w == 0.0) return 1.0;
    return panel_power_w / ideal_power_w;
}

}  // namespace pvfp::pv

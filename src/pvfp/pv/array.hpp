#pragma once
/// \file array.hpp
/// Series-parallel aggregation of module operating points into the panel
/// power (paper Section III-B1):
///
///   Vpanel = min_{j=1..n} ( sum_{i=1..m} Vmodule_ij )
///   Ipanel = sum_{j=1..n} ( min_{i=1..m} Imodule_ij )
///   Ppanel = Vpanel * Ipanel
///
/// The min over string currents is the series "weak module" bottleneck the
/// placement algorithm is designed to avoid; the min over string voltages
/// models parallel strings forced to the lowest string voltage.

#include <span>
#include <vector>

#include "pvfp/pv/module.hpp"

namespace pvfp::pv {

/// Series/parallel interconnection: n parallel strings of m modules each.
struct Topology {
    int series = 8;   ///< m: modules per string (paper uses m = 8)
    int strings = 2;  ///< n: parallel strings

    int total() const { return series * strings; }
};

/// Per-string aggregate.
struct StringOperating {
    double voltage_v = 0.0;  ///< sum of module voltages
    double current_a = 0.0;  ///< min of module currents (bottleneck)
};

/// Whole-panel aggregate plus diagnostics.
struct PanelOperating {
    double voltage_v = 0.0;
    double current_a = 0.0;
    double power_w = 0.0;
    /// Sum of the individual modules' maximum powers: what an ideal
    /// per-module-converter system would extract.
    double ideal_power_w = 0.0;
    /// ideal_power_w - power_w (>= 0): loss due to series/parallel
    /// mismatch, the quantity the topology-aware placement minimizes.
    double mismatch_loss_w = 0.0;
    std::vector<StringOperating> strings;
};

/// Aggregate module operating points in *series-first* order: index
/// j*m + i is module i of string j (the enumeration order of the paper's
/// placement loop).  \p points size must equal topology.total().
PanelOperating aggregate_panel(std::span<const OperatingPoint> points,
                               const Topology& topology);

/// Validate a topology against a module count; throws InvalidArgument on
/// m*n != N or non-positive values.
void check_topology(const Topology& topology, int module_count);

}  // namespace pvfp::pv

#include "pvfp/pv/array.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "pvfp/util/error.hpp"

namespace pvfp::pv {

void check_topology(const Topology& topology, int module_count) {
    check_arg(topology.series > 0 && topology.strings > 0,
              "Topology: series and strings must be positive");
    check_arg(topology.total() == module_count,
              "Topology: m*n must equal the number of modules");
}

PanelOperating aggregate_panel(std::span<const OperatingPoint> points,
                               const Topology& topology) {
    check_topology(topology, static_cast<int>(points.size()));

    PanelOperating panel;
    panel.strings.reserve(static_cast<std::size_t>(topology.strings));

    double min_string_voltage = std::numeric_limits<double>::infinity();
    for (int j = 0; j < topology.strings; ++j) {
        StringOperating str;
        str.current_a = std::numeric_limits<double>::infinity();
        for (int i = 0; i < topology.series; ++i) {
            const OperatingPoint& op =
                points[static_cast<std::size_t>(j * topology.series + i)];
            str.voltage_v += op.voltage_v;
            str.current_a = std::min(str.current_a, op.current_a);
            panel.ideal_power_w += op.power_w;
        }
        if (!std::isfinite(str.current_a)) str.current_a = 0.0;
        min_string_voltage = std::min(min_string_voltage, str.voltage_v);
        panel.current_a += str.current_a;
        panel.strings.push_back(str);
    }
    panel.voltage_v =
        std::isfinite(min_string_voltage) ? min_string_voltage : 0.0;
    panel.power_w = panel.voltage_v * panel.current_a;
    panel.mismatch_loss_w = std::max(0.0, panel.ideal_power_w - panel.power_w);
    return panel;
}

}  // namespace pvfp::pv

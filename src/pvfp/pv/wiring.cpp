#include "pvfp/pv/wiring.hpp"

#include <cmath>

#include "pvfp/util/error.hpp"

namespace pvfp::pv {

double string_extra_length(std::span<const ModulePosition> string_modules,
                           const WiringSpec& spec) {
    check_arg(spec.resistance_ohm_per_m >= 0.0 &&
                  spec.connector_length_m >= 0.0 && spec.cost_per_m >= 0.0,
              "WiringSpec: negative parameter");
    double extra = 0.0;
    for (std::size_t k = 1; k < string_modules.size(); ++k) {
        const double dh =
            std::abs(string_modules[k].x_m - string_modules[k - 1].x_m);
        const double dv =
            std::abs(string_modules[k].y_m - string_modules[k - 1].y_m);
        extra += std::max(0.0, dh + dv - spec.connector_length_m);
    }
    return extra;
}

std::vector<double> panel_extra_lengths(
    std::span<const ModulePosition> modules, const Topology& topology,
    const WiringSpec& spec) {
    check_topology(topology, static_cast<int>(modules.size()));
    std::vector<double> lengths(static_cast<std::size_t>(topology.strings));
    for (int j = 0; j < topology.strings; ++j) {
        const auto string_span = modules.subspan(
            static_cast<std::size_t>(j * topology.series),
            static_cast<std::size_t>(topology.series));
        lengths[static_cast<std::size_t>(j)] =
            string_extra_length(string_span, spec);
    }
    return lengths;
}

double wiring_power_loss(double extra_length_m, double current_a,
                         const WiringSpec& spec) {
    check_arg(extra_length_m >= 0.0, "wiring_power_loss: negative length");
    return spec.resistance_ohm_per_m * extra_length_m * current_a *
           current_a;
}

double wiring_cost(std::span<const double> extra_lengths,
                   const WiringSpec& spec) {
    double total = 0.0;
    for (double len : extra_lengths) {
        check_arg(len >= 0.0, "wiring_cost: negative length");
        total += len;
    }
    return total * spec.cost_per_m;
}

}  // namespace pvfp::pv

#pragma once
/// \file module.hpp
/// Empirical PV module model (paper Section III-B1).
///
/// The paper derives, from the Mitsubishi PV-MF165EB3 datasheet plots, an
/// empirical model of the module's maximum-power operating point as a
/// function of plane-of-array irradiance G and actual module temperature
/// Tact = Tair + k*G:
///
///   Pmodule(G,T) = Pref * (1.12 - 0.0048*Tact) * 1e-3 * G
///   Vmodule(G,T) = Vmp_ref * (1.08 - 0.0034*Tact) * (0.875 + 0.000125*G)
///   Imodule(G,T) = Pmodule / Vmodule
///
/// NOTE on coefficients: the paper prints 0.048 and 0.34, which give
/// negative power/voltage at 25 degC; the values are off by 10x/100x and
/// are corrected here to reproduce the datasheet STC point exactly
/// (165 W, 24 V at G=1000 W/m^2, Tact=25 C) — see DESIGN.md "Paper typo
/// corrections".  The temperature coefficients match the datasheet's
/// -0.48 %/K (power) and -0.345 %/K (Voc).

#include <string>

namespace pvfp::pv {

/// Geometric and electrical datasheet parameters of one PV module.
struct ModuleSpec {
    std::string name = "Mitsubishi PV-MF165EB3";
    /// Plan dimensions [m]: the paper's 160 x 80 cm module, an exact
    /// multiple of the s = 20 cm grid (k1 = 8, k2 = 4 cells).
    double width_m = 1.60;
    double height_m = 0.80;
    /// STC reference values (datasheet).
    double p_max_ref_w = 165.0;
    double voc_ref_v = 30.4;
    double isc_ref_a = 7.36;
    double vmp_ref_v = 24.0;   ///< ~80% of Voc (paper model step 4)
    /// Empirical model coefficients (paper equations, corrected).
    double p_offset = 1.12;
    double p_temp_coeff = 0.0048;   ///< [1/K]
    double v_offset = 1.08;
    double v_temp_coeff = 0.0034;   ///< [1/K]
    double v_g_offset = 0.875;
    double v_g_slope = 0.000125;    ///< [m^2/W]
    /// Cells in series (used by the one-diode extension).
    int cells_in_series = 50;
};

/// A module's electrical operating point (assumed at maximum power,
/// paper Section III-B1: "each module extracts the maximum power").
struct OperatingPoint {
    double power_w = 0.0;
    double voltage_v = 0.0;
    double current_a = 0.0;
};

/// The paper's empirical maximum-power model.
class EmpiricalModuleModel {
public:
    explicit EmpiricalModuleModel(ModuleSpec spec = {});

    const ModuleSpec& spec() const { return spec_; }

    /// Module area [m^2].
    double area_m2() const { return spec_.width_m * spec_.height_m; }

    /// Maximum power [W] at plane-of-array irradiance \p g [W/m^2] and
    /// actual module temperature \p tact_c [deg C].  Clamped at >= 0.
    double power(double g, double tact_c) const;

    /// Maximum-power voltage [V]; clamped at >= 0.
    double voltage(double g, double tact_c) const;

    /// Maximum-power current [A] = P/V (0 when V == 0).
    double current(double g, double tact_c) const;

    /// All three at once.
    OperatingPoint operating_point(double g, double tact_c) const;

    /// Tact = Tair + k*G (paper Section III-B1 step 3; k = alpha/h_c).
    static double actual_temperature(double t_air_c, double g,
                                     double thermal_k);

private:
    ModuleSpec spec_;
};

}  // namespace pvfp::pv

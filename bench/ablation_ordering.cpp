/// \file ablation_ordering.cpp
/// Ablation A3 — series-first enumeration and the weak-module effect
/// (paper Section V-B: "by enumerating modules in series-first fashion,
/// it guarantees that the bottleneck effect in a series string due to a
/// 'weak' module ... cannot occur").
///
/// The same module *positions* (greedy on Roof 1, N = 32) are kept while
/// the assignment of positions to series strings is permuted; only the
/// series/parallel aggregation changes.  Series-first assignment groups
/// consecutively-picked (hence similar) positions into the same string;
/// interleaved or scrambled assignments mix strong and weak positions and
/// pay the min-current bottleneck.

#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_common.hpp"
#include "pvfp/util/rng.hpp"
#include "pvfp/util/table.hpp"

int main(int argc, char** argv) {
    using namespace pvfp;
    bench::BenchReporter reporter(argc, argv);
    const auto whole_run = reporter.time_section("ablation_ordering/total");
    bench::print_banner(std::cout,
                        "Ablation A3: series-first vs permuted string "
                        "assignment",
                        "Vinco et al., DATE 2018, Section V-B");

    const auto config = bench::paper_config();
    const auto prepared = core::prepare_scenario(core::make_roof1(), config);
    const auto topo = bench::paper_topology(32);

    const auto base = core::place_greedy(
        prepared.area, prepared.suitability.suitability, prepared.geometry,
        topo, bench::paper_greedy_options());

    const auto evaluate = [&](const core::Floorplan& plan) {
        return core::evaluate_floorplan(plan, prepared.area, prepared.field,
                                        prepared.model,
                                        bench::paper_eval_options());
    };

    TextTable table({"string assignment", "energy [MWh/yr]",
                     "mismatch [kWh]", "vs series-first"});
    table.set_align(0, Align::Left);

    const auto base_eval = evaluate(base);
    table.add_row({"series-first (paper)",
                   TextTable::num(base_eval.net_mwh(), 3),
                   TextTable::num(base_eval.mismatch_loss_kwh, 1), "-"});

    // Round-robin: module k -> string k % n (interleaves pick order).
    {
        core::Floorplan plan = base;
        const int m = topo.series;
        const int n = topo.strings;
        for (int k = 0; k < plan.module_count(); ++k) {
            const int string_idx = k % n;
            const int pos_in_string = k / n;
            plan.modules[static_cast<std::size_t>(string_idx * m +
                                                  pos_in_string)] =
                base.modules[static_cast<std::size_t>(k)];
        }
        const auto eval = evaluate(plan);
        table.add_row({"round-robin (interleaved)",
                       TextTable::num(eval.net_mwh(), 3),
                       TextTable::num(eval.mismatch_loss_kwh, 1),
                       TextTable::pct(eval.energy_kwh /
                                          base_eval.energy_kwh -
                                      1.0) +
                           "%"});
    }

    // Random permutations.
    Rng rng(99);
    for (int trial = 1; trial <= 3; ++trial) {
        core::Floorplan plan = base;
        std::vector<std::size_t> perm(plan.modules.size());
        std::iota(perm.begin(), perm.end(), 0u);
        for (std::size_t i = perm.size(); i > 1; --i)
            std::swap(perm[i - 1],
                      perm[static_cast<std::size_t>(rng.uniform_int(i))]);
        for (std::size_t i = 0; i < perm.size(); ++i)
            plan.modules[i] = base.modules[perm[i]];
        const auto eval = evaluate(plan);
        table.add_row({"random permutation #" + std::to_string(trial),
                       TextTable::num(eval.net_mwh(), 3),
                       TextTable::num(eval.mismatch_loss_kwh, 1),
                       TextTable::pct(eval.energy_kwh /
                                          base_eval.energy_kwh -
                                      1.0) +
                           "%"});
    }
    table.print(std::cout);

    std::cout << "\nShape check: series-first has the lowest mismatch loss; "
                 "permuted\nassignments mix weak and strong positions inside "
                 "strings and lose\nenergy to the series bottleneck — the "
                 "paper's Roof 1 argument.\n";
    return 0;
}

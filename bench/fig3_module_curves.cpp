/// \file fig3_module_curves.cpp
/// Reproduction of **Fig. 3** — "Power characteristics of Mitsubishi's
/// PV-MF165EB3": the empirical model's P, V, I as functions of irradiance
/// and actual module temperature, printed as the series behind the
/// datasheet plots the paper fits its equations to.
///
/// Checks printed against the paper's claims:
///  - STC point: 165 W at G = 1000 W/m^2, Tact = 25 C (exact);
///  - Vmp roughly independent of G, ~80% of Voc (Section III-B1 step 4);
///  - power changes ~5x over G in [200, 1000] (Section III-C);
///  - temperature swings change power by ~±20% at most (Section III-C).

#include <iostream>

#include "bench_common.hpp"
#include "pvfp/pv/module.hpp"
#include "pvfp/util/table.hpp"

int main(int argc, char** argv) {
    using namespace pvfp;
    bench::BenchReporter reporter(argc, argv);
    const auto whole_run = reporter.time_section("fig3_module_curves/total");
    bench::print_banner(std::cout,
                        "Fig. 3: PV-MF165EB3 empirical model characteristics",
                        "Vinco et al., DATE 2018, Fig. 3 / Section III-B1");

    const pv::EmpiricalModuleModel model;

    std::cout << "\nP(G) at fixed Tact [W] (rightmost plot of Fig. 3):\n";
    TextTable pg({"G [W/m^2]", "Tact=0C", "Tact=25C", "Tact=50C",
                  "Tact=75C"});
    for (int g = 0; g <= 1100; g += 100) {
        pg.add_row({std::to_string(g),
                    TextTable::num(model.power(g, 0.0), 1),
                    TextTable::num(model.power(g, 25.0), 1),
                    TextTable::num(model.power(g, 50.0), 1),
                    TextTable::num(model.power(g, 75.0), 1)});
    }
    pg.print(std::cout);

    std::cout << "\nVmp(G) at fixed Tact [V] (leftmost plot: 'roughly "
                 "independent of the irradiance'):\n";
    TextTable vg({"G [W/m^2]", "Tact=0C", "Tact=25C", "Tact=50C"});
    for (int g = 100; g <= 1100; g += 200) {
        vg.add_row({std::to_string(g),
                    TextTable::num(model.voltage(g, 0.0), 2),
                    TextTable::num(model.voltage(g, 25.0), 2),
                    TextTable::num(model.voltage(g, 50.0), 2)});
    }
    vg.print(std::cout);

    std::cout << "\nImp(G) at fixed Tact [A]:\n";
    TextTable ig({"G [W/m^2]", "Tact=0C", "Tact=25C", "Tact=50C"});
    for (int g = 100; g <= 1100; g += 200) {
        ig.add_row({std::to_string(g),
                    TextTable::num(model.current(g, 0.0), 3),
                    TextTable::num(model.current(g, 25.0), 3),
                    TextTable::num(model.current(g, 50.0), 3)});
    }
    ig.print(std::cout);

    std::cout << "\nModel anchors vs paper claims:\n";
    TextTable checks({"quantity", "measured", "paper/datasheet"});
    checks.set_align(0, Align::Left);
    checks.add_row({"P at STC [W]",
                    TextTable::num(model.power(1000.0, 25.0), 2), "165"});
    checks.add_row({"Vmp at STC [V]",
                    TextTable::num(model.voltage(1000.0, 25.0), 2),
                    "24 (~80% of Voc=30.4)"});
    checks.add_row(
        {"P(1000)/P(200) at 25C",
         TextTable::num(model.power(1000.0, 25.0) / model.power(200.0, 25.0),
                        2),
         "~5x (Sec III-C)"});
    checks.add_row(
        {"P(65C)/P(25C) at 800 W/m^2",
         TextTable::num(model.power(800.0, 65.0) / model.power(800.0, 25.0),
                        3),
         "within ~±20% band"});
    checks.add_row(
        {"dP/dT [%/K]",
         TextTable::num((model.power(1000.0, 35.0) / model.power(1000.0, 25.0) -
                         1.0) * 10.0,
                        3),
         "-0.48 (datasheet-class)"});
    checks.print(std::cout);
    return 0;
}

/// \file ablation_rigidity.cpp
/// Ablation A6 — the value of module-level placement freedom, the
/// paper's central novelty (Section I: individual modules "placed
/// individually, therefore possibly yielding an unconventional,
/// 'irregular' floorplanning").
///
/// Three placers on the same suitability data (Roof 3, both N):
///   1. compact block        — zero freedom (the traditional baseline);
///   2. rigid string rows    — string-level freedom only;
///   3. free greedy (paper)  — module-level freedom.
/// The 2->3 delta isolates what "irregular placement" is worth beyond
/// merely relocating whole strings.

#include <iostream>

#include "bench_common.hpp"
#include "pvfp/core/string_row_placer.hpp"
#include "pvfp/util/table.hpp"

int main(int argc, char** argv) {
    using namespace pvfp;
    bench::BenchReporter reporter(argc, argv);
    const auto whole_run = reporter.time_section("ablation_rigidity/total");
    bench::print_banner(std::cout,
                        "Ablation A6: placement freedom (block / rigid "
                        "rows / free modules)",
                        "Vinco et al., DATE 2018, Sections I & V-B");

    const auto config = bench::paper_config();
    const auto prepared = core::prepare_scenario(core::make_roof3(), config);

    TextTable table({"N", "placer", "energy [MWh/yr]", "vs block",
                     "mismatch [kWh]", "cable [m]"});
    table.set_align(1, Align::Left);

    for (const int n : {16, 32}) {
        const auto topo = bench::paper_topology(n);
        const auto eval = [&](const core::Floorplan& plan) {
            return core::evaluate_floorplan(plan, prepared.area,
                                            prepared.field, prepared.model,
                                            bench::paper_eval_options());
        };

        const auto block =
            core::place_compact(prepared.area,
                                prepared.suitability.suitability,
                                prepared.geometry, topo);
        const auto block_eval = eval(block.plan);

        const auto rows = core::place_string_rows(
            prepared.area, prepared.suitability.suitability,
            prepared.geometry, topo);
        const auto rows_eval = eval(rows);

        const auto free_plan = core::place_greedy(
            prepared.area, prepared.suitability.suitability,
            prepared.geometry, topo, bench::paper_greedy_options());
        const auto free_eval = eval(free_plan);

        const auto add = [&](const char* name,
                             const core::EvaluationResult& e) {
            table.add_row({std::to_string(n), name,
                           TextTable::num(e.net_mwh(), 3),
                           TextTable::pct(e.energy_kwh /
                                              block_eval.energy_kwh -
                                          1.0) +
                               "%",
                           TextTable::num(e.mismatch_loss_kwh, 1),
                           TextTable::num(e.extra_cable_m, 1)});
        };
        add("compact block (trad)", block_eval);
        add("rigid string rows", rows_eval);
        add("free modules (paper)", free_eval);
        table.add_separator();
    }
    table.print(std::cout);

    std::cout << "\nReading: string-level freedom recovers part of the "
                 "gain (strings\ndodge the worst zones); module-level "
                 "freedom adds the rest by letting\neach module settle on "
                 "its own best cells — the paper's Fig. 1 point,\n"
                 "quantified.\n";
    return 0;
}

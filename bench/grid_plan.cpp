/// \file grid_plan.cpp
/// Grid-aware sequential placement at city scale: the incremental
/// placer (re-score only the picked feeder) against its brute-force
/// differential oracle (rebuild flows + DPI for the whole model every
/// step) on a synthetic 20-feeder radial network with ~2000 attached
/// roofs.  Both produce bitwise-identical plans — the bench asserts
/// that before reporting — so the numbers measure pure re-scoring
/// cost, not different answers.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pvfp/gis/city_runner.hpp"
#include "pvfp/grid/feeder_model.hpp"
#include "pvfp/grid/sequential_place.hpp"
#include "pvfp/util/rng.hpp"

namespace {

using pvfp::Rng;
namespace grid = pvfp::grid;
namespace gis = pvfp::gis;

constexpr int kFeeders = 20;
constexpr int kBusesPerFeeder = 100;
constexpr int kRoofsPerFeeder = 100;

/// Write a synthetic radial feeder index: per feeder a root plus a
/// random tree of buses (each parented to a random earlier bus), one
/// roof per bus, and a binding export cap on three feeders out of four.
std::string write_feeder_index(const std::filesystem::path& dir) {
    Rng rng(0x6D1DBE11ULL);
    const std::filesystem::path path = dir / "feeder.csv";
    std::ofstream out(path);
    out << "kind,id,feeder,parent,r_ohm,ampacity_a,load_kw,export_cap_kw,"
           "bus\n";
    char buf[256];
    for (int f = 0; f < kFeeders; ++f) {
        // Roughly half the fleet's average export fits: caps bind.
        const double cap =
            (f % 4 == 3) ? 0.0 : 0.06 * static_cast<double>(kRoofsPerFeeder);
        std::snprintf(buf, sizeof buf, "feeder,F%02d,,,,,,%.3f,\n", f, cap);
        out << buf;
        std::snprintf(buf, sizeof buf,
                      "bus,F%02d_root,F%02d,,%.4f,400.0,0.0,,\n", f, f,
                      rng.uniform(0.01, 0.05));
        out << buf;
        for (int b = 0; b < kBusesPerFeeder; ++b) {
            char parent_buf[32];
            if (b == 0) {
                std::snprintf(parent_buf, sizeof parent_buf, "F%02d_root", f);
            } else {
                std::snprintf(parent_buf, sizeof parent_buf, "F%02d_b%03d", f,
                              static_cast<int>(rng.uniform_int(
                                  static_cast<std::uint64_t>(b))));
            }
            std::snprintf(buf, sizeof buf,
                          "bus,F%02d_b%03d,F%02d,%s,%.4f,%.1f,%.3f,,\n", f, b,
                          f, parent_buf, rng.uniform(0.02, 0.10),
                          100.0 + 20.0 * static_cast<double>(
                                              rng.uniform_int(8)),
                          rng.uniform(0.4, 2.5));
            out << buf;
        }
        for (int r = 0; r < kRoofsPerFeeder; ++r) {
            std::snprintf(buf, sizeof buf, "roof,roof_%02d_%03d,,,,,,,"
                          "F%02d_b%03d\n",
                          f, r, f,
                          static_cast<int>(
                              rng.uniform_int(kBusesPerFeeder)));
            out << buf;
        }
    }
    return path.string();
}

/// Synthetic ranked-city results: one ok record per roof with a yield
/// in the fixture's ballpark, plus a sprinkle of error records the
/// placer must skip.
std::vector<gis::RoofResult> synth_results() {
    Rng rng(0x6D1DBE12ULL);
    std::vector<gis::RoofResult> results;
    results.reserve(static_cast<std::size_t>(kFeeders * kRoofsPerFeeder));
    char id[32];
    for (int f = 0; f < kFeeders; ++f) {
        for (int r = 0; r < kRoofsPerFeeder; ++r) {
            std::snprintf(id, sizeof id, "roof_%02d_%03d", f, r);
            gis::RoofResult result;
            result.id = id;
            if (rng.uniform() < 0.05) {
                result.ok = false;
                result.error = "synthetic failure";
            } else {
                result.ok = true;
                result.best_kwh = rng.uniform(400.0, 4000.0);
            }
            results.push_back(result);
        }
    }
    return results;
}

}  // namespace

int main(int argc, char** argv) {
    pvfp::bench::BenchReporter reporter(argc, argv);
    pvfp::bench::print_banner(
        std::cout, "Grid-aware sequential placement: incremental vs oracle",
        "DPI scoring after arXiv 1706.04596; placement per PR 8");

    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "pvfp_bench_grid";
    std::filesystem::create_directories(dir);
    const std::string index_path = write_feeder_index(dir);
    const grid::FeederModel model = grid::FeederModel::load(index_path);
    const std::vector<gis::RoofResult> results = synth_results();
    std::cout << "model       : " << model.feeders().size() << " feeders, "
              << model.buses().size() << " buses, "
              << model.attachments().size() << " attached roofs\n";

    using Clock = std::chrono::steady_clock;
    const grid::GridPlaceOptions options;  // in-memory plan only

    // Warm-up + correctness: the oracle and the incremental placer must
    // agree bitwise before their timings mean anything.
    const grid::GridPlanResult plan =
        grid::sequential_place(model, results, options);
    const grid::GridPlanResult oracle =
        grid::sequential_place_reference(model, results, options);
    if (plan.placements.size() != oracle.placements.size())
        throw std::runtime_error("bench_grid_plan: plan sizes diverge");
    for (std::size_t i = 0; i < plan.placements.size(); ++i)
        if (grid::placement_to_jsonl(plan.placements[i]) !=
            grid::placement_to_jsonl(oracle.placements[i]))
            throw std::runtime_error(
                "bench_grid_plan: plans diverge at pick " +
                std::to_string(i));
    std::cout << "plan        : " << plan.placements.size() << " placed, "
              << plan.skipped.size() << " skipped ("
              << plan.errors << " errors) — incremental == oracle\n";

    constexpr int kReps = 5;
    double incremental_ms = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
        const auto t0 = Clock::now();
        (void)grid::sequential_place(model, results, options);
        incremental_ms +=
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
    }
    incremental_ms /= kReps;
    reporter.record("grid/sequential_place_ms", incremental_ms,
                    static_cast<std::int64_t>(plan.placements.size()));
    std::cout << "incremental : " << incremental_ms << " ms (avg of "
              << kReps << ")\n";

    double oracle_ms = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
        const auto t0 = Clock::now();
        (void)grid::sequential_place_reference(model, results, options);
        oracle_ms +=
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
    }
    oracle_ms /= kReps;
    reporter.record("grid/brute_force_ms", oracle_ms,
                    static_cast<std::int64_t>(oracle.placements.size()));
    std::cout << "brute force : " << oracle_ms << " ms (avg of " << kReps
              << ")\n";

    if (incremental_ms > 0.0)
        std::cout << "\nincremental speedup: " << oracle_ms / incremental_ms
                  << "x (re-score one feeder vs rebuild the model)\n";
    std::filesystem::remove_all(dir);
    return 0;
}

/// \file runtime_scaling.cpp
/// Reproduction of the paper's **Section V-B runtime claim**: "The
/// execution time of the placement algorithm is proportional to the
/// number of valid grid elements and to the number of panels to be
/// placed, and required less than 120 s under all configurations".
///
/// google-benchmark sweep of place_greedy over Ng and N on synthetic
/// areas (plus the real Roof-2 suitability), reporting the scaling
/// exponents via benchmark complexity estimation.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "pvfp/core/greedy_placer.hpp"
#include "pvfp/geo/horizon.hpp"
#include "pvfp/geo/raster.hpp"
#include "pvfp/util/parallel.hpp"
#include "pvfp/util/rng.hpp"

namespace {

using namespace pvfp;

/// Synthetic area of the given size with a smooth random suitability.
struct Instance {
    geo::PlacementArea area;
    Grid2D<double> suitability;
};

Instance make_instance(int width, int height, std::uint64_t seed) {
    Instance inst;
    inst.area.width = width;
    inst.area.height = height;
    inst.area.valid = Grid2D<unsigned char>(width, height, 1);
    inst.area.valid_count = width * height;
    inst.area.cell_size = 0.2;
    inst.suitability = Grid2D<double>(width, height, 0.0);
    Rng rng(seed);
    for (int k = 0; k < 12; ++k) {
        const double cx = rng.uniform(0.0, width);
        const double cy = rng.uniform(0.0, height);
        const double amp = rng.uniform(200.0, 600.0);
        const double sigma2 = rng.uniform(20.0, 120.0);
        for (int y = 0; y < height; ++y)
            for (int x = 0; x < width; ++x)
                inst.suitability(x, y) +=
                    amp * std::exp(-((x - cx) * (x - cx) +
                                     (y - cy) * (y - cy)) /
                                   sigma2);
    }
    return inst;
}

/// Sweep Ng at fixed N = 16 (paper: time proportional to Ng).
void BM_GreedyVsGridSize(benchmark::State& state) {
    const int width = static_cast<int>(state.range(0));
    const int height = 51;  // paper-roof depth
    const Instance inst = make_instance(width, height, 7);
    const core::PanelGeometry g{8, 4};
    const pv::Topology topo{8, 2};
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::place_greedy(
            inst.area, inst.suitability, g, topo));
    }
    state.SetComplexityN(width * height);
}
BENCHMARK(BM_GreedyVsGridSize)
    ->Arg(72)
    ->Arg(144)
    ->Arg(288)
    ->Arg(576)
    ->Complexity(benchmark::oN);

/// Sweep N at fixed Ng (paper: time proportional to N).
void BM_GreedyVsModuleCount(benchmark::State& state) {
    const Instance inst = make_instance(288, 51, 11);
    const core::PanelGeometry g{8, 4};
    const int n = static_cast<int>(state.range(0));
    const pv::Topology topo{8, n / 8};
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::place_greedy(
            inst.area, inst.suitability, g, topo));
    }
    state.SetComplexityN(n);
}
BENCHMARK(BM_GreedyVsModuleCount)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Complexity();

/// Anchor enumeration alone (the per-call Ng-proportional part).
void BM_EnumerateAnchors(benchmark::State& state) {
    const int width = static_cast<int>(state.range(0));
    const Instance inst = make_instance(width, 51, 13);
    const core::PanelGeometry g{8, 4};
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::enumerate_anchors(inst.area, g));
    }
    state.SetComplexityN(width * 51);
}
BENCHMARK(BM_EnumerateAnchors)->Arg(72)->Arg(288)->Arg(1152)->Complexity(
    benchmark::oN);

/// Thread sweep of the prepare-time bottleneck (HorizonMap ray sweep):
/// Arg = thread count, so the per-Arg timings are the speedup curve and
/// the reported counter mirrors the `threads` field of the hand-rolled
/// benches' --json records.
void BM_HorizonMapThreadSweep(benchmark::State& state) {
    const int threads = static_cast<int>(state.range(0));
    pvfp::set_thread_count(threads);
    // A DSM with structure so the march does real work: random boxes.
    pvfp::geo::Raster dsm(160, 96, 0.2, 5.0);
    pvfp::Rng rng(17);
    for (int b = 0; b < 24; ++b) {
        const int bx = static_cast<int>(rng.uniform_int(150));
        const int by = static_cast<int>(rng.uniform_int(90));
        const double h = rng.uniform(0.5, 4.0);
        for (int y = by; y < std::min(96, by + 6); ++y)
            for (int x = bx; x < std::min(160, bx + 6); ++x)
                dsm(x, y) += h;
    }
    pvfp::geo::HorizonOptions opt;
    opt.azimuth_sectors = 48;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pvfp::geo::HorizonMap(dsm, 8, 8, 144, 80, opt));
    }
    state.counters["threads"] = threads;
    pvfp::set_thread_count(0);  // restore the default pool
}
BENCHMARK(BM_HorizonMapThreadSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Thread sweep of the placement scoring path on a large synthetic area.
void BM_GreedyThreadSweep(benchmark::State& state) {
    const int threads = static_cast<int>(state.range(0));
    pvfp::set_thread_count(threads);
    const Instance inst = make_instance(576, 51, 19);
    const core::PanelGeometry g{8, 4};
    const pv::Topology topo{8, 4};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::place_greedy(inst.area, inst.suitability, g, topo));
    }
    state.counters["threads"] = threads;
    pvfp::set_thread_count(0);
}
BENCHMARK(BM_GreedyThreadSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();

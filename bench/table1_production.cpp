/// \file table1_production.cpp
/// Reproduction of **Table I** — "Characteristics of each roof, and power
/// production of the proposed PV floorplanning algorithm with respect to
/// traditional placements": three roofs x N in {16, 32}, m = 8 series.
///
/// The whole campaign runs through the batch API (core::run_scenarios):
/// the three roofs are prepared and compared concurrently on the thread
/// pool, which is what makes the full-resolution reproduction scale with
/// cores.  A final thread sweep re-times one evaluation at 1/2/4/max
/// threads (each `--json` record carries a `threads` field) and checks
/// that the energies are bitwise identical at every thread count.

#include <algorithm>
#include <iostream>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "pvfp/util/parallel.hpp"
#include "pvfp/util/table.hpp"

namespace {

struct PaperRow {
    const char* roof;
    int n;
    double trad_mwh;
    double prop_mwh;
    double gain_pct;
};

constexpr PaperRow kPaperRows[] = {
    {"Roof 1", 16, 3.430, 4.094, 19.37},
    {"Roof 1", 32, 6.729, 7.499, 11.44},
    {"Roof 2", 16, 2.971, 3.619, 21.85},
    {"Roof 2", 32, 5.941, 7.404, 23.63},
    {"Roof 3", 16, 2.957, 3.642, 23.16},
    {"Roof 3", 32, 5.746, 7.405, 28.86},
};

}  // namespace

int main(int argc, char** argv) {
    using namespace pvfp;
    bench::BenchReporter reporter(argc, argv);
    // The `total` record is the cross-PR trajectory key: it must keep
    // measuring the campaign only, so it is closed before the thread
    // sweep below.
    std::optional<bench::BenchReporter::Scope> whole_run;
    whole_run.emplace(reporter, "table1_production/total", 1);
    bench::print_banner(std::cout, "Table I: yearly PV system production",
                        "Vinco et al., DATE 2018, Table I / Section V-B");

    // The full campaign as one batch: prepare + place + evaluate the
    // three roofs for both paper topologies (N = 16 and N = 32).
    core::BatchOptions batch;
    batch.topologies = {bench::paper_topology(16), bench::paper_topology(32)};
    batch.greedy = bench::paper_greedy_options();
    batch.eval = bench::paper_eval_options();

    std::vector<core::ScenarioReport> reports;
    {
        const auto section =
            reporter.time_section("table1_production/run_scenarios");
        const auto scenarios = core::make_paper_roofs();
        reports = core::run_scenarios(scenarios, bench::paper_config(),
                                      batch);
    }

    TextTable geometry({"Roof", "WxL [cells]", "Ng (here)", "Ng (paper)",
                        "tilt", "azimuth"});
    geometry.set_align(0, Align::Left);
    const int paper_ng[] = {9416, 11892, 11672};
    for (std::size_t r = 0; r < reports.size(); ++r) {
        const auto& p = reports[r].prepared;
        geometry.add_row({p.name,
                          std::to_string(p.area.width) + "x" +
                              std::to_string(p.area.height),
                          std::to_string(p.area.valid_count),
                          std::to_string(paper_ng[r]),
                          TextTable::num(rad2deg(p.area.tilt_rad), 0) + " deg",
                          TextTable::num(rad2deg(p.area.azimuth_rad), 0) +
                              " deg"});
    }
    geometry.print(std::cout);
    std::cout << '\n';

    TextTable table({"Roof", "N", "Trad MWh", "Prop MWh", "gain %",
                     "paper Trad", "paper Prop", "paper %", "mismatch kWh",
                     "cable m", "baseline"});
    table.set_align(0, Align::Left);

    std::size_t paper_idx = 0;
    for (const auto& report : reports) {
        for (std::size_t t = 0; t < batch.topologies.size(); ++t) {
            const int n = batch.topologies[t].total();
            const auto& cmp = report.comparisons[t];
            const PaperRow& ref = kPaperRows[paper_idx++];
            const char* mode =
                cmp.traditional_mode == core::CompactMode::FullBlock
                    ? "block"
                    : (cmp.traditional_mode == core::CompactMode::StringRows
                           ? "rows"
                           : "per-mod");
            table.add_row(
                {report.prepared.name, std::to_string(n),
                 TextTable::num(cmp.traditional_eval.net_mwh(), 3),
                 TextTable::num(cmp.proposed_eval.net_mwh(), 3),
                 TextTable::pct(cmp.improvement()),
                 TextTable::num(ref.trad_mwh, 3),
                 TextTable::num(ref.prop_mwh, 3),
                 "+" + TextTable::num(ref.gain_pct, 2),
                 TextTable::num(cmp.traditional_eval.mismatch_loss_kwh, 1) +
                     "->" +
                     TextTable::num(cmp.proposed_eval.mismatch_loss_kwh, 1),
                 TextTable::num(cmp.proposed_eval.extra_cable_m, 1), mode});
        }
        table.add_separator();
    }
    table.print(std::cout);

    whole_run.reset();  // campaign done: close the trajectory record

    // Thread sweep over the heaviest single evaluation (Roof 1, N = 32):
    // one record per thread count (the `threads` JSON field captures the
    // sweep), plus a bitwise determinism check across all counts.
    const int hw_threads = thread_count();
    std::vector<int> sweep{1, 2, 4, hw_threads};
    std::sort(sweep.begin(), sweep.end());
    sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());
    const auto& roof1 = reports.front();
    const auto& plan = roof1.comparisons.back().proposed;
    std::vector<double> sweep_energies;
    for (const int t : sweep) {
        set_thread_count(t);
        const auto section = reporter.time_section(
            "table1_production/thread_sweep/eval_roof1_n32");
        const auto eval = core::evaluate_floorplan(
            plan, roof1.prepared.area, roof1.prepared.field,
            roof1.prepared.model, batch.eval);
        sweep_energies.push_back(eval.energy_kwh);
    }
    set_thread_count(0);  // restore the default
    bool bitwise_equal = true;
    for (const double e : sweep_energies)
        bitwise_equal = bitwise_equal && e == sweep_energies.front();
    std::cout << "\nThread sweep (Roof 1, N=32 evaluation) at {";
    for (std::size_t i = 0; i < sweep.size(); ++i)
        std::cout << (i ? "," : "") << sweep[i];
    std::cout << "} threads: energies bitwise "
              << (bitwise_equal ? "IDENTICAL" : "DIFFERENT (BUG)") << '\n';

    std::cout
        << "\nShape checks (paper Section V-B):\n"
        << "  - proposed >= traditional on every configuration;\n"
        << "  - the mismatch column shows the mechanism: the proposed\n"
        << "    placement slashes series-bottleneck (weak module) losses;\n"
        << "  - gains reach the tens of percent where the compact block\n"
        << "    cannot escape the heterogeneity (cf. Roof 2 at N=32), and\n"
        << "    the space-constrained Roof 1 gains least — the paper's\n"
        << "    ordering;\n"
        << "  - see bench/ablation_granularity for how the gain depends\n"
        << "    on the paper's cell-granular evaluation convention.\n";
    return bitwise_equal ? 0 : 1;
}

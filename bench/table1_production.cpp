/// \file table1_production.cpp
/// Reproduction of **Table I** — "Characteristics of each roof, and power
/// production of the proposed PV floorplanning algorithm with respect to
/// traditional placements": three roofs x N in {16, 32}, m = 8 series.
///
/// For each configuration the harness prints the paper's reported values
/// next to the measured ones, plus the diagnostics behind the gains
/// (mismatch loss avoided, wiring overhead paid).

#include <iostream>

#include "bench_common.hpp"
#include "pvfp/util/table.hpp"

namespace {

struct PaperRow {
    const char* roof;
    int n;
    double trad_mwh;
    double prop_mwh;
    double gain_pct;
};

constexpr PaperRow kPaperRows[] = {
    {"Roof 1", 16, 3.430, 4.094, 19.37},
    {"Roof 1", 32, 6.729, 7.499, 11.44},
    {"Roof 2", 16, 2.971, 3.619, 21.85},
    {"Roof 2", 32, 5.941, 7.404, 23.63},
    {"Roof 3", 16, 2.957, 3.642, 23.16},
    {"Roof 3", 32, 5.746, 7.405, 28.86},
};

}  // namespace

int main(int argc, char** argv) {
    using namespace pvfp;
    bench::BenchReporter reporter(argc, argv);
    const auto whole_run = reporter.time_section("table1_production/total");
    bench::print_banner(std::cout, "Table I: yearly PV system production",
                        "Vinco et al., DATE 2018, Table I / Section V-B");

    std::vector<core::PreparedScenario> roofs;
    {
        const auto prep =
            reporter.time_section("table1_production/prepare_roofs", 3);
        roofs = bench::prepare_paper_roofs();
    }

    TextTable geometry({"Roof", "WxL [cells]", "Ng (here)", "Ng (paper)",
                        "tilt", "azimuth"});
    geometry.set_align(0, Align::Left);
    const int paper_ng[] = {9416, 11892, 11672};
    for (std::size_t r = 0; r < roofs.size(); ++r) {
        const auto& p = roofs[r];
        geometry.add_row({p.name,
                          std::to_string(p.area.width) + "x" +
                              std::to_string(p.area.height),
                          std::to_string(p.area.valid_count),
                          std::to_string(paper_ng[r]),
                          TextTable::num(rad2deg(p.area.tilt_rad), 0) + " deg",
                          TextTable::num(rad2deg(p.area.azimuth_rad), 0) +
                              " deg"});
    }
    geometry.print(std::cout);
    std::cout << '\n';

    TextTable table({"Roof", "N", "Trad MWh", "Prop MWh", "gain %",
                     "paper Trad", "paper Prop", "paper %", "mismatch kWh",
                     "cable m", "baseline"});
    table.set_align(0, Align::Left);

    std::size_t paper_idx = 0;
    for (const auto& prepared : roofs) {
        for (const int n : {16, 32}) {
            const auto topo = bench::paper_topology(n);
            const auto section = reporter.time_section(
                "table1_production/" + prepared.name + "/n" +
                std::to_string(n));
            const auto cmp = core::compare_placements(
                prepared, topo, bench::paper_greedy_options(),
                bench::paper_eval_options());
            const PaperRow& ref = kPaperRows[paper_idx++];
            const char* mode =
                cmp.traditional_mode == core::CompactMode::FullBlock
                    ? "block"
                    : (cmp.traditional_mode == core::CompactMode::StringRows
                           ? "rows"
                           : "per-mod");
            table.add_row(
                {prepared.name, std::to_string(n),
                 TextTable::num(cmp.traditional_eval.net_mwh(), 3),
                 TextTable::num(cmp.proposed_eval.net_mwh(), 3),
                 TextTable::pct(cmp.improvement()),
                 TextTable::num(ref.trad_mwh, 3),
                 TextTable::num(ref.prop_mwh, 3),
                 "+" + TextTable::num(ref.gain_pct, 2),
                 TextTable::num(cmp.traditional_eval.mismatch_loss_kwh, 1) +
                     "->" +
                     TextTable::num(cmp.proposed_eval.mismatch_loss_kwh, 1),
                 TextTable::num(cmp.proposed_eval.extra_cable_m, 1), mode});
        }
        table.add_separator();
    }
    table.print(std::cout);

    std::cout
        << "\nShape checks (paper Section V-B):\n"
        << "  - proposed >= traditional on every configuration;\n"
        << "  - the mismatch column shows the mechanism: the proposed\n"
        << "    placement slashes series-bottleneck (weak module) losses;\n"
        << "  - gains reach the tens of percent where the compact block\n"
        << "    cannot escape the heterogeneity (cf. Roof 2 at N=32), and\n"
        << "    the space-constrained Roof 1 gains least — the paper's\n"
        << "    ordering;\n"
        << "  - see bench/ablation_granularity for how the gain depends\n"
        << "    on the paper's cell-granular evaluation convention.\n";
    return 0;
}

/// \file city_scale.cpp
/// City-scale batch bench: shared-sky batching vs per-roof weather
/// regeneration on the synthetic city fixture (ROADMAP "shared-weather
/// batching" / "city-scale batch ingestion").
///
/// Generates a 60-roof city (tiles + index) into a scratch directory,
/// then ranks it twice with gis::run_city under a production city
/// configuration — 5-minute sky resolution (cloud transients resolved),
/// sampled suitability/evaluation strides, 48 horizon sectors:
///   1. share_sky = false  — every roof regenerates the env series and
///      the per-step sun/transposition precompute (the pre-PR-5
///      run_scenarios behaviour);
///   2. share_sky = true   — one SharedSkyArtifact serves the batch.
/// Outputs are verified byte-identical; the wall-clock ratio is the
/// shared-sky batch speedup, and roofs/sec the city throughput.
/// `--json BENCH_city.json` records both runs for the BENCH_* trajectory
/// (scripts/collect_bench_city.sh).
///
///   bench_city_scale [--roofs N] [--minutes M] [--stride K]
///                    [--json out.json]

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "pvfp/gis/city_runner.hpp"
#include "pvfp/gis/fixture.hpp"
#include "pvfp/util/parallel.hpp"

namespace {

std::string read_file(const std::string& path) {
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace pvfp;
    using Clock = std::chrono::steady_clock;

    bench::BenchReporter reporter(argc, argv);
    int roofs = 60;
    int minutes = 5;
    long stride = 96;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (arg == "--roofs") roofs = std::atoi(next());
        else if (arg == "--minutes") minutes = std::atoi(next());
        else if (arg == "--stride") stride = std::atol(next());
    }

    bench::print_banner(std::cout, "City-scale batch ranking",
                        "ROADMAP: city-scale ingestion + shared-weather "
                        "batching");

    const std::string dir =
        (std::filesystem::temp_directory_path() / "pvfp_bench_city")
            .string();
    std::filesystem::remove_all(dir);
    gis::CityFixtureOptions fixture_options;
    fixture_options.roofs = roofs;
    const gis::CityFixture fixture =
        gis::generate_city_fixture(dir, fixture_options);
    const gis::TileIndex tiles = gis::TileIndex::scan(dir);
    const gis::RoofRegistry registry =
        gis::RoofRegistry::load(fixture.csv_index_path);
    std::cout << "fixture: " << fixture.records << " roofs, "
              << fixture.tiles_written << " tiles, "
              << minutes << "-minute grid, stride " << stride << ", "
              << thread_count() << " threads\n\n";

    gis::CityRunOptions options;
    options.config.grid = TimeGrid(minutes, 1, 365);
    options.config.suitability.step_stride = stride;
    options.config.horizon.azimuth_sectors = 48;
    options.eval.step_stride = stride;
    options.topologies = {{8, 2}};

    const auto timed_run = [&](bool share, const char* jsonl) {
        options.share_sky = share;
        options.jsonl_path = dir + "/" + jsonl;
        const auto start = Clock::now();
        const gis::CityRunSummary summary =
            gis::run_city(tiles, registry, options);
        const double ms = std::chrono::duration<double, std::milli>(
                              Clock::now() - start)
                              .count();
        std::cout << (share ? "shared sky " : "per-roof sky") << ": "
                  << ms / 1000.0 << " s  ("
                  << 1000.0 * static_cast<double>(summary.processed) / ms
                  << " roofs/sec, " << summary.failed << " infeasible)\n";
        reporter.record(share ? "city/shared_sky" : "city/per_roof_sky", ms,
                        summary.processed);
        return ms;
    };

    // Per-roof regeneration first (the baseline), shared second.
    const double per_roof_ms = timed_run(false, "per_roof.jsonl");
    const double shared_ms = timed_run(true, "shared.jsonl");

    const bool identical = read_file(dir + "/per_roof.jsonl") ==
                           read_file(dir + "/shared.jsonl");
    std::cout << "outputs byte-identical: " << (identical ? "yes" : "NO")
              << "\n";
    std::cout << "shared-sky batch speedup: " << per_roof_ms / shared_ms
              << "x\n";
    if (!identical) return 1;
    return 0;
}

/// \file city_scale.cpp
/// City-scale batch bench: shared-sky batching vs per-roof weather
/// regeneration on the synthetic city fixture (ROADMAP "shared-weather
/// batching" / "city-scale batch ingestion").
///
/// Generates a 60-roof city (tiles + index) into a scratch directory,
/// then ranks it twice with gis::run_city under a production city
/// configuration — 5-minute sky resolution (cloud transients resolved),
/// sampled suitability/evaluation strides, 48 horizon sectors:
///   1. share_sky = false  — every roof regenerates the env series and
///      the per-step sun/transposition precompute (the pre-PR-5
///      run_scenarios behaviour);
///   2. share_sky = true   — one SharedSkyArtifact serves the batch;
///   3. shared-horizon cold — a caller-owned gis::HorizonCache is
///      injected and the run pays the macro-tile marching that
///      populates it (roof windows are disjoint, so this pass does
///      *more* marching than the per-roof path — the cache's cost);
///   4. shared-horizon warm — the same cache serves a second full run
///      from resident planes: the steady-state re-rank / delta-rerun /
///      serve-daemon workload the cache exists for.
/// Runs 1 and 2 are verified byte-identical, as are runs 3 and 4
/// (cached planes vs freshly-marched planes).  The wall-clock ratios
/// are the shared-sky batch speedup and the shared-horizon *warm*
/// speedup (run 2 / run 4), and roofs/sec the city throughput.  Runs
/// 3/4 rank to a different deterministic stream than 1/2 (uniform
/// march distance over real halo terrain).  `--json BENCH_city.json`
/// records every run for the BENCH_* trajectory
/// (scripts/collect_bench_city.sh).
///
///   bench_city_scale [--roofs N] [--minutes M] [--stride K]
///                    [--json out.json]

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "pvfp/gis/city_runner.hpp"
#include "pvfp/gis/fixture.hpp"
#include "pvfp/gis/horizon_cache.hpp"
#include "pvfp/util/parallel.hpp"

namespace {

std::string read_file(const std::string& path) {
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace pvfp;
    using Clock = std::chrono::steady_clock;

    bench::BenchReporter reporter(argc, argv);
    int roofs = 60;
    int minutes = 5;
    long stride = 96;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (arg == "--roofs") roofs = std::atoi(next());
        else if (arg == "--minutes") minutes = std::atoi(next());
        else if (arg == "--stride") stride = std::atol(next());
    }

    bench::print_banner(std::cout, "City-scale batch ranking",
                        "ROADMAP: city-scale ingestion + shared-weather "
                        "batching");

    const std::string dir =
        (std::filesystem::temp_directory_path() / "pvfp_bench_city")
            .string();
    std::filesystem::remove_all(dir);
    gis::CityFixtureOptions fixture_options;
    fixture_options.roofs = roofs;
    const gis::CityFixture fixture =
        gis::generate_city_fixture(dir, fixture_options);
    const gis::TileIndex tiles = gis::TileIndex::scan(dir);
    const gis::RoofRegistry registry =
        gis::RoofRegistry::load(fixture.csv_index_path);
    std::cout << "fixture: " << fixture.records << " roofs, "
              << fixture.tiles_written << " tiles, "
              << minutes << "-minute grid, stride " << stride << ", "
              << thread_count() << " threads\n\n";

    gis::CityRunOptions options;
    options.config.grid = TimeGrid(minutes, 1, 365);
    options.config.suitability.step_stride = stride;
    options.config.horizon.azimuth_sectors = 48;
    // A 40 m march radius: the cold path's per-roof cap (margin +
    // footprint diagonal, ~29 m on the fixture) still binds, so the
    // cold timings are unchanged, while the shared-horizon run marches
    // the full uniform distance — a conservative comparison.
    options.config.horizon.max_distance = 40.0;
    options.eval.step_stride = stride;
    options.topologies = {{8, 2}};

    const auto timed_run = [&](const char* label, const char* record,
                               const char* jsonl, bool share_sky,
                               gis::HorizonCache* horizon_cache) {
        options.share_sky = share_sky;
        options.shared_horizon_cache = horizon_cache;
        options.jsonl_path = dir + "/" + jsonl;
        const auto start = Clock::now();
        const gis::CityRunSummary summary =
            gis::run_city(tiles, registry, options);
        const double ms = std::chrono::duration<double, std::milli>(
                              Clock::now() - start)
                              .count();
        std::cout << label << ": " << ms / 1000.0 << " s  ("
                  << 1000.0 * static_cast<double>(summary.processed) / ms
                  << " roofs/sec, " << summary.failed << " infeasible)\n";
        reporter.record(record, ms, summary.processed);
        return ms;
    };

    // Per-roof regeneration first (the baseline), shared sky second,
    // then the horizon cache's cold (populating) and warm (resident)
    // passes through one injected cache.
    const double per_roof_ms = timed_run(
        "per-roof sky        ", "city/per_roof_sky", "per_roof.jsonl",
        false, nullptr);
    const double shared_ms = timed_run(
        "shared sky          ", "city/shared_sky", "shared.jsonl",
        true, nullptr);

    gis::TileCache horizon_tiles(16);
    gis::HorizonCacheOptions cache_options;
    cache_options.horizon = options.config.horizon;
    gis::HorizonCache horizon_cache(tiles, &horizon_tiles, cache_options);
    const double cold_ms = timed_run(
        "shared horizon cold ", "city/shared_horizon_cold",
        "shared_horizon_cold.jsonl", true, &horizon_cache);
    const double warm_ms = timed_run(
        "shared horizon warm ", "city/shared_horizon",
        "shared_horizon.jsonl", true, &horizon_cache);

    const bool sky_identical = read_file(dir + "/per_roof.jsonl") ==
                               read_file(dir + "/shared.jsonl");
    const bool horizon_identical =
        read_file(dir + "/shared_horizon_cold.jsonl") ==
        read_file(dir + "/shared_horizon.jsonl");
    std::cout << "sky outputs byte-identical:          "
              << (sky_identical ? "yes" : "NO") << "\n";
    std::cout << "cold/warm horizon byte-identical:    "
              << (horizon_identical ? "yes" : "NO") << "\n";
    std::cout << "shared-sky batch speedup:            "
              << per_roof_ms / shared_ms << "x\n";
    std::cout << "shared-horizon cold overhead:        "
              << cold_ms / shared_ms << "x wall\n";
    std::cout << "shared-horizon warm speedup:         "
              << shared_ms / warm_ms << "x\n";
    if (!sky_identical || !horizon_identical) return 1;
    return 0;
}

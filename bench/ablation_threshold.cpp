/// \file ablation_threshold.cpp
/// Ablation A2 — the distance-threshold filter (paper Fig. 5 line 5:
/// candidates are rejected when further from the placed modules than
/// twice their average distance).  Sweeps the factor on Roof 2 / N = 32
/// and reports energy, cable and filter activity — the trade-off between
/// chasing bright outliers and wiring/mismatch cost.

#include <iostream>

#include "bench_common.hpp"
#include "pvfp/util/table.hpp"

int main(int argc, char** argv) {
    using namespace pvfp;
    bench::BenchReporter reporter(argc, argv);
    const auto whole_run = reporter.time_section("ablation_threshold/total");
    bench::print_banner(std::cout,
                        "Ablation A2: distance-threshold factor",
                        "Vinco et al., DATE 2018, Section III-C / Fig. 5");

    const auto config = bench::paper_config();
    const auto prepared = core::prepare_scenario(core::make_roof2(), config);
    const auto topo = bench::paper_topology(32);

    TextTable table({"threshold", "energy [MWh/yr]", "cable [m]",
                     "wiring loss [kWh]", "rejections", "relaxations"});
    table.set_align(0, Align::Left);

    struct Variant {
        std::string label;
        bool enabled;
        double factor;
    };
    const Variant variants[] = {
        {"disabled", false, 2.0}, {"1.0x", true, 1.0},
        {"1.5x", true, 1.5},      {"2.0x (paper)", true, 2.0},
        {"3.0x", true, 3.0},      {"5.0x", true, 5.0},
    };

    for (const auto& v : variants) {
        core::GreedyOptions opt = bench::paper_greedy_options();
        opt.enable_distance_threshold = v.enabled;
        opt.distance_threshold_factor = v.factor;
        core::GreedyStats stats;
        const auto plan = core::place_greedy(
            prepared.area, prepared.suitability.suitability,
            prepared.geometry, topo, opt, &stats);
        const auto eval =
            core::evaluate_floorplan(plan, prepared.area, prepared.field,
                                     prepared.model,
                                     bench::paper_eval_options());
        table.add_row({v.label, TextTable::num(eval.net_mwh(), 3),
                       TextTable::num(eval.extra_cable_m, 1),
                       TextTable::num(eval.wiring_loss_kwh, 2),
                       std::to_string(stats.threshold_rejections),
                       std::to_string(stats.threshold_relaxations)});
    }
    table.print(std::cout);

    std::cout << "\nShape check: the filter actively rejects remote "
                 "candidates (see the\nrejection counts) and bounds the "
                 "extra cable; the energy cost of that\nbound stays within "
                 "a few percent on these fields.  The paper adopts\nthe 2x "
                 "factor as the cable/energy compromise.\n";
    return 0;
}

/// \file fig6_irradiance_maps.cpp
/// Reproduction of **Fig. 6(b)** — the 75th-percentile irradiance
/// distribution over the three roofs ("brighter colors represent a larger
/// irradiation").  Rendered as ASCII heatmaps plus distribution summaries
/// so the spatial structure (darker right-hand sides, obstacle shade
/// zones, perimeter gradients) can be compared with the paper's maps.

#include <iostream>

#include "bench_common.hpp"
#include "pvfp/util/stats.hpp"
#include "pvfp/util/table.hpp"

int main(int argc, char** argv) {
    using namespace pvfp;
    bench::BenchReporter reporter(argc, argv);
    const auto whole_run =
        reporter.time_section("fig6_irradiance_maps/total");
    bench::print_banner(std::cout,
                        "Fig. 6(b): 75th-percentile irradiance maps",
                        "Vinco et al., DATE 2018, Fig. 6(b) / Section V-A");

    const auto roofs = bench::prepare_paper_roofs();

    TextTable stats({"Roof", "p75 min", "p75 mean", "p75 max",
                     "rel spread %", "unshaded POA kWh/m2"});
    stats.set_align(0, Align::Left);

    for (const auto& prepared : roofs) {
        const auto& gp = prepared.suitability.g_percentile;
        RunningStats rs;
        for (int y = 0; y < prepared.area.height; ++y)
            for (int x = 0; x < prepared.area.width; ++x)
                if (prepared.area.valid(x, y)) rs.add(gp(x, y));
        stats.add_row(
            {prepared.name, TextTable::num(rs.min(), 0),
             TextTable::num(rs.mean(), 0), TextTable::num(rs.max(), 0),
             TextTable::num((rs.max() - rs.min()) / rs.mean() * 100.0, 1),
             TextTable::num(prepared.field.unshaded_insolation_kwh_m2(), 0)});

        std::cout << "\n--- " << prepared.name
                  << " : p75(G) map (valid cells; brighter = higher) ---\n";
        HeatmapOptions opt;
        opt.max_width = 120;
        opt.mask = &prepared.area.valid;
        std::cout << render_heatmap(gp, opt);
        RunningStats range;
        for (int y = 0; y < prepared.area.height; ++y)
            for (int x = 0; x < prepared.area.width; ++x)
                if (prepared.area.valid(x, y)) range.add(gp(x, y));
        std::cout << heatmap_legend(range.min(), range.max(), "W/m^2")
                  << '\n';
    }

    std::cout << '\n';
    stats.print(std::cout);
    std::cout << "\nShape checks (paper Fig. 6(b)):\n"
              << "  - non-uniform p75 with darker right-hand side (Roofs "
                 "1-2, eastern\n"
              << "    neighbour) / left-hand side (Roof 3, western "
                 "neighbour);\n"
              << "  - Roof 1 depressed around the pipe racks; obstacle "
                 "shade zones visible.\n";
    return 0;
}

/// \file ablation_grid_pitch.cpp
/// Ablation A4 — the virtual grid pitch s (paper Section III-A: "a
/// smaller s yields more solutions, at the expense of longer computation
/// times"; the paper uses s = 20 cm so that the 160x80 cm module is an
/// integer multiple).  Sweeps s on Roof 2 / N = 16, reporting candidate
/// counts, preparation+placement runtime, and the energy of the result.

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "pvfp/util/table.hpp"

int main(int argc, char** argv) {
    using namespace pvfp;
    bench::BenchReporter reporter(argc, argv);
    const auto whole_run = reporter.time_section("ablation_grid_pitch/total");
    bench::print_banner(std::cout, "Ablation A4: virtual grid pitch s",
                        "Vinco et al., DATE 2018, Section III-A");

    const auto topo = bench::paper_topology(16);

    TextTable table({"s [cm]", "grid [cells]", "Ng", "anchors",
                     "prepare [s]", "place [ms]", "energy [MWh/yr]"});

    for (const double s : {0.4, 0.2, 0.1}) {
        auto config = bench::paper_config();
        config.cell_size = s;
        if (s < 0.15) {
            // March at 2 cells per step: keeps horizon cost bounded at
            // the fine pitch with negligible angular error.
            config.horizon.step_factor = 2.0;
            config.horizon.max_step_factor = 4.0;
        }
        const auto t0 = std::chrono::steady_clock::now();
        const auto prepared =
            core::prepare_scenario(core::make_roof2(), config);
        const auto t1 = std::chrono::steady_clock::now();
        core::GreedyStats stats;
        const auto plan = core::place_greedy(
            prepared.area, prepared.suitability.suitability,
            prepared.geometry, topo, bench::paper_greedy_options(), &stats);
        const auto t2 = std::chrono::steady_clock::now();
        const auto eval =
            core::evaluate_floorplan(plan, prepared.area, prepared.field,
                                     prepared.model,
                                     bench::paper_eval_options());
        const double prep_s =
            std::chrono::duration<double>(t1 - t0).count();
        const double place_ms =
            std::chrono::duration<double, std::milli>(t2 - t1).count();
        table.add_row({TextTable::num(s * 100.0, 0),
                       std::to_string(prepared.area.width) + "x" +
                           std::to_string(prepared.area.height),
                       std::to_string(prepared.area.valid_count),
                       std::to_string(stats.candidate_count),
                       TextTable::num(prep_s, 1),
                       TextTable::num(place_ms, 1),
                       TextTable::num(eval.net_mwh(), 3)});
    }
    table.print(std::cout);

    std::cout << "\nShape check: finer pitch multiplies candidates and "
                 "runtime while the\nextracted energy changes only "
                 "marginally — supporting the paper's\nchoice of s = 20 cm "
                 "(module dimensions' greatest common divisor).\n";
    return 0;
}

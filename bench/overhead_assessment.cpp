/// \file overhead_assessment.cpp
/// Reproduction of **Section V-C** — "Overhead Assessment": the wiring
/// overhead of the sparse placement in power, energy and cost, using the
/// paper's assumptions (AWG 10, ~7 mOhm/m, ~1 $/m, 4 A string current).
///
/// Paper numbers reproduced: RI^2 ~ 0.11 W per meter of extra cable;
/// ~0.5 kWh per meter per year at 50% duty; overhead ~0.05% of yearly
/// energy per meter; worst-case solutions ~20 m of extra cable.

#include <iostream>

#include "bench_common.hpp"
#include "pvfp/pv/wiring.hpp"
#include "pvfp/util/table.hpp"

int main(int argc, char** argv) {
    using namespace pvfp;
    bench::BenchReporter reporter(argc, argv);
    const auto whole_run =
        reporter.time_section("overhead_assessment/total");
    bench::print_banner(std::cout, "Section V-C: wiring overhead assessment",
                        "Vinco et al., DATE 2018, Section V-C");

    const pv::WiringSpec spec;  // AWG 10 defaults

    // --- Analytic part: the paper's per-meter numbers. -----------------
    const double i_string = 4.0;  // A at ~600 W/m^2 (paper's assumption)
    const double p_per_m = pv::wiring_power_loss(1.0, i_string, spec);
    // Energy per meter per year assuming 50% of the time at zero current
    // (dark) and the 4 A level otherwise — the paper's conservative bound.
    const double kwh_per_m_year = p_per_m * 8760.0 * 0.5 / 1000.0;

    TextTable analytic({"quantity", "measured", "paper"});
    analytic.set_align(0, Align::Left);
    analytic.add_row({"cable resistance [mOhm/m]",
                      TextTable::num(spec.resistance_ohm_per_m * 1000.0, 1),
                      "~7"});
    analytic.add_row({"power loss at 4 A [W/m]", TextTable::num(p_per_m, 3),
                      "~0.11"});
    analytic.add_row({"energy loss [kWh/m/yr]",
                      TextTable::num(kwh_per_m_year, 2), "~0.5"});
    analytic.add_row({"cable cost [$/m]", TextTable::num(spec.cost_per_m, 2),
                      "~1"});
    analytic.print(std::cout);

    // --- Measured part: actual overhead of the proposed placements. ----
    std::cout << "\nMeasured on the proposed placements (full-year "
                 "simulation):\n";
    const auto roofs = bench::prepare_paper_roofs();
    TextTable measured({"Roof", "N", "extra cable [m]", "wiring loss [kWh]",
                        "loss vs energy", "per meter", "cost [$]"});
    measured.set_align(0, Align::Left);
    double worst_cable = 0.0;
    for (const auto& prepared : roofs) {
        for (const int n : {16, 32}) {
            const auto cmp = core::compare_placements(
                prepared, bench::paper_topology(n),
                bench::paper_greedy_options(), bench::paper_eval_options());
            const auto& e = cmp.proposed_eval;
            worst_cable = std::max(worst_cable, e.extra_cable_m);
            const double pct = (e.energy_kwh > 0.0)
                                   ? e.wiring_loss_kwh / e.energy_kwh * 100.0
                                   : 0.0;
            const double per_m =
                (e.extra_cable_m > 0.0) ? pct / e.extra_cable_m : 0.0;
            measured.add_row({prepared.name, std::to_string(n),
                              TextTable::num(e.extra_cable_m, 1),
                              TextTable::num(e.wiring_loss_kwh, 2),
                              TextTable::num(pct, 3) + " %",
                              TextTable::num(per_m, 4) + " %/m",
                              TextTable::num(e.wiring_cost_usd, 2)});
        }
    }
    measured.print(std::cout);

    std::cout << "\nShape checks (paper Section V-C):\n"
              << "  - loss per meter of extra cable ~0.05 %/m or below "
                 "(paper: ~0.05 %/m);\n"
              << "  - worst-case extra cable here: "
              << TextTable::num(worst_cable, 1)
              << " m (paper: ~20 m class);\n"
              << "  - 'both power and cost overheads are not an issue'.\n";
    return 0;
}

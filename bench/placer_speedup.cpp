/// \file placer_speedup.cpp
/// Annealing refinement with full re-evaluation vs the incremental
/// delta-evaluator on the golden toy roof: the headline number of the
/// IncrementalEvaluator (ROADMAP "Incremental evaluation for placers").
/// Both paths run the identical proposal sequence (same seed, same RNG
/// stream), so the wall-time ratio is a pure evaluation-cost comparison.
/// `--json <path>` emits one record per timed section with the `threads`
/// field, feeding the BENCH_* trajectory collection.

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "pvfp/core/annealing_placer.hpp"
#include "pvfp/core/greedy_placer.hpp"
#include "pvfp/core/incremental_evaluator.hpp"
#include "pvfp/util/parallel.hpp"
#include "pvfp/util/table.hpp"

int main(int argc, char** argv) {
    using namespace pvfp;
    bench::BenchReporter reporter(argc, argv);
    bench::print_banner(std::cout,
                        "Placer speedup: full re-evaluation vs incremental "
                        "delta-evaluator",
                        "Vinco et al., DATE 2018, Section III-A objective");

    // The optimality-gap configuration: toy roof, 30-minute year,
    // stride-4 evaluation inside the search.
    core::ScenarioConfig config;
    config.grid = TimeGrid(30, 1, 365);
    config.weather.seed = 17;
    const auto prepared = core::prepare_scenario(core::make_toy(), config);
    const pv::Topology topology{2, 2};
    const auto greedy = core::place_greedy(
        prepared.area, prepared.suitability.suitability, prepared.geometry,
        topology);
    core::EvaluationOptions eval;
    eval.step_stride = 4;

    core::AnnealingOptions aopt;
    aopt.iterations = 1500;
    aopt.seed = 5;

    double full_ms = 0.0;
    double incremental_ms = 0.0;
    core::AnnealingStats full_stats;
    core::AnnealingStats inc_stats;
    core::Floorplan via_full;
    core::Floorplan via_delta;

    {
        const core::PlacementObjective objective =
            [&](const core::Floorplan& plan) {
                return core::evaluate_floorplan(plan, prepared.area,
                                                prepared.field,
                                                prepared.model, eval)
                    .energy_kwh;
            };
        const auto t0 = std::chrono::steady_clock::now();
        {
            const auto scope =
                reporter.time_section("placer_speedup/full_reeval",
                                      aopt.iterations);
            via_full = core::refine_annealing(greedy, prepared.area,
                                              objective, aopt, &full_stats);
        }
        full_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    }

    core::IncrementalStats ev_stats;
    {
        const auto t0 = std::chrono::steady_clock::now();
        {
            const auto scope =
                reporter.time_section("placer_speedup/incremental",
                                      aopt.iterations);
            // Constructing the evaluator (its one full pass) is part of
            // the incremental cost: that is what a caller pays end to end.
            core::IncrementalEvaluator evaluator(greedy, prepared.area,
                                                 prepared.field,
                                                 prepared.model, eval);
            via_delta = core::refine_annealing(evaluator, aopt, &inc_stats);
            ev_stats = evaluator.stats();
        }
        incremental_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    }

    const double speedup =
        incremental_ms > 0.0 ? full_ms / incremental_ms : 0.0;

    TextTable table({"path", "wall [ms]", "refined [kWh/yr]", "accepted"});
    table.set_align(0, Align::Left);
    table.add_row({"full re-evaluation", TextTable::num(full_ms, 1),
                   TextTable::num(full_stats.final_objective, 3),
                   std::to_string(full_stats.accepted)});
    table.add_row({"incremental deltas", TextTable::num(incremental_ms, 1),
                   TextTable::num(inc_stats.final_objective, 3),
                   std::to_string(inc_stats.accepted)});
    table.print(std::cout);

    std::cout << "\nSpeedup: " << TextTable::num(speedup, 1) << "x over "
              << aopt.iterations << " iterations at "
              << pvfp::thread_count() << " thread(s)\n"
              << "Evaluator: " << ev_stats.proposals << " proposals, "
              << ev_stats.series_computed << " anchor series computed, "
              << ev_stats.series_reused
              << " reused from the anchor cache, 1 full pass\n"
              << "\nAcceptance gate (ISSUE 3): the incremental path must "
                 "be >= 10x faster\non the golden toy roof; both paths "
                 "propose the identical move sequence.\n";
    return 0;
}

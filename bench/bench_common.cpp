#include "bench_common.hpp"

#include <ostream>

#include "pvfp/util/error.hpp"

namespace pvfp::bench {

core::ScenarioConfig paper_config(std::uint64_t weather_seed) {
    core::ScenarioConfig config;
    config.location = solar::Location{45.07, 7.69, 1.0};  // Torino
    config.grid = pvfp::TimeGrid(15, 1, 365);             // NT = 35040
    config.weather.seed = weather_seed;
    config.cell_size = 0.2;                               // s = 20 cm
    return config;
}

std::vector<core::PreparedScenario> prepare_paper_roofs(
    std::uint64_t weather_seed) {
    const core::ScenarioConfig config = paper_config(weather_seed);
    std::vector<core::PreparedScenario> prepared;
    for (const auto& scenario : core::make_paper_roofs())
        prepared.push_back(core::prepare_scenario(scenario, config));
    return prepared;
}

pv::Topology paper_topology(int n_modules) {
    check_arg(n_modules % 8 == 0,
              "paper_topology: the paper uses series strings of 8");
    return pv::Topology{8, n_modules / 8};
}

core::GreedyOptions paper_greedy_options() {
    core::GreedyOptions options;
    options.anchor_score = core::AnchorScore::TopLeftCell;
    return options;
}

core::EvaluationOptions paper_eval_options() {
    core::EvaluationOptions options;
    options.module_irradiance = core::ModuleIrradiance::AnchorCell;
    return options;
}

void print_banner(std::ostream& os, const std::string& title,
                  const std::string& paper_reference) {
    os << "================================================================"
          "====\n"
       << title << '\n'
       << "Reproduces: " << paper_reference << '\n'
       << "Setup: synthetic Torino roofs/weather (see DESIGN.md "
          "substitutions);\n"
       << "       shapes and relative effects are comparable, absolute "
          "values\n"
       << "       depend on the synthetic climate.\n"
       << "================================================================"
          "====\n";
}

std::vector<ModuleBox> plan_boxes(const core::Floorplan& plan) {
    std::vector<ModuleBox> boxes;
    boxes.reserve(plan.modules.size());
    for (int i = 0; i < plan.module_count(); ++i) {
        const auto& m = plan.modules[static_cast<std::size_t>(i)];
        boxes.push_back({m.x, m.y, plan.geometry.k1, plan.geometry.k2,
                         i / plan.topology.series});
    }
    return boxes;
}

}  // namespace pvfp::bench

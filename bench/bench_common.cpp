#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>
#include <string_view>
#include <utility>

#include "pvfp/util/error.hpp"
#include "pvfp/util/parallel.hpp"

namespace pvfp::bench {

namespace {

/// JSON string escaping for record names (quotes, backslashes, control
/// characters; names are ASCII in practice).
std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

BenchReporter::BenchReporter(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--json") {
            if (i + 1 >= argc) {
                std::cerr << argv[0]
                          << ": --json requires a path argument\n";
                std::exit(2);
            }
            path_ = argv[i + 1];
            ++i;
        }
    }
}

BenchReporter::~BenchReporter() {
    if (path_.empty()) return;
    std::ofstream out(path_);
    if (!out) {
        std::cerr << "BenchReporter: cannot open " << path_ << '\n';
        return;
    }
    out << "[\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const Record& r = records_[i];
        out << "  {\"name\": \"" << json_escape(r.name)
            << "\", \"wall_ms\": " << r.wall_ms
            << ", \"iterations\": " << r.iterations
            << ", \"threads\": " << r.threads << '}'
            << (i + 1 < records_.size() ? "," : "") << '\n';
    }
    out << "]\n";
    if (!out.flush())
        std::cerr << "BenchReporter: write to " << path_ << " failed\n";
}

void BenchReporter::record(std::string name, double wall_ms,
                           std::int64_t iterations) {
    records_.push_back(
        {std::move(name), wall_ms, iterations, pvfp::thread_count()});
}

BenchReporter::Scope::Scope(BenchReporter& reporter, std::string name,
                            std::int64_t iterations)
    : reporter_(reporter),
      name_(std::move(name)),
      iterations_(iterations),
      start_(std::chrono::steady_clock::now()) {}

BenchReporter::Scope::~Scope() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    reporter_.record(
        std::move(name_),
        std::chrono::duration<double, std::milli>(elapsed).count(),
        iterations_);
}

BenchReporter::Scope BenchReporter::time_section(std::string name,
                                                 std::int64_t iterations) {
    return Scope(*this, std::move(name), iterations);
}

core::ScenarioConfig paper_config(std::uint64_t weather_seed) {
    core::ScenarioConfig config;
    config.location = solar::Location{45.07, 7.69, 1.0};  // Torino
    config.grid = pvfp::TimeGrid(15, 1, 365);             // NT = 35040
    config.weather.seed = weather_seed;
    config.cell_size = 0.2;                               // s = 20 cm
    return config;
}

std::vector<core::PreparedScenario> prepare_paper_roofs(
    std::uint64_t weather_seed) {
    const core::ScenarioConfig config = paper_config(weather_seed);
    std::vector<core::PreparedScenario> prepared;
    for (const auto& scenario : core::make_paper_roofs())
        prepared.push_back(core::prepare_scenario(scenario, config));
    return prepared;
}

pv::Topology paper_topology(int n_modules) {
    check_arg(n_modules % 8 == 0,
              "paper_topology: the paper uses series strings of 8");
    return pv::Topology{8, n_modules / 8};
}

core::GreedyOptions paper_greedy_options() {
    core::GreedyOptions options;
    options.anchor_score = core::AnchorScore::TopLeftCell;
    return options;
}

core::EvaluationOptions paper_eval_options() {
    core::EvaluationOptions options;
    options.module_irradiance = core::ModuleIrradiance::AnchorCell;
    return options;
}

void print_banner(std::ostream& os, const std::string& title,
                  const std::string& paper_reference) {
    os << "================================================================"
          "====\n"
       << title << '\n'
       << "Reproduces: " << paper_reference << '\n'
       << "Setup: synthetic Torino roofs/weather (see DESIGN.md "
          "substitutions);\n"
       << "       shapes and relative effects are comparable, absolute "
          "values\n"
       << "       depend on the synthetic climate.\n"
       << "================================================================"
          "====\n";
}

std::vector<ModuleBox> plan_boxes(const core::Floorplan& plan) {
    std::vector<ModuleBox> boxes;
    boxes.reserve(plan.modules.size());
    for (int i = 0; i < plan.module_count(); ++i) {
        const auto& m = plan.modules[static_cast<std::size_t>(i)];
        boxes.push_back({m.x, m.y, plan.geometry.k1, plan.geometry.k2,
                         i / plan.topology.series});
    }
    return boxes;
}

}  // namespace pvfp::bench

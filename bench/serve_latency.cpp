/// \file serve_latency.cpp
/// Serving-plane latency bench: cold vs warm request cost on the
/// always-on daemon (ROADMAP "always-on ranking service").
///
/// Generates a synthetic city, then measures three request shapes
/// through pvfp::serve::Server pipe-mode sessions under a production
/// sky configuration:
///   1. cold plan   — fresh server per request: every plan pays tile
///      decode + plane fit + horizon march + the full sky precompute
///      (what a batch CLI would pay per invocation);
///   2. warm plan   — the same requests against one resident server:
///      everything above is cached, a plan re-runs only placement +
///      evaluation;
///   3. warm rank   — topology comparison on resident state.
/// The cold/warm ratio is the resident-state speedup the serving layer
/// exists for; `--json out.json` records every section for the BENCH_*
/// trajectory (scripts/collect_bench_serve.sh).
///
///   bench_serve_latency [--roofs N] [--minutes M] [--warm K]
///                       [--json out.json]

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "pvfp/gis/fixture.hpp"
#include "pvfp/serve/server.hpp"
#include "pvfp/util/parallel.hpp"

namespace {

/// One pipe-mode session; returns the response bytes.
std::string session(pvfp::serve::Server& server, const std::string& in) {
    std::istringstream is(in);
    std::ostringstream os;
    (void)server.serve(is, os);
    return os.str();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace pvfp;
    using Clock = std::chrono::steady_clock;

    bench::BenchReporter reporter(argc, argv);
    int roofs = 12;
    int minutes = 5;
    int warm = 50;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (arg == "--roofs") roofs = std::atoi(next());
        else if (arg == "--minutes") minutes = std::atoi(next());
        else if (arg == "--warm") warm = std::atoi(next());
    }

    bench::print_banner(std::cout, "Serving-plane latency",
                        "ROADMAP: always-on ranking service");

    const std::string dir =
        (std::filesystem::temp_directory_path() / "pvfp_bench_serve")
            .string();
    std::filesystem::remove_all(dir);
    gis::CityFixtureOptions fixture_options;
    fixture_options.roofs = roofs;
    const gis::CityFixture fixture =
        gis::generate_city_fixture(dir, fixture_options);
    const gis::TileIndex tiles = gis::TileIndex::scan(dir);
    const gis::RoofRegistry registry =
        gis::RoofRegistry::load(fixture.csv_index_path);

    serve::ServerOptions options;
    options.state.config.grid = TimeGrid(minutes, 1, 365);
    options.state.config.suitability.step_stride = 96;
    options.state.eval.step_stride = 96;
    options.state.topologies = {{8, 2}};
    std::cout << "fixture: " << fixture.records << " roofs, "
              << fixture.tiles_written << " tiles, " << minutes
              << "-minute grid, " << thread_count() << " threads\n\n";

    const auto plan_request = [&](long i, long seq) {
        return "{\"op\":\"plan\",\"id\":\"" +
               registry.record(i % registry.size()).id +
               "\",\"series\":6,\"strings\":2}\n";
    };

    // ---- Cold: a fresh server per plan (every request pays the full
    // prepare: tiles + fit + horizon + sky precompute).
    constexpr int kCold = 3;
    double cold_ms = 0.0;
    for (int i = 0; i < kCold; ++i) {
        serve::Server server(tiles, registry, options);
        const auto t0 = Clock::now();
        const std::string out = session(server, plan_request(i, 0));
        cold_ms += std::chrono::duration<double, std::milli>(Clock::now() -
                                                             t0)
                       .count();
        if (out.find("\"status\":\"ok\"") == std::string::npos) {
            std::cerr << "cold plan failed: " << out;
            return 1;
        }
    }
    cold_ms /= kCold;
    reporter.record("serve/cold_plan_ms", cold_ms, 1);
    std::cout << "cold plan   : " << cold_ms << " ms (avg of " << kCold
              << ", fresh server each)\n";

    // ---- Warm: one resident server, same roofs round-robin.
    serve::Server server(tiles, registry, options);
    for (int i = 0; i < kCold; ++i)  // pre-warm the touched roofs
        (void)session(server, plan_request(i, 0));
    std::string warm_batch;
    for (int i = 0; i < warm; ++i) warm_batch += plan_request(i % kCold, i);
    const auto w0 = Clock::now();
    const std::string warm_out = session(server, warm_batch);
    const double warm_total =
        std::chrono::duration<double, std::milli>(Clock::now() - w0)
            .count();
    const double warm_ms = warm_total / warm;
    reporter.record("serve/warm_plan_ms", warm_ms, warm);
    std::cout << "warm plan   : " << warm_ms << " ms (" << warm
              << " requests, resident state)\n";

    std::string rank_batch;
    for (int i = 0; i < warm; ++i)
        rank_batch += "{\"op\":\"rank\",\"id\":\"" +
                      registry.record(i % kCold).id + "\"}\n";
    const auto r0 = Clock::now();
    (void)session(server, rank_batch);
    const double rank_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - r0)
            .count() /
        warm;
    reporter.record("serve/warm_rank_ms", rank_ms, warm);
    std::cout << "warm rank   : " << rank_ms << " ms\n";

    if ((void)warm_out, warm_ms > 0.0)
        std::cout << "\ncold/warm plan speedup: " << cold_ms / warm_ms
                  << "x (resident tiles + sky + prepared roofs)\n";
    std::filesystem::remove_all(dir);
    return 0;
}

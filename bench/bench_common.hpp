#pragma once
/// \file bench_common.hpp
/// Shared infrastructure for the benchmark harnesses: the paper's
/// experimental setup (full year, 15-minute steps, Torino weather,
/// 20 cm grid) applied to the three synthetic roofs, plus small printing
/// helpers so that every bench emits a self-describing report.

#include <iosfwd>
#include <string>
#include <vector>

#include "pvfp/core/pipeline.hpp"
#include "pvfp/util/ascii_art.hpp"

namespace pvfp::bench {

/// The paper's experimental configuration (Section V-A): one year at
/// 15-minute resolution, Torino location and climate, s = 20 cm.
core::ScenarioConfig paper_config(std::uint64_t weather_seed = 42);

/// Prepare the three Table-I roofs under paper_config().  Expensive
/// (seconds per roof): call once per binary.
std::vector<core::PreparedScenario> prepare_paper_roofs(
    std::uint64_t weather_seed = 42);

/// Paper topology for N modules: series strings of m = 8 (Section V-B).
pv::Topology paper_topology(int n_modules);

/// The paper-literal algorithm configuration: grid positions are ranked
/// by their own cell's suitability (Fig. 5 line 1-2).
core::GreedyOptions paper_greedy_options();

/// The paper-literal evaluation granularity: each module operates at its
/// grid point's G and T (Section III-A).  The library's physical default
/// (footprint-mean) is compared against this in the granularity ablation.
core::EvaluationOptions paper_eval_options();

/// Banner with the experiment identity (printed by every bench).
void print_banner(std::ostream& os, const std::string& title,
                  const std::string& paper_reference);

/// Render a floorplan's modules as ASCII boxes (A/B/C/D = series string).
std::vector<ModuleBox> plan_boxes(const core::Floorplan& plan);

}  // namespace pvfp::bench

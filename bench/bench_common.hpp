#pragma once
/// \file bench_common.hpp
/// Shared infrastructure for the benchmark harnesses: the paper's
/// experimental setup (full year, 15-minute steps, Torino weather,
/// 20 cm grid) applied to the three synthetic roofs, plus small printing
/// helpers so that every bench emits a self-describing report.

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "pvfp/core/pipeline.hpp"
#include "pvfp/util/ascii_art.hpp"

namespace pvfp::bench {

/// Machine-readable bench output.  Every harness constructs one reporter
/// from its command line; passing `--json <path>` makes the destructor
/// write a JSON array of `{"name": ..., "wall_ms": ..., "iterations": ...,
/// "threads": ...}` records, one per timed section, so CI can append
/// trajectory points (`BENCH_*.json`) across PRs.  `threads` is the
/// thread-pool size at record time, so thread-sweep sections yield
/// speedup trajectories.  Without the flag the reporter is inert.
class BenchReporter {
public:
    /// Consumes `--json <path>` from the argument list (other arguments
    /// are ignored).  A missing path is a usage error: message on stderr
    /// and exit code 2, like the example CLIs.
    BenchReporter(int argc, char** argv);
    /// Writes the JSON file when enabled; failures go to stderr (a bench
    /// must never die in a destructor over reporting).
    ~BenchReporter();

    BenchReporter(const BenchReporter&) = delete;
    BenchReporter& operator=(const BenchReporter&) = delete;

    /// Append one record; the current pvfp::thread_count() is captured
    /// with it.
    void record(std::string name, double wall_ms,
                std::int64_t iterations = 1);

    /// RAII section timer: measures from construction to destruction and
    /// records the elapsed wall time.
    class Scope {
    public:
        Scope(BenchReporter& reporter, std::string name,
              std::int64_t iterations);
        ~Scope();
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

    private:
        BenchReporter& reporter_;
        std::string name_;
        std::int64_t iterations_;
        std::chrono::steady_clock::time_point start_;
    };

    /// Time a section: `const auto t = reporter.time_section("roof1/n16");`
    [[nodiscard]] Scope time_section(std::string name,
                                     std::int64_t iterations = 1);

    bool enabled() const { return !path_.empty(); }

private:
    struct Record {
        std::string name;
        double wall_ms;
        std::int64_t iterations;
        int threads;
    };

    std::string path_;
    std::vector<Record> records_;
};

/// The paper's experimental configuration (Section V-A): one year at
/// 15-minute resolution, Torino location and climate, s = 20 cm.
core::ScenarioConfig paper_config(std::uint64_t weather_seed = 42);

/// Prepare the three Table-I roofs under paper_config().  Expensive
/// (seconds per roof): call once per binary.
std::vector<core::PreparedScenario> prepare_paper_roofs(
    std::uint64_t weather_seed = 42);

/// Paper topology for N modules: series strings of m = 8 (Section V-B).
pv::Topology paper_topology(int n_modules);

/// The paper-literal algorithm configuration: grid positions are ranked
/// by their own cell's suitability (Fig. 5 line 1-2).
core::GreedyOptions paper_greedy_options();

/// The paper-literal evaluation granularity: each module operates at its
/// grid point's G and T (Section III-A).  The library's physical default
/// (footprint-mean) is compared against this in the granularity ablation.
core::EvaluationOptions paper_eval_options();

/// Banner with the experiment identity (printed by every bench).
void print_banner(std::ostream& os, const std::string& title,
                  const std::string& paper_reference);

/// Render a floorplan's modules as ASCII boxes (A/B/C/D = series string).
std::vector<ModuleBox> plan_boxes(const core::Floorplan& plan);

}  // namespace pvfp::bench

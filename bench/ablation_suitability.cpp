/// \file ablation_suitability.cpp
/// Ablation A1 — the suitability signature (paper Section III-C).
/// The paper argues for the 75th percentile over the mean ("the average
/// is not a representative value" for skewed distributions) and applies a
/// temperature correction factor.  This bench sweeps the signature on
/// Roof 2 / N = 16 and reports the yearly energy each variant's placement
/// actually extracts.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pvfp/util/table.hpp"

int main(int argc, char** argv) {
    using namespace pvfp;
    bench::BenchReporter reporter(argc, argv);
    const auto whole_run =
        reporter.time_section("ablation_suitability/total");
    bench::print_banner(std::cout,
                        "Ablation A1: suitability percentile / T-correction",
                        "Vinco et al., DATE 2018, Section III-C");

    // Prepare Roof 2 once; recompute only the suitability per variant.
    const auto config = bench::paper_config();
    const auto prepared = core::prepare_scenario(core::make_roof2(), config);
    const auto topo = bench::paper_topology(16);

    struct Variant {
        std::string name;
        double percentile;
        bool use_mean;
        bool t_correction;
    };
    const std::vector<Variant> variants = {
        {"mean (ablated)", 75.0, true, true},
        {"p50", 50.0, false, true},
        {"p75 (paper)", 75.0, false, true},
        {"p90", 90.0, false, true},
        {"p75, no T-correction", 75.0, false, false},
    };

    std::vector<core::EvaluationResult> results;
    double p75_energy = 0.0;
    for (const auto& v : variants) {
        core::SuitabilityOptions opt = config.suitability;
        opt.percentile = v.percentile;
        opt.use_mean = v.use_mean;
        opt.temperature_correction = v.t_correction;
        const auto suit =
            core::compute_suitability(prepared.field, prepared.area, opt);
        const auto plan = core::place_greedy(
            prepared.area, suit.suitability, prepared.geometry, topo,
            bench::paper_greedy_options());
        results.push_back(core::evaluate_floorplan(
            plan, prepared.area, prepared.field, prepared.model,
            bench::paper_eval_options()));
        if (v.name == "p75 (paper)") p75_energy = results.back().energy_kwh;
    }

    TextTable table({"signature", "energy [MWh/yr]", "vs p75",
                     "mismatch [kWh]", "cable [m]"});
    table.set_align(0, Align::Left);
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const auto& e = results[i];
        table.add_row({variants[i].name,
                       TextTable::num(e.net_mwh(), 3),
                       TextTable::pct(e.energy_kwh / p75_energy - 1.0) + "%",
                       TextTable::num(e.mismatch_loss_kwh, 1),
                       TextTable::num(e.extra_cable_m, 1)});
    }
    table.print(std::cout);

    std::cout << "\nShape check: the paper's p75-with-T-correction is at or "
                 "near the top;\nthe mean is a weaker ranking signal on "
                 "skewed irradiance distributions.\n";
    return 0;
}

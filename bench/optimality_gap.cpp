/// \file optimality_gap.cpp
/// Optimality audit — paper Section III-C points out that exhaustive
/// enumeration is O(N^Ng) and intractable ("it is not possible to compare
/// our results against an exhaustive algorithm", Section V-B).  On small
/// instances the optimum *is* computable: this bench measures the greedy
/// heuristic's gap to the exact optimum (exhaustive / branch-and-bound on
/// the linearized objective) and to a simulated-annealing refinement under
/// the true yearly-energy objective.

#include <iostream>

#include "bench_common.hpp"
#include "pvfp/core/annealing_placer.hpp"
#include "pvfp/core/bnb_placer.hpp"
#include "pvfp/core/exhaustive_placer.hpp"
#include "pvfp/util/rng.hpp"
#include "pvfp/util/table.hpp"

namespace {

double plan_score(const pvfp::core::Floorplan& plan,
                  const pvfp::Grid2D<double>& s) {
    double acc = 0.0;
    for (const auto& m : plan.modules)
        for (int y = m.y; y < m.y + plan.geometry.k2; ++y)
            for (int x = m.x; x < m.x + plan.geometry.k1; ++x)
                acc += s(x, y);
    return acc;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace pvfp;
    bench::BenchReporter reporter(argc, argv);
    const auto whole_run = reporter.time_section("optimality_gap/total");
    bench::print_banner(std::cout,
                        "Optimality gap: greedy vs exact on small instances",
                        "Vinco et al., DATE 2018, Sections III-C & V-B");

    // --- Part 1: linearized objective, random small fields. ------------
    std::cout << "\nLinearized objective (footprint-suitability sum), "
                 "16x8-cell areas,\nN = 3 modules of 4x2 cells, 12 random "
                 "fields:\n";
    TextTable lin({"seed", "greedy", "B&B optimum", "gap %", "B&B nodes",
                   "exhaustive leaves"});
    double worst_gap = 0.0;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        geo::PlacementArea area;
        area.width = 16;
        area.height = 8;
        area.valid = Grid2D<unsigned char>(16, 8, 1);
        area.valid_count = 16 * 8;
        area.cell_size = 0.2;
        Grid2D<double> s(16, 8);
        Rng rng(seed);
        // Smooth random field (sums of a few random bumps).
        for (int k = 0; k < 5; ++k) {
            const double cx = rng.uniform(0.0, 16.0);
            const double cy = rng.uniform(0.0, 8.0);
            const double amp = rng.uniform(0.5, 2.0);
            for (int y = 0; y < 8; ++y)
                for (int x = 0; x < 16; ++x)
                    s(x, y) += amp * std::exp(-((x - cx) * (x - cx) +
                                                (y - cy) * (y - cy)) /
                                              8.0);
        }
        const core::PanelGeometry g{4, 2};
        const pv::Topology topo{3, 1};
        core::GreedyOptions gopt;
        gopt.enable_distance_threshold = false;
        const auto greedy = core::place_greedy(area, s, g, topo, gopt);
        core::BnbStats bstats;
        const auto bnb = core::place_bnb(area, s, g, topo, {}, &bstats);
        core::ExhaustiveStats estats;
        core::place_exhaustive(area, s, g, topo, nullptr, {}, &estats);
        const double gs = plan_score(greedy, s);
        const double bs = plan_score(bnb, s);
        const double gap = (bs - gs) / bs * 100.0;
        worst_gap = std::max(worst_gap, gap);
        lin.add_row({std::to_string(seed), TextTable::num(gs, 3),
                     TextTable::num(bs, 3), TextTable::num(gap, 2),
                     std::to_string(bstats.nodes),
                     std::to_string(estats.leaves)});
    }
    lin.print(std::cout);
    std::cout << "Worst greedy gap on the linearized objective: "
              << TextTable::num(worst_gap, 2) << " %\n";

    // --- Part 2: true-energy objective via annealing on the toy roof. --
    std::cout << "\nTrue yearly-energy objective (toy roof, N = 4, "
                 "annealing refinement\nof the greedy result; subsampled "
                 "evaluation inside the search):\n";
    core::ScenarioConfig config;
    config.grid = TimeGrid(30, 1, 365);
    config.weather.seed = 17;
    const auto prepared = core::prepare_scenario(core::make_toy(), config);
    const pv::Topology topo{2, 2};
    const auto greedy = core::place_greedy(
        prepared.area, prepared.suitability.suitability, prepared.geometry,
        topo);
    core::EvaluationOptions fast_eval;
    fast_eval.step_stride = 4;
    const core::PlacementObjective objective =
        [&](const core::Floorplan& plan) {
            return core::evaluate_floorplan(plan, prepared.area,
                                            prepared.field, prepared.model,
                                            fast_eval)
                .energy_kwh;
        };
    core::AnnealingOptions aopt;
    aopt.iterations = 800;
    aopt.seed = 5;
    core::AnnealingStats astats;
    const auto refined = core::refine_annealing(greedy, prepared.area,
                                                objective, aopt, &astats);
    const auto greedy_full = core::evaluate_floorplan(
        greedy, prepared.area, prepared.field, prepared.model);
    const auto refined_full = core::evaluate_floorplan(
        refined, prepared.area, prepared.field, prepared.model);

    TextTable true_obj({"placement", "energy [kWh/yr]", "gap to refined"});
    true_obj.set_align(0, Align::Left);
    true_obj.add_row({"greedy (paper)",
                      TextTable::num(greedy_full.energy_kwh, 1),
                      TextTable::pct(greedy_full.energy_kwh /
                                         refined_full.energy_kwh -
                                     1.0) +
                          "%"});
    true_obj.add_row({"greedy + annealing",
                      TextTable::num(refined_full.energy_kwh, 1), "-"});
    true_obj.print(std::cout);

    std::cout << "\nShape check: the greedy heuristic is typically within "
                 "a few percent\nof the exact optimum (median ~1%), with "
                 "occasional larger gaps on\nadversarial multi-bump fields "
                 "— and the true-energy refinement cannot\nimprove it on "
                 "realistic scenes: the paper's implicit claim that a\n"
                 "greedy approximation suffices.\n";
    return 0;
}

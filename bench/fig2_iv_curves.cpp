/// \file fig2_iv_curves.cpp
/// Reproduction of **Fig. 2(a)** — the I-V characteristic's qualitative
/// behaviour (background Section II-B): "when G increases, the
/// open-circuit voltage Voc increases logarithmically and the short-
/// circuit current Isc increases proportionally (dotted line); with fixed
/// irradiance G, a temperature increase yields a slight increase of Isc
/// which gives a decrease of Voc (solid line)".
///
/// Generated with the one-diode extension fitted to the PV-MF165EB3
/// datasheet, plus the bypass-diode partial-shading curve that motivates
/// the MPPT discussion.

#include <iostream>

#include "bench_common.hpp"
#include "pvfp/pv/one_diode.hpp"
#include "pvfp/util/table.hpp"

int main(int argc, char** argv) {
    using namespace pvfp;
    bench::BenchReporter reporter(argc, argv);
    const auto whole_run = reporter.time_section("fig2_iv_curves/total");
    bench::print_banner(std::cout, "Fig. 2(a): I-V curve behaviour",
                        "Vinco et al., DATE 2018, Fig. 2(a) / Section II-B");

    const auto model = pv::OneDiodeModel::fit_datasheet(pv::ModuleSpec{});

    std::cout << "\nIrradiance sweep at 25 C (dotted line of Fig. 2a):\n";
    TextTable gsweep({"G [W/m^2]", "Isc [A]", "Voc [V]", "Pmp [W]",
                      "Vmp [V]"});
    for (double g : {200.0, 400.0, 600.0, 800.0, 1000.0}) {
        const auto mpp = model.max_power_point(g, 25.0);
        gsweep.add_row({TextTable::num(g, 0),
                        TextTable::num(model.short_circuit_current(g, 25.0), 2),
                        TextTable::num(model.open_circuit_voltage(g, 25.0), 2),
                        TextTable::num(mpp.power_w, 1),
                        TextTable::num(mpp.voltage_v, 2)});
    }
    gsweep.print(std::cout);

    std::cout << "\nTemperature sweep at 1000 W/m^2 (solid line of Fig. 2a):\n";
    TextTable tsweep({"Tcell [C]", "Isc [A]", "Voc [V]", "Pmp [W]"});
    for (double t : {0.0, 25.0, 50.0, 75.0}) {
        tsweep.add_row({TextTable::num(t, 0),
                        TextTable::num(model.short_circuit_current(1000.0, t), 3),
                        TextTable::num(model.open_circuit_voltage(1000.0, t), 2),
                        TextTable::num(model.max_power_point(1000.0, t).power_w,
                                       1)});
    }
    tsweep.print(std::cout);

    std::cout << "\nSampled I-V curve at STC (ASCII, I vs V):\n";
    const auto curve = model.iv_curve(1000.0, 25.0, 33);
    const double isc = curve.front().i;
    for (std::size_t k = 0; k < curve.size(); k += 2) {
        const int bars = static_cast<int>(curve[k].i / isc * 60.0);
        std::cout << "V=" << TextTable::num(curve[k].v, 1) << "V |";
        for (int b = 0; b < bars; ++b) std::cout << '#';
        std::cout << " " << TextTable::num(curve[k].i, 2) << "A\n";
    }

    std::cout << "\nPartial shading (bypass diodes, Section II-B mismatch "
                 "discussion):\n";
    const pv::BypassedModule bypassed(model, 2);
    TextTable shade({"substring G [W/m^2]", "Pmp [W]", "vs uniform"});
    shade.set_align(0, Align::Left);
    const double uniform =
        bypassed.max_power_point({1000.0, 1000.0}, 25.0).power_w;
    for (double g2 : {1000.0, 600.0, 300.0, 100.0}) {
        const double p = bypassed.max_power_point({1000.0, g2}, 25.0).power_w;
        shade.add_row({"1000 / " + TextTable::num(g2, 0),
                       TextTable::num(p, 1),
                       TextTable::pct(p / uniform - 1.0) + "%"});
    }
    shade.print(std::cout);
    return 0;
}

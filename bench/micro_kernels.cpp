/// \file micro_kernels.cpp
/// google-benchmark microbenchmarks of the pipeline's hot kernels:
/// horizon ray-marching, per-cell irradiance sampling, per-cell
/// histogram statistics, panel aggregation, and the summed-area table.
/// These bound the cost drivers behind the paper's "<120 s" end-to-end
/// figure.

#include <benchmark/benchmark.h>

#include "pvfp/core/suitability.hpp"
#include "pvfp/geo/horizon.hpp"
#include "pvfp/geo/scene.hpp"
#include "pvfp/pv/array.hpp"
#include "pvfp/solar/irradiance.hpp"
#include "pvfp/util/rng.hpp"
#include "pvfp/util/stats.hpp"

namespace {

using namespace pvfp;

geo::Raster bench_dsm() {
    geo::SceneBuilder scene(40.0, 20.0);
    geo::MonopitchRoof roof;
    roof.x = 4.0;
    roof.y = 4.0;
    roof.w = 30.0;
    roof.d = 10.0;
    roof.eave_height = 5.0;
    roof.tilt_deg = 26.0;
    scene.add_roof(roof);
    scene.add_box({10.0, 6.0, 2.0, 2.0, 2.0, geo::HeightRef::Surface});
    scene.add_building({35.0, 2.0, 4.0, 16.0, 14.0});
    return scene.rasterize(0.2);
}

void BM_HorizonBuild(benchmark::State& state) {
    const geo::Raster dsm = bench_dsm();
    const int cells = static_cast<int>(state.range(0));
    geo::HorizonOptions opt;
    opt.azimuth_sectors = 72;
    for (auto _ : state) {
        geo::HorizonMap map(dsm, 25, 25, cells, 1, opt);
        benchmark::DoNotOptimize(map.sky_view_factor(0, 0));
    }
    state.SetItemsProcessed(state.iterations() * cells * 72);
}
BENCHMARK(BM_HorizonBuild)->Arg(1)->Arg(16)->Arg(64);

void BM_CellIrradiance(benchmark::State& state) {
    const geo::Raster dsm = bench_dsm();
    const TimeGrid grid(60, 150, 10);
    geo::HorizonMap horizon(dsm, 25, 25, 40, 30, {});
    std::vector<solar::EnvSample> env(
        static_cast<std::size_t>(grid.total_steps()),
        solar::EnvSample{500.0, 400.0, 150.0, 20.0});
    const solar::IrradianceField field(std::move(horizon), std::move(env),
                                       grid, deg2rad(26.0), deg2rad(180.0));
    long s = 0;
    int x = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(field.cell_irradiance(x, x % 30, s));
        s = (s + 7) % grid.total_steps();
        x = (x + 3) % 40;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CellIrradiance);

void BM_HistogramAddPercentile(benchmark::State& state) {
    Rng rng(3);
    std::vector<double> samples(8192);
    for (auto& v : samples) v = rng.uniform(0.0, 1200.0);
    for (auto _ : state) {
        Histogram h(0.0, 1400.0, 256);
        for (double v : samples) h.add(v);
        benchmark::DoNotOptimize(h.percentile(75.0));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(samples.size()));
}
BENCHMARK(BM_HistogramAddPercentile);

void BM_AggregatePanel(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const pv::Topology topo{8, n / 8};
    Rng rng(5);
    std::vector<pv::OperatingPoint> points(
        static_cast<std::size_t>(n));
    for (auto& p : points) {
        p.power_w = rng.uniform(50.0, 165.0);
        p.voltage_v = rng.uniform(20.0, 25.0);
        p.current_a = p.power_w / p.voltage_v;
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(pv::aggregate_panel(points, topo));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AggregatePanel)->Arg(16)->Arg(32)->Arg(64);

void BM_SummedAreaTable(benchmark::State& state) {
    Rng rng(9);
    Grid2D<double> grid(296, 51);
    for (auto& v : grid.data()) v = rng.uniform(0.0, 650.0);
    for (auto _ : state) {
        SummedAreaTable sat(grid);
        benchmark::DoNotOptimize(sat.rect_sum(10, 10, 64, 16));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(grid.size()));
}
BENCHMARK(BM_SummedAreaTable);

}  // namespace

BENCHMARK_MAIN();

/// \file micro_kernels.cpp
/// google-benchmark microbenchmarks of the pipeline's hot kernels:
/// horizon ray-marching (the per-cell oracle vs the batched SIMD
/// row-march kernels, per dispatch level), per-cell irradiance
/// sampling, the batched SoA irradiance kernels (scalar and AVX2
/// dispatch vs the per-cell scalar baseline — the headline of the
/// batched-kernel PR), per-cell histogram statistics, panel
/// aggregation, and the summed-area table.
/// These bound the cost drivers behind the paper's "<120 s" end-to-end
/// figure.  scripts/collect_bench_kernels.sh appends the
/// irradiance-kernel records to BENCH_kernels.json for the cross-PR
/// trajectory.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "pvfp/core/evaluator.hpp"
#include "pvfp/core/pipeline.hpp"
#include "pvfp/core/roof_library.hpp"
#include "pvfp/core/suitability.hpp"
#include "pvfp/geo/horizon.hpp"
#include "pvfp/geo/poly_raster.hpp"
#include "pvfp/geo/scene.hpp"
#include "pvfp/pv/array.hpp"
#include "pvfp/solar/irradiance.hpp"
#include "pvfp/solar/irradiance_kernels.hpp"
#include "pvfp/solar/sky_artifact.hpp"
#include "pvfp/util/parallel.hpp"
#include "pvfp/util/rng.hpp"
#include "pvfp/util/simd.hpp"
#include "pvfp/util/stats.hpp"

namespace {

using namespace pvfp;

geo::Raster bench_dsm() {
    geo::SceneBuilder scene(40.0, 20.0);
    geo::MonopitchRoof roof;
    roof.x = 4.0;
    roof.y = 4.0;
    roof.w = 30.0;
    roof.d = 10.0;
    roof.eave_height = 5.0;
    roof.tilt_deg = 26.0;
    scene.add_roof(roof);
    scene.add_box({10.0, 6.0, 2.0, 2.0, 2.0, geo::HeightRef::Surface});
    scene.add_building({35.0, 2.0, 4.0, 16.0, 14.0});
    return scene.rasterize(0.2);
}

void BM_HorizonBuild(benchmark::State& state) {
    const geo::Raster dsm = bench_dsm();
    const int cells = static_cast<int>(state.range(0));
    geo::HorizonOptions opt;
    opt.azimuth_sectors = 72;
    for (auto _ : state) {
        geo::HorizonMap map(dsm, 25, 25, cells, 1, opt);
        benchmark::DoNotOptimize(map.sky_view_factor(0, 0));
    }
    state.SetItemsProcessed(state.iterations() * cells * 72);
}
BENCHMARK(BM_HorizonBuild)->Arg(1)->Arg(16)->Arg(64);

void BM_CellIrradiance(benchmark::State& state) {
    const geo::Raster dsm = bench_dsm();
    const TimeGrid grid(60, 150, 10);
    geo::HorizonMap horizon(dsm, 25, 25, 40, 30, {});
    std::vector<solar::EnvSample> env(
        static_cast<std::size_t>(grid.total_steps()),
        solar::EnvSample{500.0, 400.0, 150.0, 20.0});
    const solar::IrradianceField field(std::move(horizon), std::move(env),
                                       grid, deg2rad(26.0), deg2rad(180.0));
    long s = 0;
    int x = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(field.cell_irradiance(x, x % 30, s));
        s = (s + 7) % grid.total_steps();
        x = (x + 3) % 40;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CellIrradiance);

/// The golden toy roof under the placer-speedup configuration
/// (30-minute year): the reference workload of the batched-kernel
/// acceptance gate.  Prepared once per binary.
const core::PreparedScenario& toy_prepared() {
    static const core::PreparedScenario prepared = [] {
        core::ScenarioConfig config;
        config.grid = TimeGrid(30, 1, 365);
        config.weather.seed = 17;
        return core::prepare_scenario(core::make_toy(), config);
    }();
    return prepared;
}

/// Sampled daylight steps of the toy field (stride 4, the search-loop
/// granularity).
const std::vector<long>& toy_sampled_steps() {
    static const std::vector<long> steps = [] {
        const auto& field = toy_prepared().field;
        std::vector<long> out;
        for (long s = 0; s < field.steps(); s += 4)
            if (field.is_daylight(s)) out.push_back(s);
        return out;
    }();
    return steps;
}

/// Apply a bench arg (0 = scalar, 1 = AVX2, 2 = AVX-512) to the kernel
/// dispatch; returns false when the level is unavailable on this CPU.
bool apply_simd_arg(benchmark::State& state) {
    if (state.range(0) == 2) {
        if (!cpu_supports_avx512()) {
            state.SkipWithError("CPU has no AVX-512F/VL");
            return false;
        }
        set_simd_level(SimdLevel::Avx512);
    } else if (state.range(0) == 1) {
        if (!cpu_supports_avx2()) {
            state.SkipWithError("CPU has no AVX2");
            return false;
        }
        set_simd_level(SimdLevel::Avx2);
    } else {
        set_simd_level(SimdLevel::Scalar);
    }
    return true;
}

/// A city-block-scale DSM for the horizon benches: the roof window
/// sits 80+ m from every edge, so sectors march the full default
/// max_distance through neighbouring terrain instead of exiting the
/// raster after a few steps — the run_city context-window workload.
const geo::Raster& horizon_bench_dsm() {
    static const geo::Raster dsm = [] {
        geo::SceneBuilder scene(200.0, 200.0);
        Rng rng(41);
        for (int i = 0; i < 60; ++i)
            scene.add_building({rng.uniform(5.0, 180.0),
                                rng.uniform(5.0, 180.0),
                                rng.uniform(6.0, 14.0),
                                rng.uniform(6.0, 12.0),
                                rng.uniform(3.0, 12.0)});
        return scene.rasterize(0.2);
    }();
    return dsm;
}

/// Baseline: the retained per-cell horizon oracle on a roof-scale
/// window — the pre-batching shadow-engine cost (single-threaded so the
/// ratio against the batched kernels is a pure kernel speedup).
void BM_HorizonMapReference(benchmark::State& state) {
    const geo::Raster& dsm = horizon_bench_dsm();
    geo::HorizonOptions opt;
    opt.azimuth_sectors = 72;
    set_thread_count(1);
    for (auto _ : state) {
        const geo::HorizonMap map =
            geo::horizon_map_reference(dsm, 480, 480, 40, 30, opt);
        benchmark::DoNotOptimize(map.angles_data());
    }
    set_thread_count(0);
    state.SetItemsProcessed(state.iterations() * 40 * 30 * 72);
}
BENCHMARK(BM_HorizonMapReference)->Unit(benchmark::kMillisecond);

/// The batched row-march kernels on the same window at a dispatch level
/// (0 scalar, 1 AVX2, 2 AVX-512) — the horizon-engine headline.
void BM_HorizonMapBatched(benchmark::State& state) {
    if (!apply_simd_arg(state)) return;
    const geo::Raster& dsm = horizon_bench_dsm();
    geo::HorizonOptions opt;
    opt.azimuth_sectors = 72;
    set_thread_count(1);
    for (auto _ : state) {
        const geo::HorizonMap map(dsm, 480, 480, 40, 30, opt);
        benchmark::DoNotOptimize(map.angles_data());
    }
    set_thread_count(0);
    state.SetItemsProcessed(state.iterations() * 40 * 30 * 72);
    set_simd_level_auto();
}
BENCHMARK(BM_HorizonMapBatched)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

/// Baseline: one field row filled through per-cell scalar calls — the
/// pre-batching hot loop of compute_suitability / the footprint modes.
void BM_IrradianceRowScalarCells(benchmark::State& state) {
    const auto& field = toy_prepared().field;
    const auto& steps = toy_sampled_steps();
    std::vector<double> out(static_cast<std::size_t>(field.width()));
    std::size_t n = 0;
    int y = 0;
    for (auto _ : state) {
        const long s = steps[n++ % steps.size()];
        for (int x = 0; x < field.width(); ++x)
            out[static_cast<std::size_t>(x)] =
                field.cell_irradiance_unchecked(x, y, s);
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
        y = (y + 1) % field.height();
    }
    state.SetItemsProcessed(state.iterations() * field.width());
}
BENCHMARK(BM_IrradianceRowScalarCells);

/// Batched row kernel at a given dispatch level (0 scalar, 1 AVX2).
void BM_IrradianceRowKernel(benchmark::State& state) {
    if (!apply_simd_arg(state)) return;
    const auto& field = toy_prepared().field;
    const auto& steps = toy_sampled_steps();
    std::vector<double> out(static_cast<std::size_t>(field.width()));
    std::size_t n = 0;
    int y = 0;
    for (auto _ : state) {
        const long s = steps[n++ % steps.size()];
        field.cell_irradiance_row(y, s, 0, field.width(), out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
        y = (y + 1) % field.height();
    }
    state.SetItemsProcessed(state.iterations() * field.width());
    set_simd_level_auto();
}
BENCHMARK(BM_IrradianceRowKernel)->Arg(0)->Arg(1)->Arg(2);

/// Baseline: one cell's full sampled-step series through per-cell
/// scalar calls — the pre-batching per-anchor series build.
void BM_IrradianceSeriesScalarCells(benchmark::State& state) {
    const auto& field = toy_prepared().field;
    const auto& steps = toy_sampled_steps();
    std::vector<double> out(steps.size());
    int x = 0;
    for (auto _ : state) {
        for (std::size_t k = 0; k < steps.size(); ++k)
            out[k] = field.cell_irradiance_unchecked(x, 1, steps[k]);
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
        x = (x + 1) % field.width();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(steps.size()));
}
BENCHMARK(BM_IrradianceSeriesScalarCells);

/// Batched series kernel at a given dispatch level (0 scalar, 1 AVX2).
void BM_IrradianceSeriesKernel(benchmark::State& state) {
    if (!apply_simd_arg(state)) return;
    const auto& field = toy_prepared().field;
    const auto& steps = toy_sampled_steps();
    std::vector<double> out(steps.size());
    int x = 0;
    for (auto _ : state) {
        field.cell_irradiance_series(x, 1, steps, out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
        x = (x + 1) % field.width();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(steps.size()));
    set_simd_level_auto();
}
BENCHMARK(BM_IrradianceSeriesKernel)->Arg(0)->Arg(1)->Arg(2);

/// Footprint-mean anchor series (the IncrementalEvaluator's per-anchor
/// work) through the batch path, per dispatch level.
void BM_AnchorSeriesKernel(benchmark::State& state) {
    if (!apply_simd_arg(state)) return;
    const auto& prepared = toy_prepared();
    const auto& steps = toy_sampled_steps();
    std::vector<double> out(steps.size());
    int x = 0;
    const int x_max = prepared.field.width() - prepared.geometry.k1;
    for (auto _ : state) {
        core::anchor_irradiance_series(
            prepared.geometry, x, 0, prepared.field, steps,
            core::ModuleIrradiance::FootprintMean, out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
        x = (x + 1) % (x_max + 1);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(steps.size()) *
                            prepared.geometry.cell_count());
    set_simd_level_auto();
}
BENCHMARK(BM_AnchorSeriesKernel)->Arg(0)->Arg(1)->Arg(2);

/// All daylight steps of the toy field at stride 1 — the realistic
/// (≈50% daylight) series workload of the evaluator shards and the
/// suitability sweep, contiguous in the packed index.
const std::vector<long>& toy_daylight_steps() {
    static const std::vector<long> steps = [] {
        const auto& field = toy_prepared().field;
        std::vector<long> out;
        for (long s = 0; s < field.steps(); ++s)
            if (field.is_daylight(s)) out.push_back(s);
        return out;
    }();
    return steps;
}

/// The pre-packing gather path on the full daylight series: the series
/// kernel indexing the step planes through the per-step index list,
/// night gaps and all (what cell_irradiance_series did for this
/// workload before the daylight-packed planes landed).
void BM_DaylightSeriesGather(benchmark::State& state) {
    if (!apply_simd_arg(state)) return;
    const auto& field = toy_prepared().field;
    const auto& steps = toy_daylight_steps();
    const solar::detail::FieldView view = field.view();
    std::vector<double> out(steps.size());
    int x = 0;
    for (auto _ : state) {
        if (state.range(0) == 2)
            solar::detail::cell_series_avx512(view, x, 1, steps.data(),
                                              steps.size(), out.data());
        else if (state.range(0) == 1)
            solar::detail::cell_series_avx2(view, x, 1, steps.data(),
                                            steps.size(), out.data());
        else
            solar::detail::cell_series_scalar(view, x, 1, steps.data(),
                                              steps.size(), out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
        x = (x + 1) % field.width();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(steps.size()));
    set_simd_level_auto();
}
BENCHMARK(BM_DaylightSeriesGather)->Arg(0)->Arg(1)->Arg(2);

/// The same workload through the public series entry, which detects the
/// contiguous daylight run and takes the unit-stride packed kernel.
void BM_DaylightSeriesPacked(benchmark::State& state) {
    if (!apply_simd_arg(state)) return;
    const auto& field = toy_prepared().field;
    const auto& steps = toy_daylight_steps();
    std::vector<double> out(steps.size());
    int x = 0;
    for (auto _ : state) {
        field.cell_irradiance_series(x, 1, steps, out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
        x = (x + 1) % field.width();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(steps.size()));
    set_simd_level_auto();
}
BENCHMARK(BM_DaylightSeriesPacked)->Arg(0)->Arg(1)->Arg(2);

/// Year of 15-minute weather for the shared-sky prepare benches (the
/// pvfp_serve cold-start workload shape).
std::vector<solar::EnvSample> sky_bench_env(const TimeGrid& grid) {
    std::vector<solar::EnvSample> env(
        static_cast<std::size_t>(grid.total_steps()));
    Rng rng(29);
    for (auto& e : env) {
        e.ghi = rng.uniform(0.0, 900.0);
        e.dni = rng.uniform(0.0, 800.0);
        e.dhi = rng.uniform(0.0, 300.0);
        e.temp_air_c = rng.uniform(-5.0, 32.0);
    }
    return env;
}

/// Baseline: the unbatched per-step sun_position + transposition loop
/// (the pre-batching make_shared_sky, dominant pvfp_serve cold-start
/// cost).
void BM_SharedSkyPrepareReference(benchmark::State& state) {
    const TimeGrid grid(15, 1, 365);
    const auto env = sky_bench_env(grid);
    const solar::Location location;
    for (auto _ : state) {
        const auto sky = solar::prepare_sky_artifact_reference(
            location, grid, env, solar::SkyModel::HayDavies);
        benchmark::DoNotOptimize(sky.beam_eq.data());
    }
    state.SetItemsProcessed(state.iterations() * grid.total_steps());
}
BENCHMARK(BM_SharedSkyPrepareReference);

/// Batched prepare (per-day ephemeris hoisting + SIMD geometry and
/// transposition kernels) at a given dispatch level.
void BM_SharedSkyPrepare(benchmark::State& state) {
    if (!apply_simd_arg(state)) return;
    const TimeGrid grid(15, 1, 365);
    const auto env = sky_bench_env(grid);
    const solar::Location location;
    for (auto _ : state) {
        const auto sky = solar::prepare_sky_artifact(
            location, grid, env, solar::SkyModel::HayDavies);
        benchmark::DoNotOptimize(sky.beam_eq.data());
    }
    state.SetItemsProcessed(state.iterations() * grid.total_steps());
    set_simd_level_auto();
}
BENCHMARK(BM_SharedSkyPrepare)->Arg(0)->Arg(1)->Arg(2);

/// A cadastral-scale footprint: a 10^4-vertex star-ribbon ring around
/// the window center (radii alternating, so rows cross many edges).
std::vector<std::array<double, 2>> big_footprint(int vertices) {
    std::vector<std::array<double, 2>> poly;
    poly.reserve(static_cast<std::size_t>(vertices));
    for (int v = 0; v < vertices; ++v) {
        const double ang = v * 2.0 * kPi / vertices;
        const double r = (v % 2 == 0) ? 55.0 : 40.0 + (v % 7);
        poly.push_back(
            {60.0 + r * std::cos(ang), 60.0 + r * std::sin(ang)});
    }
    return poly;
}

/// Baseline: the pre-scanline footprint mask build — one even-odd ray
/// cast per cell, O(cells * edges).
void BM_FootprintMaskPerCell(benchmark::State& state) {
    const auto poly = big_footprint(static_cast<int>(state.range(0)));
    const int w = 120, h = 120;
    pvfp::Grid2D<unsigned char> mask(w, h, 0);
    for (auto _ : state) {
        for (int y = 0; y < h; ++y) {
            const double py = 120.0 - (y + 0.5) * 1.0;
            for (int x = 0; x < w; ++x) {
                const double px = 0.0 + (x + 0.5) * 1.0;
                mask(x, y) =
                    geo::point_in_polygon_even_odd(px, py, poly) ? 1 : 0;
            }
        }
        benchmark::DoNotOptimize(mask.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * w * h);
}
BENCHMARK(BM_FootprintMaskPerCell)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

/// The scanline rasterizer on the same footprint and window,
/// O(rows * edges + cells).
void BM_FootprintMaskScanline(benchmark::State& state) {
    const auto poly = big_footprint(static_cast<int>(state.range(0)));
    const int w = 120, h = 120;
    for (auto _ : state) {
        const auto mask =
            geo::rasterize_polygon_even_odd(poly, w, h, 1.0, 0.0, 120.0);
        benchmark::DoNotOptimize(mask.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * w * h);
}
BENCHMARK(BM_FootprintMaskScanline)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_HistogramAddPercentile(benchmark::State& state) {
    Rng rng(3);
    std::vector<double> samples(8192);
    for (auto& v : samples) v = rng.uniform(0.0, 1200.0);
    for (auto _ : state) {
        Histogram h(0.0, 1400.0, 256);
        for (double v : samples) h.add(v);
        benchmark::DoNotOptimize(h.percentile(75.0));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(samples.size()));
}
BENCHMARK(BM_HistogramAddPercentile);

void BM_AggregatePanel(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const pv::Topology topo{8, n / 8};
    Rng rng(5);
    std::vector<pv::OperatingPoint> points(
        static_cast<std::size_t>(n));
    for (auto& p : points) {
        p.power_w = rng.uniform(50.0, 165.0);
        p.voltage_v = rng.uniform(20.0, 25.0);
        p.current_a = p.power_w / p.voltage_v;
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(pv::aggregate_panel(points, topo));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AggregatePanel)->Arg(16)->Arg(32)->Arg(64);

void BM_SummedAreaTable(benchmark::State& state) {
    Rng rng(9);
    Grid2D<double> grid(296, 51);
    for (auto& v : grid.data()) v = rng.uniform(0.0, 650.0);
    for (auto _ : state) {
        SummedAreaTable sat(grid);
        benchmark::DoNotOptimize(sat.rect_sum(10, 10, 64, 16));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(grid.size()));
}
BENCHMARK(BM_SummedAreaTable);

}  // namespace

BENCHMARK_MAIN();

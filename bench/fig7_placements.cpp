/// \file fig7_placements.cpp
/// Reproduction of **Fig. 7** — "Traditional PV panel placements (a-c) and
/// placements resulting from the PV floorplanning algorithm (d-f)" for
/// N = 32 modules in 4 series strings on the three roofs.  Letters A-D
/// mark the series string of each module (the paper's colors); '.' marks
/// valid cells.

#include <iostream>

#include "bench_common.hpp"
#include "pvfp/util/table.hpp"

int main(int argc, char** argv) {
    using namespace pvfp;
    bench::BenchReporter reporter(argc, argv);
    const auto whole_run = reporter.time_section("fig7_placements/total");
    bench::print_banner(std::cout,
                        "Fig. 7: traditional vs proposed placements (N=32)",
                        "Vinco et al., DATE 2018, Fig. 7 / Section V-B");

    const auto roofs = bench::prepare_paper_roofs();
    const auto topo = bench::paper_topology(32);

    for (const auto& prepared : roofs) {
        const auto cmp = core::compare_placements(
            prepared, topo, bench::paper_greedy_options(),
            bench::paper_eval_options());

        std::cout << "\n===== " << prepared.name
                  << " ===================================\n";
        std::cout << "\nTraditional (compact) placement — "
                  << TextTable::num(cmp.traditional_eval.net_mwh(), 3)
                  << " MWh/yr:\n"
                  << render_floorplan(prepared.area.valid,
                                      bench::plan_boxes(cmp.traditional),
                                      120);
        std::cout << "\nProposed (sparse, suitability-ranked) placement — "
                  << TextTable::num(cmp.proposed_eval.net_mwh(), 3)
                  << " MWh/yr ("
                  << TextTable::pct(cmp.improvement()) << "%):\n"
                  << render_floorplan(prepared.area.valid,
                                      bench::plan_boxes(cmp.proposed), 120);

        // Spatial-statistics comparison: the proposed placement is
        // sparser (paper: "they clearly tend to be placed nearby the
        // traditional placements, yet they are sparser").
        const auto spread = [&](const core::Floorplan& plan) {
            double acc = 0.0;
            int pairs = 0;
            for (std::size_t i = 0; i < plan.modules.size(); ++i) {
                for (std::size_t j = i + 1; j < plan.modules.size(); ++j) {
                    acc += core::center_distance_cells(
                        plan.modules[i], plan.modules[j], plan.geometry);
                    ++pairs;
                }
            }
            return acc / pairs * prepared.area.cell_size;
        };
        TextTable stats({"placement", "mean pairwise dist [m]",
                         "extra cable [m]", "mismatch [kWh]"});
        stats.set_align(0, Align::Left);
        stats.add_row({"traditional", TextTable::num(spread(cmp.traditional), 2),
                       TextTable::num(cmp.traditional_eval.extra_cable_m, 1),
                       TextTable::num(cmp.traditional_eval.mismatch_loss_kwh,
                                      1)});
        stats.add_row({"proposed", TextTable::num(spread(cmp.proposed), 2),
                       TextTable::num(cmp.proposed_eval.extra_cable_m, 1),
                       TextTable::num(cmp.proposed_eval.mismatch_loss_kwh,
                                      1)});
        stats.print(std::cout);
    }

    std::cout << "\nShape checks (paper Fig. 7): the proposed placements "
                 "stay near the\nbright regions but spread into sparse, "
                 "sometimes irregular patterns\n(e.g. following shade-free "
                 "pockets), with modules of one string kept\nclose "
                 "together by the wiring tie-break and distance threshold.\n";
    return 0;
}

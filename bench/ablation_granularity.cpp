/// \file ablation_granularity.cpp
/// Ablation A5 — evaluation granularity.  Paper Section III-A assigns
/// each grid point its own G and T, and modules take their grid point's
/// value (AnchorCell).  A physical module, however, integrates irradiance
/// over its whole 1.28 m^2 aperture (FootprintMean), which averages away
/// sub-module-scale variance.  This bench quantifies how the reported
/// Table-I gain depends on that modeling choice — a reproduction finding
/// worth knowing when comparing against the paper's absolute numbers.

#include <iostream>

#include "bench_common.hpp"
#include "pvfp/util/table.hpp"

int main(int argc, char** argv) {
    using namespace pvfp;
    bench::BenchReporter reporter(argc, argv);
    const auto whole_run =
        reporter.time_section("ablation_granularity/total");
    bench::print_banner(std::cout, "Ablation A5: evaluation granularity",
                        "Vinco et al., DATE 2018, Section III-A");

    const auto roofs = bench::prepare_paper_roofs();
    const auto topo = bench::paper_topology(32);

    TextTable table({"Roof", "granularity", "Trad MWh", "Prop MWh",
                     "gain %"});
    table.set_align(0, Align::Left);
    table.set_align(1, Align::Left);

    for (const auto& prepared : roofs) {
        const struct {
            const char* name;
            core::ModuleIrradiance mode;
        } modes[] = {
            {"anchor cell (paper)", core::ModuleIrradiance::AnchorCell},
            {"footprint mean (physical)",
             core::ModuleIrradiance::FootprintMean},
            {"worst cell (pessimistic)", core::ModuleIrradiance::WorstCell},
        };
        for (const auto& m : modes) {
            core::EvaluationOptions eval = bench::paper_eval_options();
            eval.module_irradiance = m.mode;
            const auto cmp = core::compare_placements(
                prepared, topo, bench::paper_greedy_options(), eval);
            table.add_row({prepared.name, m.name,
                           TextTable::num(cmp.traditional_eval.net_mwh(), 3),
                           TextTable::num(cmp.proposed_eval.net_mwh(), 3),
                           TextTable::pct(cmp.improvement()) + "%"});
        }
        table.add_separator();
    }
    table.print(std::cout);

    std::cout
        << "\nFinding: the granularity choice moves the reported gain by "
           "several\npercentage points and its direction is roof-dependent: "
           "where the\nheterogeneity lives at sub-module scale (surface "
           "texture) only the\ncell-granular evaluation can harvest it; "
           "where it lives at shading\nscale (towers/trees/neighbours) the "
           "physical footprint-mean gain is\nas large or larger.  "
           "Comparisons against the paper's absolute numbers\nmust state "
           "the granularity they assume.\n";
    return 0;
}

/// \file pvfloorplan_cli.cpp
/// `pvfloorplan` — a small command-line tool exposing the pipeline:
///
///   pvfloorplan [options]
///     --roof <1|2|3|residential|toy>   scenario (default: residential)
///     --modules <N>                    module count (default: 8)
///     --series <m>                     modules per string (default: 4)
///     --seed <u64>                     weather seed (default: 42)
///     --minutes <step>                 time step in minutes (default: 60)
///     --export-dsm <path.asc>          write the scenario DSM and exit
///     --csv <path.csv>                 also dump the placement as CSV
///
/// Demonstrates how a downstream user scripts the library without writing
/// C++ beyond this thin shell.

#include <cstdlib>
#include <iostream>
#include <string>

#include "pvfp/core/pipeline.hpp"
#include "pvfp/geo/asc_grid.hpp"
#include "pvfp/util/ascii_art.hpp"
#include "pvfp/util/csv.hpp"
#include "pvfp/util/table.hpp"

namespace {

[[noreturn]] void usage_error(const std::string& message) {
    std::cerr << "pvfloorplan: " << message << "\n"
              << "usage: pvfloorplan [--roof 1|2|3|residential|toy] "
                 "[--modules N]\n"
              << "                   [--series m] [--seed u64] "
                 "[--minutes step]\n"
              << "                   [--export-dsm out.asc] [--csv out.csv]\n";
    std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace pvfp;

    std::string roof = "residential";
    int modules = 8;
    int series = 4;
    std::uint64_t seed = 42;
    int minutes = 60;
    std::string dsm_path;
    std::string csv_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) usage_error("missing value after " + arg);
            return argv[++i];
        };
        if (arg == "--roof") {
            roof = next();
        } else if (arg == "--modules") {
            modules = std::atoi(next().c_str());
        } else if (arg == "--series") {
            series = std::atoi(next().c_str());
        } else if (arg == "--seed") {
            seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--minutes") {
            minutes = std::atoi(next().c_str());
        } else if (arg == "--export-dsm") {
            dsm_path = next();
        } else if (arg == "--csv") {
            csv_path = next();
        } else if (arg == "--help" || arg == "-h") {
            usage_error("help requested");
        } else {
            usage_error("unknown option " + arg);
        }
    }
    if (modules <= 0 || series <= 0 || modules % series != 0)
        usage_error("--modules must be a positive multiple of --series");

    core::RoofScenario scenario = [&]() {
        if (roof == "1") return core::make_roof1();
        if (roof == "2") return core::make_roof2();
        if (roof == "3") return core::make_roof3();
        if (roof == "toy") return core::make_toy();
        if (roof == "residential") return core::make_residential();
        usage_error("unknown roof '" + roof + "'");
    }();

    if (!dsm_path.empty()) {
        const auto dsm = scenario.scene.rasterize(0.2);
        geo::write_asc_grid_file(dsm, dsm_path);
        std::cout << "wrote " << dsm_path << " (" << dsm.width() << "x"
                  << dsm.height() << " cells at 0.2 m)\n";
        return 0;
    }

    core::ScenarioConfig config;
    config.grid = TimeGrid(minutes, 1, 365);
    config.weather.seed = seed;

    try {
        const auto prepared = core::prepare_scenario(scenario, config);
        const pv::Topology topology{series, modules / series};
        const auto cmp = core::compare_placements(prepared, topology);

        std::cout << "scenario: " << prepared.name << "  (Ng = "
                  << prepared.area.valid_count << ", grid "
                  << prepared.area.width << "x" << prepared.area.height
                  << ")\n";
        TextTable table({"placement", "energy [kWh/yr]", "gain"});
        table.set_align(0, Align::Left);
        table.add_row({"compact",
                       TextTable::num(cmp.traditional_eval.energy_kwh, 1),
                       "-"});
        table.add_row({"proposed",
                       TextTable::num(cmp.proposed_eval.energy_kwh, 1),
                       TextTable::pct(cmp.improvement()) + "%"});
        table.print(std::cout);

        std::vector<ModuleBox> boxes;
        for (int i = 0; i < cmp.proposed.module_count(); ++i) {
            const auto& m = cmp.proposed.modules[static_cast<std::size_t>(i)];
            boxes.push_back({m.x, m.y, cmp.proposed.geometry.k1,
                             cmp.proposed.geometry.k2, i / series});
        }
        std::cout << "\nproposed placement:\n"
                  << render_floorplan(prepared.area.valid, boxes, 100);

        if (!csv_path.empty()) {
            CsvTable out({"module", "string", "cell_x", "cell_y", "x_m",
                          "y_m"});
            for (int i = 0; i < cmp.proposed.module_count(); ++i) {
                const auto& m =
                    cmp.proposed.modules[static_cast<std::size_t>(i)];
                const auto c =
                    cmp.proposed.center_m(i, prepared.area.cell_size);
                out.add_row({std::to_string(i), std::to_string(i / series),
                             std::to_string(m.x), std::to_string(m.y),
                             TextTable::num(c.x_m, 2),
                             TextTable::num(c.y_m, 2)});
            }
            out.write_file(csv_path);
            std::cout << "wrote " << csv_path << '\n';
        }
    } catch (const Error& e) {
        std::cerr << "pvfloorplan: " << e.what() << '\n';
        return 1;
    }
    return 0;
}
